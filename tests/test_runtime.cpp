// Tests of the threaded runtime: MPMC queue, token bucket, and end-to-end
// runs over real files in a temp directory.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/error.hpp"
#include "frieda/partition.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/rt_engine.hpp"
#include "runtime/token_bucket.hpp"

namespace frieda::rt {
namespace {

namespace fs = std::filesystem;

TEST(MpmcQueue, PushPopOrder) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  int v = 0;
  EXPECT_EQ(q.try_pop(v), PopStatus::kItem);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.try_pop(v), PopStatus::kEmpty);
  EXPECT_EQ(v, 2);  // a non-pop leaves the out-parameter untouched
}

TEST(MpmcQueue, TryPopDistinguishesEmptyFromClosed) {
  // The tri-state a poller needs: empty-but-open says "retry", closed-and-
  // drained says "done forever".  The old optional API conflated the two.
  MpmcQueue<int> q;
  int v = 0;
  EXPECT_EQ(q.try_pop(v), PopStatus::kEmpty);
  EXPECT_FALSE(q.drained());
  q.push(3);
  q.close();
  EXPECT_FALSE(q.drained());  // closed but not yet drained
  EXPECT_EQ(q.try_pop(v), PopStatus::kItem);
  EXPECT_EQ(v, 3);
  EXPECT_EQ(q.try_pop(v), PopStatus::kClosed);
  EXPECT_TRUE(q.drained());
}

TEST(MpmcQueue, TryPopHalfTakesFrontHalfInOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  std::vector<int> loot;
  EXPECT_EQ(q.try_pop_half(loot), 3u);  // ceil(5/2)
  EXPECT_EQ(loot, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop_half(loot), 1u);  // ceil(2/2), appends
  EXPECT_EQ(loot, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.try_pop_half(loot), 1u);
  EXPECT_EQ(q.try_pop_half(loot), 0u);  // empty: nothing to steal
  EXPECT_EQ(loot.size(), 5u);
}

TEST(MpmcQueue, CloseDrainsThenNullopt) {
  MpmcQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop(), std::optional<int>(7));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpmcQueue, CloseWakesBlockedConsumer) {
  MpmcQueue<int> q;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_EQ(q.pop(), std::nullopt);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  MpmcQueue<int> q;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&q] {
      for (int i = 0; i < 250; ++i) q.push(1);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  for (int p = 0; p < 4; ++p) threads[p].join();
  q.close();
  for (std::size_t c = 4; c < threads.size(); ++c) threads[c].join();
  EXPECT_EQ(sum.load(), 1000);
}

TEST(TokenBucket, UnlimitedNeverBlocks) {
  TokenBucket bucket(0.0);
  const auto start = std::chrono::steady_clock::now();
  bucket.acquire(1ull << 40);
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count(),
            0.05);
}

TEST(TokenBucket, ThrottlesToConfiguredRate) {
  TokenBucket bucket(10e6, /*burst=*/1e6);  // 10 MB/s
  bucket.acquire(1'000'000);                // drain the initial burst
  const auto start = std::chrono::steady_clock::now();
  bucket.acquire(2'000'000);  // 2 MB at 10 MB/s ~ 0.2 s
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(took, 0.1);
  EXPECT_LT(took, 0.6);
}

TEST(TokenBucket, NegativeRateThrows) { EXPECT_THROW(TokenBucket(-1.0), FriedaError); }

TEST(TokenBucket, SustainedRateIsAccurate) {
  // Regression for the over-waiting acquire: chunked acquires must sustain
  // the configured rate, not a capped fraction of it.  Move 4 MB in 64 KiB
  // chunks (the runtime's copy granularity) at 20 MB/s: the 1 MB initial
  // burst is free, the remaining 3 MB cost 0.15 s at rate.
  const double rate = 20e6;
  TokenBucket bucket(rate, /*burst=*/1e6);
  const std::uint64_t chunk = 64 * 1024;
  const std::uint64_t total = 4'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t moved = 0; moved < total; moved += chunk) {
    bucket.acquire(std::min(chunk, total - moved));
  }
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const double expected = (total - 1e6) / rate;  // 0.15 s
  EXPECT_GT(took, expected * 0.7);
  EXPECT_LT(took, expected * 2.0 + 0.05);  // generous: CI schedulers jitter
}

TEST(TokenBucket, AccumulatedCreditEliminatesTheWait) {
  // Tokens already in the bucket must shorten the wait: after an idle period
  // refills the burst, an acquire within the burst returns immediately.
  TokenBucket bucket(10e6, /*burst=*/1e6);
  bucket.acquire(1'000'000);  // drain the initial burst (no wait)
  std::this_thread::sleep_for(std::chrono::milliseconds(120));  // refill >= 1 MB
  const auto start = std::chrono::steady_clock::now();
  bucket.acquire(900'000);  // fully covered by the refilled credit
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(took, 0.05);
}

// ---- RtEngine end-to-end ----

class RtEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(testing::TempDir()) / ("frieda_rt_" + std::to_string(::getpid()));
    source_ = (root_ / "source").string();
    staging_ = (root_ / "staging").string();
    fs::remove_all(root_);
    catalog_ = make_dataset(source_, 12, 64 * KiB, 99);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
  std::string source_;
  std::string staging_;
  storage::FileCatalog catalog_;
};

TEST_F(RtEngineTest, DatasetGeneratorMakesRealFiles) {
  EXPECT_EQ(catalog_.count(), 12u);
  for (const auto& f : catalog_.files()) {
    const auto p = fs::path(source_) / f.name;
    ASSERT_TRUE(fs::exists(p));
    EXPECT_EQ(fs::file_size(p), 64 * KiB);
  }
}

TEST_F(RtEngineTest, ScansCatalogSorted) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kPrePartitionLocal;
  opt.worker_count = 2;
  RtEngine engine(source_, opt);
  ASSERT_EQ(engine.catalog().count(), 12u);
  EXPECT_EQ(engine.catalog().info(0).name, "input_00000.dat");
  EXPECT_EQ(engine.catalog().info(11).name, "input_00011.dat");
}

TEST_F(RtEngineTest, RealTimeRunStagesAndExecutes) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kRealTime;
  opt.worker_count = 3;
  opt.staging_root = staging_;
  opt.keep_staged_files = false;
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  std::atomic<int> executed{0};
  const auto report = engine.run(
      std::move(units), core::CommandTemplate("analyze $inp1"),
      [&](const core::WorkUnit&, const std::vector<std::string>& paths,
          const std::string& command) {
        EXPECT_EQ(paths.size(), 1u);
        EXPECT_TRUE(fs::exists(paths[0]));                    // bytes really arrived
        EXPECT_EQ(fs::file_size(paths[0]), 64 * KiB);
        EXPECT_NE(command.find("analyze "), std::string::npos);
        ++executed;
        return true;
      });
  EXPECT_EQ(executed.load(), 12);
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.units_completed, 12u);
  EXPECT_EQ(report.bytes_staged, 12u * 64 * KiB);
  EXPECT_FALSE(fs::exists(fs::path(staging_) / "worker0"));  // cleaned up
  // Every worker participated.
  for (const auto c : report.per_worker_completed) EXPECT_GT(c, 0u);
}

TEST_F(RtEngineTest, PrePartitionRemoteStagesUpFront) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kPrePartitionRemote;
  opt.worker_count = 2;
  opt.staging_root = staging_;
  opt.keep_staged_files = true;
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  const auto report = engine.run(std::move(units), core::CommandTemplate("app $inp1"),
                                 [](const core::WorkUnit&, const std::vector<std::string>&,
                                    const std::string&) { return true; });
  EXPECT_TRUE(report.all_completed());
  EXPECT_GT(report.staging_seconds, 0.0);
  // Round-robin: worker0 got even units, worker1 odd ones; staged copies stay.
  EXPECT_TRUE(fs::exists(fs::path(staging_) / "worker0" / "input_00000.dat"));
  EXPECT_TRUE(fs::exists(fs::path(staging_) / "worker1" / "input_00001.dat"));
}

TEST_F(RtEngineTest, PrePartitionLocalUsesSourceInPlace) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kPrePartitionLocal;
  opt.worker_count = 2;
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kPairwiseAdjacent,
                                                  engine.catalog());
  const auto report = engine.run(
      std::move(units), core::CommandTemplate("compare $inp1 $inp2"),
      [&](const core::WorkUnit&, const std::vector<std::string>& paths, const std::string&) {
        EXPECT_EQ(paths.size(), 2u);
        // Paths point into the source directory: no copies were made.
        EXPECT_NE(paths[0].find(source_), std::string::npos);
        return true;
      });
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.units_completed, 6u);
  EXPECT_EQ(report.bytes_staged, 0u);
}

TEST_F(RtEngineTest, FailingTasksAreRecorded) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kRealTime;
  opt.worker_count = 2;
  opt.staging_root = staging_;
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  const auto report = engine.run(
      std::move(units), core::CommandTemplate("app $inp1"),
      [](const core::WorkUnit& unit, const std::vector<std::string>&, const std::string&) {
        return unit.id % 3 != 0;  // every third unit fails
      });
  EXPECT_EQ(report.units_failed, 4u);
  EXPECT_EQ(report.units_completed, 8u);
  EXPECT_FALSE(report.all_completed());
  for (const auto& rec : report.units) {
    EXPECT_EQ(rec.ok, rec.unit % 3 != 0);
  }
}

TEST_F(RtEngineTest, ThrottledStagingTakesRealTime) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kRealTime;
  opt.worker_count = 2;
  opt.staging_root = staging_;
  opt.bandwidth = 2e6;  // 2 MB/s for 12 x 64 KiB = 768 KiB => ~0.4 s minimum
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  const auto start = std::chrono::steady_clock::now();
  const auto report = engine.run(std::move(units), core::CommandTemplate("app $inp1"),
                                 [](const core::WorkUnit&, const std::vector<std::string>&,
                                    const std::string&) { return true; });
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(report.all_completed());
  EXPECT_GT(took, 0.2);  // the bucket really throttled
}

TEST_F(RtEngineTest, InvalidConfigurationsThrow) {
  RtOptions opt;
  opt.worker_count = 0;
  EXPECT_THROW(RtEngine(source_, opt), FriedaError);

  RtOptions no_staging;
  no_staging.strategy = core::PlacementStrategy::kRealTime;
  no_staging.staging_root.clear();
  EXPECT_THROW(RtEngine(source_, no_staging), FriedaError);

  RtOptions bad_strategy;
  bad_strategy.strategy = core::PlacementStrategy::kNoPartitionCommon;
  bad_strategy.staging_root = staging_;
  EXPECT_THROW(RtEngine(source_, bad_strategy), FriedaError);

  RtOptions ok;
  ok.staging_root = staging_;
  EXPECT_THROW(RtEngine("/nonexistent/dir", ok), FriedaError);
}

}  // namespace
}  // namespace frieda::rt
