// Shared-volume placement strategy (Section III.A: mounted shared file
// systems / iSCSI volumes): inputs live on a storage server; every task
// streams them at execution time, contending on the server's NIC.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/synthetic.hpp"

namespace frieda::core {
namespace {

using cluster::ClusterOptions;
using cluster::VirtualCluster;
using workload::SyntheticModel;
using workload::SyntheticParams;

struct Scenario {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<VirtualCluster> cluster;
  std::unique_ptr<SyntheticModel> app;
  std::vector<WorkUnit> units;
};

Scenario make_scenario(Bandwidth storage_nic, SyntheticParams params) {
  Scenario s;
  s.sim = std::make_unique<sim::Simulation>(71);
  ClusterOptions copts;
  copts.with_storage_server = true;
  copts.storage_nic = storage_nic;
  s.cluster = std::make_unique<VirtualCluster>(*s.sim, copts);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  s.cluster->provision(type, 2);
  s.app = std::make_unique<SyntheticModel>(params);
  s.units = PartitionGenerator::generate(PartitionScheme::kSingleFile, s.app->catalog());
  return s;
}

SyntheticParams load() {
  SyntheticParams params;
  params.file_count = 24;
  params.mean_file_bytes = 10 * MB;
  params.mean_task_seconds = 1.0;
  return params;
}

TEST(SharedVolume, CompletesAndStreamsFromStorageServer) {
  auto s = make_scenario(mbps(1000), load());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kSharedVolume;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed()) << report.summary();
  // Every byte came off the storage server, none from the data source.
  const auto storage = *s.cluster->storage_node();
  EXPECT_EQ(s.cluster->network().traffic(storage).bytes_sent,
            s.app->catalog().total_bytes());
  EXPECT_EQ(s.cluster->network().traffic(s.cluster->source_node()).bytes_sent, 0u);
  // Streaming counts as transfer time in the per-unit records.
  double transfer = 0.0;
  for (const auto& rec : report.units) transfer += rec.transfer_seconds;
  EXPECT_GT(transfer, 0.0);
}

TEST(SharedVolume, ServerNicIsTheSharedBottleneck) {
  // Halving the storage server's NIC roughly doubles the transfer-bound
  // makespan — the iSCSI-contention effect of Section III.A.
  auto run_with = [&](Bandwidth nic) {
    auto s = make_scenario(nic, load());
    RunOptions opt;
    opt.strategy = PlacementStrategy::kSharedVolume;
    FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app,
                  CommandTemplate("app $inp1"), opt);
    return run.run();
  };
  const auto fast = run_with(mbps(400));
  const auto slow = run_with(mbps(100));
  EXPECT_TRUE(fast.all_completed());
  EXPECT_TRUE(slow.all_completed());
  // At 400 Mbps the two VMs' 100 Mbps ingress NICs take over as the
  // bottleneck, so the gain saturates below the nominal 4x.
  EXPECT_GT(slow.makespan(), 1.5 * fast.makespan());
}

TEST(SharedVolume, NoLocalDiskPressureFromInputs) {
  // Streamed inputs never land on the VM-local disks: a tiny disk is fine.
  auto params = load();
  auto s = make_scenario(mbps(1000), params);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kSharedVolume;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  for (const auto vm : s.cluster->all_vms()) {
    EXPECT_EQ(s.cluster->vm(vm).disk().used(), 0u);
  }
}

TEST(SharedVolume, RequiresStorageServer) {
  sim::Simulation sim(72);
  VirtualCluster cluster(sim);  // no storage server configured
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  cluster.provision(type, 1);
  SyntheticModel app(load());
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kSharedVolume;
  EXPECT_THROW(FriedaRun(cluster, app.catalog(), std::move(units), app,
                         CommandTemplate("app $inp1"), opt),
               FriedaError);
}

TEST(SharedVolume, EnumRoundTrip) {
  EXPECT_EQ(parse_placement_strategy("shared-volume"), PlacementStrategy::kSharedVolume);
  EXPECT_STREQ(to_string(PlacementStrategy::kSharedVolume), "shared-volume");
}

}  // namespace
}  // namespace frieda::core
