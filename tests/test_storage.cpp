#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/network.hpp"
#include "storage/device.hpp"
#include "storage/file.hpp"

namespace frieda::storage {
namespace {

TEST(FileCatalog, AddAndLookup) {
  FileCatalog cat;
  const auto a = cat.add_file("img_000.tif", 7 * MB);
  const auto b = cat.add_file("img_001.tif", 8 * MB);
  EXPECT_EQ(cat.count(), 2u);
  EXPECT_EQ(cat.info(a).name, "img_000.tif");
  EXPECT_EQ(cat.info(b).size, 8 * MB);
  EXPECT_EQ(cat.total_bytes(), 15 * MB);
  EXPECT_EQ(cat.all_ids(), (std::vector<FileId>{0, 1}));
  EXPECT_THROW(cat.info(7), FriedaError);
}

TEST(ReplicaMap, AddRemoveQuery) {
  ReplicaMap rm;
  rm.add(0, 1);
  rm.add(0, 2);
  rm.add(1, 1);
  EXPECT_TRUE(rm.has(0, 1));
  EXPECT_FALSE(rm.has(1, 2));
  EXPECT_EQ(rm.replica_count(0), 2u);
  EXPECT_EQ(rm.nodes_with(0), (std::vector<net::NodeId>{1, 2}));
  EXPECT_EQ(rm.files_on(1), (std::vector<FileId>{0, 1}));
  rm.remove(0, 1);
  EXPECT_FALSE(rm.has(0, 1));
  EXPECT_EQ(rm.replica_count(0), 1u);
  rm.remove(0, 99);  // no-op
}

TEST(ReplicaMap, AddIsIdempotent) {
  ReplicaMap rm;
  rm.add(3, 7);
  rm.add(3, 7);
  EXPECT_EQ(rm.replica_count(3), 1u);
}

TEST(ReplicaMap, DropNodeForgetsTransientData) {
  ReplicaMap rm;
  rm.add(0, 1);
  rm.add(1, 1);
  rm.add(0, 2);
  rm.drop_node(1);
  EXPECT_FALSE(rm.has(0, 1));
  EXPECT_FALSE(rm.has(1, 1));
  EXPECT_TRUE(rm.has(0, 2));
  EXPECT_TRUE(rm.files_on(1).empty());
}

TEST(ReplicaMap, BytesOnNode) {
  FileCatalog cat;
  cat.add_file("a", 5 * MB);
  cat.add_file("b", 3 * MB);
  ReplicaMap rm;
  rm.add(0, 4);
  rm.add(1, 4);
  EXPECT_EQ(rm.bytes_on(4, cat), 8 * MB);
  EXPECT_EQ(rm.bytes_on(9, cat), 0u);
}

TEST(StorageDevice, CapacityAccounting) {
  sim::Simulation sim;
  LocalDisk disk(sim, mBps(100), mBps(100), 10 * MB);
  EXPECT_EQ(disk.capacity(), 10 * MB);
  EXPECT_TRUE(disk.allocate(6 * MB));
  EXPECT_EQ(disk.used(), 6 * MB);
  EXPECT_EQ(disk.available(), 4 * MB);
  EXPECT_FALSE(disk.allocate(5 * MB));  // over budget
  disk.release(2 * MB);
  EXPECT_TRUE(disk.allocate(5 * MB));
  EXPECT_THROW(disk.release(100 * MB), FriedaError);
}

TEST(LocalDisk, ReadTakesBytesOverBandwidth) {
  sim::Simulation sim;
  LocalDisk disk(sim, mBps(100), mBps(50), GiB);
  IoResult r_read, r_write;
  sim.spawn([](LocalDisk& d, IoResult& rr, IoResult& rw) -> sim::Task<> {
    rr = co_await d.read(200 * MB);   // 2 s
    rw = co_await d.write(200 * MB);  // 4 s
  }(disk, r_read, r_write));
  sim.run();
  EXPECT_TRUE(r_read.ok);
  EXPECT_NEAR(r_read.duration, 2.0, 1e-9);
  EXPECT_TRUE(r_write.ok);
  EXPECT_NEAR(r_write.duration, 4.0, 1e-9);
}

TEST(LocalDisk, ConcurrentReadsShareBandwidth) {
  sim::Simulation sim;
  LocalDisk disk(sim, mBps(100), mBps(100), GiB);
  std::vector<IoResult> results(2);
  for (auto& r : results) {
    sim.spawn([](LocalDisk& d, IoResult& out) -> sim::Task<> {
      out = co_await d.read(100 * MB);
    }(disk, r));
  }
  sim.run();
  EXPECT_NEAR(results[0].duration, 2.0, 1e-9);  // half rate each
  EXPECT_NEAR(results[1].duration, 2.0, 1e-9);
}

TEST(LocalDisk, FailAbortsInFlightIo) {
  sim::Simulation sim;
  LocalDisk disk(sim, mBps(10), mBps(10), GiB);
  IoResult result;
  sim.spawn([](LocalDisk& d, IoResult& out) -> sim::Task<> {
    out = co_await d.read(GB);  // 100 s alone
  }(disk, result));
  sim.schedule_at(5.0, [&] { disk.fail(); });
  sim.run();
  EXPECT_FALSE(result.ok);
  EXPECT_NEAR(result.duration, 5.0, 1e-9);

  // After failure, new I/O fails instantly until restore().
  IoResult after;
  sim.spawn([](LocalDisk& d, IoResult& out) -> sim::Task<> {
    out = co_await d.read(MB);
  }(disk, after));
  sim.run();
  EXPECT_FALSE(after.ok);
  disk.restore();
  sim.spawn([](LocalDisk& d, IoResult& out) -> sim::Task<> {
    out = co_await d.read(MB);
  }(disk, after));
  sim.run();
  EXPECT_TRUE(after.ok);
}

TEST(SharedService, ZeroBytesImmediate) {
  sim::Simulation sim;
  SharedService svc(sim, mBps(1));
  IoResult result{false, 99.0};
  sim.spawn([](SharedService& s, IoResult& out) -> sim::Task<> {
    out = co_await s.submit(0);
  }(svc, result));
  sim.run();
  EXPECT_TRUE(result.ok);
  EXPECT_DOUBLE_EQ(result.duration, 0.0);
  EXPECT_EQ(svc.active(), 0u);
}

net::Topology two_nodes() {
  net::Topology t;
  t.add_node("server", mbps(1000), mbps(1000));
  t.add_node("host", mbps(100), mbps(100));
  return t;
}

TEST(NetworkVolume, IoRidesTheNetwork) {
  sim::Simulation sim;
  net::Network netw(sim, two_nodes(), 0.0);
  NetworkVolume vol(netw, /*server=*/0, /*host=*/1, GiB);
  IoResult r_read, r_write;
  sim.spawn([](NetworkVolume& v, IoResult& rr, IoResult& rw) -> sim::Task<> {
    rr = co_await v.read(125 * MB);   // host ingress 12.5 MB/s => 10 s
    rw = co_await v.write(125 * MB);  // host egress 12.5 MB/s => 10 s
  }(vol, r_read, r_write));
  sim.run();
  EXPECT_TRUE(r_read.ok);
  EXPECT_NEAR(r_read.duration, 10.0, 1e-6);
  EXPECT_TRUE(r_write.ok);
  EXPECT_NEAR(r_write.duration, 10.0, 1e-6);
  EXPECT_EQ(vol.server_node(), 0u);
}

TEST(NetworkVolume, ClientsContendOnServerNic) {
  sim::Simulation sim;
  net::Topology t;
  t.add_node("server", mbps(100), mbps(100));  // shared iSCSI server NIC
  t.add_node("h1", mbps(1000), mbps(1000));
  t.add_node("h2", mbps(1000), mbps(1000));
  net::Network netw(sim, std::move(t), 0.0);
  NetworkVolume v1(netw, 0, 1, GiB);
  NetworkVolume v2(netw, 0, 2, GiB);
  std::vector<IoResult> results(2);
  sim.spawn([](NetworkVolume& v, IoResult& out) -> sim::Task<> {
    out = co_await v.read(125 * MB);
  }(v1, results[0]));
  sim.spawn([](NetworkVolume& v, IoResult& out) -> sim::Task<> {
    out = co_await v.read(125 * MB);
  }(v2, results[1]));
  sim.run();
  EXPECT_NEAR(results[0].duration, 20.0, 1e-6);  // 6.25 MB/s each
  EXPECT_NEAR(results[1].duration, 20.0, 1e-6);
}

TEST(ObjectStore, RequestLatencyBeforeBytes) {
  sim::Simulation sim;
  net::Network netw(sim, two_nodes(), 0.0);
  ObjectStore store(sim, netw, 0, 1, /*request_latency=*/0.2, GiB);
  IoResult result;
  sim.spawn([](ObjectStore& s, IoResult& out) -> sim::Task<> {
    out = co_await s.read(125 * MB);
  }(store, result));
  sim.run();
  EXPECT_TRUE(result.ok);
  EXPECT_NEAR(result.duration, 10.2, 1e-6);
}

}  // namespace
}  // namespace frieda::storage
