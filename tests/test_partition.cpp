// Unit + property tests of the partition generator (paper Section II.E).
#include "frieda/partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace frieda::core {
namespace {

storage::FileCatalog make_catalog(std::size_t n) {
  storage::FileCatalog cat;
  for (std::size_t i = 0; i < n; ++i) cat.add_file("f" + std::to_string(i), MB);
  return cat;
}

TEST(Partition, SingleFile) {
  const auto cat = make_catalog(5);
  const auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, cat);
  ASSERT_EQ(units.size(), 5u);
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(units[i].id, i);
    ASSERT_EQ(units[i].inputs.size(), 1u);
    EXPECT_EQ(units[i].inputs[0], i);
  }
}

TEST(Partition, OneToAll) {
  const auto cat = make_catalog(4);
  const auto units = PartitionGenerator::generate(PartitionScheme::kOneToAll, cat);
  ASSERT_EQ(units.size(), 3u);
  for (std::size_t i = 0; i < units.size(); ++i) {
    ASSERT_EQ(units[i].inputs.size(), 2u);
    EXPECT_EQ(units[i].inputs[0], 0u);  // the reference file
    EXPECT_EQ(units[i].inputs[1], i + 1);
  }
}

TEST(Partition, PairwiseAdjacent) {
  const auto cat = make_catalog(6);
  const auto units = PartitionGenerator::generate(PartitionScheme::kPairwiseAdjacent, cat);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].inputs, (std::vector<storage::FileId>{0, 1}));
  EXPECT_EQ(units[1].inputs, (std::vector<storage::FileId>{2, 3}));
  EXPECT_EQ(units[2].inputs, (std::vector<storage::FileId>{4, 5}));
}

TEST(Partition, PairwiseAdjacentOddDropsLast) {
  const auto cat = make_catalog(5);
  const auto units = PartitionGenerator::generate(PartitionScheme::kPairwiseAdjacent, cat);
  EXPECT_EQ(units.size(), 2u);  // floor(5/2)
}

TEST(Partition, AllToAll) {
  const auto cat = make_catalog(4);
  const auto units = PartitionGenerator::generate(PartitionScheme::kAllToAll, cat);
  ASSERT_EQ(units.size(), 6u);  // C(4,2)
  std::set<std::pair<storage::FileId, storage::FileId>> pairs;
  for (const auto& u : units) {
    ASSERT_EQ(u.inputs.size(), 2u);
    EXPECT_LT(u.inputs[0], u.inputs[1]);
    pairs.insert({u.inputs[0], u.inputs[1]});
  }
  EXPECT_EQ(pairs.size(), 6u);  // all distinct
}

TEST(Partition, DegenerateInputsThrow) {
  const auto one = make_catalog(1);
  EXPECT_THROW(PartitionGenerator::generate(PartitionScheme::kOneToAll, one), FriedaError);
  EXPECT_THROW(PartitionGenerator::generate(PartitionScheme::kAllToAll, one), FriedaError);
  EXPECT_EQ(PartitionGenerator::generate(PartitionScheme::kSingleFile, one).size(), 1u);
  EXPECT_EQ(PartitionGenerator::generate(PartitionScheme::kPairwiseAdjacent, one).size(), 0u);
}

TEST(Partition, CustomSchemeRegistry) {
  PartitionGenerator gen;
  EXPECT_FALSE(gen.has_scheme("stride"));
  gen.register_scheme("stride", [](const storage::FileCatalog& cat) {
    std::vector<std::vector<storage::FileId>> groups;
    const auto ids = cat.all_ids();
    for (std::size_t i = 0; i + 2 < ids.size(); i += 3) {
      groups.push_back({ids[i], ids[i + 2]});
    }
    return groups;
  });
  EXPECT_TRUE(gen.has_scheme("stride"));
  EXPECT_EQ(gen.scheme_names(), (std::vector<std::string>{"stride"}));

  const auto cat = make_catalog(7);
  const auto units = gen.generate_custom("stride", cat);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].inputs, (std::vector<storage::FileId>{0, 2}));
  EXPECT_EQ(units[1].inputs, (std::vector<storage::FileId>{3, 5}));
  EXPECT_THROW(gen.generate_custom("unknown", cat), FriedaError);
  EXPECT_THROW(gen.register_scheme("bad", nullptr), FriedaError);
}

TEST(Partition, InputBytes) {
  storage::FileCatalog cat;
  cat.add_file("a", 3 * MB);
  cat.add_file("b", 4 * MB);
  const auto units = PartitionGenerator::generate(PartitionScheme::kPairwiseAdjacent, cat);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].input_bytes(cat), 7 * MB);
}

// Property sweep over catalog sizes: cardinalities, coverage, dense ids.
class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<PartitionScheme, std::size_t>> {};

TEST_P(PartitionProperty, CardinalityCoverageAndDenseIds) {
  const auto [scheme, n] = GetParam();
  if (n < 2 &&
      (scheme == PartitionScheme::kOneToAll || scheme == PartitionScheme::kAllToAll)) {
    GTEST_SKIP() << "degenerate case covered separately";
  }
  const auto cat = make_catalog(n);
  const auto units = PartitionGenerator::generate(scheme, cat);

  // Cardinality matches the closed form.
  std::size_t expected = 0;
  switch (scheme) {
    case PartitionScheme::kSingleFile: expected = n; break;
    case PartitionScheme::kOneToAll: expected = n - 1; break;
    case PartitionScheme::kPairwiseAdjacent: expected = n / 2; break;
    case PartitionScheme::kAllToAll: expected = n * (n - 1) / 2; break;
  }
  EXPECT_EQ(units.size(), expected);

  // Ids dense and ordered; inputs valid; no empty groups.
  std::set<storage::FileId> covered;
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(units[i].id, i);
    EXPECT_FALSE(units[i].inputs.empty());
    for (const auto f : units[i].inputs) {
      EXPECT_LT(f, n);
      covered.insert(f);
    }
  }
  // Coverage: every file appears in at least one group (except the odd tail
  // of pairwise-adjacent).
  const std::size_t expected_coverage =
      scheme == PartitionScheme::kPairwiseAdjacent ? (n / 2) * 2 : (expected ? n : 0);
  EXPECT_EQ(covered.size(), expected_coverage);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Combine(::testing::Values(PartitionScheme::kSingleFile,
                                         PartitionScheme::kOneToAll,
                                         PartitionScheme::kPairwiseAdjacent,
                                         PartitionScheme::kAllToAll),
                       ::testing::Values<std::size_t>(2, 3, 4, 7, 16, 33, 100)));

}  // namespace
}  // namespace frieda::core
