// Property tests of the flow-level network under random churn: random
// topologies, random transfer arrivals, random node failures — byte
// conservation, completion accounting, and rate feasibility must hold.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace frieda::net {
namespace {

struct ChurnOutcome {
  Bytes requested_ok = 0;    ///< bytes of transfers that completed
  Bytes transferred = 0;     ///< bytes the network reports moved
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t total = 0;
  double last_finish = 0.0;
};

ChurnOutcome run_churn(std::uint64_t seed, bool with_failures) {
  sim::Simulation sim(seed);
  Rng rng = sim.rng().fork();

  Topology topo;
  const std::size_t nodes = 3 + rng.index(6);
  for (std::size_t i = 0; i < nodes; ++i) {
    topo.add_node("n" + std::to_string(i), mbps(rng.uniform(20, 500)),
                  mbps(rng.uniform(20, 500)));
  }
  if (rng.chance(0.5)) topo.set_backbone_capacity(mbps(rng.uniform(100, 1000)));
  if (rng.chance(0.5) && nodes >= 4) {
    topo.set_site(static_cast<NodeId>(nodes - 1), 1);
    topo.set_site(static_cast<NodeId>(nodes - 2), 1);
    topo.set_intersite_capacity(0, 1, mbps(rng.uniform(10, 100)));
  }
  Network netw(sim, std::move(topo), /*latency=*/rng.chance(0.5) ? 1e-3 : 0.0);

  auto outcome = std::make_shared<ChurnOutcome>();
  const std::size_t transfers = 20 + rng.index(30);
  outcome->total = transfers;
  for (std::size_t i = 0; i < transfers; ++i) {
    const auto src = static_cast<NodeId>(rng.index(nodes));
    auto dst = static_cast<NodeId>(rng.index(nodes));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % nodes);
    const Bytes bytes = static_cast<Bytes>(rng.uniform(0.1, 30.0) * 1e6);
    const double start = rng.uniform(0.0, 20.0);
    const unsigned streams = 1 + static_cast<unsigned>(rng.index(4));
    sim.schedule_at(start, [&netw, &sim, src, dst, bytes, streams, outcome] {
      sim.spawn([](Network& n, sim::Simulation& s, NodeId a, NodeId b, Bytes sz,
                   unsigned k, std::shared_ptr<ChurnOutcome> out) -> sim::Task<> {
        const auto r = co_await n.transfer(a, b, sz, k);
        out->transferred += r.transferred;
        out->last_finish = std::max(out->last_finish, s.now());
        if (r.ok()) {
          out->requested_ok += r.requested;
          EXPECT_EQ(r.transferred, r.requested);
          ++out->completed;
        } else {
          EXPECT_LE(r.transferred, r.requested);
          ++out->failed;
        }
      }(netw, sim, src, dst, bytes, streams, outcome),
                "churn-transfer");
    });
  }
  if (with_failures) {
    const std::size_t kills = 1 + rng.index(2);
    for (std::size_t i = 0; i < kills; ++i) {
      const auto victim = static_cast<NodeId>(rng.index(nodes));
      sim.schedule_at(rng.uniform(5.0, 25.0), [&netw, victim] { netw.fail_node(victim); });
    }
  }
  sim.run();
  EXPECT_EQ(netw.active_flows(), 0u);  // the fluid model drained completely
  return *outcome;
}

class NetworkChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkChurn, HealthyNetworkDeliversEverything) {
  const auto out = run_churn(GetParam(), /*with_failures=*/false);
  EXPECT_EQ(out.completed, out.total);
  EXPECT_EQ(out.failed, 0u);
  EXPECT_EQ(out.transferred, out.requested_ok);
  EXPECT_GT(out.last_finish, 0.0);
}

TEST_P(NetworkChurn, FailuresAreAccountedNotLost) {
  const auto out = run_churn(GetParam() + 1000, /*with_failures=*/true);
  EXPECT_EQ(out.completed + out.failed, out.total);
  // Completed transfers delivered in full; bytes never exceed requests.
  EXPECT_GE(out.transferred, out.requested_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkChurn, ::testing::Range<std::uint64_t>(1, 25));

TEST(NetworkChurn, DeterministicUnderSeed) {
  const auto a = run_churn(424242, true);
  const auto b = run_churn(424242, true);
  EXPECT_EQ(a.transferred, b.transferred);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_DOUBLE_EQ(a.last_finish, b.last_finish);
}

}  // namespace
}  // namespace frieda::net
