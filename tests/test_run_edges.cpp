// Edge cases of the run engine: consecutive runs on one cluster, degenerate
// configurations, and option interplay.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/synthetic.hpp"

namespace frieda::core {
namespace {

using cluster::VirtualCluster;
using workload::SyntheticModel;
using workload::SyntheticParams;

SyntheticParams tiny_load(std::size_t files = 12) {
  SyntheticParams params;
  params.file_count = files;
  params.mean_file_bytes = MB;
  params.mean_task_seconds = 0.5;
  return params;
}

TEST(RunEdges, ConsecutiveRunsOnOneCluster) {
  // Two campaigns back to back over the same VMs — the idiom workflows and
  // the adaptive selector rely on.  The first run's observers must not
  // linger (its channels are destroyed before the second run).
  sim::Simulation sim(91);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  cluster.provision(type, 2);
  SyntheticModel app(tiny_load(20));
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());

  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  {
    FriedaRun first(cluster, app.catalog(), units, app, CommandTemplate("app $inp1"), opt);
    EXPECT_TRUE(first.run().all_completed());
  }  // destroyed: observers unregistered

  FriedaRun second(cluster, app.catalog(), units, app, CommandTemplate("app $inp1"), opt);
  // A failure during the second run must only reach the second run.  Note
  // the simulation clock is shared: schedule relative to now.
  cluster::FailureInjector injector(cluster);
  injector.schedule(1, sim.now() + 1.0);
  const auto report = second.run();
  EXPECT_EQ(report.workers_isolated, 2u);
  EXPECT_EQ(report.units_completed + report.units_failed + report.units_unprocessed,
            report.units_total);
}

TEST(RunEdges, SecondRunSeesFirstRunsDiskUsage) {
  // Outputs of run 1 occupy the shared disks; run 2's capacity accounting
  // starts from that state.
  sim::Simulation sim(92);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 1;
  type.disk_capacity = 200 * MB;
  cluster.provision(type, 1);
  auto params = tiny_load(10);
  params.output_bytes = 5 * MB;
  SyntheticModel app(params);
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  {
    FriedaRun first(cluster, app.catalog(), units, app, CommandTemplate("app $inp1"), opt);
    EXPECT_TRUE(first.run().all_completed());
  }
  const Bytes used_after_first = cluster.vm(0).disk().used();
  EXPECT_GE(used_after_first, 50u * MB);  // 10 inputs + 10 outputs
  FriedaRun second(cluster, app.catalog(), units, app, CommandTemplate("app $inp1"), opt);
  EXPECT_TRUE(second.run().all_completed());
  EXPECT_GT(cluster.vm(0).disk().used(), used_after_first);  // more outputs
}

TEST(RunEdges, SingleUnitRun) {
  sim::Simulation sim(93);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  cluster.provision(type, 1);
  SyntheticModel app(tiny_load(1));
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
  RunOptions opt;
  FriedaRun run(cluster, app.catalog(), std::move(units), app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.units_total, 1u);
  // Only one worker got work; the rest idled.
  std::size_t busy_workers = 0;
  for (const auto& w : report.workers) busy_workers += w.units_completed > 0;
  EXPECT_EQ(busy_workers, 1u);
}

TEST(RunEdges, ConstructorValidation) {
  sim::Simulation sim(94);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  cluster.provision(type, 1);
  SyntheticModel app(tiny_load());
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());

  // Empty unit list.
  EXPECT_THROW(FriedaRun(cluster, app.catalog(), {}, app, CommandTemplate("app $inp1"),
                         RunOptions{}),
               FriedaError);
  // Arity mismatch: pairwise units with a single-input command.
  auto pairs = PartitionGenerator::generate(PartitionScheme::kPairwiseAdjacent, app.catalog());
  EXPECT_THROW(FriedaRun(cluster, app.catalog(), pairs, app, CommandTemplate("app $inp1"),
                         RunOptions{}),
               FriedaError);
  // run() twice.
  FriedaRun run(cluster, app.catalog(), units, app, CommandTemplate("app $inp1"),
                RunOptions{});
  (void)run.run();
  EXPECT_THROW(run.run(), FriedaError);
}

TEST(RunEdges, ClusterWithNoVmsRejected) {
  sim::Simulation sim(95);
  VirtualCluster cluster(sim);
  SyntheticModel app(tiny_load());
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
  EXPECT_THROW(FriedaRun(cluster, app.catalog(), std::move(units), app,
                         CommandTemplate("app $inp1"), RunOptions{}),
               FriedaError);
}

TEST(RunEdges, LargePrefetchDoesNotBreakAccounting) {
  sim::Simulation sim(96);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  cluster.provision(type, 2);
  SyntheticModel app(tiny_load(16));
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.prefetch = 100;  // more credits than units
  FriedaRun run(cluster, app.catalog(), std::move(units), app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
}

TEST(RunEdges, ZeroPrefetchIsStrictRequestReply) {
  // prefetch=0 reproduces the paper's literal protocol: one assignment at a
  // time, no pipelining — transfers and compute alternate in lockstep.
  sim::Simulation sim(97);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  cluster.provision(type, 2);
  auto params = tiny_load(16);
  params.mean_file_bytes = 12 * MB;  // ~1 s transfer each at shared 12.5 MB/s
  params.mean_task_seconds = 2.0;
  SyntheticModel app(params);
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
  auto run_with = [&](int prefetch) {
    sim::Simulation s2(97);
    VirtualCluster c2(s2);
    c2.provision(type, 2);
    RunOptions opt;
    opt.strategy = PlacementStrategy::kRealTime;
    opt.prefetch = prefetch;
    FriedaRun run(c2, app.catalog(), units, app, CommandTemplate("app $inp1"), opt);
    return run.run();
  };
  const auto strict = run_with(0);
  const auto pipelined = run_with(1);
  EXPECT_TRUE(strict.all_completed());
  EXPECT_TRUE(pipelined.all_completed());
  EXPECT_LT(pipelined.overlap() + 1e-9, strict.makespan());  // sanity
  EXPECT_LT(pipelined.makespan(), strict.makespan());        // pipelining pays
}

TEST(RunEdges, BlockAssignmentEndToEnd) {
  sim::Simulation sim(98);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 1;
  cluster.provision(type, 2);
  SyntheticModel app(tiny_load(10));
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kPrePartitionRemote;
  opt.assignment = AssignmentPolicy::kBlock;
  FriedaRun run(cluster, app.catalog(), std::move(units), app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  // Block policy: worker 0 ran units 0..4, worker 1 ran 5..9.
  for (const auto& rec : report.units) {
    EXPECT_EQ(rec.worker, rec.unit < 5 ? 0u : 1u);
  }
}

}  // namespace
}  // namespace frieda::core
