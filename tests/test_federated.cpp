// Federated multi-site deployments (paper Sections I and V.C): inter-site
// WAN constraints in the network model and topology-aware real-time dispatch.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "net/network.hpp"
#include "workload/synthetic.hpp"

namespace frieda {
namespace {

using cluster::VirtualCluster;
using core::PlacementStrategy;
using workload::SyntheticModel;
using workload::SyntheticParams;

TEST(Sites, TopologyDefaultsAndAssignment) {
  net::Topology t;
  const auto a = t.add_node("a", mbps(100), mbps(100));
  const auto b = t.add_node("b", mbps(100), mbps(100));
  EXPECT_EQ(t.site(a), 0);
  t.set_site(b, 2);
  EXPECT_EQ(t.site(b), 2);
  EXPECT_FALSE(t.has_intersite_caps());
  t.set_intersite_capacity(0, 2, mbps(10));
  EXPECT_TRUE(t.has_intersite_caps());
  EXPECT_DOUBLE_EQ(t.intersite_capacity(0, 2), mbps(10));
  EXPECT_DOUBLE_EQ(t.intersite_capacity(2, 0), mbps(10));  // order-insensitive
  EXPECT_TRUE(std::isinf(t.intersite_capacity(0, 1)));
  EXPECT_TRUE(std::isinf(t.intersite_capacity(2, 2)));
  EXPECT_THROW(t.set_intersite_capacity(1, 1, mbps(10)), FriedaError);
  EXPECT_THROW(t.set_intersite_capacity(0, 1, 0.0), FriedaError);
}

TEST(Sites, WanCapConstrainsCrossSiteFlows) {
  sim::Simulation sim;
  net::Topology t;
  const auto src = t.add_node("src", mbps(1000), mbps(1000));
  const auto local_dst = t.add_node("local", mbps(1000), mbps(1000));
  const auto remote_dst = t.add_node("remote", mbps(1000), mbps(1000));
  t.set_site(remote_dst, 1);
  t.set_intersite_capacity(0, 1, mbps(80));
  net::Network netw(sim, std::move(t), 0.0);

  double local_s = 0.0, remote_s = 0.0;
  sim.spawn([](net::Network& n, net::NodeId s, net::NodeId d, double& out) -> sim::Task<> {
    out = (co_await n.transfer(s, d, 125 * MB)).duration();
  }(netw, src, local_dst, local_s));
  sim.spawn([](net::Network& n, net::NodeId s, net::NodeId d, double& out) -> sim::Task<> {
    out = (co_await n.transfer(s, d, 125 * MB)).duration();
  }(netw, src, remote_dst, remote_s));
  sim.run();
  // Local flow: shares the 125 MB/s source NIC with the remote flow, which
  // is pinned at 10 MB/s by the WAN; max-min gives the local flow the rest.
  EXPECT_NEAR(remote_s, 12.5, 0.1);   // 125 MB at 10 MB/s
  EXPECT_LT(local_s, remote_s);       // local flow finished first
}

TEST(Sites, WanSharedByBothDirections) {
  sim::Simulation sim;
  net::Topology t;
  const auto a = t.add_node("a", mbps(1000), mbps(1000));
  const auto b = t.add_node("b", mbps(1000), mbps(1000));
  t.set_site(b, 1);
  t.set_intersite_capacity(0, 1, mbps(100));
  net::Network netw(sim, std::move(t), 0.0);
  double ab = 0.0, ba = 0.0;
  sim.spawn([](net::Network& n, net::NodeId s, net::NodeId d, double& out) -> sim::Task<> {
    out = (co_await n.transfer(s, d, 125 * MB)).duration();
  }(netw, a, b, ab));
  sim.spawn([](net::Network& n, net::NodeId s, net::NodeId d, double& out) -> sim::Task<> {
    out = (co_await n.transfer(s, d, 125 * MB)).duration();
  }(netw, b, a, ba));
  sim.run();
  EXPECT_NEAR(ab, 20.0, 0.1);  // both share the 12.5 MB/s circuit
  EXPECT_NEAR(ba, 20.0, 0.1);
}

struct FederatedScenario {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<VirtualCluster> cluster;
  std::unique_ptr<SyntheticModel> app;
  std::vector<core::WorkUnit> units;
  std::vector<cluster::VmId> site_a;
  std::vector<cluster::VmId> site_b;
};

FederatedScenario make_federated() {
  FederatedScenario s;
  s.sim = std::make_unique<sim::Simulation>(17);
  s.cluster = std::make_unique<VirtualCluster>(*s.sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  s.site_a = s.cluster->provision(type, 2, /*site=*/0);
  s.site_b = s.cluster->provision(type, 2, /*site=*/1);
  s.cluster->connect_sites(0, 1, mbps(50));  // constrained WAN

  SyntheticParams params;
  params.file_count = 64;
  params.mean_file_bytes = 8 * MB;
  params.mean_task_seconds = 1.5;
  s.app = std::make_unique<SyntheticModel>(params);
  s.units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                               s.app->catalog());
  return s;
}

core::RunReport run_federated(bool locality_aware, Bytes& wan_bytes) {
  auto s = make_federated();
  core::RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.locality_aware = locality_aware;
  core::FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app,
                      core::CommandTemplate("app $inp1"), opt);
  // Prior campaign outputs: half the inputs already live at site B's VMs.
  std::vector<storage::FileId> at_b0, at_b1;
  for (storage::FileId f = 32; f < 48; ++f) at_b0.push_back(f);
  for (storage::FileId f = 48; f < 64; ++f) at_b1.push_back(f);
  run.pre_place_files(s.site_b[0], at_b0);
  run.pre_place_files(s.site_b[1], at_b1);

  // Count WAN traffic through the observer.
  Bytes wan = 0;
  auto& topo = s.cluster->network().topology();
  s.cluster->network().set_observer(
      [&wan, &topo](net::NodeId src, net::NodeId dst, const net::TransferResult& r) {
        if (topo.site(src) != topo.site(dst)) wan += r.transferred;
      });
  const auto report = run.run();
  wan_bytes = wan;
  return report;
}

TEST(Sites, LocalityAwareDispatchCutsWanTrafficAndMakespan) {
  Bytes wan_blind = 0, wan_aware = 0;
  const auto blind = run_federated(false, wan_blind);
  const auto aware = run_federated(true, wan_aware);
  ASSERT_TRUE(blind.all_completed()) << blind.summary();
  ASSERT_TRUE(aware.all_completed()) << aware.summary();
  // Topology-aware dispatch sends resident units to site-B workers instead
  // of dragging fresh bytes across the 20 Mbps WAN.
  EXPECT_LT(wan_aware, wan_blind / 2);
  EXPECT_LT(aware.makespan(), blind.makespan());
}

TEST(Sites, LocalityAwareIsNoOpWhenNothingIsResident) {
  // Without pre-placed replicas the scan finds nothing local and behaves
  // like plain FIFO dispatch.
  auto run_plain = [&](bool aware) {
    auto s = make_federated();
    core::RunOptions opt;
    opt.strategy = PlacementStrategy::kRealTime;
    opt.locality_aware = aware;
    core::FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app,
                        core::CommandTemplate("app $inp1"), opt);
    return run.run();
  };
  const auto a = run_plain(true);
  const auto b = run_plain(false);
  EXPECT_TRUE(a.all_completed());
  EXPECT_TRUE(b.all_completed());
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
}

}  // namespace
}  // namespace frieda
