// Property-based tests of the max-min fair allocator.
#include "net/fairshare.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace frieda::net {
namespace {

TEST(FairShare, EmptyInputs) {
  EXPECT_TRUE(max_min_fair_rates({}, {}).empty());
  EXPECT_TRUE(max_min_fair_rates({100.0}, {}).empty());
}

TEST(FairShare, SingleFlowGetsFullCapacity) {
  const auto rates = max_min_fair_rates({10.0}, {{{0}}});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
}

TEST(FairShare, EqualSplitOnSharedLink) {
  const auto rates = max_min_fair_rates({12.0}, {{{0}}, {{0}}, {{0}}});
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 4.0);
}

TEST(FairShare, BottleneckedFlowFreesCapacityForOthers) {
  // Flow 0 crosses both links; link 1 is tight.  Flow 1 only crosses link 0
  // and should pick up what flow 0 cannot use.
  const auto rates = max_min_fair_rates({10.0, 2.0}, {{{0, 1}}, {{0}}});
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
}

TEST(FairShare, ClassicThreeFlowExample) {
  // Textbook max-min instance: links A=10, B=10; flows: f0 over A+B,
  // f1 over A, f2 over B.  Fair allocation: f0=5, f1=5, f2=5.
  const auto rates = max_min_fair_rates({10.0, 10.0}, {{{0, 1}}, {{0}}, {{1}}});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
  EXPECT_DOUBLE_EQ(rates[2], 5.0);
}

TEST(FairShare, ZeroCapacityResourceZeroesItsFlows) {
  const auto rates = max_min_fair_rates({0.0, 10.0}, {{{0}}, {{1}}});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 10.0);
}

TEST(FairShare, InvalidFlowThrows) {
  EXPECT_THROW(max_min_fair_rates({1.0}, {{{5}}}), FriedaError);
  EXPECT_THROW(max_min_fair_rates({1.0}, {{{}}}), FriedaError);
}

// Property sweep: random instances must satisfy the max-min invariants.
class FairShareProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairShareProperty, InvariantsHold) {
  Rng rng(GetParam());
  const std::size_t nr = 1 + rng.index(6);
  const std::size_t nf = 1 + rng.index(12);
  std::vector<Bandwidth> caps(nr);
  for (auto& c : caps) c = rng.uniform(1.0, 100.0);
  std::vector<FlowConstraints> flows(nf);
  for (auto& f : flows) {
    const std::size_t k = 1 + rng.index(nr);
    for (std::size_t j = 0; j < k; ++j) {
      f.resources.push_back(rng.index(nr));
    }
  }
  const auto rates = max_min_fair_rates(caps, flows);
  ASSERT_EQ(rates.size(), nf);

  // Invariant 1: feasibility — no resource is oversubscribed.
  std::vector<double> load(nr, 0.0);
  for (std::size_t i = 0; i < nf; ++i) {
    EXPECT_GE(rates[i], 0.0);
    for (std::size_t r : flows[i].resources) load[r] += rates[i];
  }
  for (std::size_t r = 0; r < nr; ++r) EXPECT_LE(load[r], caps[r] * (1.0 + 1e-9));

  // Invariant 2: every flow is bottlenecked — it crosses at least one
  // saturated resource on which it has a maximal rate (the max-min
  // optimality condition).
  for (std::size_t i = 0; i < nf; ++i) {
    bool bottlenecked = false;
    for (std::size_t r : flows[i].resources) {
      const bool saturated = load[r] >= caps[r] * (1.0 - 1e-9);
      if (!saturated) continue;
      bool maximal = true;
      for (std::size_t j = 0; j < nf; ++j) {
        if (j == i) continue;
        const bool shares =
            std::find(flows[j].resources.begin(), flows[j].resources.end(), r) !=
            flows[j].resources.end();
        if (shares && rates[j] > rates[i] * (1.0 + 1e-9)) {
          maximal = false;
          break;
        }
      }
      if (maximal) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << i << " is not max-min bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FairShareProperty,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST(FairShareWeighted, SingleClassMatchesExpandedFlows) {
  // Three identical flows over one 12-unit link, as one class of count 3.
  const auto rates = max_min_fair_rates_weighted({12.0}, {{{0}, 3}});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
}

TEST(FairShareWeighted, CountOnePathIsTheFlatSolver) {
  const auto flat = max_min_fair_rates({10.0, 2.0}, {{{0, 1}}, {{0}}});
  const auto weighted = max_min_fair_rates_weighted({10.0, 2.0}, {{{0, 1}, 1}, {{0}, 1}});
  ASSERT_EQ(weighted.size(), 2u);
  EXPECT_DOUBLE_EQ(weighted[0], flat[0]);
  EXPECT_DOUBLE_EQ(weighted[1], flat[1]);
}

TEST(FairShareWeighted, ZeroCountClassThrows) {
  EXPECT_THROW(max_min_fair_rates_weighted({1.0}, {{{0}, 0}}), FriedaError);
}

// Equivalence property: coalescing identical flows into counted classes must
// give every member flow the same rate the flat per-flow solver computes,
// including orphan flows (only unconstrained resources) and zero-residual
// (zero-capacity) edges, and regardless of how class members interleave.
class WeightedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedEquivalence, CoalescedRatesMatchFlatSolver) {
  Rng rng(GetParam() * 7919 + 3);
  const std::size_t nr = 1 + rng.index(6);
  std::vector<Bandwidth> caps(nr);
  for (auto& c : caps) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.15) {
      c = 0.0;  // zero-residual edge: flows crossing it must get rate 0
    } else if (roll < 0.3) {
      c = std::numeric_limits<Bandwidth>::infinity();  // unconstrained
    } else {
      c = rng.uniform(1.0, 100.0);
    }
  }

  const std::size_t nc = 1 + rng.index(5);
  std::vector<WeightedFlowConstraints> classes(nc);
  std::vector<FlowConstraints> flat;
  std::vector<std::size_t> class_of_flat;
  for (std::size_t c = 0; c < nc; ++c) {
    const std::size_t k = 1 + rng.index(nr);
    for (std::size_t j = 0; j < k; ++j) classes[c].resources.push_back(rng.index(nr));
    classes[c].count = 1 + rng.index(6);
    for (std::uint64_t m = 0; m < classes[c].count; ++m) {
      flat.push_back({classes[c].resources});
      class_of_flat.push_back(c);
    }
  }
  // Interleave class members: the flat solver must not depend on member
  // adjacency for the coalesced result to match.
  for (std::size_t i = flat.size(); i > 1; --i) {
    const std::size_t j = rng.index(i);
    std::swap(flat[i - 1], flat[j]);
    std::swap(class_of_flat[i - 1], class_of_flat[j]);
  }

  const auto flat_rates = max_min_fair_rates(caps, flat);
  const auto class_rates = max_min_fair_rates_weighted(caps, classes);
  ASSERT_EQ(class_rates.size(), nc);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_NEAR(flat_rates[i], class_rates[class_of_flat[i]], 1e-9)
        << "flow " << i << " of class " << class_of_flat[i];
  }

  // Feasibility of the coalesced allocation at full member counts.
  std::vector<double> load(nr, 0.0);
  for (std::size_t c = 0; c < nc; ++c) {
    for (std::size_t r : classes[c].resources) {
      load[r] += class_rates[c] * static_cast<double>(classes[c].count);
    }
  }
  for (std::size_t r = 0; r < nr; ++r) EXPECT_LE(load[r], caps[r] * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, WeightedEquivalence,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace frieda::net
