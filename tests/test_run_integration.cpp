// End-to-end integration tests of the FRIEDA engine: controller -> master ->
// workers over the simulated cluster, across every placement strategy.
#include "frieda/run.hpp"

#include <gtest/gtest.h>

#include <set>

#include "frieda/partition.hpp"
#include "workload/synthetic.hpp"

namespace frieda::core {
namespace {

using cluster::ClusterOptions;
using cluster::VirtualCluster;
using workload::SyntheticModel;
using workload::SyntheticParams;

struct Scenario {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<VirtualCluster> cluster;
  std::unique_ptr<SyntheticModel> app;
  std::vector<WorkUnit> units;
  std::vector<cluster::VmId> vms;
};

Scenario make_scenario(SyntheticParams params, std::size_t vm_count, unsigned cores,
                       double boot_time = 0.0, std::uint64_t seed = 42) {
  Scenario s;
  s.sim = std::make_unique<sim::Simulation>(seed);
  ClusterOptions copts;
  s.cluster = std::make_unique<VirtualCluster>(*s.sim, copts);
  auto type = cluster::c1_xlarge();
  type.cores = cores;
  type.boot_time = boot_time;
  s.vms = s.cluster->provision(type, vm_count);
  s.app = std::make_unique<SyntheticModel>(params);
  s.units = PartitionGenerator::generate(PartitionScheme::kSingleFile, s.app->catalog());
  return s;
}

RunOptions options_for(PlacementStrategy strategy) {
  RunOptions opt;
  opt.strategy = strategy;
  opt.scheme = PartitionScheme::kSingleFile;
  return opt;
}

void assert_exactly_once(const RunReport& report) {
  ASSERT_EQ(report.units.size(), report.units_total);
  std::size_t completed = 0;
  for (const auto& rec : report.units) {
    if (rec.status == UnitStatus::kCompleted) {
      ++completed;
      EXPECT_GE(rec.attempts, 1);
      EXPECT_GT(rec.finished, 0.0);
    }
  }
  EXPECT_EQ(completed, report.units_completed);
}

class StrategyTest : public ::testing::TestWithParam<PlacementStrategy> {};

TEST_P(StrategyTest, AllUnitsCompleteExactlyOnce) {
  SyntheticParams params;
  params.file_count = 40;
  params.mean_file_bytes = 2 * MB;
  params.mean_task_seconds = 1.0;
  auto s = make_scenario(params, 2, 2);
  auto opt = options_for(GetParam());
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  if (GetParam() == PlacementStrategy::kPrePartitionLocal) {
    run.pre_place_partitions(s.vms);
  }
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed()) << report.summary();
  EXPECT_EQ(report.units_failed, 0u);
  EXPECT_EQ(report.units_unprocessed, 0u);
  assert_exactly_once(report);
  EXPECT_GT(report.makespan(), 0.0);
  EXPECT_EQ(report.workers.size(), 4u);
  // Every worker processed something on this homogeneous load.
  for (const auto& w : report.workers) EXPECT_GT(w.units_completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(PlacementStrategy::kNoPartitionCommon,
                                           PlacementStrategy::kPrePartitionLocal,
                                           PlacementStrategy::kPrePartitionRemote,
                                           PlacementStrategy::kRealTime,
                                           PlacementStrategy::kRemoteRead));

TEST(RunIntegration, ComputeLowerBoundRespected) {
  SyntheticParams params;
  params.file_count = 32;
  params.mean_file_bytes = KB;
  params.mean_task_seconds = 2.0;
  auto s = make_scenario(params, 2, 2);  // 4 cores
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                options_for(PlacementStrategy::kRealTime));
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  // 32 units x 2 s on 4 cores >= 16 s of wall time.
  EXPECT_GE(report.makespan(), 16.0);
  EXPECT_LT(report.makespan(), 24.0);  // and not wildly more
}

TEST(RunIntegration, PrePartitionPhasesAreSequential) {
  SyntheticParams params;
  params.file_count = 16;
  params.mean_file_bytes = 25 * MB;  // 400 MB total over 12.5 MB/s = 32 s
  params.mean_task_seconds = 1.0;
  auto s = make_scenario(params, 2, 2);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                options_for(PlacementStrategy::kPrePartitionRemote));
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  EXPECT_NEAR(report.staging_seconds(), 32.0, 2.0);
  // No compute may start before staging ends.
  const auto first_compute = report.timeline.first_start(ActivityKind::kCompute);
  ASSERT_TRUE(first_compute.has_value());
  EXPECT_GE(*first_compute, report.staging_end - 1e-9);
  // Transfer and compute phases must not overlap.
  EXPECT_NEAR(report.overlap(), 0.0, 1e-6);
  // Makespan ~ staging + compute (16 units x 1 s / 4 cores = 4 s).
  EXPECT_NEAR(report.makespan(), 36.0, 2.0);
}

TEST(RunIntegration, RealTimeOverlapsTransferAndCompute) {
  SyntheticParams params;
  params.file_count = 16;
  params.mean_file_bytes = 25 * MB;
  params.mean_task_seconds = 8.0;  // enough compute to overlap
  auto s = make_scenario(params, 2, 2);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                options_for(PlacementStrategy::kRealTime));
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  EXPECT_GT(report.overlap(), 5.0);  // genuine pipelining
  EXPECT_DOUBLE_EQ(report.staging_seconds(), 0.0);
}

TEST(RunIntegration, RealTimeBeatsPrePartitionOnTransferBoundLoad) {
  SyntheticParams params;
  params.file_count = 24;
  params.mean_file_bytes = 20 * MB;
  params.mean_task_seconds = 4.0;
  auto run_with = [&](PlacementStrategy strategy) {
    auto s = make_scenario(params, 2, 2);
    FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                  options_for(strategy));
    return run.run();
  };
  const auto pre = run_with(PlacementStrategy::kPrePartitionRemote);
  const auto rt = run_with(PlacementStrategy::kRealTime);
  EXPECT_TRUE(pre.all_completed());
  EXPECT_TRUE(rt.all_completed());
  EXPECT_LT(rt.makespan(), pre.makespan());
}

TEST(RunIntegration, LocalDataFastestOnTransferBoundLoad) {
  SyntheticParams params;
  params.file_count = 24;
  params.mean_file_bytes = 20 * MB;
  params.mean_task_seconds = 1.0;
  auto run_with = [&](PlacementStrategy strategy) {
    auto s = make_scenario(params, 2, 2);
    FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                  options_for(strategy));
    if (strategy == PlacementStrategy::kPrePartitionLocal) run.pre_place_partitions(s.vms);
    return run.run();
  };
  const auto local = run_with(PlacementStrategy::kPrePartitionLocal);
  const auto rt = run_with(PlacementStrategy::kRealTime);
  const auto pre = run_with(PlacementStrategy::kPrePartitionRemote);
  EXPECT_LT(local.makespan(), rt.makespan());
  EXPECT_LT(rt.makespan(), pre.makespan());
  EXPECT_EQ(local.bytes_moved, 0u);  // nothing crossed the network
}

TEST(RunIntegration, RealTimeLoadBalancesSkewedCosts) {
  SyntheticParams params;
  params.file_count = 64;
  params.mean_file_bytes = KB;
  params.mean_task_seconds = 4.0;
  params.task_cv = 1.2;  // heavy skew
  auto run_with = [&](PlacementStrategy strategy) {
    auto s = make_scenario(params, 2, 2);
    FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                  options_for(strategy));
    return run.run();
  };
  const auto pre = run_with(PlacementStrategy::kPrePartitionRemote);
  const auto rt = run_with(PlacementStrategy::kRealTime);
  EXPECT_TRUE(pre.all_completed());
  EXPECT_TRUE(rt.all_completed());
  // Inherent load balancing (paper Section III.A, real-time partitioning).
  EXPECT_LT(rt.makespan(), pre.makespan());
}

TEST(RunIntegration, MulticoreOffUsesOneWorkerPerVm) {
  SyntheticParams params;
  params.file_count = 8;
  params.mean_file_bytes = KB;
  params.mean_task_seconds = 1.0;
  auto s = make_scenario(params, 2, 4);
  auto opt = options_for(PlacementStrategy::kRealTime);
  opt.multicore = false;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.workers.size(), 2u);  // one per VM despite 4 cores
  // 8 units x 1 s on 2 workers ~ 4 s.
  EXPECT_GE(report.makespan(), 4.0);
}

TEST(RunIntegration, SequentialBaselineOneVmOneWorker) {
  SyntheticParams params;
  params.file_count = 10;
  params.mean_file_bytes = KB;
  params.mean_task_seconds = 3.0;
  auto s = make_scenario(params, 1, 1);
  auto opt = options_for(PlacementStrategy::kPrePartitionLocal);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  run.pre_place_all_inputs(s.vms);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  EXPECT_NEAR(report.makespan(), 30.0, 1.0);  // pure serial compute
}

TEST(RunIntegration, ReportBytesMovedMatchesData) {
  SyntheticParams params;
  params.file_count = 10;
  params.mean_file_bytes = 5 * MB;
  params.mean_task_seconds = 0.5;
  auto s = make_scenario(params, 2, 1);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                options_for(PlacementStrategy::kRealTime));
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  // Every input crosses the network exactly once (units are disjoint).
  EXPECT_EQ(report.bytes_moved, s.app->catalog().total_bytes());
}

TEST(RunIntegration, NoPartitionCommonReplicatesEverything) {
  SyntheticParams params;
  params.file_count = 6;
  params.mean_file_bytes = 4 * MB;
  params.mean_task_seconds = 0.5;
  auto s = make_scenario(params, 3, 1);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                options_for(PlacementStrategy::kNoPartitionCommon));
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  // Full data set to all 3 nodes.
  EXPECT_EQ(report.bytes_moved, 3 * s.app->catalog().total_bytes());
}

TEST(RunIntegration, CommonDataStagedToEveryNode) {
  SyntheticParams params;
  params.file_count = 8;
  params.mean_file_bytes = KB;
  params.mean_task_seconds = 0.5;
  params.common_data_bytes = 50 * MB;  // a BLAST-ish database
  auto s = make_scenario(params, 2, 1);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                options_for(PlacementStrategy::kRealTime));
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  EXPECT_GE(report.bytes_moved, 2 * params.common_data_bytes);
}

TEST(RunIntegration, DeterministicAcrossIdenticalRuns) {
  SyntheticParams params;
  params.file_count = 30;
  params.mean_file_bytes = 3 * MB;
  params.mean_task_seconds = 1.0;
  params.task_cv = 0.7;
  auto run_once = [&] {
    auto s = make_scenario(params, 2, 2, 0.0, 99);
    FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                  options_for(PlacementStrategy::kRealTime));
    return run.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  ASSERT_EQ(a.units.size(), b.units.size());
  for (std::size_t i = 0; i < a.units.size(); ++i) {
    EXPECT_EQ(a.units[i].worker, b.units[i].worker);
    EXPECT_DOUBLE_EQ(a.units[i].finished, b.units[i].finished);
  }
}

TEST(RunIntegration, PrePartitionLocalWithoutSeedingThrows) {
  SyntheticParams params;
  params.file_count = 4;
  auto s = make_scenario(params, 1, 1);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                options_for(PlacementStrategy::kPrePartitionLocal));
  EXPECT_THROW(run.run(), FriedaError);
}

TEST(RunIntegration, BootTimeDelaysReadyNotMakespan) {
  SyntheticParams params;
  params.file_count = 4;
  params.mean_file_bytes = KB;
  params.mean_task_seconds = 1.0;
  auto s = make_scenario(params, 2, 1, /*boot_time=*/25.0);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                options_for(PlacementStrategy::kRealTime));
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  EXPECT_NEAR(report.ready_time, 25.0, 1.0);
  EXPECT_LT(report.makespan(), 10.0);  // boot excluded from app makespan
}

}  // namespace
}  // namespace frieda::core
