// Open-loop service mode tests.
//
// Covers the arrival-process generators (shape, determinism, validation),
// the FriedaRun open-loop path (sojourn percentiles, sustained throughput,
// constraint checking), the queue-depth-reactive elasticity policy, and the
// determinism guarantees the committed ablation_service.csv relies on: the
// same seed + config must produce bit-identical latency percentiles across
// repeated runs and across sweep thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "exp/grid.hpp"
#include "exp/sweep.hpp"
#include "workload/arrivals.hpp"
#include "workload/scenarios.hpp"

namespace frieda::workload {
namespace {

using core::PlacementStrategy;

// ---------------------------------------------------------------------------
// Arrival processes.
// ---------------------------------------------------------------------------

void expect_valid_offsets(const std::vector<SimTime>& t, std::size_t count) {
  ASSERT_EQ(t.size(), count);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], 0.0) << "offset " << i;
    EXPECT_TRUE(std::isfinite(t[i])) << "offset " << i;
    if (i > 0) {
      EXPECT_GE(t[i], t[i - 1]) << "offset " << i << " not ascending";
    }
  }
}

TEST(Arrivals, PoissonShapeAndMeanRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  cfg.rate = 2.0;
  const auto t = generate_arrivals(cfg, 20000);
  expect_valid_offsets(t, 20000);
  // Law of large numbers: the empirical rate over 20k arrivals lands within
  // a few percent of nominal.
  const double empirical = static_cast<double>(t.size()) / t.back();
  EXPECT_NEAR(empirical, cfg.rate, 0.1);
}

TEST(Arrivals, BurstyShapeAndMeanRate) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.rate = 2.0;
  cfg.burst_factor = 4.0;
  cfg.burst_fraction = 0.2;
  const auto t = generate_arrivals(cfg, 20000);
  expect_valid_offsets(t, 20000);
  // The MMPP is rate-balanced: ON/OFF dwells are chosen so the long-run mean
  // equals the nominal rate.  Dwell correlation slows convergence, so the
  // tolerance is looser than the Poisson one.
  const double empirical = static_cast<double>(t.size()) / t.back();
  EXPECT_NEAR(empirical, cfg.rate, 0.4);
}

TEST(Arrivals, BurstyIsBurstierThanPoisson) {
  ArrivalConfig poisson;
  poisson.kind = ArrivalKind::kPoisson;
  poisson.rate = 2.0;
  ArrivalConfig bursty = poisson;
  bursty.kind = ArrivalKind::kBursty;
  bursty.burst_factor = 8.0;
  bursty.burst_fraction = 0.1;
  auto cv2 = [](const std::vector<SimTime>& t) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < t.size(); ++i) gaps.push_back(t[i] - t[i - 1]);
    double mean = 0.0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return var / (mean * mean);
  };
  // Exponential gaps have squared-CV 1; the MMPP mixture is overdispersed.
  EXPECT_GT(cv2(generate_arrivals(bursty, 20000)),
            cv2(generate_arrivals(poisson, 20000)));
}

TEST(Arrivals, DiurnalShape) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.rate = 2.0;
  cfg.period_s = 600.0;
  const auto t = generate_arrivals(cfg, 5000);
  expect_valid_offsets(t, 5000);
}

TEST(Arrivals, DeterministicPerSeed) {
  for (auto kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate = 3.0;
    cfg.seed = 7;
    const auto a = generate_arrivals(cfg, 500);
    const auto b = generate_arrivals(cfg, 500);
    EXPECT_EQ(a, b) << to_string(kind);  // bit-identical, not approximate
    cfg.seed = 8;
    EXPECT_NE(generate_arrivals(cfg, 500), a) << to_string(kind);
  }
}

TEST(Arrivals, KindNamesRoundTrip) {
  for (auto kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    EXPECT_EQ(parse_arrival_kind(to_string(kind)), kind);
  }
  EXPECT_EQ(parse_arrival_kind("weibull"), std::nullopt);
}

TEST(Arrivals, RejectsInvalidConfig) {
  ArrivalConfig cfg;
  cfg.rate = 0.0;
  EXPECT_THROW(generate_arrivals(cfg, 10), FriedaError);
  cfg.rate = -1.0;
  EXPECT_THROW(generate_arrivals(cfg, 10), FriedaError);
  cfg = {};
  cfg.kind = ArrivalKind::kBursty;
  cfg.burst_factor = 0.5;  // must be >= 1
  EXPECT_THROW(generate_arrivals(cfg, 10), FriedaError);
  cfg = {};
  cfg.kind = ArrivalKind::kBursty;
  cfg.burst_fraction = 1.0;  // must be in (0, 1)
  EXPECT_THROW(generate_arrivals(cfg, 10), FriedaError);
  cfg = {};
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.period_s = 0.0;
  EXPECT_THROW(generate_arrivals(cfg, 10), FriedaError);
}

// ---------------------------------------------------------------------------
// Open-loop runs.
// ---------------------------------------------------------------------------

PaperScenarioOptions service_opt(double rate, bool reactive = false) {
  PaperScenarioOptions opt;
  opt.scale = 0.004;  // 30 BLAST queries
  opt.service.open_loop = true;
  opt.service.arrivals.kind = ArrivalKind::kPoisson;
  opt.service.arrivals.rate = rate;
  opt.service.arrivals.seed = 42;
  if (reactive) {
    opt.service.elastic.enabled = true;
    opt.service.elastic.scale_out_depth = 8;
    opt.service.elastic.scale_in_depth = 2;
    opt.service.elastic.check_interval = 2.0;
    opt.service.elastic.hysteresis = 1;
    opt.service.elastic.max_extra_vms = 4;
  }
  return opt;
}

TEST(Service, OpenLoopRunReportsLatencyPercentiles) {
  const auto r = run_blast(PlacementStrategy::kRealTime, service_opt(1.0));
  ASSERT_TRUE(r.all_completed());
  EXPECT_TRUE(r.open_loop);
  EXPECT_EQ(r.latency.count(), r.units_completed);
  // Sojourn >= service time, and the percentile curve is monotone.
  EXPECT_GT(r.latency_p(50.0), 0.0);
  EXPECT_LE(r.latency_p(50.0), r.latency_p(95.0));
  EXPECT_LE(r.latency_p(95.0), r.latency_p(99.0));
  EXPECT_GT(r.sustained_throughput(), 0.0);
  // The run cannot finish before the last unit has even arrived.
  EXPECT_GE(r.end_time, r.serve_start);
  // Per-unit records carry arrivals and finish after them.
  for (const auto& u : r.units) {
    EXPECT_GE(u.finished, u.arrival);
  }
}

TEST(Service, ClosedBatchReportsNoLatency) {
  PaperScenarioOptions opt;
  opt.scale = 0.004;
  const auto r = run_blast(PlacementStrategy::kRealTime, opt);
  ASSERT_TRUE(r.all_completed());
  EXPECT_FALSE(r.open_loop);
  EXPECT_EQ(r.latency.count(), 0u);
  EXPECT_EQ(r.sustained_throughput(), 0.0);
  EXPECT_EQ(r.scale_outs, 0u);
  EXPECT_EQ(r.scale_ins, 0u);
}

TEST(Service, StreamingStrategiesSupportOpenLoop) {
  for (auto strategy : {PlacementStrategy::kRemoteRead, PlacementStrategy::kSharedVolume}) {
    const auto r = run_blast(strategy, service_opt(1.0));
    EXPECT_TRUE(r.all_completed());
    EXPECT_GT(r.latency.count(), 0u);
  }
}

TEST(Service, StagedStrategiesRejectOpenLoop) {
  // Ahead-of-time staging needs the full batch up front; arrivals make no
  // sense there and the run constructor says so instead of mis-measuring.
  for (auto strategy : {PlacementStrategy::kPrePartitionLocal,
                        PlacementStrategy::kPrePartitionRemote,
                        PlacementStrategy::kNoPartitionCommon}) {
    EXPECT_THROW(run_blast(strategy, service_opt(1.0)), FriedaError);
  }
}

TEST(Service, ReactivePolicyScalesOutUnderOverload) {
  // ~1.96 units/s capacity on the fixed fleet; rate 10 swamps it.  A bigger
  // batch than the smoke tests use: the dispatch queue only backs up past
  // the per-worker prefetch buffers once arrivals outrun the whole pipeline.
  auto fopt = service_opt(10.0, false);
  auto ropt = service_opt(10.0, true);
  fopt.scale = ropt.scale = 0.01;  // 75 queries
  const auto fixed = run_blast(PlacementStrategy::kRealTime, fopt);
  const auto reactive = run_blast(PlacementStrategy::kRealTime, ropt);
  ASSERT_TRUE(fixed.all_completed());
  ASSERT_TRUE(reactive.all_completed());
  EXPECT_EQ(fixed.scale_outs, 0u);
  EXPECT_GT(reactive.scale_outs, 0u);
  EXPECT_LE(reactive.scale_ins, reactive.scale_outs);
  // Extra capacity can only help the backlogged tail.
  EXPECT_LE(reactive.latency_p(99.0), fixed.latency_p(99.0));
  EXPECT_LE(reactive.makespan(), fixed.makespan());
}

TEST(Service, ReactivePolicyIdleBelowCapacity) {
  const auto r = run_blast(PlacementStrategy::kRealTime, service_opt(0.5, true));
  ASSERT_TRUE(r.all_completed());
  EXPECT_EQ(r.scale_outs, 0u);
  EXPECT_EQ(r.scale_ins, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: the property the committed ablation CSV depends on.
// ---------------------------------------------------------------------------

TEST(Service, RepeatedRunsAreBitIdentical) {
  const auto a = run_blast(PlacementStrategy::kRealTime, service_opt(3.0, true));
  const auto b = run_blast(PlacementStrategy::kRealTime, service_opt(3.0, true));
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    EXPECT_EQ(a.latency_p(p), b.latency_p(p)) << "p" << p;
  }
  EXPECT_EQ(a.sustained_throughput(), b.sustained_throughput());
  EXPECT_EQ(a.makespan(), b.makespan());
  EXPECT_EQ(a.scale_outs, b.scale_outs);
  EXPECT_EQ(a.scale_ins, b.scale_ins);
  EXPECT_EQ(a.units_csv(), b.units_csv());
}

TEST(Service, SweepThreadCountInvariance) {
  auto jobs = [] {
    exp::Grid grid;
    for (double rate : {1.0, 3.0, 10.0}) {
      grid.add_blast(PlacementStrategy::kRealTime, service_opt(rate, true));
      grid.add_blast(PlacementStrategy::kRemoteRead, service_opt(rate, false));
    }
    return grid.take();
  };
  exp::SweepRunner<> one(exp::SweepOptions{1});
  exp::SweepRunner<> many(exp::SweepOptions{4});
  one.set_cache(nullptr);  // execution-path test: every job must really run
  many.set_cache(nullptr);
  const auto seq = one.run(jobs());
  const auto par = many.run(jobs());
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(seq[i].ok()) << seq[i].error;
    ASSERT_TRUE(par[i].ok()) << par[i].error;
    const auto& a = seq[i].get();
    const auto& b = par[i].get();
    EXPECT_EQ(a.latency_p(50.0), b.latency_p(50.0)) << i;
    EXPECT_EQ(a.latency_p(95.0), b.latency_p(95.0)) << i;
    EXPECT_EQ(a.latency_p(99.0), b.latency_p(99.0)) << i;
    EXPECT_EQ(a.sustained_throughput(), b.sustained_throughput()) << i;
    EXPECT_EQ(a.scale_outs, b.scale_outs) << i;
    EXPECT_EQ(a.units_csv(), b.units_csv()) << i;
  }
}

TEST(Service, OpenLoopChangesTheFingerprint) {
  // The memo cache must never serve a closed-batch report for a service run
  // (or vice versa), and distinct service configs must not collide.
  auto fp = [](const PaperScenarioOptions& opt) {
    StableHasher h;
    hash_options(h, opt);
    return h.digest();
  };
  PaperScenarioOptions closed;
  closed.scale = 0.004;
  const auto open = service_opt(1.0);
  const auto reactive = service_opt(1.0, true);
  auto faster = service_opt(2.0);
  EXPECT_NE(fp(closed), fp(open));
  EXPECT_NE(fp(open), fp(reactive));
  EXPECT_NE(fp(open), fp(faster));
}

}  // namespace
}  // namespace frieda::workload
