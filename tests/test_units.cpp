#include "common/units.hpp"

#include <gtest/gtest.h>

namespace frieda {
namespace {

TEST(Units, ByteConstants) {
  EXPECT_EQ(KB, 1000u);
  EXPECT_EQ(MB, 1000u * 1000u);
  EXPECT_EQ(GB, 1000u * 1000u * 1000u);
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024ull * 1024u * 1024u);
}

TEST(Units, MbpsToBytesPerSecond) {
  // The paper's 100 Mbps provisioned link is 12.5 MB/s.
  EXPECT_DOUBLE_EQ(mbps(100.0), 12.5e6);
  EXPECT_DOUBLE_EQ(mbps(8.0), 1e6);
}

TEST(Units, GbpsAndMBps) {
  EXPECT_DOUBLE_EQ(gbps(1.0), 125e6);
  EXPECT_DOUBLE_EQ(mBps(12.5), 12.5e6);
  EXPECT_DOUBLE_EQ(gbps(1.0), mbps(1000.0));
}

TEST(Units, TransferSeconds) {
  // 8.75 GB over 100 Mbps = 700 s — the ALS staging time from Section IV.
  EXPECT_NEAR(transfer_seconds(8750 * MB, mbps(100)), 700.0, 1e-9);
  EXPECT_DOUBLE_EQ(transfer_seconds(0, mbps(100)), 0.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.5), 5400.0);
}

}  // namespace
}  // namespace frieda
