#include "common/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace frieda {
namespace {

TEST(Config, ParseBasic) {
  const auto cfg = Config::parse("a = 1\nb=two\n # comment\n\nc = 3.5 # trailing\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "two");
  EXPECT_DOUBLE_EQ(cfg.get_double("c", 0.0), 3.5);
}

TEST(Config, Sections) {
  const auto cfg = Config::parse("[frieda]\nstrategy = realtime\n[cluster]\nvms = 4\n");
  EXPECT_EQ(cfg.get_string("frieda.strategy", ""), "realtime");
  EXPECT_EQ(cfg.get_int("cluster.vms", 0), 4);
}

TEST(Config, LaterKeysOverride) {
  const auto cfg = Config::parse("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("this is not key value\n"), FriedaError);
  EXPECT_THROW(Config::parse("= novalue\n"), FriedaError);
  EXPECT_THROW(Config::parse("[unterminated\n"), FriedaError);
}

TEST(Config, TypedGetterErrors) {
  const auto cfg = Config::parse("n = abc\n");
  EXPECT_THROW(cfg.get_int("n", 0), FriedaError);
  EXPECT_THROW(cfg.get_double("n", 0.0), FriedaError);
  EXPECT_THROW(cfg.get_bool("n", false), FriedaError);
}

TEST(Config, Defaults) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, Required) {
  auto cfg = Config::parse("present = 5\n");
  EXPECT_EQ(cfg.require_int("present"), 5);
  EXPECT_THROW(cfg.require_int("absent"), FriedaError);
  EXPECT_THROW(cfg.require_string("absent"), FriedaError);
  EXPECT_THROW(cfg.require_double("absent"), FriedaError);
}

TEST(Config, Bools) {
  const auto cfg = Config::parse("a = true\nb = off\nc = YES\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
}

TEST(Config, Overrides) {
  auto cfg = Config::parse("a = 1\n");
  cfg.apply_overrides({"a=10", "new.key = v"});
  EXPECT_EQ(cfg.get_int("a", 0), 10);
  EXPECT_EQ(cfg.get_string("new.key", ""), "v");
  EXPECT_THROW(cfg.apply_overrides({"noequals"}), FriedaError);
}

TEST(Config, RoundTrip) {
  auto cfg = Config::parse("b = 2\na = 1\n");
  const auto text = cfg.to_string();
  const auto again = Config::parse(text);
  EXPECT_EQ(again.get_int("a", 0), 1);
  EXPECT_EQ(again.get_int("b", 0), 2);
  EXPECT_EQ(again.keys(), cfg.keys());
}

TEST(Config, LoadFileMissingThrows) {
  EXPECT_THROW(Config::load_file("/nonexistent/frieda.conf"), FriedaError);
}

}  // namespace
}  // namespace frieda
