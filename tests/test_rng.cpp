#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace frieda {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanCloseToHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    saw_lo |= (v == -3);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(2, 1), FriedaError);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMatchesRequestedMeanAndCv) {
  Rng rng(23);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.lognormal_mean_cv(8.16, 0.5));
  EXPECT_NEAR(s.mean(), 8.16, 0.1);
  EXPECT_NEAR(s.cv(), 0.5, 0.02);
  // Degenerate CV returns the mean exactly.
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(4.0, 0.0), 4.0);
  EXPECT_THROW(rng.lognormal_mean_cv(-1.0, 0.5), FriedaError);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(29);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(0.25));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  EXPECT_THROW(rng.exponential(0.0), FriedaError);
}

TEST(Rng, LognormalAlwaysPositive) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal_mean_cv(1.0, 2.0), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, IndexAndShuffle) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(10), 10u);
  EXPECT_THROW(rng.index(0), FriedaError);

  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  std::vector<int> sorted = w;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);  // permutation property
}

TEST(Rng, ForkIndependence) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child stream differs from parent's subsequent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace frieda
