// TraceAnalyzer tests: hand-built synthetic traces with known critical
// paths and attribution totals (results asserted exactly), the Chrome JSON
// round-trip, and a real traced fig6a run where the analyzer's invariants
// (path tiles the makespan, attribution sums to worker-seconds) must hold.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "workload/scenarios.hpp"

namespace frieda::obs {
namespace {

TraceEvent span(const char* name, const char* cat, std::uint32_t process,
                std::uint32_t track, double start, double end,
                std::vector<TraceArg> args = {}) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kSpan;
  ev.name = name;
  ev.cat = cat;
  ev.process = process;
  ev.track = track;
  ev.start = start;
  ev.end = end;
  ev.args = std::move(args);
  return ev;
}

/// Two workers under a [0, 10] run anchor:
///   W0: "stage a" [0,2] (staging) then "exec unit 0" [2,7]
///   W1: "remote-read b" [0,3] (transfer) then "exec unit 1" [3,9]
std::vector<TraceEvent> two_worker_trace() {
  return {
      span("run", "run", kRunTrack, 0, 0.0, 10.0),
      span("stage a", "staging", kWorkerTrack, 0, 0.0, 2.0, {{"unit", "0"}}),
      span("exec unit 0", "exec", kWorkerTrack, 0, 2.0, 7.0, {{"unit", "0"}, {"vm", "0"}}),
      span("remote-read b", "staging", kWorkerTrack, 1, 0.0, 3.0, {{"unit", "1"}}),
      span("exec unit 1", "exec", kWorkerTrack, 1, 3.0, 9.0, {{"unit", "1"}, {"vm", "0"}}),
  };
}

TEST(Analysis, SyntheticAttributionIsExact) {
  const auto a = TraceAnalyzer::analyze(two_worker_trace());
  EXPECT_TRUE(a.anchored);
  EXPECT_DOUBLE_EQ(a.makespan(), 10.0);
  ASSERT_EQ(a.workers.size(), 2u);
  EXPECT_DOUBLE_EQ(a.worker_seconds(), 20.0);

  const auto& w0 = a.workers[0].attribution;
  EXPECT_DOUBLE_EQ(w0.staging, 2.0);
  EXPECT_DOUBLE_EQ(w0.compute, 5.0);
  EXPECT_DOUBLE_EQ(w0.transfer, 0.0);
  EXPECT_DOUBLE_EQ(w0.idle, 3.0);

  const auto& w1 = a.workers[1].attribution;
  EXPECT_DOUBLE_EQ(w1.transfer, 3.0);  // remote-read spans are transfer
  EXPECT_DOUBLE_EQ(w1.compute, 6.0);
  EXPECT_DOUBLE_EQ(w1.staging, 0.0);
  EXPECT_DOUBLE_EQ(w1.idle, 1.0);

  EXPECT_DOUBLE_EQ(a.totals.compute, 11.0);
  EXPECT_DOUBLE_EQ(a.totals.transfer, 3.0);
  EXPECT_DOUBLE_EQ(a.totals.staging, 2.0);
  EXPECT_DOUBLE_EQ(a.totals.idle, 4.0);
  EXPECT_DOUBLE_EQ(a.totals.total(), a.worker_seconds());
}

TEST(Analysis, SyntheticCriticalPathIsExact) {
  const auto a = TraceAnalyzer::analyze(two_worker_trace());
  // Backward last-finisher walk: wait [9,10] <- exec unit 1 [3,9] <- its own
  // staging "remote-read b" [0,3] (same-unit preference on the end tie).
  ASSERT_EQ(a.critical_path.size(), 3u);
  EXPECT_EQ(a.critical_path[0].name, "remote-read b");
  EXPECT_DOUBLE_EQ(a.critical_path[0].start, 0.0);
  EXPECT_DOUBLE_EQ(a.critical_path[0].end, 3.0);
  EXPECT_EQ(a.critical_path[1].name, "exec unit 1");
  EXPECT_EQ(a.critical_path[1].unit, 1);
  EXPECT_DOUBLE_EQ(a.critical_path[1].duration(), 6.0);
  EXPECT_TRUE(a.critical_path[2].wait);
  EXPECT_DOUBLE_EQ(a.critical_path[2].duration(), 1.0);
  EXPECT_DOUBLE_EQ(a.critical_path_seconds(), a.makespan());
  EXPECT_DOUBLE_EQ(a.path_seconds("exec"), 6.0);
  EXPECT_DOUBLE_EQ(a.path_seconds("staging"), 3.0);
  EXPECT_DOUBLE_EQ(a.path_seconds("wait"), 1.0);
}

TEST(Analysis, GanttMergesAdjacentSameCategoryIntervals) {
  const auto a = TraceAnalyzer::analyze(two_worker_trace());
  // W0: staging [0,2], compute [2,7], idle [7,10];
  // W1: transfer [0,3], compute [3,9], idle [9,10].
  ASSERT_EQ(a.gantt.size(), 6u);
  EXPECT_EQ(a.gantt[0].worker, 0u);
  EXPECT_EQ(a.gantt[0].category, TimeCategory::kStaging);
  EXPECT_EQ(a.gantt[1].category, TimeCategory::kCompute);
  EXPECT_DOUBLE_EQ(a.gantt[1].start, 2.0);
  EXPECT_DOUBLE_EQ(a.gantt[1].end, 7.0);
  EXPECT_EQ(a.gantt[2].category, TimeCategory::kIdle);
  EXPECT_EQ(a.gantt[3].worker, 1u);
  EXPECT_EQ(a.gantt[3].category, TimeCategory::kTransfer);
  // Every worker's intervals tile the run window.
  double covered = 0.0;
  for (const auto& g : a.gantt) covered += g.end - g.start;
  EXPECT_DOUBLE_EQ(covered, a.worker_seconds());
}

TEST(Analysis, GapsBecomeWaitSegments) {
  const std::vector<TraceEvent> events = {
      span("run", "run", kRunTrack, 0, 0.0, 10.0),
      span("exec unit 0", "exec", kWorkerTrack, 0, 0.0, 4.0, {{"unit", "0"}}),
      span("exec unit 1", "exec", kWorkerTrack, 0, 6.0, 10.0, {{"unit", "1"}}),
  };
  const auto a = TraceAnalyzer::analyze(events);
  ASSERT_EQ(a.critical_path.size(), 3u);
  EXPECT_EQ(a.critical_path[0].name, "exec unit 0");
  EXPECT_TRUE(a.critical_path[1].wait);
  EXPECT_DOUBLE_EQ(a.critical_path[1].start, 4.0);
  EXPECT_DOUBLE_EQ(a.critical_path[1].end, 6.0);
  EXPECT_EQ(a.critical_path[2].name, "exec unit 1");
  EXPECT_DOUBLE_EQ(a.critical_path_seconds(), 10.0);
}

TEST(Analysis, OverlappingChainClipsPredecessor) {
  // B overlaps A's tail; the chain clips A out entirely (nothing *ends*
  // before B starts), leaving a wait for the window before B.
  const std::vector<TraceEvent> events = {
      span("run", "run", kRunTrack, 0, 0.0, 9.0),
      span("exec unit 0", "exec", kWorkerTrack, 0, 0.0, 5.0, {{"unit", "0"}}),
      span("exec unit 1", "exec", kWorkerTrack, 1, 4.0, 9.0, {{"unit", "1"}}),
  };
  const auto a = TraceAnalyzer::analyze(events);
  ASSERT_EQ(a.critical_path.size(), 2u);
  EXPECT_TRUE(a.critical_path[0].wait);
  EXPECT_DOUBLE_EQ(a.critical_path[0].end, 4.0);
  EXPECT_EQ(a.critical_path[1].name, "exec unit 1");
  EXPECT_DOUBLE_EQ(a.critical_path_seconds(), 9.0);
}

TEST(Analysis, OverlapOnOneWorkerResolvesByPriority) {
  // Prefetch pipelining: a remote-read runs *under* an exec span on the same
  // worker; the busier category (compute) wins the overlapped seconds.
  const std::vector<TraceEvent> events = {
      span("run", "run", kRunTrack, 0, 0.0, 10.0),
      span("exec unit 0", "exec", kWorkerTrack, 0, 0.0, 10.0, {{"unit", "0"}}),
      span("remote-read b", "staging", kWorkerTrack, 0, 2.0, 4.0, {{"unit", "1"}}),
  };
  const auto a = TraceAnalyzer::analyze(events);
  ASSERT_EQ(a.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(a.workers[0].attribution.compute, 10.0);
  EXPECT_DOUBLE_EQ(a.workers[0].attribution.transfer, 0.0);
  EXPECT_DOUBLE_EQ(a.workers[0].attribution.idle, 0.0);
}

TEST(Analysis, NodeLevelStagingAttributesToTheVmsWorkers) {
  // stage-common runs on the run track (lane = VM id); both workers that
  // exec on that VM get charged for it.
  const std::vector<TraceEvent> events = {
      span("run", "run", kRunTrack, 0, 0.0, 10.0),
      span("stage-common db", "staging", kRunTrack, 0, 0.0, 4.0),
      span("exec unit 0", "exec", kWorkerTrack, 0, 4.0, 9.0, {{"unit", "0"}, {"vm", "0"}}),
      span("exec unit 1", "exec", kWorkerTrack, 1, 4.0, 8.0, {{"unit", "1"}, {"vm", "0"}}),
  };
  const auto a = TraceAnalyzer::analyze(events);
  ASSERT_EQ(a.workers.size(), 2u);
  EXPECT_DOUBLE_EQ(a.workers[0].attribution.staging, 4.0);
  EXPECT_DOUBLE_EQ(a.workers[1].attribution.staging, 4.0);
  EXPECT_DOUBLE_EQ(a.workers[0].attribution.compute, 5.0);
  EXPECT_DOUBLE_EQ(a.workers[1].attribution.compute, 4.0);
  EXPECT_DOUBLE_EQ(a.totals.total(), a.worker_seconds());
}

TEST(Analysis, UnanchoredTraceFallsBackToEventExtent) {
  const std::vector<TraceEvent> events = {
      span("exec unit 0", "exec", kWorkerTrack, 0, 1.0, 5.0, {{"unit", "0"}}),
  };
  const auto a = TraceAnalyzer::analyze(events);
  EXPECT_FALSE(a.anchored);
  EXPECT_DOUBLE_EQ(a.run_start, 1.0);
  EXPECT_DOUBLE_EQ(a.run_end, 5.0);
  EXPECT_DOUBLE_EQ(a.critical_path_seconds(), 4.0);
}

TEST(Analysis, EmptyTraceYieldsEmptyAnalysis) {
  const auto a = TraceAnalyzer::analyze(std::vector<TraceEvent>{});
  EXPECT_EQ(a.events, 0u);
  EXPECT_TRUE(a.critical_path.empty());
  EXPECT_TRUE(a.workers.empty());
  EXPECT_DOUBLE_EQ(a.makespan(), 0.0);
}

TEST(Analysis, SpansOutsideTheRunWindowAreClipped) {
  // Warm-up staging before the anchor and a straggler after it must not
  // leak into attribution: totals still sum to worker-seconds.
  const std::vector<TraceEvent> events = {
      span("run", "run", kRunTrack, 0, 2.0, 8.0),
      span("stage a", "staging", kWorkerTrack, 0, 0.0, 3.0, {{"unit", "0"}}),
      span("exec unit 0", "exec", kWorkerTrack, 0, 3.0, 9.0, {{"unit", "0"}}),
  };
  const auto a = TraceAnalyzer::analyze(events);
  EXPECT_DOUBLE_EQ(a.makespan(), 6.0);
  ASSERT_EQ(a.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(a.workers[0].attribution.staging, 1.0);  // [2,3]
  EXPECT_DOUBLE_EQ(a.workers[0].attribution.compute, 5.0);  // [3,8]
  EXPECT_DOUBLE_EQ(a.totals.total(), a.worker_seconds());
  EXPECT_NEAR(a.critical_path_seconds(), a.makespan(), 1e-9);
}

// ---------------------------------------------------------------------------
// Chrome JSON round-trip
// ---------------------------------------------------------------------------

TEST(Analysis, ChromeJsonRoundTripPreservesAnalysis) {
  Tracer tracer;
  for (auto& ev : two_worker_trace()) tracer.span(std::move(ev));
  const auto direct = TraceAnalyzer::analyze(tracer);

  const auto events = load_chrome_trace(tracer.chrome_json());
  ASSERT_EQ(events.size(), tracer.event_count());
  const auto loaded = TraceAnalyzer::analyze(events);

  // The export rounds to integer microseconds; everything must agree to
  // that resolution.
  constexpr double kTol = 2e-6;
  EXPECT_TRUE(loaded.anchored);
  EXPECT_NEAR(loaded.makespan(), direct.makespan(), kTol);
  EXPECT_EQ(loaded.workers.size(), direct.workers.size());
  EXPECT_NEAR(loaded.totals.compute, direct.totals.compute, kTol);
  EXPECT_NEAR(loaded.totals.transfer, direct.totals.transfer, kTol);
  EXPECT_NEAR(loaded.totals.staging, direct.totals.staging, kTol);
  EXPECT_NEAR(loaded.totals.idle, direct.totals.idle, kTol);
  ASSERT_EQ(loaded.critical_path.size(), direct.critical_path.size());
  for (std::size_t i = 0; i < loaded.critical_path.size(); ++i) {
    EXPECT_EQ(loaded.critical_path[i].name, direct.critical_path[i].name);
  }
}

TEST(Analysis, LoadChromeTraceRejectsGarbage) {
  EXPECT_THROW(load_chrome_trace("not json"), FriedaError);
  EXPECT_THROW(load_chrome_trace("{\"traceEvents\":42}"), FriedaError);
  EXPECT_THROW(load_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}"), FriedaError);
  EXPECT_THROW(load_chrome_trace("{\"traceEvents\":[]} trailing"), FriedaError);
  // Metadata-only documents are valid (and analyze to nothing).
  const auto events = load_chrome_trace(
      "{\"traceEvents\":[{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1}]}");
  EXPECT_TRUE(events.empty());
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(Analysis, RenderReportAndCsvExports) {
  const auto a = TraceAnalyzer::analyze(two_worker_trace());
  const auto report = render_report(a);
  EXPECT_NE(report.find("compute"), std::string::npos);
  EXPECT_NE(report.find("Critical path"), std::string::npos);
  EXPECT_NE(report.find("remote-read b"), std::string::npos);

  const auto gantt = gantt_csv(a);
  EXPECT_EQ(gantt.substr(0, gantt.find('\n')), "worker,category,start_s,end_s,dur_s");
  std::size_t lines = 0;
  for (const char c : gantt) lines += c == '\n';
  EXPECT_EQ(lines, 1 + a.gantt.size());

  const auto path = critical_path_csv(a);
  EXPECT_NE(path.find("wait"), std::string::npos);
  EXPECT_NE(path.find("exec unit 1"), std::string::npos);
}

TEST(Analysis, TruncatedTraceIsFlaggedInAnalysisAndReport) {
  Tracer tracer;
  tracer.set_max_events(2);
  for (auto& ev : two_worker_trace()) tracer.span(std::move(ev));
  ASSERT_GT(tracer.dropped_events(), 0u);

  const auto direct = TraceAnalyzer::analyze(tracer);
  EXPECT_TRUE(direct.truncated());
  EXPECT_NE(render_report(direct).find("truncated"), std::string::npos);

  // The marker survives the JSON round trip.
  const auto loaded = TraceAnalyzer::analyze(load_chrome_trace(tracer.chrome_json()));
  EXPECT_TRUE(loaded.truncated());
  EXPECT_EQ(loaded.dropped_events, tracer.dropped_events());
}

TEST(Analysis, SolverStatsParseFromTheAnchorSpan) {
  auto events = two_worker_trace();
  events[0].args = {{"net_solves", "40"},
                    {"net_full_solves", "4"},
                    {"net_dirty_classes", "120"}};
  const auto a = TraceAnalyzer::analyze(events);
  ASSERT_TRUE(a.solver_stats);
  EXPECT_EQ(a.net_solves, 40u);
  EXPECT_EQ(a.net_full_solves, 4u);
  EXPECT_EQ(a.net_dirty_classes, 120u);
  EXPECT_DOUBLE_EQ(a.incremental_share(), 0.9);
  EXPECT_DOUBLE_EQ(a.avg_dirty_classes(), 3.0);

  const auto report = render_report(a);
  EXPECT_NE(report.find("Network solver: 40 solves"), std::string::npos);
  EXPECT_NE(report.find("90.0% incremental"), std::string::npos);

  // Traces recorded before the solver args existed analyze fine without them.
  const auto legacy = TraceAnalyzer::analyze(two_worker_trace());
  EXPECT_FALSE(legacy.solver_stats);
  EXPECT_EQ(render_report(legacy).find("Network solver"), std::string::npos);
}

TEST(Analysis, ControlPlaneStatsParseFromTheAnchorSpan) {
  auto events = two_worker_trace();
  events[0].args = {{"cp_instantiations", "200"},
                    {"cp_templated", "150"},
                    {"cp_patches", "2"}};
  const auto a = TraceAnalyzer::analyze(events);
  ASSERT_TRUE(a.control_plane_stats);
  EXPECT_EQ(a.cp_instantiations, 200u);
  EXPECT_EQ(a.cp_templated, 150u);
  EXPECT_EQ(a.cp_patches, 2u);
  EXPECT_DOUBLE_EQ(a.templated_share(), 0.75);

  const auto report = render_report(a);
  EXPECT_NE(report.find("Control plane: 200 instantiations"), std::string::npos);
  EXPECT_NE(report.find("75.0% templated"), std::string::npos);
  EXPECT_NE(report.find("2 patched"), std::string::npos);

  // Traces recorded before templates existed analyze fine without the args.
  const auto legacy = TraceAnalyzer::analyze(two_worker_trace());
  EXPECT_FALSE(legacy.control_plane_stats);
  EXPECT_EQ(render_report(legacy).find("Control plane"), std::string::npos);
}

TEST(Analysis, ServiceLatencyParsesFromTheAnchorSpan) {
  auto events = two_worker_trace();
  events[0].args = {{"latency_p50", "12.5"},
                    {"latency_p95", "30.25"},
                    {"latency_p99", "41"},
                    {"sustained_tput", "1.875"}};
  const auto a = TraceAnalyzer::analyze(events);
  ASSERT_TRUE(a.latency_stats);
  EXPECT_DOUBLE_EQ(a.latency_p50, 12.5);
  EXPECT_DOUBLE_EQ(a.latency_p95, 30.25);
  EXPECT_DOUBLE_EQ(a.latency_p99, 41.0);
  EXPECT_DOUBLE_EQ(a.sustained_tput, 1.875);

  const auto report = render_report(a);
  EXPECT_NE(report.find("Open-loop latency"), std::string::npos);
  EXPECT_NE(report.find("p99 41.000 s"), std::string::npos);

  // Closed-batch traces carry no latency args and render no latency line.
  const auto closed = TraceAnalyzer::analyze(two_worker_trace());
  EXPECT_FALSE(closed.latency_stats);
  EXPECT_EQ(render_report(closed).find("Open-loop latency"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Real traced fig6a run: the acceptance invariants
// ---------------------------------------------------------------------------

TEST(Analysis, TracedFig6aPathTilesMakespanAndAttributionSumsToWorkerSeconds) {
  Tracer tracer;
  workload::PaperScenarioOptions opt;
  opt.scale = 0.02;
  opt.tracer = &tracer;
  const auto report = workload::run_als(core::PlacementStrategy::kRealTime, opt);
  ASSERT_TRUE(report.all_completed());

  const auto a = TraceAnalyzer::analyze(tracer);
  ASSERT_TRUE(a.anchored);
  // The anchor span carries the reported run window verbatim.
  EXPECT_NEAR(a.makespan(), report.makespan(), 1e-9);

  // FriedaRun stamps solver activity on the anchor: a real-time ALS run
  // moves data, so the solver ran and most solves were incremental.
  ASSERT_TRUE(a.solver_stats);
  EXPECT_GT(a.net_solves, 0u);
  EXPECT_GE(a.net_solves, a.net_full_solves);
  EXPECT_GE(a.net_dirty_classes, a.net_solves - a.net_full_solves);

  // Critical path tiles the window.
  EXPECT_NEAR(a.critical_path_seconds(), a.makespan(), 1e-6 * std::max(1.0, a.makespan()));
  std::size_t real_segments = 0;
  for (const auto& seg : a.critical_path) real_segments += !seg.wait;
  EXPECT_GT(real_segments, 0u);

  // Attribution partitions worker-seconds, with real work in every bucket
  // that the strategy exercises (real-time ALS computes and remote-reads).
  EXPECT_GT(a.workers.size(), 0u);
  EXPECT_LE(a.workers.size(), report.workers.size());
  EXPECT_NEAR(a.totals.total(), a.worker_seconds(), 1e-6 * std::max(1.0, a.worker_seconds()));
  EXPECT_GT(a.totals.compute, 0.0);
  const double pct = 100.0 * a.totals.total() / a.worker_seconds();
  EXPECT_NEAR(pct, 100.0, 0.1);
}

}  // namespace
}  // namespace frieda::obs
