// Tests of disk-capacity-aware staging (Section III.A: "local disk space is
// very limited") and multi-stream (striped) transfers.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "net/network.hpp"
#include "workload/synthetic.hpp"

namespace frieda::core {
namespace {

using cluster::VirtualCluster;
using workload::SyntheticModel;
using workload::SyntheticParams;

struct Scenario {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<VirtualCluster> cluster;
  std::unique_ptr<SyntheticModel> app;
  std::vector<WorkUnit> units;
  std::vector<cluster::VmId> vms;
};

Scenario capacity_scenario(Bytes disk_capacity, SyntheticParams params,
                           std::size_t vm_count = 2) {
  Scenario s;
  s.sim = std::make_unique<sim::Simulation>(21);
  s.cluster = std::make_unique<VirtualCluster>(*s.sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  type.disk_capacity = disk_capacity;
  s.vms = s.cluster->provision(type, vm_count);
  s.app = std::make_unique<SyntheticModel>(params);
  s.units = PartitionGenerator::generate(PartitionScheme::kSingleFile, s.app->catalog());
  return s;
}

SyntheticParams chunky_load() {
  SyntheticParams params;
  params.file_count = 40;
  params.mean_file_bytes = 10 * MB;  // 400 MB dataset
  params.mean_task_seconds = 1.0;
  params.output_bytes = 0;
  return params;
}

TEST(Capacity, RealTimeEvictsProcessedInputsAndCompletes) {
  // Disk holds only ~4 inputs, dataset is 40: eviction must cycle the disk.
  auto s = capacity_scenario(40 * MB, chunky_load());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.evict_processed_inputs = true;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed()) << report.summary();
  // The disk never exceeded its budget.
  for (const auto vm : s.vms) {
    EXPECT_LE(s.cluster->vm(vm).disk().used(), s.cluster->vm(vm).disk().capacity());
  }
}

TEST(Capacity, RealTimeWithoutEvictionStallsOnSmallDisk) {
  auto s = capacity_scenario(40 * MB, chunky_load());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.evict_processed_inputs = false;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_FALSE(report.all_completed());
  EXPECT_GT(report.units_failed, 0u);
  EXPECT_EQ(report.units_completed + report.units_failed + report.units_unprocessed,
            report.units_total);
}

TEST(Capacity, PrePartitionRemoteDropsUnstagedShare) {
  // Each node's share is ~200 MB but the disk holds 100 MB: roughly half of
  // each share cannot be staged and is reported unprocessed (paper base
  // semantics — no requeue).
  auto s = capacity_scenario(100 * MB, chunky_load());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kPrePartitionRemote;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_GT(report.units_unprocessed, 0u);
  EXPECT_GT(report.units_completed, 0u);
  EXPECT_EQ(report.units_completed + report.units_failed + report.units_unprocessed,
            report.units_total);
}

TEST(Capacity, NoPartitionCommonIsImpracticalOnSmallDisks) {
  // The paper's point about replicating everything everywhere: it only
  // works when every node can hold the full dataset.
  auto s = capacity_scenario(100 * MB, chunky_load());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kNoPartitionCommon;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_GT(report.units_unprocessed, report.units_total / 4);
}

TEST(Capacity, PrePlaceThrowsWhenDatasetDoesNotFit) {
  auto s = capacity_scenario(100 * MB, chunky_load());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kPrePartitionLocal;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  EXPECT_THROW(run.pre_place_all_inputs(s.vms), FriedaError);
}

TEST(Capacity, OutputsConsumeDiskAndCanFail) {
  auto params = chunky_load();
  params.file_count = 20;
  params.mean_file_bytes = MB;
  params.output_bytes = 12 * MB;  // outputs dominate: 240 MB total
  auto s = capacity_scenario(70 * MB, params);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  // Some units fail because their result no longer fits locally.
  EXPECT_GT(report.units_failed, 0u);
  EXPECT_GT(report.units_completed, 0u);
}

TEST(Capacity, TrackingCanBeDisabled) {
  auto s = capacity_scenario(MB, chunky_load());  // absurdly small disk
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.track_disk_capacity = false;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
}

// ---- striped transfers ----

net::Topology star(std::size_t nodes, Bandwidth nic) {
  net::Topology t;
  for (std::size_t i = 0; i < nodes; ++i) t.add_node("n" + std::to_string(i), nic, nic);
  return t;
}

TEST(Streams, UncontendedStripedTransferMatchesSingle) {
  sim::Simulation sim;
  net::Network netw(sim, star(2, mbps(100)), 0.0);
  net::TransferResult single, striped;
  sim.spawn([](net::Network& n, net::TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 125 * MB, 1);
  }(netw, single));
  sim.run();
  sim::Simulation sim2;
  net::Network netw2(sim2, star(2, mbps(100)), 0.0);
  sim2.spawn([](net::Network& n, net::TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 125 * MB, 4);
  }(netw2, striped));
  sim2.run();
  // Alone on the link, striping cannot beat the NIC: same 10 s.
  EXPECT_NEAR(single.duration(), 10.0, 1e-6);
  EXPECT_NEAR(striped.duration(), 10.0, 1e-6);
  EXPECT_EQ(striped.transferred, 125 * MB);
}

TEST(Streams, StripedTransferWinsShareUnderContention) {
  // A 4-stream transfer and a 1-stream competitor into the same destination
  // NIC: fair share per *flow* gives the striped transfer 4/5 of the link.
  sim::Simulation sim;
  net::Topology t = star(3, mbps(1000));
  t.set_nic(2, mbps(1000), mbps(100));  // shared destination
  net::Network netw(sim, std::move(t), 0.0);
  net::TransferResult striped, competitor;
  sim.spawn([](net::Network& n, net::TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 2, 100 * MB, 4);
  }(netw, striped));
  sim.spawn([](net::Network& n, net::TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(1, 2, 100 * MB, 1);
  }(netw, competitor));
  sim.run();
  EXPECT_TRUE(striped.ok());
  EXPECT_TRUE(competitor.ok());
  EXPECT_LT(striped.duration(), competitor.duration());
  // Striped: 100 MB at 4/5 x 12.5 MB/s = 10 MB/s => 10 s.
  EXPECT_NEAR(striped.duration(), 10.0, 0.2);
}

TEST(Streams, SetupLatencyPaidPerStream) {
  sim::Simulation sim;
  net::Network netw(sim, star(2, mbps(100)), /*latency=*/0.5);
  net::TransferResult result;
  sim.spawn([](net::Network& n, net::TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 125 * MB, 4);
  }(netw, result));
  sim.run();
  EXPECT_NEAR(result.duration(), 12.0, 1e-6);  // 4 x 0.5 s setup + 10 s data
}

TEST(Streams, StreamsNeverExceedBytes) {
  sim::Simulation sim;
  net::Network netw(sim, star(2, mbps(100)), 0.0);
  net::TransferResult result;
  sim.spawn([](net::Network& n, net::TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 3, 8);  // 3 bytes cannot fill 8 streams
  }(netw, result));
  sim.run();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.transferred, 3u);
  EXPECT_THROW(
      [&] {
        sim::Simulation s2;
        net::Network n2(s2, star(2, mbps(100)), 0.0);
        s2.spawn([](net::Network& n, net::TransferResult&) -> sim::Task<> {
          (void)co_await n.transfer(0, 1, MB, 0);
        }(n2, result));
        s2.run();
      }(),
      FriedaError);
}

TEST(Streams, FailNodeAbortsAllStreams) {
  sim::Simulation sim;
  net::Network netw(sim, star(2, mbps(100)), 0.0);
  net::TransferResult result;
  sim.spawn([](net::Network& n, net::TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 1250 * MB, 4);
  }(netw, result));
  sim.schedule_at(20.0, [&] { netw.fail_node(1); });
  sim.run();
  EXPECT_EQ(result.status, net::TransferStatus::kFailed);
  EXPECT_NEAR(result.finished, 20.0, 1e-6);
  // 20 s at 12.5 MB/s aggregate = 250 MB moved before the abort.
  EXPECT_NEAR(static_cast<double>(result.transferred), 250e6, 1e4);
}

TEST(Streams, EndToEndRunWithStriping) {
  auto s = capacity_scenario(GiB, chunky_load());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.transfer_streams = 4;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.bytes_moved, s.app->catalog().total_bytes());
}

}  // namespace
}  // namespace frieda::core
