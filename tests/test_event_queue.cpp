#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace frieda::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.push(5.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.push(4.25, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.25);
  auto [t, fn] = q.pop();
  EXPECT_DOUBLE_EQ(t, 4.25);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  auto h = q.push(1.0, [&] { ++fired; });
  q.push(2.0, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  q.cancel(h);
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  q.cancel(h);
  q.cancel(h);  // no-op
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventQueue::Handle> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(q.push(1.0 * i, [] {}));
  for (auto& h : handles) q.cancel(h);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto a = q.push(1.0, [] {});
  auto b = q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  (void)b;
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), FriedaError);
  EXPECT_THROW(q.next_time(), FriedaError);
}

TEST(EventQueue, HandleOutlivesFiredEvent) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  q.pop().second();
  EXPECT_FALSE(h.pending());
  q.cancel(h);  // safe after fire
}

TEST(EventQueue, ConstQueriesWork) {
  EventQueue q;
  auto a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(a);  // leaves a tombstone at the heap top
  const EventQueue& cq = q;
  EXPECT_FALSE(cq.empty());
  EXPECT_DOUBLE_EQ(cq.next_time(), 2.0);
  EXPECT_EQ(cq.size(), 1u);
}

TEST(EventQueue, StaleHandleStaysDeadAfterSlotReuse) {
  // Cancelling frees the pooled slot; a later push recycles it with a new
  // generation, so the old handle must not resurrect.
  EventQueue q;
  auto old = q.push(1.0, [] {});
  q.cancel(old);
  auto fresh = q.push(3.0, [] {});  // reuses the freed slot
  EXPECT_FALSE(old.pending());
  EXPECT_TRUE(fresh.pending());
  q.cancel(old);  // must not cancel the recycled event
  EXPECT_TRUE(fresh.pending());
  EXPECT_EQ(q.size(), 1u);
  auto [t, fn] = q.pop();
  EXPECT_DOUBLE_EQ(t, 3.0);
  EXPECT_FALSE(fresh.pending());
}

TEST(EventQueue, SlabChurnKeepsDeterministicOrder) {
  // Heavy push/cancel/pop churn (the network's cancel-and-reschedule
  // pattern): ordering must remain (time, push sequence) FIFO throughout.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventQueue::Handle> cancelled;
  for (int round = 0; round < 50; ++round) {
    cancelled.push_back(q.push(1000.0, [] { FAIL() << "cancelled event fired"; }));
    q.push(static_cast<double>(round % 7), [&order, round] { order.push_back(round); });
    q.cancel(cancelled.back());
  }
  std::vector<int> expected;
  for (int round = 0; round < 50; ++round) expected.push_back(round);
  std::stable_sort(expected.begin(), expected.end(),
                   [](int a, int b) { return a % 7 < b % 7; });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, expected);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace frieda::sim
