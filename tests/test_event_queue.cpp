#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace frieda::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.push(5.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.push(4.25, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.25);
  auto [t, fn] = q.pop();
  EXPECT_DOUBLE_EQ(t, 4.25);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  auto h = q.push(1.0, [&] { ++fired; });
  q.push(2.0, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  q.cancel(h);
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  q.cancel(h);
  q.cancel(h);  // no-op
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventQueue::Handle> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(q.push(1.0 * i, [] {}));
  for (auto& h : handles) q.cancel(h);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto a = q.push(1.0, [] {});
  auto b = q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  (void)b;
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), FriedaError);
  EXPECT_THROW(q.next_time(), FriedaError);
}

TEST(EventQueue, HandleOutlivesFiredEvent) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  q.pop().second();
  EXPECT_FALSE(h.pending());
  q.cancel(h);  // safe after fire
}

}  // namespace
}  // namespace frieda::sim
