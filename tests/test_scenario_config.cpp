// Tests of the declarative scenario runner.
#include "workload/scenario_config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace frieda::workload {
namespace {

TEST(ScenarioConfig, MinimalSyntheticRun) {
  const auto report = run_scenario_text(R"(
    [cluster]
    vms = 2
    cores = 2
    [workload]
    kind = synthetic
    files = 20
    file_mb = 1
    task_s = 1
    [run]
    strategy = real-time
  )");
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.units_total, 20u);
  EXPECT_EQ(report.workers.size(), 4u);
  EXPECT_EQ(report.strategy, "real-time");
}

TEST(ScenarioConfig, DefaultsGiveFullRun) {
  const auto report = run_scenario_text("[workload]\nfiles = 8\ntask_s = 0.5\n");
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.workers.size(), 16u);  // 4 VMs x 4 cores defaults
}

TEST(ScenarioConfig, StrategyAndSchemeSelection) {
  const auto report = run_scenario_text(R"(
    [cluster]
    vms = 2
    cores = 1
    [workload]
    files = 12
    file_mb = 1
    task_s = 0.2
    [run]
    strategy = pre-partition-local
    scheme = pairwise-adjacent
  )");
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.units_total, 6u);
  EXPECT_EQ(report.scheme, "pairwise-adjacent");
  EXPECT_EQ(report.bytes_moved, 0u);  // local data, nothing crossed the wire
}

TEST(ScenarioConfig, AlsAndBlastKinds) {
  const auto als = run_scenario_text(R"(
    [workload]
    kind = als
    scale = 0.02
  )");
  EXPECT_TRUE(als.all_completed());
  EXPECT_EQ(als.app, "als-image-compare");
  EXPECT_EQ(als.scheme, "pairwise-adjacent");  // workload-appropriate default

  const auto blast = run_scenario_text(R"(
    [workload]
    kind = blast
    scale = 0.01
  )");
  EXPECT_TRUE(blast.all_completed());
  EXPECT_EQ(blast.app, "blast");
  EXPECT_EQ(blast.units_total, 75u);
}

TEST(ScenarioConfig, FailureEventsApply) {
  const auto report = run_scenario_text(R"(
    [cluster]
    vms = 2
    cores = 2
    [workload]
    files = 40
    file_mb = 1
    task_s = 2
    [run]
    strategy = real-time
    requeue = true
    [events]
    fail = 1@5
  )");
  EXPECT_TRUE(report.all_completed());  // requeue recovers the lost units
  EXPECT_EQ(report.workers_isolated, 2u);
}

TEST(ScenarioConfig, ElasticAndMasterCrashEvents) {
  const auto report = run_scenario_text(R"(
    [cluster]
    vms = 1
    cores = 2
    [workload]
    files = 40
    file_mb = 1
    task_s = 2
    [run]
    strategy = real-time
    [events]
    add_vms_at = 10
    add_vms = 1
    master_crash_at = 15
    master_recovery_s = 5
  )");
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.workers.size(), 4u);  // 2 original + 2 elastic
}

TEST(ScenarioConfig, BadValuesThrow) {
  EXPECT_THROW(run_scenario_text("[workload]\nkind = hadoop\n"), FriedaError);
  EXPECT_THROW(run_scenario_text("[run]\nstrategy = teleport\n"), FriedaError);
  EXPECT_THROW(run_scenario_text("[run]\nscheme = zigzag\n"), FriedaError);
  EXPECT_THROW(run_scenario_text("[events]\nfail = banana\n"), FriedaError);
  EXPECT_THROW(run_scenario_text("[events]\nfail = 99@10\n"), FriedaError);
}

TEST(ScenarioConfig, SharedVolumeStrategyProvisionsStorage) {
  const auto report = run_scenario_text(R"(
    [cluster]
    vms = 2
    cores = 1
    [workload]
    files = 10
    file_mb = 2
    task_s = 0.5
    [run]
    strategy = shared-volume
  )");
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.strategy, "shared-volume");
}

TEST(ScenarioConfig, StreamsAndLocalityKnobs) {
  const auto report = run_scenario_text(R"(
    [cluster]
    vms = 2
    cores = 1
    [workload]
    files = 10
    file_mb = 4
    task_s = 0.5
    [run]
    strategy = real-time
    streams = 4
    locality_aware = true
  )");
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.bytes_moved, 10u * 4 * 1000 * 1000);
}

TEST(ScenarioConfig, ServiceModeRunsOpenLoop) {
  const auto report = run_scenario_text(R"(
    [cluster]
    vms = 2
    cores = 2
    [workload]
    files = 30
    file_mb = 1
    task_s = 1
    [run]
    strategy = real-time
    [service]
    arrivals = poisson
    arrival_rate = 5
    arrival_seed = 9
    elastic_policy = reactive
    scale_out_depth = 6
    scale_in_depth = 1
    check_interval_s = 1
    hysteresis = 1
  )");
  EXPECT_TRUE(report.all_completed());
  EXPECT_TRUE(report.open_loop);
  EXPECT_EQ(report.latency.count(), report.units_completed);
  EXPECT_GT(report.latency_p(95.0), 0.0);
  EXPECT_GT(report.sustained_throughput(), 0.0);
}

TEST(ScenarioConfig, ServiceModeBadValuesThrow) {
  EXPECT_THROW(run_scenario_text("[service]\narrivals = weibull\n"), FriedaError);
  EXPECT_THROW(run_scenario_text("[service]\nelastic_policy = psychic\n"), FriedaError);
  EXPECT_THROW(run_scenario_text(R"(
    [service]
    arrivals = poisson
    arrival_rate = -2
  )"),
               FriedaError);
  // Reactive elasticity is meaningless without arrivals; the config says so.
  EXPECT_THROW(run_scenario_text("[service]\nelastic_policy = reactive\n"), FriedaError);
}

}  // namespace
}  // namespace frieda::workload
