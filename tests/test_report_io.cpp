// Wire-codec tests for frieda/report_io.hpp: exact double round-trips via
// bit patterns, escape-aware field splitting, RunReport serialize ->
// deserialize field-by-field identity across every placement strategy
// (including an open-loop service run with latency samples), RtReport
// round-trips, and strict rejection of truncated or malformed text — the
// property the process sweep backend's crash isolation rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "frieda/report.hpp"
#include "frieda/report_io.hpp"
#include "runtime/rt_engine.hpp"
#include "workload/scenarios.hpp"

namespace frieda::core {
namespace {

using workload::PaperScenarioOptions;

// ---------------------------------------------------------------------------
// f64 bit-pattern encoding.
// ---------------------------------------------------------------------------

TEST(F64Bits, RoundTripsExactValuesIncludingEdgeCases) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          0.1,  // not representable exactly — the bit pattern is
                          1e300,
                          -1e-300,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  for (const double v : cases) {
    const std::string hex = f64_bits(v);
    ASSERT_EQ(hex.size(), 16u) << v;
    const auto back = parse_f64_bits(hex);
    ASSERT_TRUE(back.has_value()) << hex;
    // Bit-level identity, not ==: distinguishes -0.0 from 0.0.
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, &v, sizeof(a));
    std::memcpy(&b, &*back, sizeof(b));
    EXPECT_EQ(a, b) << hex;
  }
}

TEST(F64Bits, NanSurvivesTheTrip) {
  const auto back = parse_f64_bits(f64_bits(std::numeric_limits<double>::quiet_NaN()));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::isnan(*back));
}

TEST(F64Bits, ParseRejectsWrongLengthAndNonHex) {
  EXPECT_FALSE(parse_f64_bits("").has_value());
  EXPECT_FALSE(parse_f64_bits("0").has_value());
  EXPECT_FALSE(parse_f64_bits("00000000000000000").has_value());  // 17 digits
  EXPECT_FALSE(parse_f64_bits("000000000000000g").has_value());
  EXPECT_FALSE(parse_f64_bits("3.14159265358979").has_value());
}

// ---------------------------------------------------------------------------
// Escape-aware field splitting (shared with ExecutionHistory).
// ---------------------------------------------------------------------------

TEST(EscapedFields, RoundTripsDelimitersBackslashesAndNewlines) {
  const std::vector<std::string> fields = {"plain", "with|pipe", "back\\slash",
                                           "multi\nline", ""};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line += '|';
    line += escape_field(fields[i]);
  }
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto split = split_escaped(line);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(*split, fields);
}

TEST(EscapedFields, RejectsTruncatedEscape) {
  EXPECT_FALSE(split_escaped("oops\\").has_value());
  EXPECT_FALSE(split_escaped("bad\\q").has_value());
}

// ---------------------------------------------------------------------------
// RunReport round-trip: field-by-field identity on real scenario output.
// ---------------------------------------------------------------------------

void expect_round_trip_identical(const RunReport& r) {
  const std::string wire = serialize_run_report(r);
  const RunReport back = deserialize_run_report(wire);

  EXPECT_EQ(back.app, r.app);
  EXPECT_EQ(back.strategy, r.strategy);
  EXPECT_EQ(back.scheme, r.scheme);
  EXPECT_EQ(back.ready_time, r.ready_time);
  EXPECT_EQ(back.start_time, r.start_time);
  EXPECT_EQ(back.staging_end, r.staging_end);
  EXPECT_EQ(back.end_time, r.end_time);
  EXPECT_EQ(back.units_total, r.units_total);
  EXPECT_EQ(back.units_completed, r.units_completed);
  EXPECT_EQ(back.units_failed, r.units_failed);
  EXPECT_EQ(back.units_unprocessed, r.units_unprocessed);
  EXPECT_EQ(back.bytes_moved, r.bytes_moved);
  EXPECT_EQ(back.transfers, r.transfers);
  EXPECT_EQ(back.workers_isolated, r.workers_isolated);
  EXPECT_EQ(back.open_loop, r.open_loop);
  EXPECT_EQ(back.serve_start, r.serve_start);
  EXPECT_EQ(back.scale_outs, r.scale_outs);
  EXPECT_EQ(back.scale_ins, r.scale_ins);

  ASSERT_EQ(back.latency.count(), r.latency.count());
  if (r.latency.count() > 0) {
    EXPECT_EQ(back.latency.percentile(50.0), r.latency.percentile(50.0));
    EXPECT_EQ(back.latency.percentile(99.0), r.latency.percentile(99.0));
  }

  ASSERT_EQ(back.units.size(), r.units.size());
  for (std::size_t i = 0; i < r.units.size(); ++i) {
    EXPECT_EQ(back.units[i].unit, r.units[i].unit);
    EXPECT_EQ(back.units[i].status, r.units[i].status);
    EXPECT_EQ(back.units[i].worker, r.units[i].worker);
    EXPECT_EQ(back.units[i].attempts, r.units[i].attempts);
    EXPECT_EQ(back.units[i].arrival, r.units[i].arrival);
    EXPECT_EQ(back.units[i].dispatched, r.units[i].dispatched);
    EXPECT_EQ(back.units[i].finished, r.units[i].finished);
    EXPECT_EQ(back.units[i].transfer_seconds, r.units[i].transfer_seconds);
    EXPECT_EQ(back.units[i].exec_seconds, r.units[i].exec_seconds);
  }
  ASSERT_EQ(back.workers.size(), r.workers.size());
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    EXPECT_EQ(back.workers[i].worker, r.workers[i].worker);
    EXPECT_EQ(back.workers[i].vm, r.workers[i].vm);
    EXPECT_EQ(back.workers[i].slot, r.workers[i].slot);
    EXPECT_EQ(back.workers[i].units_completed, r.workers[i].units_completed);
    EXPECT_EQ(back.workers[i].busy_seconds, r.workers[i].busy_seconds);
    EXPECT_EQ(back.workers[i].isolated, r.workers[i].isolated);
    EXPECT_EQ(back.workers[i].drained, r.workers[i].drained);
  }

  // Derived quantities depend on the timeline intervals; equality here means
  // every interval survived bit-exactly.
  EXPECT_EQ(back.transfer_busy(), r.transfer_busy());
  EXPECT_EQ(back.compute_busy(), r.compute_busy());
  EXPECT_EQ(back.overlap(), r.overlap());

  // The CSV renderings the committed artifacts are built from.
  EXPECT_EQ(back.units_csv(), r.units_csv());
  EXPECT_EQ(back.workers_csv(), r.workers_csv());
  EXPECT_EQ(back.summary(), r.summary());

  // Serializing the deserialized report reproduces the wire text itself.
  EXPECT_EQ(serialize_run_report(back), wire);
}

TEST(RunReportIo, RoundTripsEveryStrategyFieldIdentically) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  const PlacementStrategy strategies[] = {
      PlacementStrategy::kNoPartitionCommon, PlacementStrategy::kPrePartitionLocal,
      PlacementStrategy::kPrePartitionRemote, PlacementStrategy::kRealTime,
      PlacementStrategy::kRemoteRead,         PlacementStrategy::kSharedVolume};
  for (const auto strategy : strategies) {
    SCOPED_TRACE(to_string(strategy));
    expect_round_trip_identical(workload::run_als(strategy, opt));
    expect_round_trip_identical(workload::run_blast(strategy, opt));
  }
}

TEST(RunReportIo, RoundTripsOpenLoopServiceRunWithLatencySamples) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  opt.service.open_loop = true;
  opt.service.arrivals.kind = workload::ArrivalKind::kPoisson;
  opt.service.arrivals.rate = 2.0;
  opt.service.arrivals.seed = 42;
  opt.service.elastic.enabled = true;
  opt.service.elastic.scale_out_depth = 8;
  opt.service.elastic.scale_in_depth = 2;
  opt.service.elastic.check_interval = 2.0;
  opt.service.elastic.hysteresis = 1;
  const RunReport r = workload::run_blast(PlacementStrategy::kRealTime, opt);
  ASSERT_TRUE(r.open_loop);
  ASSERT_GT(r.latency.count(), 0u);
  expect_round_trip_identical(r);
}

TEST(RunReportIo, DeserializeRejectsMalformedText) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  const std::string wire =
      serialize_run_report(workload::run_als(PlacementStrategy::kRealTime, opt));

  EXPECT_THROW(deserialize_run_report(""), FriedaError);
  EXPECT_THROW(deserialize_run_report("not-a-report v1\n"), FriedaError);
  // Wrong version in an otherwise plausible header.
  EXPECT_THROW(deserialize_run_report("frieda-run-report v9\nend\n"), FriedaError);
  // Truncations at a few depths: drop the end marker, half the body, almost
  // everything.  Every cut must throw, never return a partial report.
  EXPECT_THROW(deserialize_run_report(wire.substr(0, wire.size() - 4)), FriedaError);
  EXPECT_THROW(deserialize_run_report(wire.substr(0, wire.size() / 2)), FriedaError);
  EXPECT_THROW(deserialize_run_report(wire.substr(0, 40)), FriedaError);
  // A corrupted numeric field.
  std::string corrupt = wire;
  const auto pos = corrupt.find("units|");
  ASSERT_NE(pos, std::string::npos);
  corrupt.replace(pos, 6, "units|x");
  EXPECT_THROW(deserialize_run_report(corrupt), FriedaError);
}

// ---------------------------------------------------------------------------
// RtReport round-trip (synthetic: the codec is field transport, the engine
// itself is covered by test_runtime).
// ---------------------------------------------------------------------------

TEST(RtReportIo, RoundTripsFieldIdentically) {
  rt::RtReport r;
  r.makespan = 12.75;
  r.staging_seconds = 0.375;
  r.units_completed = 3;
  r.units_failed = 1;
  r.bytes_staged = 123456789ull;
  r.units = {{0, 1, true, 0.5, 1.25}, {1, 0, true, 0.0, 2.5}, {2, 1, false, 0.25, 0.0}};
  r.per_worker_completed = {2, 1};

  const std::string wire = serialize_rt_report(r);
  const rt::RtReport back = deserialize_rt_report(wire);
  EXPECT_EQ(back.makespan, r.makespan);
  EXPECT_EQ(back.staging_seconds, r.staging_seconds);
  EXPECT_EQ(back.units_completed, r.units_completed);
  EXPECT_EQ(back.units_failed, r.units_failed);
  EXPECT_EQ(back.bytes_staged, r.bytes_staged);
  ASSERT_EQ(back.units.size(), r.units.size());
  for (std::size_t i = 0; i < r.units.size(); ++i) {
    EXPECT_EQ(back.units[i].unit, r.units[i].unit);
    EXPECT_EQ(back.units[i].worker, r.units[i].worker);
    EXPECT_EQ(back.units[i].ok, r.units[i].ok);
    EXPECT_EQ(back.units[i].transfer_seconds, r.units[i].transfer_seconds);
    EXPECT_EQ(back.units[i].exec_seconds, r.units[i].exec_seconds);
  }
  EXPECT_EQ(back.per_worker_completed, r.per_worker_completed);
  EXPECT_EQ(serialize_rt_report(back), wire);
}

TEST(RtReportIo, DeserializeRejectsTruncationAndWrongHeader) {
  rt::RtReport r;
  r.makespan = 1.0;
  const std::string wire = serialize_rt_report(r);
  EXPECT_THROW(deserialize_rt_report(""), FriedaError);
  EXPECT_THROW(deserialize_rt_report("frieda-run-report v1\nend\n"), FriedaError);
  EXPECT_THROW(deserialize_rt_report(wire.substr(0, wire.size() - 4)), FriedaError);
  EXPECT_THROW(deserialize_rt_report(wire.substr(0, wire.size() / 2)), FriedaError);
}

}  // namespace
}  // namespace frieda::core
