// Workflow driver tests (paper Section VI: a higher-level engine chaining
// FRIEDA stages).
#include "frieda/workflow.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace frieda::core {
namespace {

storage::FileCatalog make_inputs(std::size_t n, Bytes size) {
  storage::FileCatalog cat;
  for (std::size_t i = 0; i < n; ++i) {
    cat.add_file("raw_" + std::to_string(i) + ".dat", size);
  }
  return cat;
}

std::unique_ptr<cluster::VirtualCluster> make_cluster(sim::Simulation& sim,
                                                      std::size_t vms = 2) {
  auto cluster = std::make_unique<cluster::VirtualCluster>(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  cluster->provision(type, vms);
  return cluster;
}

WorkflowStage preprocess_stage() {
  WorkflowStage stage;
  stage.name = "preprocess";
  stage.scheme = PartitionScheme::kSingleFile;
  stage.command = "denoise $inp1";
  stage.options.strategy = PlacementStrategy::kRealTime;
  stage.task_seconds = [](const WorkUnit&, const storage::FileCatalog&) { return 1.0; };
  stage.output_bytes = [](const WorkUnit& u, const storage::FileCatalog& cat) {
    return u.input_bytes(cat) / 2;  // denoised images are half the size
  };
  return stage;
}

WorkflowStage compare_stage() {
  WorkflowStage stage;
  stage.name = "compare";
  stage.scheme = PartitionScheme::kPairwiseAdjacent;
  stage.command = "compare $inp1 $inp2";
  stage.options.strategy = PlacementStrategy::kRealTime;
  stage.options.locality_aware = true;  // run where stage 1 left the data
  stage.task_seconds = [](const WorkUnit& u, const storage::FileCatalog& cat) {
    return static_cast<double>(u.input_bytes(cat)) / 1e7;
  };
  stage.output_bytes = [](const WorkUnit&, const storage::FileCatalog&) {
    return Bytes{10 * KB};
  };
  return stage;
}

TEST(Workflow, TwoStagePipelineCompletes) {
  sim::Simulation sim(61);
  auto cluster = make_cluster(sim);
  Workflow wf(*cluster);
  wf.add_stage(preprocess_stage());
  wf.add_stage(compare_stage());
  EXPECT_EQ(wf.stage_count(), 2u);

  const auto inputs = make_inputs(16, 4 * MB);
  const auto result = wf.execute(inputs);

  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_TRUE(result.all_completed());
  EXPECT_EQ(result.stages[0].units_total, 16u);
  EXPECT_EQ(result.stages[1].units_total, 8u);  // pairwise over 16 outputs
  EXPECT_EQ(result.final_outputs.count(), 8u);
  EXPECT_EQ(result.final_outputs.info(0).size, 10 * KB);
  EXPECT_GT(result.total_makespan, 0.0);
  EXPECT_NEAR(result.total_makespan,
              result.stages[0].makespan() + result.stages[1].makespan(), 1e-9);
}

TEST(Workflow, IntermediateDataStaysOnWorkers) {
  // Stage 2 pulls its inputs from VM disks, not the source: the source node
  // sends the raw inputs exactly once (stage 1).
  sim::Simulation sim(62);
  auto cluster = make_cluster(sim);
  Workflow wf(*cluster);
  wf.add_stage(preprocess_stage());
  wf.add_stage(compare_stage());

  const auto inputs = make_inputs(16, 4 * MB);
  const auto result = wf.execute(inputs);
  ASSERT_TRUE(result.all_completed());

  const auto source_sent =
      cluster->network().traffic(cluster->source_node()).bytes_sent;
  EXPECT_EQ(source_sent, inputs.total_bytes());  // stage 2 never touched it
}

TEST(Workflow, LocalityAwareSecondStageMovesLessData) {
  auto run_wf = [&](bool locality) {
    sim::Simulation sim(63);
    auto cluster = make_cluster(sim);
    Workflow wf(*cluster);
    wf.add_stage(preprocess_stage());
    auto second = compare_stage();
    second.options.locality_aware = locality;
    wf.add_stage(second);
    const auto result = wf.execute(make_inputs(32, 4 * MB));
    EXPECT_TRUE(result.all_completed());
    return result.stages[1].bytes_moved;
  };
  const auto blind = run_wf(false);
  const auto aware = run_wf(true);
  EXPECT_LE(aware, blind);
}

TEST(Workflow, FailedUnitsProduceNoOutputs) {
  sim::Simulation sim(64);
  auto cluster = make_cluster(sim);
  // Crash a VM mid-stage-1 without requeue: some stage-1 units never run.
  cluster::FailureInjector injector(*cluster);
  injector.schedule(1, 4.0);

  Workflow wf(*cluster);
  auto first = preprocess_stage();
  first.task_seconds = [](const WorkUnit&, const storage::FileCatalog&) { return 2.0; };
  wf.add_stage(first);
  auto second = compare_stage();
  wf.add_stage(second);

  const auto result = wf.execute(make_inputs(24, 2 * MB));
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_FALSE(result.stages[0].all_completed());
  // Stage 2 ran over only the surviving outputs.
  EXPECT_EQ(result.stages[1].units_total, result.stages[0].units_completed / 2);
  EXPECT_FALSE(result.all_completed());
}

TEST(Workflow, ValidationErrors) {
  sim::Simulation sim(65);
  auto cluster = make_cluster(sim);
  Workflow wf(*cluster);
  EXPECT_THROW(wf.execute(make_inputs(4, MB)), FriedaError);  // no stages

  WorkflowStage nameless;
  nameless.task_seconds = [](const WorkUnit&, const storage::FileCatalog&) { return 1.0; };
  EXPECT_THROW(wf.add_stage(nameless), FriedaError);

  WorkflowStage costless;
  costless.name = "x";
  EXPECT_THROW(wf.add_stage(costless), FriedaError);
}

TEST(Workflow, TerminalStageWithoutOutputsYieldsEmptyCatalog) {
  sim::Simulation sim(66);
  auto cluster = make_cluster(sim);
  Workflow wf(*cluster);
  auto only = preprocess_stage();
  only.output_bytes = nullptr;  // terminal stage: results are reports only
  wf.add_stage(only);
  const auto result = wf.execute(make_inputs(8, MB));
  EXPECT_TRUE(result.all_completed());
  EXPECT_EQ(result.final_outputs.count(), 0u);
}

}  // namespace
}  // namespace frieda::core
