#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace frieda {
namespace {

TEST(Csv, BasicOutput) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  w.add_row_nums({3.5, 4.25});
  EXPECT_EQ(w.rows(), 2u);
  EXPECT_EQ(w.to_string(), "a,b\n1,2\n3.5,4.25\n");
}

TEST(Csv, QuotingCommasAndQuotes) {
  CsvWriter w({"x"});
  w.add_row({std::string("va,lue")});
  w.add_row({std::string("say \"hi\"")});
  const auto s = w.to_string();
  EXPECT_NE(s.find("\"va,lue\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, WidthMismatchThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({std::string("only one")}), FriedaError);
  EXPECT_THROW(CsvWriter({}), FriedaError);
}

TEST(Csv, SaveAndReload) {
  const std::string path = testing::TempDir() + "/frieda_csv_test.csv";
  CsvWriter w({"h"});
  w.add_row({std::string("v")});
  w.save(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
  std::getline(in, line);
  EXPECT_EQ(line, "v");
  std::remove(path.c_str());
  EXPECT_THROW(w.save("/nonexistent/dir/x.csv"), FriedaError);
}

TEST(Table, RendersAligned) {
  TextTable t("Table I", {"Application", "Sequential (s)"});
  t.add_row({"ALS", "1258.80"});
  t.add_row({"BLAST", "61200"});
  t.add_note("paper values");
  const auto s = t.to_string();
  EXPECT_NE(s.find("== Table I =="), std::string::npos);
  EXPECT_NE(s.find("| ALS"), std::string::npos);
  EXPECT_NE(s.find("* paper values"), std::string::npos);
  // Separator rule appears at least 3 times (top, under header, bottom).
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_GE(rules, 3u);
}

TEST(Table, WidthMismatchThrows) {
  TextTable t("x", {"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), FriedaError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(1258.8, 1), "1258.8");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace frieda
