#include "net/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/topology.hpp"

namespace frieda::net {
namespace {

Topology star(std::size_t nodes, Bandwidth nic) {
  Topology t;
  for (std::size_t i = 0; i < nodes; ++i) {
    t.add_node("n" + std::to_string(i), nic, nic);
  }
  return t;
}

TEST(Topology, Basics) {
  Topology t;
  const auto a = t.add_node("a", mbps(100), mbps(200));
  const auto b = t.add_node("b", mbps(50), mbps(50));
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.name(a), "a");
  EXPECT_DOUBLE_EQ(t.egress(a), mbps(100));
  EXPECT_DOUBLE_EQ(t.ingress(a), mbps(200));
  t.set_nic(a, mbps(10), mbps(10));
  EXPECT_DOUBLE_EQ(t.egress(a), mbps(10));
  t.set_pair_limit(a, b, mbps(5));
  EXPECT_DOUBLE_EQ(t.pair_limit(a, b), mbps(5));
  EXPECT_TRUE(std::isinf(t.pair_limit(b, a)));
  EXPECT_FALSE(t.has_backbone_cap());
  t.set_backbone_capacity(gbps(1));
  EXPECT_TRUE(t.has_backbone_cap());
  EXPECT_THROW(t.name(99), FriedaError);
  EXPECT_THROW(t.add_node("bad", 0.0, 1.0), FriedaError);
}

TEST(Network, SingleTransferTakesBytesOverRate) {
  sim::Simulation sim;
  Network netw(sim, star(2, mbps(100)), /*latency=*/0.0);
  TransferResult result;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 125 * MB);  // 125 MB @ 12.5 MB/s = 10 s
  }(netw, result));
  sim.run();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.transferred, 125 * MB);
  EXPECT_NEAR(result.duration(), 10.0, 1e-6);
  EXPECT_EQ(netw.total_bytes_moved(), 125 * MB);
  EXPECT_EQ(netw.traffic(0).bytes_sent, 125 * MB);
  EXPECT_EQ(netw.traffic(1).bytes_received, 125 * MB);
}

TEST(Network, LatencyAddsToTransferTime) {
  sim::Simulation sim;
  Network netw(sim, star(2, mbps(100)), /*latency=*/0.5);
  double finished = 0.0;
  sim.spawn([](Network& n, double& t, sim::Simulation& s) -> sim::Task<> {
    (void)co_await n.transfer(0, 1, 125 * MB);
    t = s.now();
  }(netw, finished, sim));
  sim.run();
  EXPECT_NEAR(finished, 10.5, 1e-6);
}

TEST(Network, TwoFlowsShareSourceEgress) {
  sim::Simulation sim;
  Network netw(sim, star(3, mbps(100)), 0.0);
  std::vector<double> durations(2);
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Network& n, double& d, int dst) -> sim::Task<> {
      const auto r = co_await n.transfer(0, static_cast<NodeId>(dst), 125 * MB);
      d = r.duration();
    }(netw, durations[i], i + 1));
  }
  sim.run();
  // Both share node 0's 12.5 MB/s egress: each takes ~20 s.
  EXPECT_NEAR(durations[0], 20.0, 1e-6);
  EXPECT_NEAR(durations[1], 20.0, 1e-6);
}

TEST(Network, FlowSpeedsUpWhenCompetitorFinishes) {
  sim::Simulation sim;
  Network netw(sim, star(3, mbps(100)), 0.0);
  double long_duration = 0.0;
  // Short flow: 62.5 MB; long flow: 187.5 MB, both from node 0.
  sim.spawn([](Network& n, double& d) -> sim::Task<> {
    const auto r = co_await n.transfer(0, 1, 1875 * MB / 10);
    d = r.duration();
  }(netw, long_duration));
  sim.spawn([](Network& n) -> sim::Task<> {
    (void)co_await n.transfer(0, 2, 625 * MB / 10);
  }(netw));
  sim.run();
  // Phase 1: both at 6.25 MB/s until the short flow finishes at t=10
  // (62.5 MB / 6.25).  Long flow then has 125 MB left at 12.5 MB/s => +10 s.
  EXPECT_NEAR(long_duration, 20.0, 1e-6);
}

TEST(Network, DestinationIngressBottleneck) {
  sim::Simulation sim;
  Topology t = star(3, mbps(1000));
  t.set_nic(2, mbps(1000), mbps(100));  // slow receiver
  Network netw(sim, std::move(t), 0.0);
  std::vector<double> durations(2);
  sim.spawn([](Network& n, double& d) -> sim::Task<> {
    d = (co_await n.transfer(0, 2, 125 * MB)).duration();
  }(netw, durations[0]));
  sim.spawn([](Network& n, double& d) -> sim::Task<> {
    d = (co_await n.transfer(1, 2, 125 * MB)).duration();
  }(netw, durations[1]));
  sim.run();
  EXPECT_NEAR(durations[0], 20.0, 1e-6);
  EXPECT_NEAR(durations[1], 20.0, 1e-6);
}

TEST(Network, PairLimitCapsFlow) {
  sim::Simulation sim;
  Topology t = star(2, mbps(1000));
  t.set_pair_limit(0, 1, mbps(100));
  Network netw(sim, std::move(t), 0.0);
  double duration = 0.0;
  sim.spawn([](Network& n, double& d) -> sim::Task<> {
    d = (co_await n.transfer(0, 1, 125 * MB)).duration();
  }(netw, duration));
  sim.run();
  EXPECT_NEAR(duration, 10.0, 1e-6);
}

TEST(Network, BackboneCapSharedByAllFlows) {
  sim::Simulation sim;
  Topology t = star(4, mbps(1000));
  t.set_backbone_capacity(mbps(100));
  Network netw(sim, std::move(t), 0.0);
  std::vector<double> durations(2);
  sim.spawn([](Network& n, double& d) -> sim::Task<> {
    d = (co_await n.transfer(0, 1, 125 * MB)).duration();
  }(netw, durations[0]));
  sim.spawn([](Network& n, double& d) -> sim::Task<> {
    d = (co_await n.transfer(2, 3, 125 * MB)).duration();
  }(netw, durations[1]));
  sim.run();
  EXPECT_NEAR(durations[0], 20.0, 1e-6);  // 6.25 MB/s each on the backbone
  EXPECT_NEAR(durations[1], 20.0, 1e-6);
}

TEST(Network, LoopbackBypassesNic) {
  sim::Simulation sim;
  Network netw(sim, star(2, mbps(100)), 0.0, /*loopback=*/gbps(10));
  double duration = -1.0;
  sim.spawn([](Network& n, double& d) -> sim::Task<> {
    d = (co_await n.transfer(0, 0, 125 * MB)).duration();
  }(netw, duration));
  sim.run();
  EXPECT_NEAR(duration, 0.1, 1e-6);  // 125 MB @ 1.25 GB/s
}

TEST(Network, ZeroByteTransferCompletesImmediately) {
  sim::Simulation sim;
  Network netw(sim, star(2, mbps(100)), 0.0);
  TransferResult result;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 0);
  }(netw, result));
  sim.run();
  EXPECT_TRUE(result.ok());
  EXPECT_NEAR(result.duration(), 0.0, 1e-12);
}

TEST(Network, FailNodeAbortsItsFlows) {
  sim::Simulation sim;
  Network netw(sim, star(3, mbps(100)), 0.0);
  TransferResult to_failed, unaffected;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 1250 * MB);  // would take 200 s alone
  }(netw, to_failed));
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 2, 1250 * MB);
  }(netw, unaffected));
  sim.schedule_at(50.0, [&] { netw.fail_node(1); });
  sim.run();
  EXPECT_EQ(to_failed.status, TransferStatus::kFailed);
  EXPECT_NEAR(to_failed.finished, 50.0, 1e-6);
  // 50 s at 6.25 MB/s = 312.5 MB moved before the abort.
  EXPECT_NEAR(static_cast<double>(to_failed.transferred), 312.5e6, 1e3);
  EXPECT_TRUE(unaffected.ok());
  // Competitor then gets the full 12.5 MB/s: 312.5 MB at 6.25 + 937.5 MB at
  // 12.5 => 50 + 75 = 125 s total.
  EXPECT_NEAR(unaffected.duration(), 125.0, 1e-6);
}

TEST(Network, TransferToFailedNodeFailsImmediately) {
  sim::Simulation sim;
  Network netw(sim, star(2, mbps(100)), 0.0);
  netw.fail_node(1);
  TransferResult result;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, MB);
  }(netw, result));
  sim.run();
  EXPECT_EQ(result.status, TransferStatus::kFailed);
  EXPECT_EQ(result.transferred, 0u);
  netw.restore_node(1);
  EXPECT_FALSE(netw.node_failed(1));
}

TEST(Network, ObserverSeesCompletedTransfers) {
  sim::Simulation sim;
  Network netw(sim, star(2, mbps(100)), 0.0);
  int observed = 0;
  netw.set_observer([&](NodeId src, NodeId dst, const TransferResult& r) {
    EXPECT_EQ(src, 0u);
    EXPECT_EQ(dst, 1u);
    EXPECT_TRUE(r.ok());
    ++observed;
  });
  sim.spawn([](Network& n) -> sim::Task<> {
    (void)co_await n.transfer(0, 1, MB);
    (void)co_await n.transfer(0, 1, MB);
  }(netw));
  sim.run();
  EXPECT_EQ(observed, 2);
  EXPECT_EQ(netw.transfers_started(), 2u);
}

TEST(Network, ObserverSeesEarlyFailures) {
  // Failure before setup and failure during setup must both report through
  // the observer and the accounting, just like failures after streams start.
  sim::Simulation sim;
  Network netw(sim, star(2, mbps(100)), /*latency=*/0.5);
  int observed_failures = 0;
  netw.set_observer([&](NodeId src, NodeId dst, const TransferResult& r) {
    EXPECT_EQ(src, 0u);
    EXPECT_EQ(dst, 1u);
    EXPECT_EQ(r.status, TransferStatus::kFailed);
    EXPECT_EQ(r.transferred, 0u);
    ++observed_failures;
  });

  netw.fail_node(1);
  TransferResult at_start;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, MB);  // endpoint already dead
  }(netw, at_start));
  sim.run();
  EXPECT_EQ(observed_failures, 1);
  EXPECT_NEAR(at_start.duration(), 0.0, 1e-12);

  netw.restore_node(1);
  TransferResult during_setup;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, MB);
  }(netw, during_setup));
  sim.schedule_in(0.25, [&] { netw.fail_node(1); });  // mid connection setup
  sim.run();
  EXPECT_EQ(observed_failures, 2);
  EXPECT_EQ(during_setup.status, TransferStatus::kFailed);
  EXPECT_EQ(during_setup.transferred, 0u);

  EXPECT_EQ(netw.transfers_started(), 2u);
  EXPECT_EQ(netw.total_bytes_moved(), 0u);
  EXPECT_EQ(netw.traffic(0).bytes_sent, 0u);
  EXPECT_EQ(netw.traffic(1).bytes_received, 0u);
}

TEST(Network, StreamsOfOnePairCoalesceIntoOneClass) {
  sim::Simulation sim;
  Network netw(sim, star(3, mbps(100)), 0.0);
  for (NodeId dst = 1; dst <= 2; ++dst) {
    sim.spawn([](Network& n, NodeId d) -> sim::Task<> {
      (void)co_await n.transfer(0, d, 10 * MB, /*streams=*/4);
    }(netw, dst));
  }
  sim.run_until(0.1);  // both transfers in flight
  EXPECT_EQ(netw.active_flows(), 8u);       // 2 transfers x 4 streams
  EXPECT_EQ(netw.active_flow_classes(), 2u);  // but only 2 (src,dst) classes
  sim.run();
  EXPECT_EQ(netw.total_bytes_moved(), 20 * MB);
}

TEST(Network, NicChangeAppliesToCachedConstraints) {
  // set_nic bumps the topology version, which must invalidate the cached
  // per-class constraint vectors and take effect on the next recompute.
  sim::Simulation sim;
  Network netw(sim, star(2, mbps(100)), 0.0);
  TransferResult result;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 125 * MB);  // 10 s at 100 Mbps
  }(netw, result));
  sim.schedule_at(5.0, [&] {
    netw.topology().set_nic(0, mbps(50), mbps(50));
    netw.fail_node(1);  // force an immediate recompute...
    netw.restore_node(1);
  });
  sim.run();
  // This transfer dies at t=5 (fail_node aborts it); what matters here is
  // that a follow-up transfer sees the new 50 Mbps NIC from its cached class.
  EXPECT_EQ(result.status, TransferStatus::kFailed);
  TransferResult second;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 125 * MB);  // 20 s at 50 Mbps
  }(netw, second));
  sim.run();
  EXPECT_TRUE(second.ok());
  EXPECT_NEAR(second.duration(), 20.0, 1e-6);
}

TEST(Network, ManyConcurrentFlowsConserveBytes) {
  sim::Simulation sim;
  Network netw(sim, star(5, mbps(100)), 0.0);
  const Bytes each = 10 * MB;
  int completed = 0;
  for (NodeId dst = 1; dst < 5; ++dst) {
    for (int k = 0; k < 3; ++k) {
      sim.spawn([](Network& n, NodeId d, Bytes b, int& done) -> sim::Task<> {
        const auto r = co_await n.transfer(0, d, b);
        EXPECT_TRUE(r.ok());
        done += 1;
      }(netw, dst, each, completed));
    }
  }
  sim.run();
  EXPECT_EQ(completed, 12);
  EXPECT_EQ(netw.total_bytes_moved(), 12 * each);
  // All 12 flows share node 0's egress: total time = 120 MB / 12.5 MB/s.
  EXPECT_NEAR(sim.now(), 9.6, 1e-6);
}

TEST(Topology, RackAssignmentAndUplinks) {
  Topology t;
  const auto a = t.add_node("a", gbps(1), gbps(1));
  const auto b = t.add_node("b", gbps(1), gbps(1));
  EXPECT_EQ(t.rack(a), kNoRack);
  EXPECT_FALSE(t.has_rack_uplinks());
  EXPECT_TRUE(std::isinf(t.rack_uplink(kNoRack)));
  const auto before = t.version();
  t.set_rack(a, 0);
  t.set_rack(b, 1);
  t.set_rack_uplink(0, mbps(500));
  EXPECT_GT(t.version(), before);  // rack changes invalidate cached classes
  EXPECT_EQ(t.rack(a), 0u);
  EXPECT_TRUE(t.has_rack_uplinks());
  EXPECT_DOUBLE_EQ(t.rack_uplink(0), mbps(500));
  EXPECT_TRUE(std::isinf(t.rack_uplink(1)));  // assigned but uncapped
  EXPECT_THROW(t.set_rack_uplink(kNoRack, mbps(1)), FriedaError);
  EXPECT_THROW(t.set_rack_uplink(0, 0.0), FriedaError);
}

TEST(Network, RackUplinkSharedByCrossRackFlows) {
  // Two nodes in rack 0 send to two nodes in rack 1.  NICs are fat; each
  // flow crosses both 100 Mbps uplinks, so the pair of flows shares one
  // uplink's capacity: 12.5 MB total at 6.25 MB/s each = 10 s.
  Topology t = star(4, gbps(1));
  t.set_rack(0, 0);
  t.set_rack(1, 0);
  t.set_rack(2, 1);
  t.set_rack(3, 1);
  t.set_rack_uplink(0, mbps(100));
  t.set_rack_uplink(1, mbps(100));
  sim::Simulation sim;
  Network netw(sim, std::move(t), 0.0);
  std::vector<TransferResult> results(2);
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Network& n, TransferResult& out, NodeId src, NodeId dst) -> sim::Task<> {
      out = co_await n.transfer(src, dst, Bytes(62.5 * MB));
    }(netw, results[i], NodeId(i), NodeId(2 + i)));
  }
  sim.run();
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok());
    EXPECT_NEAR(r.duration(), 10.0, 1e-6);
  }
}

TEST(Network, IntraRackFlowBypassesUplink) {
  Topology t = star(3, mbps(100));
  t.set_rack(0, 0);
  t.set_rack(1, 0);
  t.set_rack(2, 1);  // unrelated rack so has_rack_uplinks() is on
  t.set_rack_uplink(0, mbps(10));  // would be the bottleneck if traversed
  sim::Simulation sim;
  Network netw(sim, std::move(t), 0.0);
  TransferResult result;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 125 * MB);
  }(netw, result));
  sim.run();
  // Full NIC rate: the top-of-rack uplink only carries traffic leaving the
  // rack, so the narrow 10 Mbps trunk must not throttle this flow.
  EXPECT_NEAR(result.duration(), 10.0, 1e-6);
}

TEST(Network, UnrackedEndpointTraversesOnlyTheRackedSide) {
  Topology t = star(2, gbps(1));
  t.set_rack(1, 0);
  t.set_rack_uplink(0, mbps(100));
  sim::Simulation sim;
  Network netw(sim, std::move(t), 0.0);
  TransferResult result;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    out = co_await n.transfer(0, 1, 125 * MB);  // core switch -> rack 0
  }(netw, result));
  sim.run();
  EXPECT_TRUE(result.ok());
  EXPECT_NEAR(result.duration(), 10.0, 1e-6);  // bottleneck is the uplink
}

TEST(Network, FailedTransferNeverReportsMoreThanRequested) {
  // Abort a tiny fast flow inside the kMinTimeStep scheduling window: the
  // fluid model has overshot the target bytes by then, and the partial-bytes
  // accounting must clamp to the requested size instead of rounding above it.
  sim::Simulation sim;
  Network netw(sim, star(2, gbps(10)), 0.0);
  TransferResult result;
  sim.spawn([](Network& n, TransferResult& out) -> sim::Task<> {
    // 1 byte at 10 Gbps drains in 0.8 ns; its completion event is clamped to
    // the 1 ns minimum step, leaving a window where work exceeds the target.
    out = co_await n.transfer(0, 1, 1);
  }(netw, result));
  sim.schedule_at(9e-10, [&] { netw.fail_node(1); });
  sim.run();
  EXPECT_EQ(result.status, TransferStatus::kFailed);
  EXPECT_LE(result.transferred, result.requested);
}

}  // namespace
}  // namespace frieda::net
