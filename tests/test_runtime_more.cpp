// Additional threaded-runtime coverage: paired inputs, assignment policies,
// concurrency stress, and command binding fidelity.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "frieda/partition.hpp"
#include "runtime/rt_engine.hpp"

namespace frieda::rt {
namespace {

namespace fs = std::filesystem;

class RtMoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(testing::TempDir()) / ("frieda_rt_more_" + std::to_string(::getpid()));
    source_ = (root_ / "source").string();
    staging_ = (root_ / "staging").string();
    fs::remove_all(root_);
    make_dataset(source_, 16, 32 * KiB, 5);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
  std::string source_;
  std::string staging_;
};

TEST_F(RtMoreTest, PairwiseSchemeDeliversBothFiles) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kRealTime;
  opt.worker_count = 2;
  opt.staging_root = staging_;
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kPairwiseAdjacent,
                                                  engine.catalog());
  std::mutex mu;
  std::set<std::string> seen;
  const auto report = engine.run(
      std::move(units), core::CommandTemplate("compare $inp1 $inp2"),
      [&](const core::WorkUnit&, const std::vector<std::string>& paths,
          const std::string& command) {
        EXPECT_EQ(paths.size(), 2u);
        EXPECT_TRUE(fs::exists(paths[0]));
        EXPECT_TRUE(fs::exists(paths[1]));
        EXPECT_NE(command.find(paths[0]), std::string::npos);
        EXPECT_NE(command.find(paths[1]), std::string::npos);
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(paths[0]);
        seen.insert(paths[1]);
        return true;
      });
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.units_completed, 8u);
  EXPECT_EQ(seen.size(), 16u);  // every file appeared exactly once per pair
}

TEST_F(RtMoreTest, SizeBalancedAssignmentPolicy) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kPrePartitionLocal;
  opt.assignment = core::AssignmentPolicy::kSizeBalanced;
  opt.worker_count = 4;
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  const auto report = engine.run(std::move(units), core::CommandTemplate("app $inp1"),
                                 [](const core::WorkUnit&, const std::vector<std::string>&,
                                    const std::string&) { return true; });
  EXPECT_TRUE(report.all_completed());
  // Uniform sizes + LPT => even split.
  for (const auto n : report.per_worker_completed) EXPECT_EQ(n, 4u);
}

TEST_F(RtMoreTest, ManyWorkersStress) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kRealTime;
  opt.worker_count = 8;  // more threads than inputs per wave
  opt.staging_root = staging_;
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  std::atomic<int> concurrent{0}, peak{0};
  const auto report = engine.run(
      std::move(units), core::CommandTemplate("app $inp1"),
      [&](const core::WorkUnit&, const std::vector<std::string>&, const std::string&) {
        const int now = ++concurrent;
        int expected = peak.load();
        while (now > expected && !peak.compare_exchange_weak(expected, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        --concurrent;
        return true;
      });
  EXPECT_TRUE(report.all_completed());
  EXPECT_GT(peak.load(), 1);  // genuine parallel execution
}

TEST_F(RtMoreTest, RunValidation) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kRealTime;
  opt.worker_count = 1;
  opt.staging_root = staging_;
  RtEngine engine(source_, opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  EXPECT_THROW(engine.run(units, core::CommandTemplate("app $inp1 $inp2"),
                          [](const core::WorkUnit&, const std::vector<std::string>&,
                             const std::string&) { return true; }),
               FriedaError);
  EXPECT_THROW(engine.run(std::move(units), core::CommandTemplate("app $inp1"), nullptr),
               FriedaError);
}

TEST_F(RtMoreTest, EmptyUnitListIsVacuousSuccess) {
  RtOptions opt;
  opt.strategy = core::PlacementStrategy::kRealTime;
  opt.worker_count = 2;
  opt.staging_root = staging_;
  RtEngine engine(source_, opt);
  std::atomic<int> calls{0};
  const auto report = engine.run(
      {}, core::CommandTemplate("app $inp1"),
      [&](const core::WorkUnit&, const std::vector<std::string>&, const std::string&) {
        ++calls;
        return true;
      });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(report.units_completed, 0u);
  EXPECT_EQ(report.units_failed, 0u);
  EXPECT_TRUE(report.units.empty());
  // Nothing was asked for and nothing failed: vacuously complete.
  EXPECT_TRUE(report.all_completed());
}

}  // namespace
}  // namespace frieda::rt
