#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/error.hpp"

namespace frieda::sim {
namespace {

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_at(2.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  double observed = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 7.5);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  double observed = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { observed = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 10.0);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(3.0, [&] { ++fired; });
  const bool more = sim.run_until(2.0);
  EXPECT_TRUE(more);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

Task<> count_down(Simulation& sim, int n, std::vector<double>& ticks) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(1.0);
    ticks.push_back(sim.now());
  }
}

TEST(Simulation, SpawnedProcessDelays) {
  Simulation sim;
  std::vector<double> ticks;
  sim.spawn(count_down(sim, 3, ticks), "counter");
  EXPECT_EQ(sim.live_processes(), 1u);
  sim.run();
  EXPECT_EQ(ticks, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(sim.live_processes(), 0u);  // root reclaimed
}

TEST(Simulation, ProcessesInterleaveDeterministically) {
  Simulation sim;
  std::vector<std::pair<int, double>> log;
  auto proc = [&](int id, double period) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await sim.delay(period);
      log.emplace_back(id, sim.now());
    }
  };
  sim.spawn(proc(1, 1.0));
  sim.spawn(proc(2, 1.5));
  sim.run();
  // At t=3.0 both wake; process 2 scheduled its wake-up earlier (at t=1.5,
  // vs. t=2.0 for process 1), so FIFO order puts it first.
  const std::vector<std::pair<int, double>> expected{
      {1, 1.0}, {2, 1.5}, {1, 2.0}, {2, 3.0}, {1, 3.0}, {2, 4.5}};
  EXPECT_EQ(log, expected);
}

Task<int> triple(Simulation& sim, int x) {
  co_await sim.delay(1.0);
  co_return 3 * x;
}

Task<> parent(Simulation& sim, int& out) {
  out = co_await triple(sim, 7);
}

TEST(Simulation, NestedTaskReturnsValue) {
  Simulation sim;
  int out = 0;
  sim.spawn(parent(sim, out));
  sim.run();
  EXPECT_EQ(out, 21);
}

Task<> thrower(Simulation& sim) {
  co_await sim.delay(1.0);
  throw std::runtime_error("boom");
}

TEST(Simulation, RootExceptionPropagatesFromRun) {
  Simulation sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Task<> catcher(Simulation& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Simulation, ChildExceptionCatchableInParent) {
  Simulation sim;
  bool caught = false;
  sim.spawn(catcher(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulation, DeterministicEventCountAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim(seed);
    std::vector<double> ticks;
    sim.spawn(count_down(sim, 10, ticks));
    sim.spawn(count_down(sim, 5, ticks));
    sim.run();
    return std::make_pair(sim.events_processed(), ticks);
  };
  const auto a = run_once(1);
  const auto b = run_once(1);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Simulation, SpawnEmptyTaskThrows) {
  Simulation sim;
  EXPECT_THROW(sim.spawn(Task<>{}), FriedaError);
}

TEST(Simulation, DelayZeroYields) {
  Simulation sim;
  std::vector<int> order;
  auto yielder = [&](int id) -> Task<> {
    order.push_back(id * 10);
    co_await sim.delay(0.0);
    order.push_back(id * 10 + 1);
  };
  sim.spawn(yielder(1));
  sim.spawn(yielder(2));
  sim.run();
  // Both prologues run before either epilogue: delay(0) really yields.
  EXPECT_EQ(order, (std::vector<int>{10, 20, 11, 21}));
}

}  // namespace
}  // namespace frieda::sim
