#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "frieda/partition.hpp"
#include "workload/blast.hpp"
#include "workload/calibration.hpp"
#include "workload/image_compare.hpp"
#include "workload/synthetic.hpp"

namespace frieda::workload {
namespace {

TEST(ImageModel, PaperCatalogShape) {
  ImageCompareModel model(ImageCompareParams::paper());
  EXPECT_EQ(model.catalog().count(), calib::kAlsImageCount);
  // Mean size close to 7 MB.
  const double mean =
      static_cast<double>(model.catalog().total_bytes()) / model.catalog().count();
  EXPECT_NEAR(mean, static_cast<double>(calib::kAlsMeanImageBytes), 0.4 * MB);
  EXPECT_EQ(model.common_data_bytes(), 0u);
}

TEST(ImageModel, SequentialSumMatchesTableOne) {
  // Sum of pairwise-adjacent task costs must land near the paper's 1258.8 s
  // sequential measurement — that is the calibration invariant.
  ImageCompareModel model(ImageCompareParams::paper());
  const auto units = core::PartitionGenerator::generate(
      core::PartitionScheme::kPairwiseAdjacent, model.catalog());
  EXPECT_EQ(units.size(), 625u);
  double total = 0.0;
  for (const auto& u : units) total += model.task_seconds(u);
  EXPECT_NEAR(total, calib::paper::kAlsSequential, 0.06 * calib::paper::kAlsSequential);
}

TEST(ImageModel, CostProportionalToBytes) {
  ImageCompareParams p = ImageCompareParams::paper();
  p.size_cv = 0.0;  // uniform sizes
  ImageCompareModel model(p);
  core::WorkUnit one;
  one.inputs = {0};
  core::WorkUnit two;
  two.inputs = {0, 1};
  EXPECT_NEAR(model.task_seconds(two), 2.0 * model.task_seconds(one), 1e-9);
  EXPECT_GT(model.output_bytes(one), 0u);
}

TEST(ImageModel, Deterministic) {
  ImageCompareModel a(ImageCompareParams::paper());
  ImageCompareModel b(ImageCompareParams::paper());
  ASSERT_EQ(a.catalog().count(), b.catalog().count());
  for (std::size_t i = 0; i < a.catalog().count(); ++i) {
    EXPECT_EQ(a.catalog().info(i).size, b.catalog().info(i).size);
  }
}

TEST(ImageModel, InvalidParamsThrow) {
  ImageCompareParams p = ImageCompareParams::paper();
  p.image_count = 0;
  EXPECT_THROW(ImageCompareModel{p}, FriedaError);
}

TEST(BlastModel, PaperCatalogShape) {
  BlastModel model(BlastParams::paper());
  EXPECT_EQ(model.catalog().count(), calib::kBlastSequenceCount);
  EXPECT_EQ(model.common_data_bytes(), calib::kBlastDatabaseBytes);
  EXPECT_EQ(model.catalog().info(0).size, calib::kBlastSequenceBytes);
}

TEST(BlastModel, SequentialSumMatchesTableOne) {
  BlastModel model(BlastParams::paper());
  const auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                        model.catalog());
  EXPECT_EQ(units.size(), 7500u);
  double total = 0.0;
  for (const auto& u : units) total += model.task_seconds(u);
  EXPECT_NEAR(total, calib::paper::kBlastSequential, 0.05 * calib::paper::kBlastSequential);
}

TEST(BlastModel, CostsAreSkewed) {
  BlastModel model(BlastParams::paper());
  RunningStats s;
  for (storage::FileId f = 0; f < model.catalog().count(); ++f) s.add(model.file_cost(f));
  EXPECT_NEAR(s.cv(), calib::kBlastTaskCv, 0.06);
  EXPECT_GT(s.max() / s.mean(), 2.0);  // a genuinely heavy tail
}

TEST(BlastModel, CostsDeterministicPerUnit) {
  BlastModel a(BlastParams::paper());
  BlastModel b(BlastParams::paper());
  for (storage::FileId f = 0; f < 100; ++f) {
    EXPECT_DOUBLE_EQ(a.file_cost(f), b.file_cost(f));
  }
  core::WorkUnit u;
  u.inputs = {3, 7};
  EXPECT_DOUBLE_EQ(a.task_seconds(u), a.file_cost(3) + a.file_cost(7));
  EXPECT_THROW(a.file_cost(999999), FriedaError);
}

TEST(SyntheticModel, HonorsParams) {
  SyntheticParams p;
  p.file_count = 50;
  p.mean_file_bytes = 2 * MB;
  p.file_size_cv = 0.0;
  p.mean_task_seconds = 3.0;
  p.task_cv = 0.0;
  p.common_data_bytes = 10 * MB;
  p.output_bytes = KB;
  SyntheticModel model(p);
  EXPECT_EQ(model.catalog().count(), 50u);
  EXPECT_EQ(model.catalog().info(0).size, 2 * MB);
  EXPECT_DOUBLE_EQ(model.file_cost(0), 3.0);
  EXPECT_EQ(model.common_data_bytes(), 10 * MB);
  core::WorkUnit u;
  u.inputs = {0};
  EXPECT_EQ(model.output_bytes(u), KB);
  EXPECT_DOUBLE_EQ(model.task_seconds(u), 3.0);
}

TEST(SyntheticModel, SkewKnob) {
  SyntheticParams p;
  p.file_count = 5000;
  p.mean_task_seconds = 2.0;
  p.task_cv = 1.0;
  SyntheticModel model(p);
  RunningStats s;
  for (storage::FileId f = 0; f < model.catalog().count(); ++f) s.add(model.file_cost(f));
  EXPECT_NEAR(s.mean(), 2.0, 0.15);
  EXPECT_NEAR(s.cv(), 1.0, 0.12);
}

TEST(SyntheticModel, InvalidThrow) {
  SyntheticParams p;
  p.file_count = 0;
  EXPECT_THROW(SyntheticModel{p}, FriedaError);
}

}  // namespace
}  // namespace frieda::workload
