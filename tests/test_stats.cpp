#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace frieda {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(5.0, 3.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90.0), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, PercentileBoundariesAndInterpolation) {
  // Two samples pin the interpolating behavior the doc promises: rank
  // p/100 * (n-1) with linear interpolation between the neighbors.
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);    // p=0 is the minimum
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 20.0);  // p=100 is the maximum
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 15.0);   // midpoint, not nearest rank
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 12.5);
  EXPECT_DOUBLE_EQ(s.percentile(75.0), 17.5);
}

TEST(SampleSet, SingleSampleEveryPercentile) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 7.0);
}

TEST(SampleSet, Errors) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50.0), FriedaError);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), FriedaError);
  EXPECT_THROW(s.percentile(101.0), FriedaError);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 1.0);
}

TEST(SampleSet, LazySortSurvivesInterleavedAdds) {
  SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Histogram, Buckets) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, EdgeClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  h.add(1.0);  // hi boundary clamps into the last bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), FriedaError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), FriedaError);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const auto art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("[0.00, 1.00)"), std::string::npos);
}

}  // namespace
}  // namespace frieda
