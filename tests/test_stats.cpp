#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace frieda {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(5.0, 3.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90.0), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, PercentileBoundariesAndInterpolation) {
  // Two samples pin the interpolating behavior the doc promises: rank
  // p/100 * (n-1) with linear interpolation between the neighbors.
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);    // p=0 is the minimum
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 20.0);  // p=100 is the maximum
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 15.0);   // midpoint, not nearest rank
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 12.5);
  EXPECT_DOUBLE_EQ(s.percentile(75.0), 17.5);
}

TEST(SampleSet, SingleSampleEveryPercentile) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 7.0);
}

TEST(SampleSet, Errors) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50.0), FriedaError);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), FriedaError);
  EXPECT_THROW(s.percentile(101.0), FriedaError);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 1.0);
}

TEST(SampleSet, LazySortSurvivesInterleavedAdds) {
  SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Histogram, Buckets) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(SampleSet, ConcurrentPercentileReadersAreRaceFree) {
  // Regression: percentile() used to sort its cache without synchronization
  // inside a const method, racing when multiple threads read a shared set.
  // Run under the tsan preset this test fails on the old implementation.
  SampleSet s;
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) s.add(rng.uniform());
  const double expect_p50 = s.percentile(50.0);
  s.add(0.5);  // invalidate the sorted cache so readers must rebuild it
  std::vector<std::thread> readers;
  std::vector<double> medians(8, 0.0);
  for (std::size_t t = 0; t < medians.size(); ++t) {
    readers.emplace_back([&s, &medians, t] { medians[t] = s.percentile(50.0); });
  }
  for (auto& th : readers) th.join();
  for (double m : medians) EXPECT_DOUBLE_EQ(m, medians[0]);
  EXPECT_NEAR(medians[0], expect_p50, 1e-2);
}

TEST(SampleSet, CopyAndMovePreserveSamples) {
  SampleSet a;
  a.add(3.0);
  a.add(1.0);
  a.add(2.0);
  EXPECT_DOUBLE_EQ(a.median(), 2.0);  // populate the sorted cache
  SampleSet b = a;                    // copy with a warm cache
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.median(), 2.0);
  b.add(10.0);
  EXPECT_EQ(a.count(), 3u);  // deep copy, not shared
  SampleSet c = std::move(b);
  EXPECT_EQ(c.count(), 4u);
  EXPECT_DOUBLE_EQ(c.percentile(100.0), 10.0);
  SampleSet d;
  d = a;
  EXPECT_DOUBLE_EQ(d.median(), 2.0);
  d = std::move(c);
  EXPECT_EQ(d.count(), 4u);
}

TEST(Histogram, UnderOverflowTrackedSeparately) {
  // Regression: values >= hi used to be clamped into the top bucket (and
  // values < lo into the bottom one), silently inflating the edge bins.
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);  // underflow
  h.add(99.0);  // overflow
  h.add(1.0);   // hi is exclusive: overflow, not the last bucket
  h.add(0.9);   // genuinely in the last bucket
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.in_range(), 1u);
  EXPECT_EQ(h.total(), 4u);
  const auto art = h.ascii(10);
  EXPECT_NE(art.find("underflow"), std::string::npos);
  EXPECT_NE(art.find("overflow"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), FriedaError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), FriedaError);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const auto art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("[0.00, 1.00)"), std::string::npos);
}

}  // namespace
}  // namespace frieda
