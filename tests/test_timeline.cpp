#include "common/timeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace frieda {
namespace {

TEST(Timeline, BusyTimeUnionsOverlaps) {
  Timeline tl;
  tl.record(ActivityKind::kTransfer, 0.0, 10.0);
  tl.record(ActivityKind::kTransfer, 5.0, 15.0);   // overlaps
  tl.record(ActivityKind::kTransfer, 20.0, 25.0);  // disjoint
  EXPECT_DOUBLE_EQ(tl.busy_time(ActivityKind::kTransfer), 20.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(ActivityKind::kCompute), 0.0);
}

TEST(Timeline, OverlapBetweenKinds) {
  Timeline tl;
  tl.record(ActivityKind::kTransfer, 0.0, 10.0);
  tl.record(ActivityKind::kCompute, 5.0, 20.0);
  EXPECT_DOUBLE_EQ(tl.overlap_time(ActivityKind::kTransfer, ActivityKind::kCompute), 5.0);
}

TEST(Timeline, NoOverlapWhenSequential) {
  Timeline tl;
  tl.record(ActivityKind::kTransfer, 0.0, 10.0);
  tl.record(ActivityKind::kCompute, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(tl.overlap_time(ActivityKind::kTransfer, ActivityKind::kCompute), 0.0);
}

TEST(Timeline, FirstStartLastEnd) {
  Timeline tl;
  tl.record(ActivityKind::kCompute, 3.0, 5.0);
  tl.record(ActivityKind::kCompute, 1.0, 2.0);
  ASSERT_TRUE(tl.first_start(ActivityKind::kCompute).has_value());
  ASSERT_TRUE(tl.last_end(ActivityKind::kCompute).has_value());
  EXPECT_DOUBLE_EQ(*tl.first_start(ActivityKind::kCompute), 1.0);
  EXPECT_DOUBLE_EQ(*tl.last_end(ActivityKind::kCompute), 5.0);
  // An absent kind reports "no interval", not a fake t=0 timestamp.
  EXPECT_FALSE(tl.first_start(ActivityKind::kTransfer).has_value());
  EXPECT_FALSE(tl.last_end(ActivityKind::kTransfer).has_value());
}

TEST(Timeline, FirstStartAtTimeZeroIsDistinguishableFromEmpty) {
  Timeline tl;
  tl.record(ActivityKind::kTransfer, 0.0, 4.0);
  ASSERT_TRUE(tl.first_start(ActivityKind::kTransfer).has_value());
  EXPECT_DOUBLE_EQ(*tl.first_start(ActivityKind::kTransfer), 0.0);
  ASSERT_TRUE(tl.last_end(ActivityKind::kTransfer).has_value());
  EXPECT_DOUBLE_EQ(*tl.last_end(ActivityKind::kTransfer), 4.0);
}

TEST(Timeline, CountAndLabels) {
  Timeline tl;
  tl.record(ActivityKind::kTransfer, 0.0, 1.0, "common-data");
  tl.record(ActivityKind::kStage, 0.0, 2.0, "staging");
  EXPECT_EQ(tl.count(ActivityKind::kTransfer), 1u);
  EXPECT_EQ(tl.count(ActivityKind::kStage), 1u);
  EXPECT_EQ(tl.intervals().size(), 2u);
  EXPECT_EQ(tl.intervals()[0].label, "common-data");
}

TEST(Timeline, BackwardsIntervalThrows) {
  Timeline tl;
  EXPECT_THROW(tl.record(ActivityKind::kCompute, 5.0, 4.0), FriedaError);
  tl.record(ActivityKind::kCompute, 5.0, 5.0);  // zero-length is fine
  EXPECT_DOUBLE_EQ(tl.busy_time(ActivityKind::kCompute), 0.0);
}

TEST(Timeline, ManyIntervalsUnion) {
  Timeline tl;
  for (int i = 0; i < 100; ++i) {
    tl.record(ActivityKind::kCompute, i * 1.0, i * 1.0 + 0.5);
  }
  EXPECT_DOUBLE_EQ(tl.busy_time(ActivityKind::kCompute), 50.0);
}

}  // namespace
}  // namespace frieda
