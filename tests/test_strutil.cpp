#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace frieda::strutil {
namespace {

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StrUtil, StripComment) {
  EXPECT_EQ(strip_comment("key = v # note", '#'), "key = v ");
  EXPECT_EQ(strip_comment("no comment", '#'), "no comment");
  EXPECT_EQ(strip_comment("# all", '#'), "");
}

TEST(StrUtil, SplitJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(join({}, ","), "");
}

TEST(StrUtil, StartsWith) {
  EXPECT_TRUE(starts_with("frieda.master", "frieda."));
  EXPECT_FALSE(starts_with("fr", "frieda"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StrUtil, ToInt) {
  EXPECT_EQ(to_int("42").value(), 42);
  EXPECT_EQ(to_int(" -7 ").value(), -7);
  EXPECT_FALSE(to_int("12x").has_value());
  EXPECT_FALSE(to_int("").has_value());
  EXPECT_FALSE(to_int("4.2").has_value());
}

TEST(StrUtil, ToDouble) {
  EXPECT_DOUBLE_EQ(to_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(to_double("1e3").value(), 1000.0);
  EXPECT_FALSE(to_double("abc").has_value());
  EXPECT_FALSE(to_double("1.0garbage").has_value());
}

TEST(StrUtil, ToBool) {
  EXPECT_TRUE(to_bool("true").value());
  EXPECT_TRUE(to_bool("YES").value());
  EXPECT_TRUE(to_bool("on").value());
  EXPECT_TRUE(to_bool("1").value());
  EXPECT_FALSE(to_bool("false").value());
  EXPECT_FALSE(to_bool("off").value());
  EXPECT_FALSE(to_bool("maybe").has_value());
}

TEST(StrUtil, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(1024), "1.00 KiB");
  EXPECT_EQ(human_bytes(7 * 1024 * 1024), "7.00 MiB");
}

TEST(StrUtil, HumanSeconds) {
  EXPECT_EQ(human_seconds(5.0), "5.00 s");
  EXPECT_EQ(human_seconds(600.0), "10.0 min");
  EXPECT_EQ(human_seconds(7200.0), "2.00 h");
}

}  // namespace
}  // namespace frieda::strutil
