#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "frieda/adaptive.hpp"
#include "frieda/assignment.hpp"
#include "frieda/partition.hpp"

namespace frieda::core {
namespace {

std::vector<WorkUnit> make_units(const storage::FileCatalog& cat) {
  return PartitionGenerator::generate(PartitionScheme::kSingleFile, cat);
}

storage::FileCatalog uniform_catalog(std::size_t n, Bytes size = MB) {
  storage::FileCatalog cat;
  for (std::size_t i = 0; i < n; ++i) cat.add_file("f" + std::to_string(i), size);
  return cat;
}

TEST(Assignment, RoundRobin) {
  const auto cat = uniform_catalog(7);
  const auto units = make_units(cat);
  const auto a = assign_units(AssignmentPolicy::kRoundRobin, units, cat, 3);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], (std::vector<WorkUnitId>{0, 3, 6}));
  EXPECT_EQ(a[1], (std::vector<WorkUnitId>{1, 4}));
  EXPECT_EQ(a[2], (std::vector<WorkUnitId>{2, 5}));
}

TEST(Assignment, Block) {
  const auto cat = uniform_catalog(7);
  const auto units = make_units(cat);
  const auto a = assign_units(AssignmentPolicy::kBlock, units, cat, 3);
  EXPECT_EQ(a[0], (std::vector<WorkUnitId>{0, 1, 2}));
  EXPECT_EQ(a[1], (std::vector<WorkUnitId>{3, 4, 5}));
  EXPECT_EQ(a[2], (std::vector<WorkUnitId>{6}));
}

TEST(Assignment, SizeBalancedBeatsRoundRobinOnSkew) {
  storage::FileCatalog cat;
  // Sizes engineered so round-robin is lopsided.
  for (const Bytes s : {100 * MB, MB, MB, 90 * MB, MB, MB}) {
    cat.add_file("f" + std::to_string(cat.count()), s);
  }
  const auto units = make_units(cat);
  const auto balanced = assign_units(AssignmentPolicy::kSizeBalanced, units, cat, 2);
  const auto naive = assign_units(AssignmentPolicy::kRoundRobin, units, cat, 2);
  const auto load = [&](const std::vector<WorkUnitId>& list) {
    Bytes total = 0;
    for (const auto u : list) total += units[u].input_bytes(cat);
    return total;
  };
  const auto spread = [&](const std::vector<std::vector<WorkUnitId>>& a) {
    const Bytes l0 = load(a[0]), l1 = load(a[1]);
    return l0 > l1 ? l0 - l1 : l1 - l0;
  };
  EXPECT_LT(spread(balanced), spread(naive));
}

TEST(Assignment, EveryUnitAssignedExactlyOnce) {
  const auto cat = uniform_catalog(23);
  const auto units = make_units(cat);
  for (const auto policy : {AssignmentPolicy::kRoundRobin, AssignmentPolicy::kBlock,
                            AssignmentPolicy::kSizeBalanced}) {
    for (const std::size_t workers : {1u, 2u, 5u, 23u, 40u}) {
      const auto a = assign_units(policy, units, cat, workers);
      ASSERT_EQ(a.size(), workers);
      std::set<WorkUnitId> seen;
      for (const auto& list : a) {
        for (const auto u : list) EXPECT_TRUE(seen.insert(u).second);
      }
      EXPECT_EQ(seen.size(), units.size()) << to_string(policy) << " workers=" << workers;
    }
  }
}

TEST(Assignment, ZeroWorkersThrows) {
  const auto cat = uniform_catalog(3);
  EXPECT_THROW(assign_units(AssignmentPolicy::kRoundRobin, make_units(cat), cat, 0),
               FriedaError);
}

TEST(History, RecordAndQuery) {
  ExecutionHistory h;
  EXPECT_EQ(h.observations("blast", PlacementStrategy::kRealTime), 0u);
  EXPECT_FALSE(h.mean_makespan("blast", PlacementStrategy::kRealTime).has_value());
  h.record("blast", PlacementStrategy::kRealTime, 3800.0);
  h.record("blast", PlacementStrategy::kRealTime, 3900.0);
  h.record("blast", PlacementStrategy::kPrePartitionRemote, 4100.0);
  EXPECT_EQ(h.observations("blast", PlacementStrategy::kRealTime), 2u);
  EXPECT_NEAR(*h.mean_makespan("blast", PlacementStrategy::kRealTime), 3850.0, 1e-9);
  EXPECT_EQ(h.known_apps(), (std::vector<std::string>{"blast"}));
}

TEST(History, SerializeRoundTrip) {
  ExecutionHistory h;
  h.record("als", PlacementStrategy::kRealTime, 700.0);
  h.record("als", PlacementStrategy::kPrePartitionRemote, 790.0);
  h.record("als", PlacementStrategy::kPrePartitionRemote, 800.0);
  const auto text = h.serialize();
  const auto back = ExecutionHistory::deserialize(text);
  EXPECT_EQ(back.observations("als", PlacementStrategy::kPrePartitionRemote), 2u);
  EXPECT_NEAR(*back.mean_makespan("als", PlacementStrategy::kPrePartitionRemote), 795.0, 1e-9);
  EXPECT_THROW(ExecutionHistory::deserialize("bad line no pipes"), FriedaError);
}

TEST(History, SerializeEscapesDelimiterInAppName) {
  // Regression: an app name containing '|' (or '\') used to shift the fields
  // on deserialize, corrupting the round-trip.
  ExecutionHistory h;
  h.record("blast|nr|v5", PlacementStrategy::kRealTime, 120.0);
  h.record("back\\slash", PlacementStrategy::kRemoteRead, 60.0);
  const auto text = h.serialize();
  const auto back = ExecutionHistory::deserialize(text);
  EXPECT_EQ(back.observations("blast|nr|v5", PlacementStrategy::kRealTime), 1u);
  EXPECT_NEAR(*back.mean_makespan("blast|nr|v5", PlacementStrategy::kRealTime), 120.0, 1e-9);
  EXPECT_EQ(back.observations("back\\slash", PlacementStrategy::kRemoteRead), 1u);
  // Serializing the decoded history again is a fixed point.
  EXPECT_EQ(back.serialize(), text);
}

TEST(History, DeserializeRejectsMalformedLines) {
  // Truncated line (missing fields).
  EXPECT_THROW(ExecutionHistory::deserialize("app|real-time|3"), FriedaError);
  // Extra field.
  EXPECT_THROW(ExecutionHistory::deserialize("app|real-time|3|1.0|extra"), FriedaError);
  // Unknown strategy.
  EXPECT_THROW(ExecutionHistory::deserialize("app|warp-drive|3|1.0"), FriedaError);
  // Garbage count / trailing junk on numbers.
  EXPECT_THROW(ExecutionHistory::deserialize("app|real-time|three|1.0"), FriedaError);
  EXPECT_THROW(ExecutionHistory::deserialize("app|real-time|-2|1.0"), FriedaError);
  EXPECT_THROW(ExecutionHistory::deserialize("app|real-time|3|1.0junk"), FriedaError);
  // Non-finite or negative mean.
  EXPECT_THROW(ExecutionHistory::deserialize("app|real-time|3|nan"), FriedaError);
  EXPECT_THROW(ExecutionHistory::deserialize("app|real-time|3|-5.0"), FriedaError);
  // Dangling escape at end of line, and unknown escape sequence.
  EXPECT_THROW(ExecutionHistory::deserialize("app\\|real-time|3|1.0\\"), FriedaError);
  EXPECT_THROW(ExecutionHistory::deserialize("app\\q|real-time|3|1.0"), FriedaError);
  // Blank lines are still tolerated.
  const auto h = ExecutionHistory::deserialize("\n  \napp|real-time|1|2.0\n\n");
  EXPECT_EQ(h.observations("app", PlacementStrategy::kRealTime), 1u);
}

TEST(Adaptive, HeuristicTransferBoundPicksRealTime) {
  WorkloadShape shape;
  shape.bytes_per_unit = 14 * MB;       // ALS-like
  shape.seconds_per_unit = 2.0;
  shape.cost_cv = 0.0;
  shape.staging_bandwidth = mbps(100);
  shape.total_cores = 16;
  EXPECT_EQ(AdaptiveSelector::heuristic(shape), PlacementStrategy::kRealTime);
}

TEST(Adaptive, HeuristicSkewedComputePicksRealTime) {
  WorkloadShape shape;
  shape.bytes_per_unit = 2 * KB;  // BLAST-like
  shape.seconds_per_unit = 8.16;
  shape.cost_cv = 0.5;
  shape.staging_bandwidth = mbps(100);
  shape.total_cores = 16;
  EXPECT_EQ(AdaptiveSelector::heuristic(shape), PlacementStrategy::kRealTime);
}

TEST(Adaptive, HeuristicHomogeneousComputePicksPrePartition) {
  WorkloadShape shape;
  shape.bytes_per_unit = KB;
  shape.seconds_per_unit = 10.0;
  shape.cost_cv = 0.0;
  shape.staging_bandwidth = mbps(100);
  shape.total_cores = 4;
  EXPECT_EQ(AdaptiveSelector::heuristic(shape), PlacementStrategy::kPrePartitionRemote);
}

TEST(Adaptive, HeuristicLocalDataPicksLocal) {
  WorkloadShape shape;
  shape.data_already_local = true;
  EXPECT_EQ(AdaptiveSelector::heuristic(shape), PlacementStrategy::kPrePartitionLocal);
}

TEST(Adaptive, HeuristicStorageSelection) {
  // Section III.A storage awareness: a unit that cannot even fit on the
  // local disk must be streamed; a share that does not fit needs real-time
  // eviction; plentiful disk falls through to the normal rules.
  WorkloadShape shape;
  shape.bytes_per_unit = 12 * GiB;
  shape.bytes_per_node_share = 100 * GiB;
  shape.local_disk_capacity = 10 * GiB;
  shape.seconds_per_unit = 10.0;
  shape.staging_bandwidth = gbps(10);
  shape.total_cores = 4;
  EXPECT_EQ(AdaptiveSelector::heuristic(shape), PlacementStrategy::kRemoteRead);

  shape.bytes_per_unit = 1 * GiB;
  EXPECT_EQ(AdaptiveSelector::heuristic(shape), PlacementStrategy::kRealTime);

  shape.local_disk_capacity = 200 * GiB;  // plenty: falls through
  shape.bytes_per_unit = KB;
  shape.bytes_per_node_share = MB;
  EXPECT_EQ(AdaptiveSelector::heuristic(shape), PlacementStrategy::kPrePartitionRemote);
}

TEST(Adaptive, HistoryOverridesHeuristic) {
  ExecutionHistory h;
  // History says pre-partition wins for this app even though the shape is
  // skewed (say the skew estimate was wrong).
  h.record("app", PlacementStrategy::kRealTime, 1000.0);
  h.record("app", PlacementStrategy::kPrePartitionRemote, 600.0);
  AdaptiveSelector sel(h);
  WorkloadShape shape;
  shape.cost_cv = 0.9;
  shape.staging_bandwidth = mbps(100);
  shape.seconds_per_unit = 100.0;
  shape.total_cores = 1;
  EXPECT_EQ(sel.choose("app", shape), PlacementStrategy::kPrePartitionRemote);
  // Unknown app falls back to the heuristic.
  EXPECT_EQ(sel.choose("other", shape), PlacementStrategy::kRealTime);
}

TEST(Adaptive, MinObservationsGate) {
  ExecutionHistory h;
  h.record("app", PlacementStrategy::kRealTime, 500.0);
  h.record("app", PlacementStrategy::kPrePartitionRemote, 400.0);
  AdaptiveSelector sel(h);
  WorkloadShape shape;  // heuristic would say pre-partition (no skew, no bytes)
  shape.seconds_per_unit = 1.0;
  // With min_observations=2 the single samples are not trusted.
  EXPECT_EQ(sel.choose("app", shape, 2), PlacementStrategy::kPrePartitionRemote);
  h.record("app", PlacementStrategy::kRealTime, 300.0);
  h.record("app", PlacementStrategy::kPrePartitionRemote, 450.0);
  AdaptiveSelector sel2(h);
  EXPECT_EQ(sel2.choose("app", shape, 2), PlacementStrategy::kRealTime);
}

}  // namespace
}  // namespace frieda::core
