#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace frieda::cluster {
namespace {

TEST(InstanceType, PaperFlavor) {
  const auto t = c1_xlarge();
  EXPECT_EQ(t.cores, 4u);
  EXPECT_EQ(t.memory, 4 * GiB);
  EXPECT_DOUBLE_EQ(t.nic_up, mbps(100));
  EXPECT_EQ(c1_medium().cores, 1u);
  EXPECT_EQ(m1_large().cores, 2u);
}

TEST(VmState, Names) {
  EXPECT_STREQ(to_string(VmState::kProvisioning), "provisioning");
  EXPECT_STREQ(to_string(VmState::kRunning), "running");
  EXPECT_STREQ(to_string(VmState::kFailed), "failed");
  EXPECT_STREQ(to_string(VmState::kTerminated), "terminated");
}

TEST(VirtualCluster, ProvisioningBootsAfterDelay) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = c1_xlarge();
  type.boot_time = 30.0;
  const VmId id = cluster.provision(type);
  EXPECT_EQ(cluster.vm(id).state(), VmState::kProvisioning);
  int became_running = 0;
  cluster.on_running([&](VmId) { ++became_running; });
  bool waited = false;
  sim.spawn([](VirtualCluster& c, VmId v, bool& w, sim::Simulation& s) -> sim::Task<> {
    co_await c.wait_running(v);
    EXPECT_DOUBLE_EQ(s.now(), 30.0);
    w = true;
  }(cluster, id, waited, sim));
  sim.run();
  EXPECT_TRUE(waited);
  EXPECT_EQ(became_running, 1);
  EXPECT_TRUE(cluster.vm(id).running());
}

TEST(VirtualCluster, SourceNodeExists) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  EXPECT_EQ(cluster.network().topology().node_count(), 1u);
  EXPECT_EQ(cluster.network().topology().name(cluster.source_node()), "source");
}

TEST(VirtualCluster, ProvisionManyAndCountCores) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  const auto ids = cluster.provision(c1_xlarge(), 4);
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(cluster.total_running_cores(), 0u);  // still booting
  sim.spawn([](VirtualCluster& c, std::vector<VmId> v) -> sim::Task<> {
    co_await c.wait_all_running(v);
  }(cluster, ids));
  sim.run();
  EXPECT_EQ(cluster.total_running_cores(), 16u);
  EXPECT_EQ(cluster.running_vms().size(), 4u);
  EXPECT_EQ(cluster.all_vms().size(), 4u);
}

TEST(Vm, ComputeOccupiesCoreForServiceTime) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = c1_medium();
  type.boot_time = 0.0;
  const VmId id = cluster.provision(type);
  ComputeResult result;
  sim.spawn([](VirtualCluster& c, VmId v, ComputeResult& out) -> sim::Task<> {
    co_await c.wait_running(v);
    out = co_await c.vm(v).compute(5.0);
  }(cluster, id, result));
  sim.run();
  EXPECT_TRUE(result.completed);
  EXPECT_NEAR(result.duration, 5.0, 1e-9);
  EXPECT_NEAR(cluster.vm(id).core_seconds_used(), 5.0, 1e-9);
}

TEST(Vm, MulticoreRunsInParallelQueuesWhenFull) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = m1_large();  // 2 cores
  type.boot_time = 0.0;
  const VmId id = cluster.provision(type);
  std::vector<double> finish_times;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](VirtualCluster& c, VmId v, std::vector<double>& out,
                 sim::Simulation& s) -> sim::Task<> {
      co_await c.wait_running(v);
      (void)co_await c.vm(v).compute(10.0);
      out.push_back(s.now());
    }(cluster, id, finish_times, sim));
  }
  sim.run();
  ASSERT_EQ(finish_times.size(), 4u);
  // 4 tasks, 2 cores, 10 s each: two waves.
  EXPECT_NEAR(finish_times[0], 10.0, 1e-9);
  EXPECT_NEAR(finish_times[1], 10.0, 1e-9);
  EXPECT_NEAR(finish_times[2], 20.0, 1e-9);
  EXPECT_NEAR(finish_times[3], 20.0, 1e-9);
}

TEST(Vm, FailureInterruptsCompute) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = c1_medium();
  type.boot_time = 0.0;
  const VmId id = cluster.provision(type);
  ComputeResult result;
  sim.spawn([](VirtualCluster& c, VmId v, ComputeResult& out) -> sim::Task<> {
    co_await c.wait_running(v);
    out = co_await c.vm(v).compute(100.0);
  }(cluster, id, result));
  sim.schedule_at(30.0, [&] { cluster.fail_vm(id); });
  sim.run();
  EXPECT_FALSE(result.completed);
  EXPECT_NEAR(result.duration, 30.0, 1e-9);
  EXPECT_EQ(cluster.vm(id).state(), VmState::kFailed);
  EXPECT_DOUBLE_EQ(cluster.vm(id).core_seconds_used(), 0.0);
}

TEST(Vm, ComputeOnFailedVmReturnsImmediately) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = c1_medium();
  type.boot_time = 0.0;
  const VmId id = cluster.provision(type);
  sim.run();  // boot
  cluster.fail_vm(id);
  ComputeResult result{true, 99.0};
  sim.spawn([](VirtualCluster& c, VmId v, ComputeResult& out) -> sim::Task<> {
    out = co_await c.vm(v).compute(10.0);
  }(cluster, id, result));
  sim.run();
  EXPECT_FALSE(result.completed);
  EXPECT_DOUBLE_EQ(result.duration, 0.0);
}

TEST(VirtualCluster, FailureNotifiesObserversAndNetwork) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = c1_xlarge();
  type.boot_time = 0.0;
  const VmId id = cluster.provision(type);
  sim.run();
  std::vector<VmId> failures;
  cluster.on_failure([&](VmId v) { failures.push_back(v); });
  cluster.fail_vm(id);
  EXPECT_EQ(failures, (std::vector<VmId>{id}));
  EXPECT_TRUE(cluster.network().node_failed(cluster.vm(id).node()));
  cluster.fail_vm(id);  // idempotent: no double notification
  EXPECT_EQ(failures.size(), 1u);
}

TEST(VirtualCluster, TerminateRequiresDrainedVm) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = c1_medium();
  type.boot_time = 0.0;
  const VmId id = cluster.provision(type);
  sim.run();
  cluster.terminate_vm(id);
  EXPECT_EQ(cluster.vm(id).state(), VmState::kTerminated);
  EXPECT_TRUE(cluster.running_vms().empty());
}

TEST(FailureInjector, ScheduledFailureFires) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = c1_medium();
  type.boot_time = 0.0;
  const VmId id = cluster.provision(type);
  FailureInjector injector(cluster);
  injector.schedule(id, 10.0);
  sim.run();
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(cluster.vm(id).state(), VmState::kFailed);
}

TEST(FailureInjector, ScheduledFailureSkipsNonRunningVm) {
  sim::Simulation sim;
  VirtualCluster cluster(sim);
  auto type = c1_medium();
  type.boot_time = 100.0;  // still provisioning at t=10
  const VmId id = cluster.provision(type);
  FailureInjector injector(cluster);
  injector.schedule(id, 10.0);
  sim.run();
  EXPECT_EQ(injector.injected(), 0u);
  EXPECT_TRUE(cluster.vm(id).running());
}

TEST(FailureInjector, RandomFailuresAreDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation sim(seed);
    VirtualCluster cluster(sim);
    auto type = c1_medium();
    type.boot_time = 0.0;
    cluster.provision(type, 8);
    FailureInjector injector(cluster);
    injector.enable_random(/*rate=*/0.01, /*max_failures=*/3);
    sim.run();
    std::vector<VmState> states;
    for (VmId id : cluster.all_vms()) states.push_back(cluster.vm(id).state());
    return std::make_pair(injector.injected(), states);
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.first, 3u);
}

TEST(ActionPlan, FiresAtScheduledTimes) {
  sim::Simulation sim;
  ActionPlan plan(sim);
  std::vector<double> fired;
  plan.at(5.0, [&] { fired.push_back(sim.now()); });
  plan.at(2.0, [&] { fired.push_back(sim.now()); });
  EXPECT_EQ(plan.count(), 2u);
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{2.0, 5.0}));
}

}  // namespace
}  // namespace frieda::cluster
