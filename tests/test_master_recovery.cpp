// Master failure and recovery (paper Section V.A: the master is a single
// point of failure; monitoring/recovery via the controller-master channel is
// future work — implemented here as FriedaRun::crash_master()).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/synthetic.hpp"

namespace frieda::core {
namespace {

using cluster::VirtualCluster;
using workload::SyntheticModel;
using workload::SyntheticParams;

struct Scenario {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<VirtualCluster> cluster;
  std::unique_ptr<SyntheticModel> app;
  std::vector<WorkUnit> units;
};

Scenario make_scenario(SyntheticParams params) {
  Scenario s;
  s.sim = std::make_unique<sim::Simulation>(5);
  s.cluster = std::make_unique<VirtualCluster>(*s.sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  s.cluster->provision(type, 2);
  s.app = std::make_unique<SyntheticModel>(params);
  s.units = PartitionGenerator::generate(PartitionScheme::kSingleFile, s.app->catalog());
  return s;
}

SyntheticParams transfer_heavy() {
  SyntheticParams params;
  params.file_count = 30;
  params.mean_file_bytes = 15 * MB;  // staging takes ~1.2 s per file alone
  params.mean_task_seconds = 2.0;
  return params;
}

RunReport run_with_crash(SimTime crash_at, SimTime recovery, SimTime second_crash = 0.0) {
  auto s = make_scenario(transfer_heavy());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  if (crash_at > 0.0) {
    s.sim->schedule_at(crash_at, [&run, recovery] { run.crash_master(recovery); });
  }
  if (second_crash > 0.0) {
    s.sim->schedule_at(second_crash, [&run, recovery] { run.crash_master(recovery); });
  }
  return run.run();
}

TEST(MasterRecovery, RunCompletesAfterCrashMidRun) {
  const auto baseline = run_with_crash(0.0, 0.0);
  const auto crashed = run_with_crash(20.0, 15.0);
  ASSERT_TRUE(baseline.all_completed());
  ASSERT_TRUE(crashed.all_completed()) << crashed.summary();
  // The outage costs wall time but nothing is lost or double-counted.
  EXPECT_GT(crashed.makespan(), baseline.makespan());
  EXPECT_EQ(crashed.units_completed, crashed.units_total);
}

TEST(MasterRecovery, ExecutionPlaneSurvivesOutage) {
  // Workers that already hold assignments keep computing through the outage:
  // at least one unit must FINISH while the master is down (between t=20 and
  // t=35).
  const auto crashed = run_with_crash(20.0, 15.0);
  ASSERT_TRUE(crashed.all_completed());
  bool finished_during_outage = false;
  for (const auto& rec : crashed.units) {
    // ExecStatus is processed after recovery, so `finished` lands at the
    // recovery instant for those units.
    finished_during_outage |= rec.finished >= 34.9 && rec.finished <= 35.1;
  }
  EXPECT_TRUE(finished_during_outage);
}

TEST(MasterRecovery, MidStagingAssignmentsAreRedispatched) {
  const auto crashed = run_with_crash(20.0, 15.0);
  ASSERT_TRUE(crashed.all_completed());
  // Units whose staging the crash interrupted needed a second dispatch.
  bool redispatched = false;
  for (const auto& rec : crashed.units) redispatched |= rec.attempts > 1;
  EXPECT_TRUE(redispatched);
}

TEST(MasterRecovery, SurvivesRepeatedCrashes) {
  const auto crashed = run_with_crash(15.0, 10.0, /*second_crash=*/60.0);
  ASSERT_TRUE(crashed.all_completed()) << crashed.summary();
}

TEST(MasterRecovery, CrashAfterCompletionIsNoOp) {
  auto s = make_scenario(transfer_heavy());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  s.sim->schedule_at(100000.0, [&run] { run.crash_master(10.0); });
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
}

TEST(MasterRecovery, ZeroDelayRecoveryIsSeamless) {
  const auto crashed = run_with_crash(20.0, 0.0);
  const auto baseline = run_with_crash(0.0, 0.0);
  ASSERT_TRUE(crashed.all_completed());
  // Instant restart costs at most the re-dispatch of mid-staging units.
  EXPECT_LT(crashed.makespan(), baseline.makespan() * 1.25);
}

TEST(MasterRecovery, WorksUnderPrePartitioning) {
  auto s = make_scenario(transfer_heavy());
  RunOptions opt;
  opt.strategy = PlacementStrategy::kPrePartitionRemote;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  // Crash during the execution phase (staging of ~450 MB takes ~36 s).
  s.sim->schedule_at(45.0, [&run] { run.crash_master(5.0); });
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed()) << report.summary();
}

}  // namespace
}  // namespace frieda::core
