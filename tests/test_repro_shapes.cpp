// Paper-shape assertions (scaled-down versions of Table I, Figures 6 and 7).
//
// These tests run the exact scenario builders the benches use, at 20% of the
// paper's dataset sizes so they stay fast, and assert the *relations* the
// paper reports: who wins, roughly by how much, and which workloads are
// insensitive.  The full-scale numbers live in bench/ and EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "workload/calibration.hpp"
#include "workload/scenarios.hpp"

namespace frieda::workload {
namespace {

using core::PlacementStrategy;

PaperScenarioOptions scaled() {
  PaperScenarioOptions opt;
  opt.scale = 0.2;
  return opt;
}

TEST(ReproShapes, AlsParallelSpeedupIsModest) {
  // Table I: ALS gains only ~2x from 16 cores because staging dominates.
  const auto opt = scaled();
  const auto seq = run_als_sequential(opt);
  const auto rt = run_als(PlacementStrategy::kRealTime, opt);
  ASSERT_TRUE(seq.all_completed());
  ASSERT_TRUE(rt.all_completed());
  const double speedup = seq.makespan() / rt.makespan();
  EXPECT_GT(speedup, 1.4);
  EXPECT_LT(speedup, 3.5);
}

TEST(ReproShapes, BlastParallelSpeedupIsLarge) {
  // Table I: BLAST gains ~15x — compute-bound, 16 cores.
  const auto opt = scaled();
  const auto seq = run_blast_sequential(opt);
  const auto rt = run_blast(PlacementStrategy::kRealTime, opt);
  ASSERT_TRUE(seq.all_completed());
  ASSERT_TRUE(rt.all_completed());
  const double speedup = seq.makespan() / rt.makespan();
  EXPECT_GT(speedup, 11.0);
  EXPECT_LT(speedup, 16.5);
}

TEST(ReproShapes, AlsStrategyOrderingMatchesFigure6a) {
  // Figure 6a: local < real-time < pre-partition-remote.
  const auto opt = scaled();
  const auto local = run_als(PlacementStrategy::kPrePartitionLocal, opt);
  const auto rt = run_als(PlacementStrategy::kRealTime, opt);
  const auto pre = run_als(PlacementStrategy::kPrePartitionRemote, opt);
  ASSERT_TRUE(local.all_completed() && rt.all_completed() && pre.all_completed());
  EXPECT_LT(local.makespan(), rt.makespan());
  EXPECT_LT(rt.makespan(), pre.makespan());
  // Real-time hides most of the transfer behind compute: the win over
  // pre-partitioning should be a visible chunk of the compute time.
  EXPECT_GT(pre.makespan() - rt.makespan(), 0.5 * local.makespan());
}

TEST(ReproShapes, AlsRealTimeOverlapsPrePartitionDoesNot) {
  const auto opt = scaled();
  const auto rt = run_als(PlacementStrategy::kRealTime, opt);
  const auto pre = run_als(PlacementStrategy::kPrePartitionRemote, opt);
  EXPECT_GT(rt.overlap(), 0.25 * rt.compute_busy());
  EXPECT_NEAR(pre.overlap(), 0.0, 1e-6);
  EXPECT_GT(pre.staging_seconds(), 0.5 * pre.makespan());  // staging dominates
}

TEST(ReproShapes, BlastRealTimeBeatsPrePartitionViaBalancing) {
  // Figure 6b / Table I: real-time wins on BLAST through load balancing of
  // the skewed per-sequence costs, not transfer overlap.
  const auto opt = scaled();
  const auto rt = run_blast(PlacementStrategy::kRealTime, opt);
  const auto pre = run_blast(PlacementStrategy::kPrePartitionRemote, opt);
  ASSERT_TRUE(rt.all_completed() && pre.all_completed());
  EXPECT_LT(rt.makespan(), pre.makespan());
  // But the gap is modest (paper: 4131 vs 3795, ~8%).
  EXPECT_LT((pre.makespan() - rt.makespan()) / pre.makespan(), 0.25);
}

TEST(ReproShapes, Figure7aAlsPrefersMovingComputationToData) {
  // Fig 7a: moving the computation to resident data beats moving the data.
  const auto opt = scaled();
  const auto move_compute = run_als(PlacementStrategy::kPrePartitionLocal, opt);
  const auto move_data = run_als(PlacementStrategy::kPrePartitionRemote, opt);
  EXPECT_LT(move_compute.makespan(), 0.6 * move_data.makespan());
}

TEST(ReproShapes, Figure7bBlastInsensitiveToPlacement) {
  // Fig 7b: BLAST is almost insensitive to where data/compute sit.
  const auto opt = scaled();
  const auto move_compute = run_blast(PlacementStrategy::kPrePartitionLocal, opt);
  const auto move_data = run_blast(PlacementStrategy::kPrePartitionRemote, opt);
  const double gap =
      std::abs(move_compute.makespan() - move_data.makespan()) / move_data.makespan();
  EXPECT_LT(gap, 0.10);
}

TEST(ReproShapes, BlastBytesDominatedByDatabase) {
  // Section IV.B: "the data movement costs are dominated by the backend
  // database that needs to be available on every node."
  const auto opt = scaled();
  const auto rt = run_blast(PlacementStrategy::kRealTime, opt);
  const Bytes db = static_cast<Bytes>(calib::kBlastDatabaseBytes * opt.scale);
  EXPECT_GT(rt.bytes_moved, 4 * db);             // one copy per node
  EXPECT_LT(rt.bytes_moved, 4 * db + 100 * MB);  // queries are tiny
}

}  // namespace
}  // namespace frieda::workload
