#include <gtest/gtest.h>

#include "common/error.hpp"
#include "frieda/command.hpp"
#include "frieda/protocol.hpp"
#include "frieda/types.hpp"

namespace frieda::core {
namespace {

TEST(Command, ParsesPaperExample) {
  // "app arg1 arg2 $inp1" — Section II.D.
  const CommandTemplate cmd("app arg1 arg2 $inp1");
  EXPECT_EQ(cmd.program(), "app");
  EXPECT_EQ(cmd.input_arity(), 1u);
  EXPECT_EQ(cmd.bind({"/data/seq.fasta"}), "app arg1 arg2 /data/seq.fasta");
}

TEST(Command, TwoInputs) {
  const CommandTemplate cmd("compare -t 0.9 $inp1 $inp2");
  EXPECT_EQ(cmd.input_arity(), 2u);
  EXPECT_EQ(cmd.bind({"a.tif", "b.tif"}), "compare -t 0.9 a.tif b.tif");
}

TEST(Command, PlaceholderOrderFollowsTemplate) {
  const CommandTemplate cmd("p $inp2 $inp1");
  EXPECT_EQ(cmd.bind({"first", "second"}), "p second first");
}

TEST(Command, NoInputs) {
  const CommandTemplate cmd("hostname -f");
  EXPECT_EQ(cmd.input_arity(), 0u);
  EXPECT_EQ(cmd.bind({}), "hostname -f");
}

TEST(Command, MalformedTemplatesThrow) {
  EXPECT_THROW(CommandTemplate(""), FriedaError);
  EXPECT_THROW(CommandTemplate("   "), FriedaError);
  EXPECT_THROW(CommandTemplate("app $inp1 $inp1"), FriedaError);   // duplicate
  EXPECT_THROW(CommandTemplate("app $inp2"), FriedaError);         // not dense
  EXPECT_THROW(CommandTemplate("app $inpX"), FriedaError);         // malformed
  EXPECT_THROW(CommandTemplate("app $inp0"), FriedaError);         // 1-based
}

TEST(Command, BindArityMismatchThrows) {
  const CommandTemplate cmd("app $inp1");
  EXPECT_THROW(cmd.bind({}), FriedaError);
  EXPECT_THROW(cmd.bind({"a", "b"}), FriedaError);
}

TEST(Command, BindUnitUsesCatalogNames) {
  storage::FileCatalog cat;
  cat.add_file("img_0.tif", MB);
  cat.add_file("img_1.tif", MB);
  WorkUnit unit;
  unit.inputs = {0, 1};
  const CommandTemplate cmd("compare $inp1 $inp2");
  EXPECT_TRUE(cmd.accepts(unit));
  EXPECT_EQ(cmd.bind_unit(unit, cat), "compare /data/img_0.tif /data/img_1.tif");
  EXPECT_EQ(cmd.bind_unit(unit, cat, "/scratch"),
            "compare /scratch/img_0.tif /scratch/img_1.tif");
  WorkUnit wrong;
  wrong.inputs = {0};
  EXPECT_FALSE(cmd.accepts(wrong));
}

TEST(Protocol, MessageNames) {
  EXPECT_STREQ(message_name(ControlMessage{StartMaster{}}), "START_MASTER");
  EXPECT_STREQ(message_name(ControlMessage{SetPartitionInfo{}}), "SET_PARTITION_INFO");
  EXPECT_STREQ(message_name(ControlMessage{ForkWorkers{}}), "FORK_REMOTE_WORKERS");
  EXPECT_STREQ(message_name(ControlMessage{IsolateWorker{}}), "ISOLATE_WORKER");
  EXPECT_STREQ(message_name(ControlMessage{AddWorkers{}}), "ADD_WORKERS");
  EXPECT_STREQ(message_name(ControlMessage{DrainWorker{}}), "DRAIN_WORKER");
  EXPECT_STREQ(message_name(ControlMessage{ControlDone{}}), "CONTROL_DONE");
  EXPECT_STREQ(message_name(WorkerMessage{RegisterWorker{}}), "REGISTER_WORKER");
  EXPECT_STREQ(message_name(WorkerMessage{RequestWork{}}), "REQUEST_DATA");
  EXPECT_STREQ(message_name(WorkerMessage{ExecStatus{}}), "EXEC_STATUS");
  EXPECT_STREQ(message_name(MasterMessage{AssignWork{}}), "FILE_METADATA");
  EXPECT_STREQ(message_name(MasterMessage{NoMoreWork{}}), "NO_MORE_WORK");
}

TEST(Types, EnumRoundTrips) {
  for (const auto s : {PartitionScheme::kSingleFile, PartitionScheme::kOneToAll,
                       PartitionScheme::kPairwiseAdjacent, PartitionScheme::kAllToAll}) {
    EXPECT_EQ(parse_partition_scheme(to_string(s)), s);
  }
  for (const auto s :
       {PlacementStrategy::kNoPartitionCommon, PlacementStrategy::kPrePartitionLocal,
        PlacementStrategy::kPrePartitionRemote, PlacementStrategy::kRealTime,
        PlacementStrategy::kRemoteRead}) {
    EXPECT_EQ(parse_placement_strategy(to_string(s)), s);
  }
  for (const auto p : {AssignmentPolicy::kRoundRobin, AssignmentPolicy::kBlock,
                       AssignmentPolicy::kSizeBalanced}) {
    EXPECT_EQ(parse_assignment_policy(to_string(p)), p);
  }
  EXPECT_FALSE(parse_partition_scheme("nope").has_value());
  EXPECT_FALSE(parse_placement_strategy("nope").has_value());
  EXPECT_FALSE(parse_assignment_policy("nope").has_value());
}

}  // namespace
}  // namespace frieda::core
