// Execution-template correctness (src/frieda/template.*).
//
// The contract under test: instantiating a run from a cached execution
// template is *value-identical* to building the control plane from scratch.
// The differential suite below re-runs full paper scenarios with templates
// off, cold (capture), and warm (instantiate), and compares the resulting
// RunReports field by field — any divergence in the partition list, the
// assignment table, a bound command, or an arrival schedule shows up as a
// timestamp or unit-record mismatch here.  The remaining tests pin the
// invalidation rules (what shares a key, what patches, what rebuilds), the
// TemplateStore LRU/counter mechanics, capture-time validation, and the
// FRIEDA_TEMPLATES / FRIEDA_TEMPLATE_AUDIT env parsing.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "frieda/assignment.hpp"
#include "frieda/partition.hpp"
#include "frieda/template.hpp"
#include "storage/file.hpp"
#include "workload/scenarios.hpp"

namespace frieda {
namespace {

using core::PlacementStrategy;
using workload::PaperScenarioOptions;

constexpr PlacementStrategy kStrategies[] = {
    PlacementStrategy::kNoPartitionCommon,
    PlacementStrategy::kPrePartitionRemote,
    PlacementStrategy::kPrePartitionLocal,
    PlacementStrategy::kRealTime,
};

// Field-by-field, bit-exact report equality.  Deliberately not operator==
// on RunReport: spelling every field out here means a future field added to
// the report without a matching line below fails loudly in review, and the
// per-field messages locate a divergence immediately.
void expect_identical(const core::RunReport& a, const core::RunReport& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.ready_time, b.ready_time);
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.staging_end, b.staging_end);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.units_total, b.units_total);
  EXPECT_EQ(a.units_completed, b.units_completed);
  EXPECT_EQ(a.units_failed, b.units_failed);
  EXPECT_EQ(a.units_unprocessed, b.units_unprocessed);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.workers_isolated, b.workers_isolated);
  EXPECT_EQ(a.open_loop, b.open_loop);
  EXPECT_EQ(a.serve_start, b.serve_start);
  EXPECT_EQ(a.scale_outs, b.scale_outs);
  EXPECT_EQ(a.scale_ins, b.scale_ins);
  ASSERT_EQ(a.units.size(), b.units.size());
  for (std::size_t i = 0; i < a.units.size(); ++i) {
    EXPECT_EQ(a.units[i].unit, b.units[i].unit) << "unit " << i;
    EXPECT_EQ(a.units[i].status, b.units[i].status) << "unit " << i;
    EXPECT_EQ(a.units[i].worker, b.units[i].worker) << "unit " << i;
    EXPECT_EQ(a.units[i].attempts, b.units[i].attempts) << "unit " << i;
    EXPECT_EQ(a.units[i].arrival, b.units[i].arrival) << "unit " << i;
    EXPECT_EQ(a.units[i].dispatched, b.units[i].dispatched) << "unit " << i;
    EXPECT_EQ(a.units[i].finished, b.units[i].finished) << "unit " << i;
    EXPECT_EQ(a.units[i].transfer_seconds, b.units[i].transfer_seconds) << "unit " << i;
    EXPECT_EQ(a.units[i].exec_seconds, b.units[i].exec_seconds) << "unit " << i;
  }
  ASSERT_EQ(a.workers.size(), b.workers.size());
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    EXPECT_EQ(a.workers[i].worker, b.workers[i].worker) << "worker " << i;
    EXPECT_EQ(a.workers[i].vm, b.workers[i].vm) << "worker " << i;
    EXPECT_EQ(a.workers[i].slot, b.workers[i].slot) << "worker " << i;
    EXPECT_EQ(a.workers[i].units_completed, b.workers[i].units_completed) << "worker " << i;
    EXPECT_EQ(a.workers[i].busy_seconds, b.workers[i].busy_seconds) << "worker " << i;
    EXPECT_EQ(a.workers[i].isolated, b.workers[i].isolated) << "worker " << i;
    EXPECT_EQ(a.workers[i].drained, b.workers[i].drained) << "worker " << i;
  }
  const auto& ia = a.timeline.intervals();
  const auto& ib = b.timeline.intervals();
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].kind, ib[i].kind) << "interval " << i;
    EXPECT_EQ(ia[i].start, ib[i].start) << "interval " << i;
    EXPECT_EQ(ia[i].end, ib[i].end) << "interval " << i;
    EXPECT_EQ(ia[i].label, ib[i].label) << "interval " << i;
  }
}

core::RunReport run_scratch(PlacementStrategy strategy, PaperScenarioOptions opt) {
  opt.use_execution_templates = false;
  return workload::run_blast(strategy, opt);
}

// Scenario tests share the process-global store, so each test starts from a
// clean slate and restores the default flags on the way out.
class TemplateScenario : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    auto& s = core::TemplateStore::global();
    s.clear();
    s.set_enabled(true);
    s.set_differential_check(false);
    s.set_max_entries(core::TemplateStore::kDefaultMaxEntries);
  }
};

TEST_F(TemplateScenario, TemplatedRunsMatchScratchAcrossStrategies) {
  PaperScenarioOptions opt;
  opt.scale = 0.01;  // 75 BLAST queries: fast, but every code path is real
  auto& store = core::TemplateStore::global();
  for (const auto strategy : kStrategies) {
    const auto scratch = run_scratch(strategy, opt);
    ASSERT_TRUE(scratch.all_completed());
    const auto builds_before = store.builds();
    const auto cold = workload::run_blast(strategy, opt);   // captures
    const auto warm = workload::run_blast(strategy, opt);   // instantiates
    EXPECT_EQ(store.builds(), builds_before + 1);
    expect_identical(scratch, cold);
    expect_identical(scratch, warm);
  }
  EXPECT_GE(store.hits(), 4u);  // one warm run per strategy
}

TEST_F(TemplateScenario, AlsTemplatedRunMatchesScratch) {
  PaperScenarioOptions opt;
  opt.scale = 0.02;  // 24 images -> 12 pairwise units
  PaperScenarioOptions scratch_opt = opt;
  scratch_opt.use_execution_templates = false;
  const auto scratch = workload::run_als(PlacementStrategy::kRealTime, scratch_opt);
  const auto cold = workload::run_als(PlacementStrategy::kRealTime, opt);
  const auto warm = workload::run_als(PlacementStrategy::kRealTime, opt);
  ASSERT_TRUE(scratch.all_completed());
  expect_identical(scratch, cold);
  expect_identical(scratch, warm);
}

TEST_F(TemplateScenario, SeedRerunHitsTemplateAndStaysIdentical) {
  auto& store = core::TemplateStore::global();
  PaperScenarioOptions opt;
  opt.scale = 0.01;
  opt.seed = 1;
  const auto builds_before = store.builds();
  const auto hits_before = store.hits();
  (void)workload::run_blast(PlacementStrategy::kRealTime, opt);  // capture
  EXPECT_EQ(store.builds(), builds_before + 1);

  opt.seed = 2;  // seed is patchable: same key, no rebuild
  const auto templated = workload::run_blast(PlacementStrategy::kRealTime, opt);
  EXPECT_EQ(store.builds(), builds_before + 1);
  EXPECT_GT(store.hits(), hits_before);
  expect_identical(run_scratch(PlacementStrategy::kRealTime, opt), templated);
}

TEST_F(TemplateScenario, WorkerShapeRerunPatchesAssignment) {
  auto& store = core::TemplateStore::global();
  PaperScenarioOptions opt;
  opt.scale = 0.01;
  const auto builds_before = store.builds();
  (void)workload::run_blast(PlacementStrategy::kPrePartitionRemote, opt);  // capture @ 4 VMs
  const auto patches_before = store.patches();

  opt.worker_vms = 2;  // shape delta: same template, assignment recomputed
  const auto templated = workload::run_blast(PlacementStrategy::kPrePartitionRemote, opt);
  EXPECT_EQ(store.builds(), builds_before + 1);
  EXPECT_GT(store.patches(), patches_before);
  expect_identical(run_scratch(PlacementStrategy::kPrePartitionRemote, opt), templated);
}

TEST_F(TemplateScenario, ArrivalConfigDeltaPatchesSchedule) {
  auto& store = core::TemplateStore::global();
  PaperScenarioOptions opt;
  opt.scale = 0.004;  // 30 queries, matching the service-mode tests
  opt.service.open_loop = true;
  opt.service.arrivals.kind = workload::ArrivalKind::kPoisson;
  opt.service.arrivals.rate = 4.0;
  const auto builds_before = store.builds();
  (void)workload::run_blast(PlacementStrategy::kRealTime, opt);  // capture
  const auto patches_before = store.patches();

  // Same arrival config: the captured schedule is reused, no patch.
  const auto same = workload::run_blast(PlacementStrategy::kRealTime, opt);
  EXPECT_EQ(store.patches(), patches_before);
  expect_identical(run_scratch(PlacementStrategy::kRealTime, opt), same);

  // New rate: same template key, but the schedule is regenerated (a patch).
  opt.service.arrivals.rate = 8.0;
  const auto patched = workload::run_blast(PlacementStrategy::kRealTime, opt);
  EXPECT_EQ(store.builds(), builds_before + 1);
  EXPECT_GT(store.patches(), patches_before);
  expect_identical(run_scratch(PlacementStrategy::kRealTime, opt), patched);
}

TEST_F(TemplateScenario, AuditModeRandomizedChurnStaysIdentical) {
  // The FRIEDA_TEMPLATE_AUDIT differential mode recomputes every templated
  // decision from scratch and FRIEDA_CHECKs equality before use.  Churn the
  // patchable knobs randomly so hits, patches, and rebuilds all occur with
  // the audit on; any divergence throws inside the run.
  core::TemplateStore::global().set_differential_check(true);
  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    PaperScenarioOptions opt;
    opt.scale = rng.index(2) == 0 ? 0.004 : 0.008;
    opt.seed = 100 + rng.index(5);
    opt.worker_vms = 2 + 2 * rng.index(2);
    opt.multicore = rng.index(2) == 0;
    const auto strategy = kStrategies[rng.index(4)];
    const auto templated = workload::run_blast(strategy, opt);
    expect_identical(run_scratch(strategy, opt), templated);
  }
}

TEST_F(TemplateScenario, DisabledStoreAndPerRunOptOutBuildNothing) {
  auto& store = core::TemplateStore::global();
  PaperScenarioOptions opt;
  opt.scale = 0.01;

  const auto builds_before = store.builds();
  store.set_enabled(false);  // global kill switch (FRIEDA_TEMPLATES=0)
  const auto off = workload::run_blast(PlacementStrategy::kRealTime, opt);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.builds(), builds_before);

  store.set_enabled(true);
  opt.use_execution_templates = false;  // per-run opt-out
  (void)workload::run_blast(PlacementStrategy::kRealTime, opt);
  EXPECT_EQ(store.size(), 0u);

  opt.use_execution_templates = true;
  expect_identical(off, workload::run_blast(PlacementStrategy::kRealTime, opt));
}

TEST_F(TemplateScenario, ArrangeHookDisqualifiesTemplating) {
  PaperScenarioOptions opt;
  opt.scale = 0.01;
  opt.arrange = [](sim::Simulation&, cluster::VirtualCluster&, core::FriedaRun&) {};
  EXPECT_FALSE(workload::templatable(opt));
  (void)workload::run_blast(PlacementStrategy::kRealTime, opt);
  EXPECT_EQ(core::TemplateStore::global().size(), 0u);
}

// ---- Key semantics (pure fingerprint tests, no runs) ----------------------

TEST(TemplateKey, StructuralFieldsChangeTheKey) {
  const PaperScenarioOptions base;
  const auto key = workload::template_fingerprint(
      "blast", PlacementStrategy::kRealTime, base);

  EXPECT_NE(key, workload::template_fingerprint("als", PlacementStrategy::kRealTime, base));
  EXPECT_NE(key, workload::template_fingerprint(
                     "blast", PlacementStrategy::kPrePartitionLocal, base));
  auto scaled = base;
  scaled.scale = 0.5;
  EXPECT_NE(key,
            workload::template_fingerprint("blast", PlacementStrategy::kRealTime, scaled));
  auto nic = base;
  nic.nic = mbps(200);
  EXPECT_NE(key, workload::template_fingerprint("blast", PlacementStrategy::kRealTime, nic));
}

TEST(TemplateKey, PatchableFieldsShareTheKey) {
  const PaperScenarioOptions base;
  const auto key = workload::template_fingerprint(
      "blast", PlacementStrategy::kRealTime, base);
  auto patched = base;
  patched.seed = 99;
  patched.worker_vms = 16;
  patched.cores_per_vm = 2;
  patched.multicore = false;
  patched.prefetch = 3;
  patched.requeue_on_failure = true;
  patched.service.open_loop = true;
  patched.service.arrivals.rate = 12.0;
  EXPECT_EQ(key,
            workload::template_fingerprint("blast", PlacementStrategy::kRealTime, patched));
}

TEST(TemplateKey, ArrivalScheduleKeySeesConfigAndCount) {
  workload::ArrivalConfig cfg;
  const auto key = workload::arrival_schedule_key(cfg, 100);
  EXPECT_NE(key, 0u);  // 0 is reserved for "closed batch"
  EXPECT_EQ(key, workload::arrival_schedule_key(cfg, 100));
  EXPECT_NE(key, workload::arrival_schedule_key(cfg, 101));
  auto other = cfg;
  other.rate = 2.0;
  EXPECT_NE(key, workload::arrival_schedule_key(other, 100));
  other = cfg;
  other.seed = 43;
  EXPECT_NE(key, workload::arrival_schedule_key(other, 100));
  other = cfg;
  other.kind = workload::ArrivalKind::kBursty;
  EXPECT_NE(key, workload::arrival_schedule_key(other, 100));
}

// ---- Capture validation and store mechanics -------------------------------

struct Fixture {
  storage::FileCatalog cat;
  core::CommandTemplate command{"app $inp1"};
  std::vector<core::WorkUnit> units;

  explicit Fixture(std::size_t files = 6) {
    for (std::size_t i = 0; i < files; ++i) {
      cat.add_file("f" + std::to_string(i), MB);
    }
    units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile, cat);
  }

  std::shared_ptr<const core::ExecutionTemplate> capture(std::size_t workers = 2) const {
    return core::ExecutionTemplate::capture(units, command, cat, "/data", true,
                                            core::AssignmentPolicy::kRoundRobin, workers,
                                            0, {});
  }
};

TEST(ExecutionTemplateCapture, CapturesValidatedDecisions) {
  const Fixture fx;
  const auto t = fx.capture(2);
  ASSERT_EQ(t->units().size(), 6u);
  ASSERT_EQ(t->prototypes().size(), 6u);
  for (std::size_t i = 0; i < t->units().size(); ++i) {
    EXPECT_EQ(t->prototypes()[i].unit, t->units()[i]);
    EXPECT_EQ(t->prototypes()[i].command,
              fx.command.bind_unit(t->units()[i], fx.cat, "/data"));
    EXPECT_TRUE(t->prototypes()[i].inputs_staged);
  }
  EXPECT_TRUE(core::valid_assignment(t->assignment(), 6, 2));
  EXPECT_EQ(t->partition_sig(), core::partition_signature(fx.units));
  EXPECT_EQ(t->arrival_key(), 0u);
  EXPECT_TRUE(t->arrivals().empty());
}

TEST(ExecutionTemplateCapture, RejectsNonDenseUnitIds) {
  Fixture fx;
  fx.units[1].id = 5;  // ids must be dense [0, n)
  EXPECT_THROW(fx.capture(), FriedaError);
}

TEST(ExecutionTemplateCapture, RejectsArrivalArityMismatch) {
  const Fixture fx;
  EXPECT_THROW(core::ExecutionTemplate::capture(
                   fx.units, fx.command, fx.cat, "/data", true,
                   core::AssignmentPolicy::kRoundRobin, 2,
                   /*arrival_key=*/7, /*arrivals=*/{1.0, 2.0}),
               FriedaError);
  // And the reverse: a schedule without a key is equally malformed.
  EXPECT_THROW(core::ExecutionTemplate::capture(
                   fx.units, fx.command, fx.cat, "/data", true,
                   core::AssignmentPolicy::kRoundRobin, 2,
                   /*arrival_key=*/0, /*arrivals=*/{1.0}),
               FriedaError);
}

TEST(TemplateStoreMechanics, LookupInsertAndCounters) {
  const Fixture fx;
  core::TemplateStore store;
  const auto key = StableHasher().mix_str("k1").digest();
  EXPECT_EQ(store.lookup(key), nullptr);
  EXPECT_EQ(store.misses(), 1u);

  const auto first = fx.capture();
  EXPECT_TRUE(store.insert(key, first));
  EXPECT_FALSE(store.insert(key, fx.capture()));  // first insert wins
  EXPECT_EQ(store.lookup(key).get(), first.get());
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TemplateStoreMechanics, LruEvictsColdestAndHitsRefresh) {
  const Fixture fx;
  core::TemplateStore store(/*max_entries=*/2);
  const auto k1 = StableHasher().mix_str("k1").digest();
  const auto k2 = StableHasher().mix_str("k2").digest();
  const auto k3 = StableHasher().mix_str("k3").digest();
  store.insert(k1, fx.capture());
  store.insert(k2, fx.capture());
  ASSERT_NE(store.lookup(k1), nullptr);  // refresh k1: k2 is now coldest
  store.insert(k3, fx.capture());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_NE(store.lookup(k1), nullptr);
  EXPECT_EQ(store.lookup(k2), nullptr);  // evicted
  EXPECT_NE(store.lookup(k3), nullptr);

  // An evicted template stays valid for holders (shared_ptr semantics).
  const auto held = store.lookup(k1);
  store.set_max_entries(0);  // 0 = unbounded is allowed...
  store.set_max_entries(1);  // ...and shrinking evicts down to the cap
  EXPECT_LE(store.size(), 1u);
  EXPECT_EQ(held->units().size(), 6u);
}

TEST(TemplateStoreMechanics, ClearKeepsCountersAndFlags) {
  const Fixture fx;
  core::TemplateStore store;
  store.set_differential_check(true);
  store.insert(StableHasher().mix_str("k").digest(), fx.capture());
  store.note_build();
  store.note_patch(3);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.builds(), 1u);
  EXPECT_EQ(store.patches(), 3u);
  EXPECT_TRUE(store.differential_check());
}

TEST(TemplateEnv, ParseBoolEnv) {
  using core::detail::parse_bool_env;
  EXPECT_EQ(parse_bool_env("1"), 1);
  EXPECT_EQ(parse_bool_env("true"), 1);
  EXPECT_EQ(parse_bool_env("ON"), 1);
  EXPECT_EQ(parse_bool_env("Yes"), 1);
  EXPECT_EQ(parse_bool_env("0"), 0);
  EXPECT_EQ(parse_bool_env("false"), 0);
  EXPECT_EQ(parse_bool_env("OFF"), 0);
  EXPECT_EQ(parse_bool_env("no"), 0);
  EXPECT_EQ(parse_bool_env(""), -1);
  EXPECT_EQ(parse_bool_env("2"), -1);
  EXPECT_EQ(parse_bool_env("maybe"), -1);
  EXPECT_EQ(parse_bool_env(nullptr), -1);
}

TEST(PartitionSignature, SeesContentAndOrder) {
  const Fixture fx;
  const auto sig = core::partition_signature(fx.units);
  EXPECT_EQ(sig, core::partition_signature(fx.units));

  auto reordered = fx.units;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(sig, core::partition_signature(reordered));

  auto regrouped = fx.units;
  regrouped[0].inputs.push_back(regrouped[1].inputs[0]);
  EXPECT_NE(sig, core::partition_signature(regrouped));
}

}  // namespace
}  // namespace frieda
