// Sweep engine tests: thread-count invariance of real scenario runs, seed
// derivation, deterministic result ordering under skewed job timings,
// exception isolation, memoization (fingerprint stability, cache hit/miss
// correctness, in-batch dedup, global cross-grid cache), cost-aware
// longest-first scheduling, FRIEDA_SWEEP_THREADS validation, ScenarioSweep
// lifecycle, runner metrics, concurrent create-or-get on shared
// MetricsRegistry / ResultCache instances (the tests the tsan preset
// exists for), backend selection (FRIEDA_SWEEP_BACKEND), the fork-based
// process backend (identical results, crash isolation), steal-half
// dispatch, and result-cache persistence (FRIEDA_RESULT_CACHE_FILE).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "exp/calibrate.hpp"
#include "exp/cost.hpp"
#include "exp/grid.hpp"
#include "exp/result_cache.hpp"
#include "exp/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/report_sink.hpp"
#include "workload/scenarios.hpp"

namespace frieda::exp {
namespace {

using core::PlacementStrategy;
using workload::PaperScenarioOptions;

// ---------------------------------------------------------------------------
// Field-by-field RunReport comparison (simulated runs are deterministic, so
// every field — including derived doubles — must match exactly).
// ---------------------------------------------------------------------------

void expect_reports_equal(const core::RunReport& a, const core::RunReport& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.ready_time, b.ready_time);
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.staging_end, b.staging_end);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.units_total, b.units_total);
  EXPECT_EQ(a.units_completed, b.units_completed);
  EXPECT_EQ(a.units_failed, b.units_failed);
  EXPECT_EQ(a.units_unprocessed, b.units_unprocessed);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.workers_isolated, b.workers_isolated);
  EXPECT_EQ(a.transfer_busy(), b.transfer_busy());
  EXPECT_EQ(a.compute_busy(), b.compute_busy());
  EXPECT_EQ(a.overlap(), b.overlap());
  // Per-unit and per-worker records, via their canonical CSV renderings.
  EXPECT_EQ(a.units_csv(), b.units_csv());
  EXPECT_EQ(a.workers_csv(), b.workers_csv());
}

std::vector<Job<core::RunReport>> scenario_jobs() {
  Grid grid;
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  grid.add_als(PlacementStrategy::kPrePartitionRemote, opt);
  grid.add_als(PlacementStrategy::kRealTime, opt);
  grid.add_blast(PlacementStrategy::kNoPartitionCommon, opt);
  grid.add_blast(PlacementStrategy::kRealTime, opt);
  return grid.take();
}

TEST(Sweep, ThreadCountInvariance) {
  // Memoization off: this test is about the *execution* paths being
  // thread-count invariant, so both runners must actually run every job.
  SweepRunner<> one(SweepOptions{1});
  SweepRunner<> eight(SweepOptions{8});
  one.set_cache(nullptr);
  eight.set_cache(nullptr);
  const auto seq = one.run(scenario_jobs());
  const auto par = eight.run(scenario_jobs());
  EXPECT_EQ(one.threads_used(), 1u);
  EXPECT_EQ(eight.threads_used(), 4u);  // capped at the job count
  EXPECT_EQ(one.runs_executed(), 4u);
  EXPECT_EQ(eight.runs_executed(), 4u);
  EXPECT_EQ(eight.cache_hits(), 0u);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(seq[i].ok()) << seq[i].error;
    ASSERT_TRUE(par[i].ok()) << par[i].error;
    EXPECT_EQ(seq[i].tag, par[i].tag);
    expect_reports_equal(seq[i].get(), par[i].get());
  }
}

TEST(Sweep, SharedModelMatchesPerJobModel) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  const auto shared =
      std::make_shared<const workload::ImageCompareModel>(workload::make_als_model(opt));
  Grid grid;
  grid.add_als(PlacementStrategy::kRealTime, opt);
  grid.add_als(PlacementStrategy::kRealTime, opt, shared);
  SweepRunner<> runner;
  // Both cells carry the same fingerprint (the model is a pure function of
  // opt.scale); disable memoization so both actually execute — the point is
  // that the shared-model code path computes the same report.
  runner.set_cache(nullptr);
  const auto out = runner.run(grid.take());
  EXPECT_EQ(runner.runs_executed(), 2u);
  expect_reports_equal(out[0].get(), out[1].get());
}

// ---------------------------------------------------------------------------
// Seed derivation.
// ---------------------------------------------------------------------------

TEST(Sweep, DerivedSeedsDoNotCollide) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 2012ull, 0xdeadbeefull}) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      EXPECT_TRUE(seen.insert(derive_seed(base, i)).second)
          << "collision at base=" << base << " index=" << i;
    }
  }
}

TEST(Sweep, DerivedSeedsAreAppendStable) {
  // A job's seed depends only on (base, index) — adding jobs after it (or
  // asking again) never changes it.
  EXPECT_EQ(derive_seed(2012, 3), derive_seed(2012, 3));
  EXPECT_NE(derive_seed(2012, 3), derive_seed(2012, 4));
  EXPECT_NE(derive_seed(2012, 0), derive_seed(2013, 0));
  EXPECT_NE(derive_seed(2012, 0), 2012u);  // whitened, not passed through
}

// ---------------------------------------------------------------------------
// Configuration fingerprints.
// ---------------------------------------------------------------------------

TEST(Sweep, FingerprintIsStable) {
  PaperScenarioOptions opt;
  opt.scale = 0.2;
  const auto a = scenario_fingerprint("als", "real-time", opt);
  const auto b = scenario_fingerprint("als", "real-time", opt);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);  // same options => same hash, every time
}

TEST(Sweep, FingerprintSeesEveryField) {
  const PaperScenarioOptions base;
  const auto fp0 = scenario_fingerprint("blast", "real-time", base);
  ASSERT_TRUE(fp0.has_value());

  std::vector<std::pair<const char*, PaperScenarioOptions>> variants;
  auto vary = [&](const char* field, auto mutate) {
    PaperScenarioOptions v = base;
    mutate(v);
    variants.emplace_back(field, std::move(v));
  };
  vary("worker_vms", [](auto& v) { v.worker_vms = 5; });
  vary("cores_per_vm", [](auto& v) { v.cores_per_vm = 2; });
  vary("nic", [](auto& v) { v.nic = mbps(10); });
  vary("multicore", [](auto& v) { v.multicore = false; });
  vary("scale", [](auto& v) { v.scale = 0.5; });
  vary("seed", [](auto& v) { v.seed = 2013; });
  vary("prefetch", [](auto& v) { v.prefetch = 2; });
  vary("requeue_on_failure", [](auto& v) { v.requeue_on_failure = true; });

  std::set<Fingerprint> seen{*fp0};
  for (const auto& [field, opt] : variants) {
    const auto fp = scenario_fingerprint("blast", "real-time", opt);
    ASSERT_TRUE(fp.has_value()) << field;
    EXPECT_TRUE(seen.insert(*fp).second)
        << "changing field '" << field << "' did not change the fingerprint";
  }
  // App kind and mode are part of the key too.
  EXPECT_NE(*fp0, *scenario_fingerprint("als", "real-time", base));
  EXPECT_NE(*fp0, *scenario_fingerprint("blast", "sequential", base));
}

TEST(Sweep, HookedOptionsAreNotFingerprintable) {
  PaperScenarioOptions opt;
  EXPECT_TRUE(workload::fingerprintable(opt));
  PaperScenarioOptions arranged = opt;
  arranged.arrange = [](sim::Simulation&, cluster::VirtualCluster&, core::FriedaRun&) {};
  EXPECT_FALSE(workload::fingerprintable(arranged));
  EXPECT_FALSE(scenario_fingerprint("als", "real-time", arranged).has_value());
  obs::MetricsRegistry registry;
  PaperScenarioOptions metered = opt;
  metered.metrics = &registry;
  EXPECT_FALSE(workload::fingerprintable(metered));
  EXPECT_FALSE(scenario_fingerprint("als", "real-time", metered).has_value());
}

TEST(Sweep, TemplateFingerprintIsStructuralOnly) {
  // The execution-template key is deliberately coarser than the result key:
  // patchable fields (seed, VM shape) must share it, structural ones split.
  const PaperScenarioOptions base;
  const auto key =
      scenario_template_fingerprint("blast", PlacementStrategy::kRealTime, base);
  ASSERT_TRUE(key.has_value());

  auto patchable = base;
  patchable.seed = 99;
  patchable.worker_vms = 8;
  patchable.multicore = false;
  EXPECT_EQ(*key, *scenario_template_fingerprint("blast", PlacementStrategy::kRealTime,
                                                 patchable));

  auto scaled = base;
  scaled.scale = 0.5;
  EXPECT_NE(*key,
            *scenario_template_fingerprint("blast", PlacementStrategy::kRealTime, scaled));
  EXPECT_NE(*key, *scenario_template_fingerprint(
                      "blast", PlacementStrategy::kPrePartitionLocal, base));

  // Tracer/metrics hooks stay templatable (the run still executes fully),
  // but an arrange hook disqualifies — no captured decision set covers it.
  obs::MetricsRegistry registry;
  auto metered = base;
  metered.metrics = &registry;
  EXPECT_TRUE(scenario_template_fingerprint("blast", PlacementStrategy::kRealTime, metered)
                  .has_value());
  auto arranged = base;
  arranged.arrange = [](sim::Simulation&, cluster::VirtualCluster&, core::FriedaRun&) {};
  EXPECT_FALSE(
      scenario_template_fingerprint("blast", PlacementStrategy::kRealTime, arranged)
          .has_value());
}

// ---------------------------------------------------------------------------
// Memoization: cache hits, in-batch dedup, opt-outs.
// ---------------------------------------------------------------------------

TEST(Sweep, CacheHitServesIdenticalReport) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  opt.seed = 4242;  // distinctive: this cell belongs to this test's cache only
  ResultCache<core::RunReport> cache;

  auto make_jobs = [&] {
    Grid grid;
    grid.add_blast(PlacementStrategy::kRealTime, opt);
    grid.add_als(PlacementStrategy::kPrePartitionRemote, opt);
    return grid.take();
  };

  SweepRunner<> cold;
  cold.set_cache(&cache);
  const auto first = cold.run(make_jobs());
  EXPECT_EQ(cold.runs_executed(), 2u);
  EXPECT_EQ(cold.cache_hits(), 0u);
  EXPECT_FALSE(first[0].from_cache);
  EXPECT_EQ(cache.size(), 2u);

  SweepRunner<> warm;
  warm.set_cache(&cache);
  const auto second = warm.run(make_jobs());
  EXPECT_EQ(warm.runs_requested(), 2u);
  EXPECT_EQ(warm.runs_executed(), 0u);
  EXPECT_EQ(warm.cache_hits(), 2u);
  EXPECT_EQ(warm.threads_used(), 0u);  // nothing left to execute
  for (std::size_t i = 0; i < second.size(); ++i) {
    ASSERT_TRUE(second[i].ok()) << second[i].error;
    EXPECT_TRUE(second[i].from_cache);
    expect_reports_equal(first[i].get(), second[i].get());
  }
}

TEST(Sweep, InBatchDuplicatesExecuteOnce) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  opt.seed = 4243;
  ResultCache<core::RunReport> cache;
  Grid grid;
  const auto a = grid.add_blast(PlacementStrategy::kRealTime, opt);
  const auto b = grid.add_als(PlacementStrategy::kRealTime, opt);
  const auto c = grid.add_blast(PlacementStrategy::kRealTime, opt);  // duplicate of a
  SweepRunner<> runner(SweepOptions{2});
  runner.set_cache(&cache);
  const auto out = runner.run(grid.take());
  EXPECT_EQ(runner.runs_requested(), 3u);
  EXPECT_EQ(runner.runs_executed(), 2u);
  EXPECT_EQ(runner.cache_hits(), 1u);
  ASSERT_TRUE(out[a].ok());
  ASSERT_TRUE(out[b].ok());
  ASSERT_TRUE(out[c].ok());
  EXPECT_FALSE(out[a].from_cache);
  EXPECT_TRUE(out[c].from_cache);
  expect_reports_equal(out[a].get(), out[c].get());
}

TEST(Sweep, AdHocJobsAreNeverCached) {
  // Backend-agnostic by design: under the process backend the job body runs
  // in a forked child, so execution is asserted through the runner's
  // counters, not a parent-side flag the child could never touch.
  ResultCache<core::RunReport> cache;
  auto make_jobs = [] {
    Grid grid;
    grid.add("adhoc", [] {
      core::RunReport r;
      r.app = "adhoc";
      return r;
    });
    return grid.take();
  };
  SweepRunner<> runner;
  runner.set_cache(&cache);
  (void)runner.run(make_jobs());
  EXPECT_EQ(runner.runs_executed(), 1u);
  (void)runner.run(make_jobs());
  EXPECT_EQ(runner.runs_executed(), 1u);  // executed again, not served
  EXPECT_EQ(runner.cache_hits(), 0u);
  EXPECT_EQ(cache.size(), 0u);  // never entered the cache
}

TEST(Sweep, MemoizeOptOutExecutesEverything) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  opt.seed = 4244;
  ResultCache<core::RunReport> cache;
  SweepOptions sopt;
  sopt.memoize = false;
  SweepRunner<> runner(sopt);
  runner.set_cache(&cache);
  Grid grid;
  grid.add_blast(PlacementStrategy::kRealTime, opt);
  grid.add_blast(PlacementStrategy::kRealTime, opt);  // duplicate, still runs
  const auto out = runner.run(grid.take());
  EXPECT_EQ(runner.runs_executed(), 2u);
  EXPECT_EQ(runner.cache_hits(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  expect_reports_equal(out[0].get(), out[1].get());
}

TEST(Sweep, GlobalCacheSpansGrids) {
  // The driver pattern: two independent ScenarioSweeps in one process share
  // the process-global cache, so a baseline re-run in the second grid is
  // served from the first.  Distinctive seed keeps this test self-contained.
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  opt.seed = 0xfeedbeef;
  ScenarioSweep first;
  const auto id1 = first.grid().add_blast(PlacementStrategy::kRealTime, opt);
  first.run();
  EXPECT_EQ(first.runs_executed(), 1u);

  ScenarioSweep second;
  const auto id2 = second.grid().add_blast(PlacementStrategy::kRealTime, opt);
  const auto id3 = second.grid().add_blast(PlacementStrategy::kPrePartitionRemote, opt);
  second.run();
  EXPECT_EQ(second.runs_requested(), 2u);
  EXPECT_EQ(second.runs_executed(), 1u);  // only the pre-partition cell is new
  EXPECT_EQ(second.cache_hits(), 1u);
  EXPECT_TRUE(second.outcome(id2).from_cache);
  EXPECT_FALSE(second.outcome(id3).from_cache);
  expect_reports_equal(first.report(id1), second.report(id2));
}

// ---------------------------------------------------------------------------
// Cost-aware scheduling.
// ---------------------------------------------------------------------------

TEST(Sweep, LongestFirstIsStableOnTies) {
  EXPECT_EQ(detail::longest_first({1.0, 3.0, 2.0, 3.0}),
            (std::vector<std::size_t>{1, 3, 2, 0}));
  EXPECT_EQ(detail::longest_first({5.0, 5.0, 5.0}), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(detail::longest_first({}).empty());
}

TEST(Sweep, ScheduleIsLongestFirstWithJobOrderSlots) {
  // Ad-hoc jobs with explicit cost overrides, submitted cheapest-first; the
  // schedule must reverse them while outcome slots stay in job order.
  Grid grid;
  for (int i = 0; i < 6; ++i) {
    grid.add("cost" + std::to_string(i),
             [i] {
               core::RunReport r;
               r.units_total = static_cast<std::size_t>(i);
               return r;
             },
             /*cost=*/static_cast<double>(i));
  }
  SweepRunner<> runner(SweepOptions{3});
  runner.set_cache(nullptr);
  const auto out = runner.run(grid.take());
  EXPECT_EQ(runner.schedule(), (std::vector<std::size_t>{5, 4, 3, 2, 1, 0}));
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_TRUE(out[i].ok());
    EXPECT_EQ(out[i].tag, "cost" + std::to_string(i));
    EXPECT_EQ(out[i].get().units_total, i);
  }
}

TEST(Sweep, ScenarioCostsOrderSensibly) {
  PaperScenarioOptions opt;
  opt.scale = 0.2;
  // A sequential baseline (1 slot) is the long pole of any Table-I grid.
  EXPECT_GT(scenario_cost("blast", true, opt), scenario_cost("blast", false, opt));
  // More data, more cost; more slots, less cost.
  PaperScenarioOptions big = opt;
  big.scale = 0.4;
  EXPECT_GT(scenario_cost("blast", false, big), scenario_cost("blast", false, opt));
  PaperScenarioOptions narrow = opt;
  narrow.multicore = false;
  EXPECT_GT(scenario_cost("blast", false, narrow), scenario_cost("blast", false, opt));
  // Grid stamps scenario jobs with these costs: sequential sorts first.
  // Calibration is pinned off — earlier tests in this process may have
  // taught the global calibrator rates that would rescale the costs.
  Grid grid;
  grid.set_calibrator(nullptr);
  grid.add_blast(PlacementStrategy::kRealTime, opt);
  grid.add_blast_sequential(opt);
  auto jobs = grid.take();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_GT(jobs[1].cost, jobs[0].cost);
  SweepRunner<> runner(SweepOptions{1});
  runner.set_cache(nullptr);
  runner.set_calibrator(nullptr);
  const auto out = runner.run(std::move(jobs));
  EXPECT_EQ(runner.schedule(), (std::vector<std::size_t>{1, 0}));
  EXPECT_TRUE(out[0].ok() && out[1].ok());
}

// ---------------------------------------------------------------------------
// Ordering and isolation.
// ---------------------------------------------------------------------------

TEST(Sweep, ResultsKeepJobOrderUnderSkewedTimings) {
  // Early jobs sleep longest, so completion order is roughly the reverse of
  // submission order; result slots must still line up with job indices.
  constexpr std::size_t kJobs = 16;
  std::vector<Job<std::size_t>> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back({"job" + std::to_string(i), [i] {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds((kJobs - i) * 3));
                      return i;
                    }});
  }
  SweepRunner<std::size_t> runner(SweepOptions{8});
  const auto out = runner.run(std::move(jobs));
  ASSERT_EQ(out.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(out[i].tag, "job" + std::to_string(i));
    ASSERT_TRUE(out[i].ok());
    EXPECT_EQ(out[i].get(), i);
  }
}

TEST(Sweep, ThrowingJobIsIsolated) {
  std::vector<Job<int>> jobs;
  jobs.push_back({"fine-a", [] { return 1; }});
  jobs.push_back({"boom", []() -> int { throw std::runtime_error("deliberate failure"); }});
  jobs.push_back({"fine-b", [] { return 3; }});
  SweepRunner<int> runner(SweepOptions{2});
  const auto out = runner.run(std::move(jobs));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_EQ(out[0].get(), 1);
  EXPECT_FALSE(out[1].ok());
  EXPECT_NE(out[1].error.find("deliberate failure"), std::string::npos);
  EXPECT_THROW(out[1].get(), FriedaError);
  try {
    out[1].get();
  } catch (const FriedaError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos)
        << "error must name the failed job";
  }
  EXPECT_TRUE(out[2].ok());
  EXPECT_EQ(out[2].get(), 3);
}

TEST(Sweep, FailedRunsAreNotCached) {
  ResultCache<int> cache;
  StableHasher h;
  const auto fp = h.mix_str("boom-key").digest();
  std::vector<Job<int>> jobs;
  jobs.push_back({"boom", []() -> int { throw std::runtime_error("nope"); }, fp});
  SweepRunner<int> runner;
  runner.set_cache(&cache);
  const auto out = runner.run(std::move(jobs));
  EXPECT_FALSE(out[0].ok());
  EXPECT_EQ(cache.size(), 0u);  // errors never enter the cache
}

TEST(Sweep, EmptyBatchAndThreadResolution) {
  SweepRunner<int> runner;
  EXPECT_TRUE(runner.run({}).empty());
  // Never more threads than jobs; at least one thread for a non-empty batch.
  EXPECT_EQ(detail::resolve_threads(8, 3), 3u);
  EXPECT_EQ(detail::resolve_threads(2, 100), 2u);
  EXPECT_GE(detail::resolve_threads(0, 100), 1u);
}

// ---------------------------------------------------------------------------
// FRIEDA_SWEEP_THREADS validation.
// ---------------------------------------------------------------------------

TEST(Sweep, EnvVarOverridesThreadCount) {
  ASSERT_EQ(setenv("FRIEDA_SWEEP_THREADS", "3", 1), 0);
  EXPECT_EQ(detail::resolve_threads(0, 100), 3u);
  EXPECT_EQ(detail::resolve_threads(0, 2), 2u);   // still capped by jobs
  EXPECT_EQ(detail::resolve_threads(5, 100), 5u); // explicit request wins
  ASSERT_EQ(unsetenv("FRIEDA_SWEEP_THREADS"), 0);
}

TEST(Sweep, EnvVarParserRejectsGarbage) {
  EXPECT_EQ(detail::parse_threads_env("4"), 4u);
  EXPECT_EQ(detail::parse_threads_env("4096"), 4096u);
  EXPECT_EQ(detail::parse_threads_env(nullptr), 0u);
  EXPECT_EQ(detail::parse_threads_env(""), 0u);
  EXPECT_EQ(detail::parse_threads_env("garbage"), 0u);
  EXPECT_EQ(detail::parse_threads_env("0"), 0u);
  EXPECT_EQ(detail::parse_threads_env("-3"), 0u);
  EXPECT_EQ(detail::parse_threads_env("8x"), 0u);          // trailing junk
  EXPECT_EQ(detail::parse_threads_env("3.5"), 0u);         // not an integer
  EXPECT_EQ(detail::parse_threads_env("4097"), 0u);        // above the cap
  EXPECT_EQ(detail::parse_threads_env("99999999999999999999"), 0u);  // overflow
}

TEST(Sweep, InvalidEnvVarFallsBackLikeUnset) {
  ASSERT_EQ(unsetenv("FRIEDA_SWEEP_THREADS"), 0);
  const std::size_t unset = detail::resolve_threads(0, 100);
  for (const char* bad : {"garbage", "0", "-3", "8x", "99999999999999999999"}) {
    ASSERT_EQ(setenv("FRIEDA_SWEEP_THREADS", bad, 1), 0);
    EXPECT_EQ(detail::resolve_threads(0, 100), unset)
        << "FRIEDA_SWEEP_THREADS='" << bad << "' must fall back to the unset default";
  }
  ASSERT_EQ(unsetenv("FRIEDA_SWEEP_THREADS"), 0);
}

// ---------------------------------------------------------------------------
// ScenarioSweep lifecycle.
// ---------------------------------------------------------------------------

TEST(Sweep, RunTwiceThrows) {
  ScenarioSweep sweep;
  sweep.grid().add("noop", [] { return core::RunReport{}; });
  EXPECT_FALSE(sweep.ran());
  sweep.run();
  EXPECT_TRUE(sweep.ran());
  EXPECT_TRUE(sweep.outcome(0).ok());
  EXPECT_THROW(sweep.run(), FriedaError);
}

TEST(Sweep, OutcomeBeforeRunThrows) {
  ScenarioSweep sweep;
  const auto id = sweep.grid().add("noop", [] { return core::RunReport{}; });
  EXPECT_THROW(sweep.outcome(id), FriedaError);
  EXPECT_THROW(sweep.report(id), FriedaError);
  sweep.run();
  EXPECT_TRUE(sweep.outcome(id).ok());
  EXPECT_THROW(sweep.outcome(id + 1), FriedaError);  // still range-checked
}

// ---------------------------------------------------------------------------
// Runner-owned metrics.
// ---------------------------------------------------------------------------

TEST(Sweep, RunnerMetricsTrackProgress) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  opt.seed = 4245;
  ResultCache<core::RunReport> cache;
  SweepRunner<> runner(SweepOptions{2});
  runner.set_cache(&cache);
  auto make_jobs = [&] {
    Grid grid;
    grid.add_blast(PlacementStrategy::kRealTime, opt);
    grid.add_als(PlacementStrategy::kRealTime, opt);
    return grid.take();
  };
  (void)runner.run(make_jobs());
  (void)runner.run(make_jobs());  // warm: both served from cache
  const auto& m = runner.metrics();
  const auto* completed = m.find_counter("sweep.jobs_completed");
  const auto* hits = m.find_counter("sweep.cache_hits");
  const auto* executed = m.find_counter("sweep.runs_executed");
  const auto* in_flight = m.find_gauge("sweep.in_flight");
  const auto* wall = m.find_stats("sweep.wall_per_job_s");
  ASSERT_NE(completed, nullptr);
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(executed, nullptr);
  ASSERT_NE(in_flight, nullptr);
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(completed->value(), 2u);  // dispatched jobs only (first run)
  EXPECT_EQ(executed->value(), 2u);
  EXPECT_EQ(hits->value(), 2u);       // second run was fully cached
  EXPECT_EQ(in_flight->value(), 0.0); // everything drained
  EXPECT_EQ(wall->count(), 2u);
  EXPECT_GT(wall->mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Concurrency: shared MetricsRegistry across jobs, and concurrent
// lookup/insert on one shared ResultCache from parallel sweeps.  Run these
// under the asan and tsan presets (see docs/performance.md).
// ---------------------------------------------------------------------------

TEST(Sweep, SharedMetricsRegistryAcrossJobs) {
  obs::MetricsRegistry registry;
  constexpr std::size_t kJobs = 32;
  std::vector<Job<int>> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back({"metrics" + std::to_string(i), [i, &registry] {
                      const auto name = "job" + std::to_string(i);
                      auto& counter = registry.counter(name + ".units");
                      auto& stats = registry.stats(name + ".latency");
                      for (int k = 0; k < 100; ++k) {
                        counter.inc();
                        stats.add(static_cast<double>(k));
                      }
                      registry.gauge(name + ".makespan").set(static_cast<double>(i));
                      return static_cast<int>(registry.size() > 0);
                    }});
  }
  SweepRunner<int> runner(SweepOptions{8});
  const auto out = runner.run(std::move(jobs));
  EXPECT_EQ(registry.size(), 3 * kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(out[i].ok()) << out[i].error;
    const auto name = "job" + std::to_string(i);
    const auto* counter = registry.find_counter(name + ".units");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->value(), 100u);
    const auto* stats = registry.find_stats(name + ".latency");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->count(), 100u);
    const auto* gauge = registry.find_gauge(name + ".makespan");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->value(), static_cast<double>(i));
  }
  // Exports see a consistent snapshot after the sweep.
  EXPECT_NE(registry.csv().find("job0.units,counter,100"), std::string::npos);
}

TEST(Sweep, ConcurrentSweepsShareOneCache) {
  // Four concurrent sweeps over overlapping key sets race lookup/insert on
  // one cache; every outcome must be correct and the cache must end with
  // exactly one entry per distinct key.
  ResultCache<int> cache;
  constexpr std::size_t kSweeps = 4;
  constexpr std::size_t kKeys = 8;
  constexpr std::size_t kJobsPerSweep = 24;
  std::vector<std::vector<JobOutcome<int>>> results(kSweeps);
  std::vector<std::thread> sweeps;
  for (std::size_t s = 0; s < kSweeps; ++s) {
    sweeps.emplace_back([s, &cache, &results] {
      std::vector<Job<int>> jobs;
      for (std::size_t i = 0; i < kJobsPerSweep; ++i) {
        const std::size_t key = (s + i) % kKeys;  // overlap across sweeps
        StableHasher h;
        h.mix_str("concurrent").mix_u64(key);
        jobs.push_back({"k" + std::to_string(key),
                        [key] { return static_cast<int>(key * 10); }, h.digest()});
      }
      SweepRunner<int> runner(SweepOptions{4});
      runner.set_cache(&cache);
      results[s] = runner.run(std::move(jobs));
    });
  }
  for (auto& t : sweeps) t.join();
  EXPECT_EQ(cache.size(), kKeys);
  for (std::size_t s = 0; s < kSweeps; ++s) {
    ASSERT_EQ(results[s].size(), kJobsPerSweep);
    for (std::size_t i = 0; i < kJobsPerSweep; ++i) {
      ASSERT_TRUE(results[s][i].ok()) << results[s][i].error;
      EXPECT_EQ(results[s][i].get(), static_cast<int>(((s + i) % kKeys) * 10));
    }
  }
}

// ---------------------------------------------------------------------------
// Bounded result cache: LRU eviction.
// ---------------------------------------------------------------------------

Fingerprint key_of(std::uint64_t i) {
  StableHasher h;
  h.mix_str("lru-test").mix_u64(i);
  return h.digest();
}

TEST(ResultCacheLru, EvictsLeastRecentlyUsedInOrder) {
  ResultCache<int> cache(2);
  EXPECT_EQ(cache.max_entries(), 2u);
  cache.insert(key_of(0), 0);
  cache.insert(key_of(1), 1);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch 0 so 1 becomes the LRU entry, then overflow.
  EXPECT_TRUE(cache.lookup(key_of(0)).has_value());
  cache.insert(key_of(2), 2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(key_of(0)).has_value());   // kept (recently used)
  EXPECT_TRUE(cache.lookup(key_of(2)).has_value());

  // Re-inserting an existing key refreshes recency instead of evicting.
  cache.insert(key_of(0), 0);
  cache.insert(key_of(3), 3);
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(0)).has_value());
}

TEST(ResultCacheLru, ShrinkingTheCapEvictsImmediately) {
  ResultCache<int> cache;  // default generous cap
  EXPECT_EQ(cache.max_entries(), ResultCache<int>::kDefaultMaxEntries);
  for (std::uint64_t i = 0; i < 8; ++i) cache.insert(key_of(i), static_cast<int>(i));
  cache.set_max_entries(3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 5u);
  // The survivors are the three most recently inserted.
  EXPECT_TRUE(cache.lookup(key_of(7)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(6)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(5)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(4)).has_value());

  cache.set_max_entries(0);  // unbounded again
  for (std::uint64_t i = 10; i < 30; ++i) cache.insert(key_of(i), static_cast<int>(i));
  EXPECT_EQ(cache.size(), 23u);
}

TEST(ResultCacheLru, RunnerCountsEvictionsInMetrics) {
  ResultCache<int> cache(1);
  SweepRunner<int> runner(SweepOptions{1});
  runner.set_cache(&cache);
  std::vector<Job<int>> jobs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    jobs.push_back({"j" + std::to_string(i), [i] { return static_cast<int>(i); },
                    key_of(100 + i)});
  }
  const auto out = runner.run(std::move(jobs));
  for (const auto& o : out) EXPECT_TRUE(o.ok());
  // Four distinct keys through a 1-entry cache: three insert-evictions.
  const auto* evicted = runner.metrics().find_counter("sweep.cache_evictions");
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->value(), 3u);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// Measured-cost calibration.
// ---------------------------------------------------------------------------

TEST(Calibrator, ConvergesToObservedRate) {
  CostCalibrator cal;
  EXPECT_FALSE(cal.rate("als/rt").has_value());
  EXPECT_DOUBLE_EQ(cal.calibrated("als/rt", 10.0), 10.0);  // unseen: raw passthrough

  // Jobs of this class consistently take 0.5 s per cost unit.
  for (int i = 0; i < 32; ++i) cal.observe("als/rt", 4.0, 2.0);
  ASSERT_TRUE(cal.rate("als/rt").has_value());
  EXPECT_NEAR(*cal.rate("als/rt"), 0.5, 1e-9);
  EXPECT_NEAR(cal.calibrated("als/rt", 10.0), 5.0, 1e-6);

  // A drifting machine: the EWMA tracks the new rate.
  for (int i = 0; i < 64; ++i) cal.observe("als/rt", 4.0, 4.0);
  EXPECT_NEAR(*cal.rate("als/rt"), 1.0, 1e-3);

  // Garbage observations are ignored.
  cal.observe("als/rt", 0.0, 1.0);
  cal.observe("als/rt", 1.0, -1.0);
  EXPECT_NEAR(*cal.rate("als/rt"), 1.0, 1e-3);
  EXPECT_EQ(cal.classes(), 1u);
  cal.clear();
  EXPECT_EQ(cal.classes(), 0u);
}

TEST(Calibrator, RunnerFeedsMeasuredWallTimesPerClass) {
  CostCalibrator cal;
  SweepRunner<int> runner(SweepOptions{2});
  runner.set_cache(nullptr);
  runner.set_calibrator(&cal);
  std::vector<Job<int>> jobs;
  for (int i = 0; i < 4; ++i) {
    Job<int> job{"sleepy" + std::to_string(i), [] {
                   std::this_thread::sleep_for(std::chrono::milliseconds(20));
                   return 1;
                 }};
    job.cost = 2.0;
    job.calibration = Job<int>::Calibration{"test/sleepy", 2.0};
    jobs.push_back(std::move(job));
  }
  (void)runner.run(std::move(jobs));
  ASSERT_TRUE(cal.rate("test/sleepy").has_value());
  // ~20 ms over 2 cost units => ~10 ms per unit; generous bounds for CI noise.
  EXPECT_GT(*cal.rate("test/sleepy"), 0.002);
  EXPECT_LT(*cal.rate("test/sleepy"), 1.0);
  // Next grid of the same class schedules with the measured rate.
  EXPECT_NEAR(cal.calibrated("test/sleepy", 2.0), 2.0 * *cal.rate("test/sleepy"), 1e-12);
}

TEST(Calibrator, FailedJobsTeachNothing) {
  CostCalibrator cal;
  SweepRunner<int> runner(SweepOptions{1});
  runner.set_cache(nullptr);
  runner.set_calibrator(&cal);
  std::vector<Job<int>> jobs;
  Job<int> bad{"boom", []() -> int { throw std::runtime_error("no"); }};
  bad.calibration = Job<int>::Calibration{"test/boom", 1.0};
  jobs.push_back(std::move(bad));
  const auto out = runner.run(std::move(jobs));
  EXPECT_FALSE(out[0].ok());
  EXPECT_FALSE(cal.rate("test/boom").has_value());
}

TEST(Calibrator, GridStampsCalibratedCostsAndCalibrationTags) {
  CostCalibrator cal;
  cal.observe("blast/real-time", 1.0, 3.0);  // learned rate: 3 s per unit
  PaperScenarioOptions opt;
  opt.scale = 0.2;
  Grid grid;
  grid.set_calibrator(&cal);
  grid.add_blast(PlacementStrategy::kRealTime, opt);
  auto jobs = grid.take();
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_TRUE(jobs[0].calibration.has_value());
  EXPECT_EQ(jobs[0].calibration->key, "blast/real-time");
  const double raw = scenario_cost("blast", false, opt);
  EXPECT_DOUBLE_EQ(jobs[0].calibration->raw_cost, raw);
  EXPECT_NEAR(jobs[0].cost, 3.0 * raw, 1e-9);

  // With calibration disabled the static estimate is used untouched.
  Grid pinned;
  pinned.set_calibrator(nullptr);
  pinned.add_blast(PlacementStrategy::kRealTime, opt);
  auto raw_jobs = pinned.take();
  EXPECT_DOUBLE_EQ(raw_jobs[0].cost, raw);
}

// ---------------------------------------------------------------------------
// Live progress reporting (opt-in; silent by default).
// ---------------------------------------------------------------------------

std::string read_all(std::FILE* f) {
  std::fflush(f);
  std::rewind(f);
  std::string text;
  char buf[256];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  return text;
}

TEST(Progress, ReporterPrintsThrottledUpdatesAndFinishLine) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::ProgressOptions popt;
  popt.min_interval_s = 0.0;  // print every update
  popt.out = sink;
  obs::ProgressReporter reporter(popt);

  SweepRunner<int> runner(SweepOptions{2});
  runner.set_cache(nullptr);
  runner.set_progress(&reporter);
  std::vector<Job<int>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({"p" + std::to_string(i), [i] { return i; }});
  }
  const auto out = runner.run(std::move(jobs));
  for (const auto& o : out) EXPECT_TRUE(o.ok());

  EXPECT_GE(reporter.lines_printed(), 2u);  // >=1 update + the finish line
  const std::string text = read_all(sink);
  EXPECT_NE(text.find("sweep: ["), std::string::npos);
  EXPECT_NE(text.find("[4/4] done"), std::string::npos);
  std::fclose(sink);
}

TEST(Progress, ThrottleSuppressesIntermediateLines) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::ProgressOptions popt;
  popt.min_interval_s = 3600.0;  // nothing but the first update + finish
  popt.out = sink;
  popt.label = "grid";
  obs::ProgressReporter reporter(popt);

  reporter.begin(8, 8.0);
  for (int i = 1; i <= 8; ++i) reporter.update(static_cast<std::size_t>(i), 0, i, 0.001 * i);
  reporter.finish(8, 8, 0.01);
  EXPECT_EQ(reporter.lines_printed(), 2u);
  const std::string text = read_all(sink);
  EXPECT_NE(text.find("grid: [1/8]"), std::string::npos);
  EXPECT_NE(text.find("grid: [8/8] done"), std::string::npos);
  std::fclose(sink);
}

TEST(Progress, EtaIsCostWeighted) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::ProgressOptions popt;
  popt.min_interval_s = 0.0;
  popt.out = sink;
  obs::ProgressReporter reporter(popt);
  // Half the cost done in 10 s => eta ~10 s even though only 1 of 4 jobs
  // finished (the longest-first schedule front-loads the expensive cells).
  reporter.begin(4, 100.0);
  reporter.update(1, 3, 50.0, 10.0);
  const std::string text = read_all(sink);
  EXPECT_NE(text.find("[1/4] 3 in flight, eta ~10s"), std::string::npos);
  std::fclose(sink);
}

TEST(Progress, EtaExcludesMemoizedJobsFromCountFallback) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::ProgressOptions popt;
  popt.min_interval_s = 0.0;
  popt.out = sink;
  obs::ProgressReporter reporter(popt);
  // Duplicate-heavy grid without cost estimates: 8 of 10 jobs were served
  // from the cache at t=0.  After the first *real* job finishes at t=10,
  // half the real work remains, so eta ~10s — counting the served jobs at
  // full weight would have claimed 9/10 done and an eta near 1 s.
  reporter.begin(10, 0.0, /*served_jobs=*/8);
  reporter.update(9, 1, 0.0, 10.0);
  const std::string text = read_all(sink);
  EXPECT_NE(text.find("[9/10] 1 in flight, eta ~10s"), std::string::npos);
  std::fclose(sink);
}

TEST(Progress, DuplicateHeavyGridReportsServedJobsWithoutSkewingEta) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  obs::ProgressOptions popt;
  popt.min_interval_s = 0.0;
  popt.out = sink;
  obs::ProgressReporter reporter(popt);

  // 12 jobs, only 3 distinct fingerprints: 9 are in-batch twins served at
  // zero cost.  Zero cost estimates force the count fallback — the path
  // that used to weight memoized jobs at full per-job cost.
  ResultCache<int> cache;
  SweepRunner<int> runner(SweepOptions{2});
  runner.set_cache(&cache);
  runner.set_progress(&reporter);
  std::vector<Job<int>> jobs;
  for (int i = 0; i < 12; ++i) {
    StableHasher h;
    const auto fp = h.mix_str("dup-eta").mix_u64(static_cast<std::uint64_t>(i % 3)).digest();
    jobs.push_back({"dup" + std::to_string(i), [i] { return i % 3; },
                    fp, /*cost=*/0.0});
  }
  const auto out = runner.run(std::move(jobs));
  for (const auto& o : out) EXPECT_TRUE(o.ok());
  EXPECT_EQ(runner.cache_hits(), 9u);

  const std::string text = read_all(sink);
  // Every update line counts the 9 served jobs as already complete...
  EXPECT_NE(text.find("[10/12]"), std::string::npos);
  EXPECT_NE(text.find("[12/12] done"), std::string::npos);
  // ...but the first real completion must not claim the batch is 10/12
  // done rate-wise: 2 of 3 real jobs remain, so the eta is about twice
  // the elapsed time, far above the ~0.2x the inflated count implied.
  // (Wall times are nondeterministic, so assert structure, not digits.)
  EXPECT_EQ(text.find("[9/12]"), std::string::npos);  // updates fire post-completion
  std::fclose(sink);
}

TEST(Progress, FromEnvDisabledByDefault) {
  ::unsetenv("FRIEDA_SWEEP_PROGRESS");
  EXPECT_EQ(obs::ProgressReporter::from_env(), nullptr);
  ::setenv("FRIEDA_SWEEP_PROGRESS", "0", 1);
  EXPECT_EQ(obs::ProgressReporter::from_env(), nullptr);
  ::setenv("FRIEDA_SWEEP_PROGRESS", "2.5", 1);
  EXPECT_NE(obs::ProgressReporter::from_env(), nullptr);
  ::setenv("FRIEDA_SWEEP_PROGRESS", "yes", 1);
  EXPECT_NE(obs::ProgressReporter::from_env(), nullptr);
  ::unsetenv("FRIEDA_SWEEP_PROGRESS");
}

TEST(Progress, ParseIntervalEnvAcceptsSecondsOnly) {
  using obs::ProgressReporter;
  // Valid: plain seconds in [0, kMaxIntervalSeconds].
  EXPECT_DOUBLE_EQ(ProgressReporter::parse_interval_env("0"), 0.0);
  EXPECT_DOUBLE_EQ(ProgressReporter::parse_interval_env("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(ProgressReporter::parse_interval_env("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(ProgressReporter::parse_interval_env("1e2"), 100.0);
  EXPECT_DOUBLE_EQ(ProgressReporter::parse_interval_env("86400"),
                   ProgressReporter::kMaxIntervalSeconds);
  // Invalid: unset/empty, trailing junk, negatives, NaN/inf, out of range.
  EXPECT_LT(ProgressReporter::parse_interval_env(nullptr), 0.0);
  EXPECT_LT(ProgressReporter::parse_interval_env(""), 0.0);
  EXPECT_LT(ProgressReporter::parse_interval_env("yes"), 0.0);
  EXPECT_LT(ProgressReporter::parse_interval_env("2.5s"), 0.0);
  EXPECT_LT(ProgressReporter::parse_interval_env("1,5"), 0.0);
  EXPECT_LT(ProgressReporter::parse_interval_env("-1"), 0.0);
  EXPECT_LT(ProgressReporter::parse_interval_env("nan"), 0.0);
  EXPECT_LT(ProgressReporter::parse_interval_env("inf"), 0.0);
  EXPECT_LT(ProgressReporter::parse_interval_env("86401"), 0.0);
}

TEST(Progress, FromEnvInvalidValueFallsBackToDefaultInterval) {
  // Setting the variable expressed intent to see progress: a typo degrades
  // to the default interval (loudly, via kWarn) instead of going silent.
  ::setenv("FRIEDA_SWEEP_PROGRESS", "fast", 1);
  const auto reporter = obs::ProgressReporter::from_env();
  ASSERT_NE(reporter, nullptr);
  ::setenv("FRIEDA_SWEEP_PROGRESS", "-3", 1);
  EXPECT_NE(obs::ProgressReporter::from_env(), nullptr);
  ::unsetenv("FRIEDA_SWEEP_PROGRESS");
}

// ---------------------------------------------------------------------------
// Calibration persistence (FRIEDA_CALIBRATION_FILE).
// ---------------------------------------------------------------------------

std::string temp_calibration_path(const char* name) {
  return std::string(testing::TempDir()) + "/" + name;
}

TEST(CalibratorPersistence, SaveThenLoadRoundTrips) {
  const auto path = temp_calibration_path("frieda_cal_roundtrip.tsv");
  std::remove(path.c_str());

  CostCalibrator writer;
  writer.observe("blast/realtime", 10.0, 5.0);   // rate 0.5
  writer.observe("als/prepartition", 4.0, 8.0);  // rate 2.0
  ASSERT_TRUE(writer.save_file(path));

  CostCalibrator reader;
  ASSERT_TRUE(reader.load_file(path));
  EXPECT_EQ(reader.classes(), 2u);
  EXPECT_DOUBLE_EQ(reader.rate("blast/realtime").value(), 0.5);
  EXPECT_DOUBLE_EQ(reader.rate("als/prepartition").value(), 2.0);
  std::remove(path.c_str());
}

TEST(CalibratorPersistence, InProcessRatesWinOverFileRates) {
  const auto path = temp_calibration_path("frieda_cal_merge.tsv");
  CostCalibrator writer;
  writer.observe("class/a", 1.0, 3.0);  // file rate 3.0
  writer.observe("class/b", 1.0, 7.0);  // file rate 7.0
  ASSERT_TRUE(writer.save_file(path));

  CostCalibrator reader;
  reader.observe("class/a", 1.0, 1.0);  // fresher in-process rate 1.0
  ASSERT_TRUE(reader.load_file(path));
  EXPECT_DOUBLE_EQ(reader.rate("class/a").value(), 1.0);  // measured wins
  EXPECT_DOUBLE_EQ(reader.rate("class/b").value(), 7.0);  // file seeds the rest
  std::remove(path.c_str());
}

TEST(CalibratorPersistence, MissingFileIsAQuietColdStart) {
  CostCalibrator cal;
  EXPECT_FALSE(cal.load_file(temp_calibration_path("frieda_cal_nonexistent.tsv")));
  EXPECT_EQ(cal.classes(), 0u);
}

TEST(CalibratorPersistence, MalformedContentIsSkippedNotTrusted) {
  const auto path = temp_calibration_path("frieda_cal_malformed.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("frieda-calibration v1\n", f);
    std::fputs("good/class\t1.5\n", f);
    std::fputs("no-tab-line\n", f);          // malformed: no separator
    std::fputs("bad/rate\tpotato\n", f);     // malformed: non-numeric rate
    std::fputs("bad/negative\t-2.0\n", f);   // malformed: rate must be > 0
    std::fputs("bad/trailing\t1.5x\n", f);   // malformed: trailing junk
    std::fclose(f);
  }
  CostCalibrator cal;
  EXPECT_TRUE(cal.load_file(path));  // something valid was loaded
  EXPECT_EQ(cal.classes(), 1u);
  EXPECT_DOUBLE_EQ(cal.rate("good/class").value(), 1.5);
  std::remove(path.c_str());
}

TEST(CalibratorPersistence, WrongHeaderIsRejectedEntirely) {
  const auto path = temp_calibration_path("frieda_cal_header.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("frieda-calibration v999\n", f);
    std::fputs("some/class\t1.5\n", f);
    std::fclose(f);
  }
  CostCalibrator cal;
  EXPECT_FALSE(cal.load_file(path));
  EXPECT_EQ(cal.classes(), 0u);
  std::remove(path.c_str());
}

TEST(CalibratorPersistence, SweepCompletionSavesWhenPathAttached) {
  const auto path = temp_calibration_path("frieda_cal_sweep.tsv");
  std::remove(path.c_str());

  CostCalibrator cal;
  EXPECT_FALSE(cal.save_if_persistent());  // no path attached -> no-op
  cal.set_persist_path(path);
  EXPECT_EQ(cal.persist_path(), path);

  SweepRunner<int> runner(SweepOptions{1});
  runner.set_cache(nullptr);
  runner.set_calibrator(&cal);
  std::vector<Job<int>> jobs;
  Job<int> job{"cal", [] {
                 std::this_thread::sleep_for(std::chrono::milliseconds(5));
                 return 1;
               }};
  job.calibration = Job<int>::Calibration{"test/persist", 1.0};
  jobs.push_back(std::move(job));
  const auto out = runner.run(std::move(jobs));
  ASSERT_TRUE(out[0].ok());

  // The runner checkpointed the learned rates on completion.
  CostCalibrator reloaded;
  ASSERT_TRUE(reloaded.load_file(path));
  EXPECT_EQ(reloaded.classes(), 1u);
  EXPECT_GT(reloaded.rate("test/persist").value(), 0.0);
  std::remove(path.c_str());

  cal.set_persist_path("");  // detach
  EXPECT_FALSE(cal.save_if_persistent());
}

// ---------------------------------------------------------------------------
// Backend selection (SweepOptions::backend, FRIEDA_SWEEP_BACKEND).
// ---------------------------------------------------------------------------

TEST(Backend, EnvParserIsExactMatchOnly) {
  EXPECT_EQ(detail::parse_backend_env(nullptr), std::nullopt);
  EXPECT_EQ(detail::parse_backend_env(""), std::nullopt);
  EXPECT_EQ(detail::parse_backend_env("thread"), SweepBackend::kThread);
  EXPECT_EQ(detail::parse_backend_env("process"), SweepBackend::kProcess);
  for (const char* bad :
       {"Thread", "PROCESS", " process", "process ", "fork", "threads", "1"}) {
    EXPECT_EQ(detail::parse_backend_env(bad), std::nullopt)
        << "'" << bad << "' must not select a backend";
  }
}

TEST(Backend, ResolutionPrecedenceAndFallbacks) {
  ASSERT_EQ(unsetenv("FRIEDA_SWEEP_BACKEND"), 0);
  EXPECT_EQ(detail::resolve_backend(std::nullopt, true), SweepBackend::kThread);
  EXPECT_EQ(detail::resolve_backend(SweepBackend::kProcess, true), SweepBackend::kProcess);
  // Codec-less result types always run on threads, even when asked not to.
  EXPECT_EQ(detail::resolve_backend(SweepBackend::kProcess, false), SweepBackend::kThread);

  ASSERT_EQ(setenv("FRIEDA_SWEEP_BACKEND", "process", 1), 0);
  EXPECT_EQ(detail::resolve_backend(std::nullopt, true), SweepBackend::kProcess);
  EXPECT_EQ(detail::resolve_backend(std::nullopt, false), SweepBackend::kThread);
  // An explicit option wins over the environment.
  EXPECT_EQ(detail::resolve_backend(SweepBackend::kThread, true), SweepBackend::kThread);

  // A typo warns and falls back to thread instead of guessing.
  ASSERT_EQ(setenv("FRIEDA_SWEEP_BACKEND", "Process", 1), 0);
  EXPECT_EQ(detail::resolve_backend(std::nullopt, true), SweepBackend::kThread);
  ASSERT_EQ(unsetenv("FRIEDA_SWEEP_BACKEND"), 0);
}

TEST(Backend, CodeclessRunnerFallsBackToThreadAndStillRuns) {
  SweepOptions opt;
  opt.backend = SweepBackend::kProcess;
  SweepRunner<int> runner(opt);  // int has no ReportCodec
  runner.set_cache(nullptr);
  std::vector<Job<int>> jobs;
  jobs.push_back({"one", [] { return 7; }});
  const auto out = runner.run(std::move(jobs));
  EXPECT_EQ(out[0].get(), 7);
  EXPECT_EQ(runner.backend_used(), SweepBackend::kThread);
  EXPECT_EQ(runner.child_crashes(), 0u);
}

// ---------------------------------------------------------------------------
// Fork plumbing (exp/process_pool.hpp).
// ---------------------------------------------------------------------------

TEST(ProcessPool, RunInChildShipsResultsErrorsAndCrashes) {
  const auto ok = run_in_child([] { return std::string("payload"); });
  EXPECT_TRUE(ok.delivered);
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.payload, "payload");

  const auto err =
      run_in_child([]() -> std::string { throw std::runtime_error("child says no"); });
  EXPECT_TRUE(err.delivered);
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.payload, "child says no");

  const auto aborted = run_in_child([]() -> std::string { std::abort(); });
  EXPECT_FALSE(aborted.delivered);
  EXPECT_NE(aborted.crash.find("signal"), std::string::npos) << aborted.crash;

  const auto exited = run_in_child([]() -> std::string { ::_exit(9); });
  EXPECT_FALSE(exited.delivered);
  EXPECT_NE(exited.crash.find("status 9"), std::string::npos) << exited.crash;
}

TEST(ProcessPool, ReadFrameRejectsTruncationAndGarbageLengths) {
  // Declared length outlives the writer: a crash mid-payload.
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const unsigned char header[8] = {16, 0, 0, 0, 0, 0, 0, 0};
    ASSERT_EQ(::write(fds[1], header, 8), 8);
    ASSERT_EQ(::write(fds[1], "Rab", 3), 3);
    ::close(fds[1]);
    char status = 0;
    std::string payload;
    EXPECT_FALSE(detail::read_frame(fds[0], status, payload));
    ::close(fds[0]);
  }
  // A zero or absurd declared length is a corrupted stream, not a request
  // to allocate gigabytes.
  for (const unsigned char fill : {static_cast<unsigned char>(0),
                                   static_cast<unsigned char>(0xff)}) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    unsigned char header[8];
    for (auto& b : header) b = fill;
    ASSERT_EQ(::write(fds[1], header, 8), 8);
    ::close(fds[1]);
    char status = 0;
    std::string payload;
    EXPECT_FALSE(detail::read_frame(fds[0], status, payload));
    ::close(fds[0]);
  }
}

// ---------------------------------------------------------------------------
// Process backend: identical results, isolated crashes.
// ---------------------------------------------------------------------------

TEST(ProcessBackend, MatchesThreadBackendFieldIdentically) {
  SweepOptions topt{2};
  topt.backend = SweepBackend::kThread;
  SweepOptions popt{2};
  popt.backend = SweepBackend::kProcess;
  SweepRunner<> threads(topt);
  SweepRunner<> procs(popt);
  threads.set_cache(nullptr);
  procs.set_cache(nullptr);
  const auto a = threads.run(scenario_jobs());
  const auto b = procs.run(scenario_jobs());
  EXPECT_EQ(procs.backend_used(), SweepBackend::kProcess);
  EXPECT_EQ(procs.child_crashes(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << a[i].error;
    ASSERT_TRUE(b[i].ok()) << b[i].error;
    EXPECT_EQ(a[i].tag, b[i].tag);
    expect_reports_equal(a[i].get(), b[i].get());
  }
}

TEST(ProcessBackend, CrashedChildrenAreIsolatedJobOutcomes) {
  // Thread-backend reference for the healthy cells.
  SweepOptions topt{2};
  topt.backend = SweepBackend::kThread;
  SweepRunner<> ref(topt);
  ref.set_cache(nullptr);
  const auto healthy = ref.run(scenario_jobs());

  // The same grid plus four saboteurs.  These run in forked children, so
  // the violent deaths below never touch this process.
  auto jobs = scenario_jobs();
  jobs.push_back({"segv", []() -> core::RunReport {
                    std::raise(SIGSEGV);
                    return {};
                  }});
  jobs.push_back({"abort", []() -> core::RunReport { std::abort(); }});
  jobs.push_back({"exit7", []() -> core::RunReport { ::_exit(7); }});
  jobs.push_back({"throws", []() -> core::RunReport {
                    throw std::runtime_error("child says no");
                  }});

  SweepOptions popt{2};
  popt.backend = SweepBackend::kProcess;
  SweepRunner<> runner(popt);
  runner.set_cache(nullptr);
  const auto out = runner.run(std::move(jobs));
  ASSERT_EQ(out.size(), healthy.size() + 4);
  for (std::size_t i = 0; i < healthy.size(); ++i) {
    ASSERT_TRUE(out[i].ok()) << out[i].error;
    expect_reports_equal(out[i].get(), healthy[i].get());
  }
  const auto& segv = out[healthy.size()];
  const auto& aborted = out[healthy.size() + 1];
  const auto& exited = out[healthy.size() + 2];
  const auto& threw = out[healthy.size() + 3];
  // Bare metal reports the fatal signal; a sanitizer runtime intercepts
  // the fault and turns it into a nonzero exit.  Both are crash outcomes.
  const auto looks_like_crash = [](const std::string& error) {
    return error.find("signal") != std::string::npos ||
           error.find("status") != std::string::npos;
  };
  EXPECT_FALSE(segv.ok());
  EXPECT_TRUE(looks_like_crash(segv.error)) << segv.error;
  EXPECT_FALSE(aborted.ok());
  EXPECT_TRUE(looks_like_crash(aborted.error)) << aborted.error;
  EXPECT_FALSE(exited.ok());
  EXPECT_NE(exited.error.find("status 7"), std::string::npos) << exited.error;
  // A thrown exception is the job's own error — same what() the thread
  // backend records — not a crash.
  EXPECT_FALSE(threw.ok());
  EXPECT_EQ(threw.error, "child says no");
  EXPECT_EQ(runner.child_crashes(), 3u);
  const auto* crashes = runner.metrics().find_counter("sweep.child_crashes");
  ASSERT_NE(crashes, nullptr);
  EXPECT_EQ(crashes->value(), 3u);
}

// ---------------------------------------------------------------------------
// Steal-half dispatch.
// ---------------------------------------------------------------------------

TEST(Stealing, SkewedGridStealsWithIdenticalResults) {
  auto make_jobs = [] {
    std::vector<Job<std::size_t>> jobs;
    // One long pole plus many quick cells.  The cost stamps pin the
    // longest-first schedule, so the pole is dealt to worker 0 with half the
    // quick cells queued behind it.
    jobs.push_back({"pole",
                    [] {
                      std::this_thread::sleep_for(std::chrono::milliseconds(80));
                      return std::size_t{1000};
                    },
                    std::nullopt, 100.0});
    for (std::size_t i = 0; i < 12; ++i) {
      jobs.push_back({"quick" + std::to_string(i), [i] { return i; }, std::nullopt, 1.0});
    }
    return jobs;
  };

  SweepRunner<std::size_t> stealing(SweepOptions{2});
  const auto stolen = stealing.run(make_jobs());
  // Worker 1 drains its dealt half in microseconds while the pole sleeps,
  // so it must have stolen from behind the pole at least once.
  EXPECT_GT(stealing.steals(), 0u);
  const auto* steals_ctr = stealing.metrics().find_counter("sweep.steals");
  ASSERT_NE(steals_ctr, nullptr);
  EXPECT_EQ(steals_ctr->value(), stealing.steals());

  SweepOptions pinned{2};
  pinned.steal = false;
  SweepRunner<std::size_t> stranded(pinned);
  const auto kept = stranded.run(make_jobs());
  EXPECT_EQ(stranded.steals(), 0u);

  SweepRunner<std::size_t> seq(SweepOptions{1});
  const auto serial = seq.run(make_jobs());

  ASSERT_EQ(stolen.size(), kept.size());
  ASSERT_EQ(stolen.size(), serial.size());
  for (std::size_t i = 0; i < stolen.size(); ++i) {
    EXPECT_EQ(stolen[i].tag, kept[i].tag);
    EXPECT_EQ(stolen[i].get(), kept[i].get());
    EXPECT_EQ(stolen[i].get(), serial[i].get());
  }
}

// ---------------------------------------------------------------------------
// Result-cache persistence (FRIEDA_RESULT_CACHE_FILE).
// ---------------------------------------------------------------------------

std::string temp_cache_path(const char* name) {
  return std::string(testing::TempDir()) + "/" + name;
}

int decode_int_strict(const std::string& s) {
  std::size_t used = 0;
  const int v = std::stoi(s, &used);
  if (used != s.size()) throw std::runtime_error("trailing junk in payload");
  return v;
}

void attach_int_codec(ResultCache<int>& cache, const std::string& path) {
  cache.set_persistence(path, [](const int& v) { return std::to_string(v); },
                        decode_int_strict);
}

TEST(ResultCachePersistence, SaveThenLoadRoundTrips) {
  const auto path = temp_cache_path("frieda_cache_roundtrip.txt");
  std::remove(path.c_str());
  StableHasher ha;
  StableHasher hb;
  const auto ka = ha.mix_str("cell-a").digest();
  const auto kb = hb.mix_str("cell-b").digest();

  ResultCache<int> writer;
  EXPECT_FALSE(writer.save_if_persistent());  // no path attached -> no-op
  attach_int_codec(writer, path);
  EXPECT_EQ(writer.persist_path(), path);
  writer.insert(ka, 17);
  writer.insert(kb, 42);
  ASSERT_TRUE(writer.save_if_persistent());
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), -1);
  EXPECT_EQ(::stat((path + ".tmp").c_str(), &st), -1)
      << "atomic save must not leave a temp file behind";

  ResultCache<int> reader;
  attach_int_codec(reader, path);
  ASSERT_TRUE(reader.load_file(path));
  EXPECT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.lookup(ka).value(), 17);
  EXPECT_EQ(reader.lookup(kb).value(), 42);
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, InProcessEntriesWinOverFileEntries) {
  const auto path = temp_cache_path("frieda_cache_merge.txt");
  StableHasher ha;
  StableHasher hb;
  const auto ka = ha.mix_str("cell-a").digest();
  const auto kb = hb.mix_str("cell-b").digest();
  ResultCache<int> writer;
  attach_int_codec(writer, path);
  writer.insert(ka, 1);
  writer.insert(kb, 2);
  ASSERT_TRUE(writer.save_if_persistent());

  ResultCache<int> reader;
  attach_int_codec(reader, path);
  reader.insert(ka, 99);  // fresher in-process value
  ASSERT_TRUE(reader.load_file(path));
  EXPECT_EQ(reader.lookup(ka).value(), 99);  // in-process wins
  EXPECT_EQ(reader.lookup(kb).value(), 2);   // file seeds the rest
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, MalformedEntriesAreSkippedNotTrusted) {
  const auto path = temp_cache_path("frieda_cache_malformed.txt");
  StableHasher hg;
  StableHasher hbad;
  const auto good = hg.mix_str("good").digest();
  const auto undecodable = hbad.mix_str("undecodable").digest();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("frieda-result-cache v1\n", f);
    std::fprintf(f, "%s 2\n42\n", good.to_hex().c_str());
    std::fputs("zz not-an-entry\n", f);  // malformed meta line
    std::fprintf(f, "%s 5\nhello\n", undecodable.to_hex().c_str());  // bad payload
    std::fclose(f);
  }
  ResultCache<int> cache;
  attach_int_codec(cache, path);
  EXPECT_TRUE(cache.load_file(path));  // something valid was loaded
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(good).value(), 42);
  EXPECT_FALSE(cache.lookup(undecodable).has_value());
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, WrongHeaderIsRejectedEntirely) {
  const auto path = temp_cache_path("frieda_cache_header.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("frieda-result-cache v999\n", f);
    std::fclose(f);
  }
  ResultCache<int> cache;
  attach_int_codec(cache, path);
  EXPECT_FALSE(cache.load_file(path));
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, MissingFileIsAQuietColdStart) {
  ResultCache<int> cache;
  EXPECT_FALSE(cache.load_file(temp_cache_path("frieda_cache_nonexistent.txt")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCachePersistence, SweepCompletionCheckpointsTheCache) {
  const auto path = temp_cache_path("frieda_cache_sweep.txt");
  std::remove(path.c_str());
  ResultCache<int> cache;
  attach_int_codec(cache, path);
  StableHasher h;
  const auto fp = h.mix_str("sweep-cell").digest();
  SweepRunner<int> runner(SweepOptions{1});
  runner.set_cache(&cache);
  std::vector<Job<int>> jobs;
  jobs.push_back({"cell", [] { return 123; }, fp});
  const auto out = runner.run(std::move(jobs));
  ASSERT_TRUE(out[0].ok());

  // run() checkpointed on completion: a fresh cache reloads the cell.
  ResultCache<int> reloaded;
  attach_int_codec(reloaded, path);
  ASSERT_TRUE(reloaded.load_file(path));
  EXPECT_EQ(reloaded.lookup(fp).value(), 123);
  std::remove(path.c_str());
}

}  // namespace

// A test-only result type with its own wire codec: exercises the
// FRIEDA_RESULT_CACHE_FILE wiring on a fresh once_flag without touching the
// global RunReport/RtReport caches other tests share.
struct WireProbe {
  int v = 0;
};

template <>
struct ReportCodec<WireProbe> {
  static constexpr bool kAvailable = true;
  static std::string serialize(const WireProbe& p) { return std::to_string(p.v); }
  static WireProbe deserialize(const std::string& s) {
    std::size_t used = 0;
    const int v = std::stoi(s, &used);
    if (used != s.size()) throw std::runtime_error("bad probe payload");
    return WireProbe{v};
  }
};

namespace {

TEST(ResultCachePersistence, EnvVariableWiresTheGlobalCache) {
  const auto path = temp_cache_path("frieda_cache_env.txt");
  std::remove(path.c_str());
  StableHasher h;
  const auto fp = h.mix_str("env-cell").digest();
  {
    // Seed the checkpoint from a disposable cache with the same codec.
    ResultCache<WireProbe> seed;
    seed.set_persistence(
        path, [](const WireProbe& p) { return ReportCodec<WireProbe>::serialize(p); },
        [](const std::string& s) { return ReportCodec<WireProbe>::deserialize(s); });
    seed.insert(fp, WireProbe{7});
    ASSERT_TRUE(seed.save_if_persistent());
  }

  ASSERT_EQ(setenv("FRIEDA_RESULT_CACHE_FILE", path.c_str(), 1), 0);
  // First sweep over this result type: run() wires the process-global cache
  // from the environment and loads the checkpoint before the first lookup.
  std::atomic<int> executed{0};
  SweepRunner<WireProbe> runner(SweepOptions{1});
  std::vector<Job<WireProbe>> jobs;
  jobs.push_back({"env-cell", [&executed]() -> WireProbe {
                    ++executed;
                    return WireProbe{999};
                  },
                  fp});
  const auto out = runner.run(std::move(jobs));
  ASSERT_TRUE(out[0].ok());
  EXPECT_EQ(out[0].get().v, 7);  // served from the loaded checkpoint
  EXPECT_TRUE(out[0].from_cache);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(ResultCache<WireProbe>::global().persist_path(), path);

  ASSERT_EQ(unsetenv("FRIEDA_RESULT_CACHE_FILE"), 0);
  ResultCache<WireProbe>::global().set_persistence("", nullptr, nullptr);
  ResultCache<WireProbe>::global().clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace frieda::exp
