// Sweep engine tests: thread-count invariance of real scenario runs, seed
// derivation, deterministic result ordering under skewed job timings,
// exception isolation, and concurrent create-or-get on a shared
// MetricsRegistry (the test the tsan preset exists for).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "exp/grid.hpp"
#include "exp/sweep.hpp"
#include "obs/metrics.hpp"
#include "workload/scenarios.hpp"

namespace frieda::exp {
namespace {

using core::PlacementStrategy;
using workload::PaperScenarioOptions;

// ---------------------------------------------------------------------------
// Field-by-field RunReport comparison (simulated runs are deterministic, so
// every field — including derived doubles — must match exactly).
// ---------------------------------------------------------------------------

void expect_reports_equal(const core::RunReport& a, const core::RunReport& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.ready_time, b.ready_time);
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.staging_end, b.staging_end);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.units_total, b.units_total);
  EXPECT_EQ(a.units_completed, b.units_completed);
  EXPECT_EQ(a.units_failed, b.units_failed);
  EXPECT_EQ(a.units_unprocessed, b.units_unprocessed);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.workers_isolated, b.workers_isolated);
  EXPECT_EQ(a.transfer_busy(), b.transfer_busy());
  EXPECT_EQ(a.compute_busy(), b.compute_busy());
  EXPECT_EQ(a.overlap(), b.overlap());
  // Per-unit and per-worker records, via their canonical CSV renderings.
  EXPECT_EQ(a.units_csv(), b.units_csv());
  EXPECT_EQ(a.workers_csv(), b.workers_csv());
}

std::vector<Job<core::RunReport>> scenario_jobs() {
  Grid grid;
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  grid.add_als(PlacementStrategy::kPrePartitionRemote, opt);
  grid.add_als(PlacementStrategy::kRealTime, opt);
  grid.add_blast(PlacementStrategy::kNoPartitionCommon, opt);
  grid.add_blast(PlacementStrategy::kRealTime, opt);
  return grid.take();
}

TEST(Sweep, ThreadCountInvariance) {
  SweepRunner<> one(SweepOptions{1});
  SweepRunner<> eight(SweepOptions{8});
  const auto seq = one.run(scenario_jobs());
  const auto par = eight.run(scenario_jobs());
  EXPECT_EQ(one.threads_used(), 1u);
  EXPECT_EQ(eight.threads_used(), 4u);  // capped at the job count
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(seq[i].ok()) << seq[i].error;
    ASSERT_TRUE(par[i].ok()) << par[i].error;
    EXPECT_EQ(seq[i].tag, par[i].tag);
    expect_reports_equal(seq[i].get(), par[i].get());
  }
}

TEST(Sweep, SharedModelMatchesPerJobModel) {
  PaperScenarioOptions opt;
  opt.scale = 0.1;
  const auto shared =
      std::make_shared<const workload::ImageCompareModel>(workload::make_als_model(opt));
  Grid grid;
  grid.add_als(PlacementStrategy::kRealTime, opt);
  grid.add_als(PlacementStrategy::kRealTime, opt, shared);
  SweepRunner<> runner;
  const auto out = runner.run(grid.take());
  expect_reports_equal(out[0].get(), out[1].get());
}

// ---------------------------------------------------------------------------
// Seed derivation.
// ---------------------------------------------------------------------------

TEST(Sweep, DerivedSeedsDoNotCollide) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 2012ull, 0xdeadbeefull}) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      EXPECT_TRUE(seen.insert(derive_seed(base, i)).second)
          << "collision at base=" << base << " index=" << i;
    }
  }
}

TEST(Sweep, DerivedSeedsAreAppendStable) {
  // A job's seed depends only on (base, index) — adding jobs after it (or
  // asking again) never changes it.
  EXPECT_EQ(derive_seed(2012, 3), derive_seed(2012, 3));
  EXPECT_NE(derive_seed(2012, 3), derive_seed(2012, 4));
  EXPECT_NE(derive_seed(2012, 0), derive_seed(2013, 0));
  EXPECT_NE(derive_seed(2012, 0), 2012u);  // whitened, not passed through
}

// ---------------------------------------------------------------------------
// Ordering and isolation.
// ---------------------------------------------------------------------------

TEST(Sweep, ResultsKeepJobOrderUnderSkewedTimings) {
  // Early jobs sleep longest, so completion order is roughly the reverse of
  // submission order; result slots must still line up with job indices.
  constexpr std::size_t kJobs = 16;
  std::vector<Job<std::size_t>> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back({"job" + std::to_string(i), [i] {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds((kJobs - i) * 3));
                      return i;
                    }});
  }
  SweepRunner<std::size_t> runner(SweepOptions{8});
  const auto out = runner.run(std::move(jobs));
  ASSERT_EQ(out.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(out[i].tag, "job" + std::to_string(i));
    ASSERT_TRUE(out[i].ok());
    EXPECT_EQ(out[i].get(), i);
  }
}

TEST(Sweep, ThrowingJobIsIsolated) {
  std::vector<Job<int>> jobs;
  jobs.push_back({"fine-a", [] { return 1; }});
  jobs.push_back({"boom", []() -> int { throw std::runtime_error("deliberate failure"); }});
  jobs.push_back({"fine-b", [] { return 3; }});
  SweepRunner<int> runner(SweepOptions{2});
  const auto out = runner.run(std::move(jobs));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_EQ(out[0].get(), 1);
  EXPECT_FALSE(out[1].ok());
  EXPECT_NE(out[1].error.find("deliberate failure"), std::string::npos);
  EXPECT_THROW(out[1].get(), FriedaError);
  try {
    out[1].get();
  } catch (const FriedaError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos)
        << "error must name the failed job";
  }
  EXPECT_TRUE(out[2].ok());
  EXPECT_EQ(out[2].get(), 3);
}

TEST(Sweep, EmptyBatchAndThreadResolution) {
  SweepRunner<int> runner;
  EXPECT_TRUE(runner.run({}).empty());
  // Never more threads than jobs; at least one thread for a non-empty batch.
  EXPECT_EQ(detail::resolve_threads(8, 3), 3u);
  EXPECT_EQ(detail::resolve_threads(2, 100), 2u);
  EXPECT_GE(detail::resolve_threads(0, 100), 1u);
}

TEST(Sweep, EnvVarOverridesThreadCount) {
  ASSERT_EQ(setenv("FRIEDA_SWEEP_THREADS", "3", 1), 0);
  EXPECT_EQ(detail::resolve_threads(0, 100), 3u);
  EXPECT_EQ(detail::resolve_threads(0, 2), 2u);   // still capped by jobs
  EXPECT_EQ(detail::resolve_threads(5, 100), 5u); // explicit request wins
  ASSERT_EQ(unsetenv("FRIEDA_SWEEP_THREADS"), 0);
}

// ---------------------------------------------------------------------------
// Concurrent sweep jobs sharing one MetricsRegistry: the registry map is
// synchronized; each job updates only its own per-job instruments.  Run this
// under the asan and tsan presets (see docs/performance.md).
// ---------------------------------------------------------------------------

TEST(Sweep, SharedMetricsRegistryAcrossJobs) {
  obs::MetricsRegistry registry;
  constexpr std::size_t kJobs = 32;
  std::vector<Job<int>> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back({"metrics" + std::to_string(i), [i, &registry] {
                      const auto name = "job" + std::to_string(i);
                      auto& counter = registry.counter(name + ".units");
                      auto& stats = registry.stats(name + ".latency");
                      for (int k = 0; k < 100; ++k) {
                        counter.inc();
                        stats.add(static_cast<double>(k));
                      }
                      registry.gauge(name + ".makespan").set(static_cast<double>(i));
                      return static_cast<int>(registry.size() > 0);
                    }});
  }
  SweepRunner<int> runner(SweepOptions{8});
  const auto out = runner.run(std::move(jobs));
  EXPECT_EQ(registry.size(), 3 * kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(out[i].ok()) << out[i].error;
    const auto name = "job" + std::to_string(i);
    const auto* counter = registry.find_counter(name + ".units");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->value(), 100u);
    const auto* stats = registry.find_stats(name + ".latency");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->count(), 100u);
    const auto* gauge = registry.find_gauge(name + ".makespan");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->value(), static_cast<double>(i));
  }
  // Exports see a consistent snapshot after the sweep.
  EXPECT_NE(registry.csv().find("job0.units,counter,100"), std::string::npos);
}

}  // namespace
}  // namespace frieda::exp
