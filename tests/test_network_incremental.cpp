// Differential and determinism coverage for the incremental max-min solver.
//
// The incremental path maintains the solved allocation between events and
// re-solves only the dirty connected component (see src/net/network.hpp).
// These tests drive randomized churn — arrivals, natural departures, node
// failures and restores — with Network::set_differential_check() enabled,
// which re-solves the whole system from scratch after every incremental
// solve and throws if any active class's stored rate diverges.  A second
// suite checks that large runs are bit-deterministic across repetitions.
#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace frieda::net {
namespace {

Topology star(std::size_t nodes, Bandwidth nic) {
  Topology t;
  for (std::size_t i = 0; i < nodes; ++i) {
    t.add_node("n" + std::to_string(i), nic, nic);
  }
  return t;
}

// Rack/site/backbone-rich topology so dirty components have real structure:
// some classes share uplinks, some only the backbone, some nothing at all.
Topology hierarchical(std::size_t racks, std::size_t per_rack) {
  Topology t;
  for (std::size_t r = 0; r < racks; ++r) {
    for (std::size_t i = 0; i < per_rack; ++i) {
      const auto id = t.add_node("r" + std::to_string(r) + "n" + std::to_string(i),
                                 gbps(1), gbps(1));
      t.set_rack(id, static_cast<RackId>(r));
    }
    t.set_rack_uplink(static_cast<RackId>(r), gbps(4));
  }
  return t;
}

struct ChurnStats {
  std::size_t started = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  Bytes bytes = 0;
};

// Spawns `events` transfers over random pairs with random sizes/streams and
// sprinkles fail/restore cycles over a few victim nodes.  With the
// differential check on, every incremental solve is audited against a fresh
// full solve, so simply surviving the run is the assertion.
ChurnStats run_churn(Topology topo, std::uint64_t seed, std::size_t events,
                     bool with_failures, bool differential) {
  sim::Simulation sim(seed);
  const auto nodes = topo.node_count();
  Network netw(sim, std::move(topo), /*latency=*/1e-4);
  netw.set_differential_check(differential);
  ChurnStats stats;
  Rng rng(seed);
  for (std::size_t e = 0; e < events; ++e) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
    auto dst = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
    if (rng.uniform() < 0.9 && dst == src) dst = (src + 1) % nodes;  // mostly distinct
    const Bytes bytes = static_cast<Bytes>(rng.uniform_int(1, 8 * MB));
    const auto streams = static_cast<unsigned>(rng.uniform_int(1, 4));
    const SimTime at = rng.uniform(0.0, 5.0);
    sim.schedule_at(at, [&, src, dst, bytes, streams] {
      sim.spawn([](Network& n, ChurnStats& st, NodeId s, NodeId d, Bytes b,
                   unsigned k) -> sim::Task<> {
        ++st.started;
        const auto r = co_await n.transfer(s, d, b, k);
        r.ok() ? ++st.completed : ++st.failed;
        st.bytes += r.transferred;
      }(netw, stats, src, dst, bytes, streams));
    });
  }
  if (with_failures) {
    for (int v = 0; v < 4; ++v) {
      const auto victim = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
      const SimTime down = rng.uniform(0.5, 4.0);
      sim.schedule_at(down, [&, victim] { netw.fail_node(victim); });
      sim.schedule_at(down + rng.uniform(0.1, 1.0),
                      [&, victim] { netw.restore_node(victim); });
    }
  }
  sim.run();
  EXPECT_EQ(stats.started, events);
  EXPECT_EQ(stats.completed + stats.failed, events);
  EXPECT_EQ(netw.active_flows(), 0u);
  EXPECT_EQ(netw.active_flow_classes(), 0u);
  return stats;
}

TEST(NetworkIncremental, DifferentialChurnOnStar) {
  // Dense star: most classes share the handful of NICs, so dirty components
  // are large and exercise multi-class BFS + drain sweeps.
  const auto stats = run_churn(star(8, mbps(500)), 17, 1000, /*with_failures=*/false,
                               /*differential=*/true);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(NetworkIncremental, DifferentialChurnWithFailures) {
  // Failures force full solves (invalidation) between incremental runs and
  // abort in-flight flows with partial byte accounting.
  const auto stats = run_churn(star(8, mbps(500)), 23, 1000, /*with_failures=*/true,
                               /*differential=*/true);
  EXPECT_GT(stats.completed, 0u);
}

TEST(NetworkIncremental, DifferentialChurnOnHierarchy) {
  // Racked topology: intra-rack classes form small isolated components,
  // cross-rack classes couple racks through shared uplinks.
  const auto stats = run_churn(hierarchical(6, 4), 31, 1000, /*with_failures=*/true,
                               /*differential=*/true);
  EXPECT_GT(stats.completed, 0u);
}

TEST(NetworkIncremental, PartialBytesStayClamped) {
  // Every failed transfer must report transferred <= requested even under
  // fluid-model overshoot (the kMinTimeStep clamp window).
  sim::Simulation sim;
  Network netw(sim, star(6, gbps(10)), 0.0);
  std::vector<TransferResult> results;
  results.reserve(64);  // coroutines hold references into this vector
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    const auto dst = static_cast<NodeId>(1 + rng.uniform_int(0, 4));
    const Bytes bytes = static_cast<Bytes>(rng.uniform_int(1, 64));
    results.emplace_back();
    auto& out = results.back();
    sim.spawn([](Network& n, TransferResult& r, NodeId d, Bytes b) -> sim::Task<> {
      r = co_await n.transfer(0, d, b);
    }(netw, out, dst, bytes));
  }
  sim.schedule_at(5e-10, [&] { netw.fail_node(0); });
  sim.run();
  for (const auto& r : results) EXPECT_LE(r.transferred, r.requested);
}

// One churn run's full observable outcome, for determinism comparison.
struct RunFingerprint {
  Bytes total_bytes = 0;
  std::uint64_t solves = 0;
  std::uint64_t full_solves = 0;
  std::uint64_t dirty = 0;
  double end_time = 0.0;

  bool operator==(const RunFingerprint& o) const {
    return total_bytes == o.total_bytes && solves == o.solves &&
           full_solves == o.full_solves && dirty == o.dirty && end_time == o.end_time;
  }
};

RunFingerprint big_run(std::size_t transfers) {
  sim::Simulation sim(13);
  Topology topo;
  for (int i = 0; i < 8; ++i) topo.add_node("srv" + std::to_string(i), gbps(1), gbps(1));
  for (int i = 0; i < 32; ++i) topo.add_node("w" + std::to_string(i), mbps(100), mbps(100));
  Network netw(sim, std::move(topo), 1e-4);
  Rng rng(13);
  for (std::size_t i = 0; i < transfers; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 7));
    const auto dst = static_cast<NodeId>(8 + rng.uniform_int(0, 31));
    const Bytes bytes = static_cast<Bytes>(rng.uniform_int(64 * KB, MB));
    const auto streams = static_cast<unsigned>(rng.uniform_int(1, 4));
    sim.spawn([](Network& n, NodeId s, NodeId d, Bytes b, unsigned k) -> sim::Task<> {
      (void)co_await n.transfer(s, d, b, k);
    }(netw, src, dst, bytes, streams));
  }
  sim.run();
  RunFingerprint fp;
  fp.total_bytes = netw.total_bytes_moved();
  fp.solves = netw.solver_invocations();
  fp.full_solves = netw.solver_full_solves();
  fp.dirty = netw.solver_dirty_classes();
  fp.end_time = sim.now();
  return fp;
}

TEST(NetworkIncremental, DeterministicAtSixteenThousandFlows) {
  // ~4096 transfers x up to 4 streams = the 16384-flow tier of
  // BM_NetworkManyFlows: two runs must agree bit-for-bit on every
  // observable, including the solver's dirty-set accounting.
  const auto a = big_run(4096);
  const auto b = big_run(4096);
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.solves, 0u);
  EXPECT_GT(a.dirty, a.solves);  // components average more than one class
}

TEST(NetworkIncremental, SolverCountersExposeDirtySets) {
  sim::Simulation sim;
  Network netw(sim, star(4, mbps(100)), 0.0);
  for (NodeId dst = 1; dst < 4; ++dst) {
    sim.spawn([](Network& n, NodeId d) -> sim::Task<> {
      (void)co_await n.transfer(0, d, 10 * MB);
    }(netw, dst));
  }
  sim.run();
  // First arrival is a cold registry (one full solve); everything after is
  // incremental, and the three classes share node 0's egress so each solve
  // dirties the whole component.
  EXPECT_GT(netw.solver_invocations(), 0u);
  EXPECT_EQ(netw.solver_full_solves(), 1u);
  EXPECT_GE(netw.solver_dirty_classes(), netw.solver_invocations());
}

}  // namespace
}  // namespace frieda::net
