// Property-style sweeps over the FRIEDA engine: for every combination of
// placement strategy, cluster shape, and workload skew, the run must satisfy
// the framework's invariants regardless of the emergent schedule.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/synthetic.hpp"

namespace frieda::core {
namespace {

using cluster::VirtualCluster;
using workload::SyntheticModel;
using workload::SyntheticParams;

using Param = std::tuple<PlacementStrategy, std::size_t /*vms*/, unsigned /*cores*/,
                         double /*task cv*/, PartitionScheme>;

class RunPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(RunPropertyTest, InvariantsHold) {
  const auto [strategy, vm_count, cores, cv, scheme] = GetParam();

  sim::Simulation sim(1000 + vm_count * 10 + cores);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 1.0;
  type.cores = cores;
  cluster.provision(type, vm_count);

  SyntheticParams params;
  params.file_count = 36;
  params.mean_file_bytes = 3 * MB;
  params.file_size_cv = 0.3;
  params.mean_task_seconds = 1.5;
  params.task_cv = cv;
  params.common_data_bytes = 8 * MB;
  params.output_bytes = 10 * KB;
  SyntheticModel app(params);

  auto units = PartitionGenerator::generate(scheme, app.catalog());
  const std::size_t expected_units = units.size();
  const auto arity = units.front().inputs.size();
  const CommandTemplate command(arity == 1 ? "app $inp1" : "app $inp1 $inp2");

  RunOptions opt;
  opt.strategy = strategy;
  opt.scheme = scheme;
  FriedaRun run(cluster, app.catalog(), std::move(units), app, command, opt);
  if (strategy == PlacementStrategy::kPrePartitionLocal) {
    run.pre_place_partitions(cluster.all_vms());
  }
  const auto report = run.run();

  // Invariant 1: everything completes on a healthy cluster.
  EXPECT_TRUE(report.all_completed()) << report.summary();
  EXPECT_EQ(report.units_total, expected_units);

  // Invariant 2: exactly-once execution, coherent per-unit records.
  std::set<WorkUnitId> seen;
  for (const auto& rec : report.units) {
    EXPECT_TRUE(seen.insert(rec.unit).second);
    EXPECT_EQ(rec.status, UnitStatus::kCompleted);
    EXPECT_EQ(rec.attempts, 1);
    EXPECT_GE(rec.exec_seconds, 0.0);
    EXPECT_GE(rec.finished, rec.dispatched);
    EXPECT_LE(rec.finished, report.end_time + 1e-9);
  }

  // Invariant 3: makespan respects the aggregate-compute lower bound.
  double total_compute = 0.0;
  for (const auto& rec : report.units) total_compute += rec.exec_seconds;
  const double cores_total = static_cast<double>(vm_count * cores);
  EXPECT_GE(report.makespan() + 1e-6, total_compute / cores_total);

  // Invariant 4: worker accounting sums to the unit count.
  std::size_t worker_sum = 0;
  for (const auto& w : report.workers) worker_sum += w.units_completed;
  EXPECT_EQ(worker_sum, report.units_completed);

  // Invariant 5: no disk over-commit on any VM.
  for (const auto vm : cluster.all_vms()) {
    EXPECT_LE(cluster.vm(vm).disk().used(), cluster.vm(vm).disk().capacity());
  }

  // Invariant 6: phases are sequential for pre-partitioning (paper II.C),
  // and staging is instantaneous for the lazy strategies.
  if (strategy == PlacementStrategy::kPrePartitionRemote ||
      strategy == PlacementStrategy::kNoPartitionCommon) {
    const auto first_compute = report.timeline.first_start(ActivityKind::kCompute);
    ASSERT_TRUE(first_compute.has_value());
    EXPECT_GE(*first_compute, report.staging_end - 1e-9);
  }
  if (strategy == PlacementStrategy::kRealTime ||
      strategy == PlacementStrategy::kRemoteRead) {
    EXPECT_LT(report.staging_seconds(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunPropertyTest,
    ::testing::Combine(
        ::testing::Values(PlacementStrategy::kNoPartitionCommon,
                          PlacementStrategy::kPrePartitionLocal,
                          PlacementStrategy::kPrePartitionRemote,
                          PlacementStrategy::kRealTime, PlacementStrategy::kRemoteRead),
        ::testing::Values<std::size_t>(1, 3),
        ::testing::Values<unsigned>(1, 4),
        ::testing::Values(0.0, 1.0),
        ::testing::Values(PartitionScheme::kSingleFile,
                          PartitionScheme::kPairwiseAdjacent)));

// Determinism across the whole parameter space: same seed, same everything.
class DeterminismTest : public ::testing::TestWithParam<PlacementStrategy> {};

TEST_P(DeterminismTest, IdenticalTimelinesForIdenticalSeeds) {
  auto run_once = [&] {
    sim::Simulation sim(77);
    VirtualCluster cluster(sim);
    auto type = cluster::c1_xlarge();
    type.boot_time = 0.0;
    type.cores = 2;
    cluster.provision(type, 2);
    SyntheticParams params;
    params.file_count = 24;
    params.mean_file_bytes = 2 * MB;
    params.mean_task_seconds = 1.0;
    params.task_cv = 0.8;
    SyntheticModel app(params);
    auto units =
        PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
    RunOptions opt;
    opt.strategy = GetParam();
    FriedaRun run(cluster, app.catalog(), std::move(units), app,
                  CommandTemplate("app $inp1"), opt);
    if (GetParam() == PlacementStrategy::kPrePartitionLocal) {
      run.pre_place_partitions(cluster.all_vms());
    }
    return run.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  EXPECT_EQ(a.units_csv(), b.units_csv());
  EXPECT_EQ(a.workers_csv(), b.workers_csv());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, DeterminismTest,
                         ::testing::Values(PlacementStrategy::kNoPartitionCommon,
                                           PlacementStrategy::kPrePartitionLocal,
                                           PlacementStrategy::kPrePartitionRemote,
                                           PlacementStrategy::kRealTime,
                                           PlacementStrategy::kRemoteRead));

TEST(ReportCsv, WellFormed) {
  sim::Simulation sim(3);
  VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  cluster.provision(type, 1);
  SyntheticParams params;
  params.file_count = 4;
  params.mean_task_seconds = 1.0;
  SyntheticModel app(params);
  auto units = PartitionGenerator::generate(PartitionScheme::kSingleFile, app.catalog());
  RunOptions opt;
  FriedaRun run(cluster, app.catalog(), std::move(units), app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();
  const auto ucsv = report.units_csv();
  const auto wcsv = report.workers_csv();
  // Header + one line per unit/worker.
  EXPECT_EQ(std::count(ucsv.begin(), ucsv.end(), '\n'), 1 + 4);
  EXPECT_EQ(std::count(wcsv.begin(), wcsv.end(), '\n'),
            1 + static_cast<long>(report.workers.size()));
  EXPECT_NE(ucsv.find("unit,status,worker"), std::string::npos);
  EXPECT_NE(wcsv.find("worker,vm,slot"), std::string::npos);
  EXPECT_NE(ucsv.find("completed"), std::string::npos);
}

}  // namespace
}  // namespace frieda::core
