// Robustness (Section V.A "Robust") and elasticity (Section V.A "Elastic")
// integration tests: worker isolation, the requeue extension, and elastic
// add/remove of workers through the controller.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/synthetic.hpp"

namespace frieda::core {
namespace {

using cluster::VirtualCluster;
using workload::SyntheticModel;
using workload::SyntheticParams;

struct Scenario {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<VirtualCluster> cluster;
  std::unique_ptr<SyntheticModel> app;
  std::vector<WorkUnit> units;
  std::vector<cluster::VmId> vms;
};

Scenario make_scenario(SyntheticParams params, std::size_t vm_count, unsigned cores,
                       std::uint64_t seed = 7) {
  Scenario s;
  s.sim = std::make_unique<sim::Simulation>(seed);
  s.cluster = std::make_unique<VirtualCluster>(*s.sim);
  auto type = cluster::c1_xlarge();
  type.cores = cores;
  type.boot_time = 0.0;
  s.vms = s.cluster->provision(type, vm_count);
  s.app = std::make_unique<SyntheticModel>(params);
  s.units = PartitionGenerator::generate(PartitionScheme::kSingleFile, s.app->catalog());
  return s;
}

SyntheticParams small_load() {
  SyntheticParams params;
  params.file_count = 40;
  params.mean_file_bytes = MB;
  params.mean_task_seconds = 2.0;
  return params;
}

TEST(Failure, IsolationWithoutRequeueLosesOnlyAffectedUnits) {
  auto s = make_scenario(small_load(), 2, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.requeue_on_failure = false;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  cluster::FailureInjector injector(*s.cluster);
  injector.schedule(s.vms[1], 10.0);
  const auto report = run.run();

  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(report.workers_isolated, 2u);  // both workers on the failed VM
  EXPECT_GT(report.units_completed, 0u);
  EXPECT_LT(report.units_completed, report.units_total);
  // Everything is accounted: completed + failed + unprocessed == total.
  EXPECT_EQ(report.units_completed + report.units_failed + report.units_unprocessed,
            report.units_total);
  // The paper's base system does NOT restart failed tasks (Section V.A).
  for (const auto& rec : report.units) {
    if (rec.status == UnitStatus::kFailed) EXPECT_EQ(rec.attempts, 1);
  }
  // The surviving VM's workers kept processing after the failure.
  for (const auto& w : report.workers) {
    if (w.vm == s.vms[0]) EXPECT_GT(w.units_completed, 5u);
  }
}

TEST(Failure, RequeueExtensionCompletesEverything) {
  auto s = make_scenario(small_load(), 2, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.requeue_on_failure = true;  // the paper's future-work fault recovery
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  cluster::FailureInjector injector(*s.cluster);
  injector.schedule(s.vms[1], 10.0);
  const auto report = run.run();

  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_TRUE(report.all_completed()) << report.summary();
  // Some units needed more than one attempt.
  bool retried = false;
  for (const auto& rec : report.units) retried |= rec.attempts > 1;
  EXPECT_TRUE(retried);
}

TEST(Failure, LastLiveWorkerFailingMidFlightKeepsAccountingClosed) {
  // The hard corner of the requeue path: requeue_on_failure is on, but the
  // failing worker was the LAST live one, so units in flight cannot requeue
  // (no live worker) and must go terminal instead of lingering kInFlight.
  auto s = make_scenario(small_load(), 1, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.requeue_on_failure = true;
  cluster::FailureInjector injector(*s.cluster);
  injector.schedule(s.vms[0], 10.0);  // the only VM dies mid-run
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();

  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_GT(report.units_completed, 0u);
  EXPECT_LT(report.units_completed, report.units_total);
  // Terminal accounting stays closed: every unit is exactly one of
  // completed / failed / unprocessed...
  EXPECT_EQ(report.units_completed + report.units_failed + report.units_unprocessed,
            report.units_total);
  // ...and none is stranded in a non-terminal state.
  for (const auto& rec : report.units) {
    EXPECT_NE(rec.status, UnitStatus::kInFlight) << "unit " << rec.unit;
    EXPECT_NE(rec.status, UnitStatus::kPending) << "unit " << rec.unit;
  }
}

TEST(Failure, ExhaustedAttemptsGoTerminalWithRequeueEnabled) {
  // requeue_on_failure with max_attempts == 1: a unit lost to a failure has
  // already spent its only attempt and must go kFailed (not requeue forever,
  // not linger in flight), while the surviving VM finishes the rest.
  auto s = make_scenario(small_load(), 2, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.requeue_on_failure = true;
  opt.max_attempts = 1;
  cluster::FailureInjector injector(*s.cluster);
  injector.schedule(s.vms[1], 10.0);
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  const auto report = run.run();

  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_GT(report.units_failed, 0u);  // the in-flight casualties
  EXPECT_EQ(report.units_completed + report.units_failed + report.units_unprocessed,
            report.units_total);
  for (const auto& rec : report.units) {
    EXPECT_NE(rec.status, UnitStatus::kInFlight) << "unit " << rec.unit;
    if (rec.status == UnitStatus::kFailed) EXPECT_EQ(rec.attempts, 1);
  }
}

TEST(Failure, PrePartitionLosesTheFailedWorkersShare) {
  auto s = make_scenario(small_load(), 2, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kPrePartitionRemote;
  opt.requeue_on_failure = false;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  cluster::FailureInjector injector(*s.cluster);
  injector.schedule(s.vms[0], 15.0);
  const auto report = run.run();
  EXPECT_GT(report.units_unprocessed, 0u);  // the share that never ran
  EXPECT_EQ(report.units_completed + report.units_failed + report.units_unprocessed,
            report.units_total);
}

TEST(Failure, PrePartitionWithRequeueRedistributes) {
  auto s = make_scenario(small_load(), 2, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kPrePartitionRemote;
  opt.requeue_on_failure = true;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  cluster::FailureInjector injector(*s.cluster);
  injector.schedule(s.vms[0], 15.0);
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed()) << report.summary();
  // Units from the dead VM's share were re-staged to the survivor.
  EXPECT_GT(report.bytes_moved, s.app->catalog().total_bytes());
}

TEST(Failure, AllVmsFailMarksRemainingUnprocessed) {
  auto s = make_scenario(small_load(), 2, 1);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  cluster::FailureInjector injector(*s.cluster);
  injector.schedule(s.vms[0], 5.0);
  injector.schedule(s.vms[1], 7.0);
  const auto report = run.run();
  EXPECT_EQ(report.units_completed + report.units_failed + report.units_unprocessed,
            report.units_total);
  EXPECT_GT(report.units_unprocessed, 0u);
  EXPECT_LT(report.units_completed, report.units_total);
}

TEST(Failure, FailureDuringStagingIsSurvivable) {
  auto params = small_load();
  params.mean_file_bytes = 20 * MB;  // staging takes ~64 s per node share
  auto s = make_scenario(params, 2, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kPrePartitionRemote;
  opt.requeue_on_failure = true;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  cluster::FailureInjector injector(*s.cluster);
  injector.schedule(s.vms[1], 5.0);  // mid-staging
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed()) << report.summary();
}

TEST(Elasticity, AddVmMidRunSpeedsCompletion) {
  auto params = small_load();
  params.mean_task_seconds = 5.0;
  auto run_with = [&](bool elastic) {
    auto s = make_scenario(params, 1, 2);
    RunOptions opt;
    opt.strategy = PlacementStrategy::kRealTime;
    FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                  opt);
    if (elastic) {
      cluster::ActionPlan plan(*s.sim);
      plan.at(20.0, [&run] {
        auto type = cluster::c1_xlarge();
        type.cores = 2;
        type.boot_time = 5.0;
        run.add_vm(type);
      });
    }
    return run.run();
  };
  const auto base = run_with(false);
  const auto elastic = run_with(true);
  EXPECT_TRUE(base.all_completed());
  EXPECT_TRUE(elastic.all_completed());
  EXPECT_LT(elastic.makespan(), base.makespan());
  EXPECT_EQ(elastic.workers.size(), 4u);  // 2 original + 2 elastic
  // Elastic workers actually processed units.
  std::size_t elastic_units = 0;
  for (const auto& w : elastic.workers) {
    if (w.worker >= 2) elastic_units += w.units_completed;
  }
  EXPECT_GT(elastic_units, 0u);
}

TEST(Elasticity, RemoveVmDrainsAndTerminates) {
  auto params = small_load();
  params.mean_task_seconds = 3.0;
  auto s = make_scenario(params, 2, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  cluster::ActionPlan plan(*s.sim);
  const auto victim = s.vms[1];
  plan.at(10.0, [&run, victim] { run.remove_vm(victim); });
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed()) << report.summary();
  EXPECT_EQ(s.cluster->vm(victim).state(), cluster::VmState::kTerminated);
  // Remaining units were finished by the surviving VM's workers.
  std::size_t survivor_units = 0;
  for (const auto& w : report.workers) {
    if (w.vm == s.vms[0]) survivor_units += w.units_completed;
    if (w.vm == victim) EXPECT_TRUE(w.drained);
  }
  EXPECT_GT(survivor_units, 20u);
}

TEST(Elasticity, ElasticWorkerGetsNothingInPrePartitionMode) {
  // The ablation behind design decision D2: pre-partitioning cannot absorb
  // elastic capacity because shares were fixed at staging time.
  auto params = small_load();
  params.mean_task_seconds = 5.0;
  auto s = make_scenario(params, 1, 2);
  RunOptions opt;
  opt.strategy = PlacementStrategy::kPrePartitionRemote;
  FriedaRun run(*s.cluster, s.app->catalog(), s.units, *s.app, CommandTemplate("app $inp1"),
                opt);
  cluster::ActionPlan plan(*s.sim);
  plan.at(20.0, [&run] {
    auto type = cluster::c1_xlarge();
    type.cores = 2;
    type.boot_time = 5.0;
    run.add_vm(type);
  });
  const auto report = run.run();
  EXPECT_TRUE(report.all_completed());
  for (const auto& w : report.workers) {
    if (w.worker >= 2) EXPECT_EQ(w.units_completed, 0u);
  }
}

}  // namespace
}  // namespace frieda::core
