#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace frieda::sim {
namespace {

TEST(Signal, WakesAllWaiters) {
  Simulation sim;
  Signal sig(sim);
  std::vector<double> wake_times;
  auto waiter = [&]() -> Task<> {
    co_await sig.wait();
    wake_times.push_back(sim.now());
  };
  sim.spawn(waiter());
  sim.spawn(waiter());
  sim.spawn([](Simulation& s, Signal& sg) -> Task<> {
    co_await s.delay(2.5);
    sg.trigger();
  }(sim, sig));
  sim.run();
  EXPECT_EQ(wake_times, (std::vector<double>{2.5, 2.5}));
  EXPECT_TRUE(sig.triggered());
}

TEST(Signal, WaitAfterTriggerIsImmediate) {
  Simulation sim;
  Signal sig(sim);
  sig.trigger();
  sig.trigger();  // idempotent
  double when = -1.0;
  sim.spawn([](Simulation& s, Signal& sg, double& t) -> Task<> {
    co_await s.delay(1.0);
    co_await sg.wait();
    t = s.now();
  }(sim, sig, when));
  sim.run();
  EXPECT_DOUBLE_EQ(when, 1.0);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int concurrent = 0, peak = 0, completed = 0;
  auto job = [&]() -> Task<> {
    co_await sem.acquire();
    ++concurrent;
    peak = std::max(peak, concurrent);
    co_await sim.delay(1.0);
    --concurrent;
    ++completed;
    sem.release();
  };
  for (int i = 0; i < 6; ++i) sim.spawn(job());
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(completed, 6);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // 6 jobs / 2 permits * 1 s
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, FifoHandoff) {
  Simulation sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto job = [&](int id, double arrive) -> Task<> {
    co_await sim.delay(arrive);
    co_await sem.acquire();
    order.push_back(id);
    co_await sim.delay(10.0);
    sem.release();
  };
  sim.spawn(job(1, 0.0));
  sim.spawn(job(2, 1.0));
  sim.spawn(job(3, 2.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Semaphore, NegativePermitsThrow) {
  Simulation sim;
  EXPECT_THROW(Semaphore(sim, -1), FriedaError);
}

TEST(Semaphore, WaitingCount) {
  Simulation sim;
  Semaphore sem(sim, 0);
  sim.spawn([](Semaphore& s) -> Task<> { co_await s.acquire(); }(sem));
  sim.spawn([](Semaphore& s) -> Task<> { co_await s.acquire(); }(sem));
  sim.run_until(0.5);
  EXPECT_EQ(sem.waiting(), 2u);
  sem.release();
  sem.release();
  sim.run();
  EXPECT_EQ(sem.waiting(), 0u);
}

TEST(WaitGroup, WaitsForAll) {
  Simulation sim;
  WaitGroup wg(sim);
  double done_time = -1.0;
  wg.add(3);
  for (int i = 1; i <= 3; ++i) {
    sim.spawn([](Simulation& s, WaitGroup& w, double d) -> Task<> {
      co_await s.delay(d);
      w.done();
    }(sim, wg, static_cast<double>(i)));
  }
  sim.spawn([](Simulation& s, WaitGroup& w, double& t) -> Task<> {
    co_await w.wait();
    t = s.now();
  }(sim, wg, done_time));
  sim.run();
  EXPECT_DOUBLE_EQ(done_time, 3.0);
  EXPECT_EQ(wg.count(), 0);
}

TEST(WaitGroup, WaitOnZeroImmediate) {
  Simulation sim;
  WaitGroup wg(sim);
  bool ran = false;
  sim.spawn([](WaitGroup& w, bool& r) -> Task<> {
    co_await w.wait();
    r = true;
  }(wg, ran));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(WaitGroup, DoneBelowZeroThrows) {
  Simulation sim;
  WaitGroup wg(sim);
  EXPECT_THROW(wg.done(), FriedaError);
  EXPECT_THROW(wg.add(-1), FriedaError);
}

}  // namespace
}  // namespace frieda::sim
