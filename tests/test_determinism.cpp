// Determinism guard for the simulator substrate.
//
// The flow-class coalescing / slab event-queue fast path must not change
// simulation semantics: a scenario run is a pure function of its inputs, and
// two identical runs must produce bit-identical Timeline event sequences and
// network traces (same event order, same timestamps).  These tests re-run
// full scenarios inside one process and compare exactly — any nondeterminism
// introduced into the event engine or the rate recomputation shows up here.
#include <gtest/gtest.h>

#include <vector>

#include "common/timeline.hpp"
#include "common/units.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "workload/scenarios.hpp"

namespace frieda {
namespace {

void expect_identical(const Timeline& a, const Timeline& b) {
  const auto& ia = a.intervals();
  const auto& ib = b.intervals();
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].kind, ib[i].kind) << "interval " << i;
    // Bit-identical timestamps, not approximate: the fluid model must replay
    // the exact same event sequence.
    EXPECT_EQ(ia[i].start, ib[i].start) << "interval " << i;
    EXPECT_EQ(ia[i].end, ib[i].end) << "interval " << i;
    EXPECT_EQ(ia[i].label, ib[i].label) << "interval " << i;
  }
}

TEST(Determinism, FullScenarioTimelineIsIdentical) {
  workload::PaperScenarioOptions opt;
  opt.scale = 0.2;
  const auto first = workload::run_als(core::PlacementStrategy::kRealTime, opt);
  const auto second = workload::run_als(core::PlacementStrategy::kRealTime, opt);
  ASSERT_TRUE(first.all_completed());
  expect_identical(first.timeline, second.timeline);
  EXPECT_EQ(first.makespan(), second.makespan());
  EXPECT_EQ(first.bytes_moved, second.bytes_moved);
  EXPECT_EQ(first.transfers, second.transfers);
}

// One completed-transfer observation, captured with exact timestamps.
struct TransferTrace {
  net::NodeId src;
  net::NodeId dst;
  net::TransferStatus status;
  Bytes transferred;
  SimTime started;
  SimTime finished;

  bool operator==(const TransferTrace&) const = default;
};

std::vector<TransferTrace> run_network_scenario() {
  sim::Simulation sim(17);
  net::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_node("srv", gbps(1), gbps(1));
  for (int i = 0; i < 12; ++i) topo.add_node("wrk", mbps(100), mbps(100));
  net::Network netw(sim, std::move(topo), /*latency=*/1e-3);

  std::vector<TransferTrace> trace;
  netw.set_observer([&](net::NodeId src, net::NodeId dst, const net::TransferResult& r) {
    trace.push_back({src, dst, r.status, r.transferred, r.started, r.finished});
  });

  // Mixed pairs and stream counts, arrivals spread over time, plus a node
  // failure and restore mid-run to exercise abort + cache invalidation.
  Rng rng(23);
  for (int i = 0; i < 48; ++i) {
    const auto src = static_cast<net::NodeId>(rng.index(4));
    const auto dst = static_cast<net::NodeId>(4 + rng.index(12));
    const unsigned streams = 1 + static_cast<unsigned>(rng.index(3));
    const Bytes bytes = (1 + rng.index(4)) * MB;
    const SimTime start = rng.uniform(0.0, 2.0);
    sim.schedule_at(start, [&netw, &sim, src, dst, bytes, streams] {
      sim.spawn([](net::Network& n, net::NodeId s, net::NodeId d, Bytes b,
                   unsigned st) -> sim::Task<> {
        (void)co_await n.transfer(s, d, b, st);
      }(netw, src, dst, bytes, streams));
    });
  }
  sim.schedule_at(1.0, [&netw] { netw.fail_node(7); });
  sim.schedule_at(1.5, [&netw] { netw.restore_node(7); });
  sim.run();
  return trace;
}

TEST(Determinism, NetworkReplayWithFailuresIsIdentical) {
  const auto first = run_network_scenario();
  const auto second = run_network_scenario();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace frieda
