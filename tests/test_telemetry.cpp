// Live telemetry tests.
//
// Covers the Timeseries container, the LatencyWindow ring buffer (exact
// against a reference sorted-window recomputation at every sample point,
// through warm-up, eviction boundaries, and emptiness), the SloMonitor's
// sample-and-hold breach intervals, the TelemetryProbe sampling contract,
// and both backend integrations: sim-clock probing in core::FriedaRun
// (deterministic, bit-identical timelines across repeated runs, sweep
// thread counts, and the process backend) and wall-clock probing in
// rt::RtEngine.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "exp/sweep.hpp"
#include "frieda/partition.hpp"
#include "obs/analysis.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/rt_engine.hpp"
#include "workload/scenarios.hpp"

namespace frieda::obs {
namespace {

using core::PlacementStrategy;
using workload::PaperScenarioOptions;

// ---------------------------------------------------------------------------
// Timeseries.
// ---------------------------------------------------------------------------

TEST(Timeseries, ChannelsKeepInsertionOrderAndSamplesAppend) {
  Timeseries ts;
  EXPECT_TRUE(ts.empty());
  ts.add("queue_depth", 1.0, 3.0);
  ts.add("throughput", 1.0, 0.5);
  ts.add("queue_depth", 2.0, 4.0);
  ASSERT_EQ(ts.channels().size(), 2u);
  EXPECT_EQ(ts.channels()[0].name, "queue_depth");
  EXPECT_EQ(ts.channels()[1].name, "throughput");
  EXPECT_EQ(ts.sample_count(), 3u);
  const auto* q = ts.find("queue_depth");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->t.size(), 2u);
  EXPECT_DOUBLE_EQ(q->t[1], 2.0);
  EXPECT_DOUBLE_EQ(q->v[1], 4.0);
  EXPECT_EQ(ts.find("nope"), nullptr);
}

TEST(Timeseries, CsvIsLongFormatWithRoundTripValues) {
  Timeseries ts;
  ts.add("a", 0.1, 1.0 / 3.0);
  ts.add("b", 0.2, 2.0);
  const std::string csv = ts.csv();
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "channel,t_s,value");
  ASSERT_TRUE(std::getline(in, line));
  // Values use the shortest round-trip decimal: parsing the text back must
  // reproduce the identical bits.
  const auto last_comma = line.rfind(',');
  const double parsed = std::strtod(line.substr(last_comma + 1).c_str(), nullptr);
  EXPECT_EQ(parsed, 1.0 / 3.0);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.substr(0, 2), "b,");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(Timeseries, FormatSampleRoundTripsAwkwardDoubles) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-17, 123456789.123456789, -0.0, 5.002}) {
    const std::string text = format_sample(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

// ---------------------------------------------------------------------------
// LatencyWindow vs a reference sorted-window computation (satellite 3).
// ---------------------------------------------------------------------------

/// Deterministic value stream (no global RNG, no time dependence).
double lcg_value(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<double>(state >> 11) / static_cast<double>(1ull << 53) * 100.0;
}

/// Reference percentile: feed the expected window contents to SampleSet,
/// the authority the windowed result must match bit for bit.
double reference_percentile(const std::vector<double>& window, double p) {
  SampleSet set;
  for (const double v : window) set.add(v);
  return set.percentile(p);
}

TEST(LatencyWindow, CountBoundedWindowMatchesReferenceAtEverySample) {
  const std::size_t kWindow = 8;
  LatencyWindow win(kWindow, 0.0);
  std::vector<double> all;
  std::uint64_t rng = 2012;
  for (std::size_t i = 0; i < 100; ++i) {
    const double t = 0.25 * static_cast<double>(i);
    const double v = lcg_value(rng);
    win.add(t, v);
    win.evict(t);  // no-op for count-bounded windows
    all.push_back(v);
    // Expected window: the last min(i+1, kWindow) values — covers warm-up
    // (window not yet full) and steady-state eviction at the count bound.
    const std::size_t n = all.size() < kWindow ? all.size() : kWindow;
    const std::vector<double> expect(all.end() - static_cast<long>(n), all.end());
    ASSERT_EQ(win.size(), n);
    for (const double p : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0}) {
      EXPECT_EQ(win.percentile(p), reference_percentile(expect, p))
          << "sample " << i << " p" << p;
    }
  }
}

TEST(LatencyWindow, AgeBoundedWindowMatchesReferenceAcrossEvictionBoundaries) {
  const double kAge = 5.0;
  LatencyWindow win(0, kAge);
  std::vector<std::pair<double, double>> all;  // (t, v)
  std::uint64_t rng = 7;
  for (std::size_t i = 0; i < 80; ++i) {
    const double t = 0.7 * static_cast<double>(i);
    const double v = lcg_value(rng);
    win.add(t, v);
    win.evict(t);
    all.emplace_back(t, v);
    // Expected window: samples with t >= now - kAge (evict drops strictly
    // older ones), which repeatedly crosses the eviction boundary as time
    // advances in 0.7 s steps against a 5 s horizon.
    std::vector<double> expect;
    for (const auto& [st, sv] : all) {
      if (st >= t - kAge) expect.push_back(sv);
    }
    ASSERT_EQ(win.size(), expect.size()) << "sample " << i;
    for (const double p : {0.0, 50.0, 99.0, 100.0}) {
      EXPECT_EQ(win.percentile(p), reference_percentile(expect, p))
          << "sample " << i << " p" << p;
    }
  }
}

TEST(LatencyWindow, CombinedBoundsApplyWhicheverIsTighter) {
  LatencyWindow win(4, 2.0);
  for (int i = 0; i < 10; ++i) {
    win.add(0.5 * i, static_cast<double>(i));
    win.evict(0.5 * i);
  }
  // At t=4.5 the age bound keeps t >= 2.5 (values 5..9, five samples) but
  // the count bound trims to the last 4.
  ASSERT_EQ(win.size(), 4u);
  const auto vals = win.values();
  EXPECT_DOUBLE_EQ(vals.front(), 6.0);
  EXPECT_DOUBLE_EQ(vals.back(), 9.0);
}

TEST(LatencyWindow, EmptyWindowThrowsAndEvictionCanEmptyIt) {
  LatencyWindow win(0, 1.0);
  EXPECT_TRUE(win.empty());
  EXPECT_THROW(win.percentile(50.0), FriedaError);
  win.add(0.0, 1.0);
  EXPECT_EQ(win.percentile(50.0), 1.0);
  win.evict(10.0);  // everything aged out
  EXPECT_TRUE(win.empty());
  EXPECT_THROW(win.percentile(99.0), FriedaError);
}

// ---------------------------------------------------------------------------
// SloMonitor.
// ---------------------------------------------------------------------------

TEST(SloMonitor, SampleAndHoldBreachIntervalsMergeAndTrackPeak) {
  Timeseries ts;
  // queue: ok, breach, breach (merged), ok, breach (separate), held to end.
  ts.add("queue_depth", 0.0, 1.0);
  ts.add("queue_depth", 1.0, 5.0);
  ts.add("queue_depth", 2.0, 7.0);
  ts.add("queue_depth", 3.0, 2.0);
  ts.add("queue_depth", 4.0, 9.0);
  SloMonitor mon({{"queue_depth", 4.0}});
  const SloReport report = mon.evaluate(ts, 6.0);

  ASSERT_EQ(report.breaches.size(), 2u);
  EXPECT_DOUBLE_EQ(report.breaches[0].start, 1.0);
  EXPECT_DOUBLE_EQ(report.breaches[0].end, 3.0);  // two samples merged
  EXPECT_DOUBLE_EQ(report.breaches[0].peak, 7.0);
  // The last sample holds from t=4 to end_time=6.
  EXPECT_DOUBLE_EQ(report.breaches[1].start, 4.0);
  EXPECT_DOUBLE_EQ(report.breaches[1].end, 6.0);
  EXPECT_DOUBLE_EQ(report.breaches[1].peak, 9.0);
  EXPECT_DOUBLE_EQ(report.total_violation_s(), 4.0);
  ASSERT_EQ(report.targets.size(), 1u);
  EXPECT_EQ(report.targets[0].breaches, 2u);
  EXPECT_DOUBLE_EQ(report.targets[0].violation_s, 4.0);
  EXPECT_NE(report.summary().find("queue_depth"), std::string::npos);
}

TEST(SloMonitor, ExactlyAtTheLimitIsNotABreach) {
  Timeseries ts;
  ts.add("latency_p99", 0.0, 2.0);
  SloMonitor mon({{"latency_p99", 2.0}});
  EXPECT_EQ(mon.evaluate(ts, 5.0).total_breaches(), 0u);
}

TEST(SloMonitor, UnsampledChannelAndEmptyTargetsYieldNoBreaches) {
  Timeseries ts;
  ts.add("queue_depth", 0.0, 100.0);
  EXPECT_EQ(SloMonitor({}).evaluate(ts, 1.0).total_breaches(), 0u);
  const auto report = SloMonitor({{"latency_p99", 1.0}}).evaluate(ts, 1.0);
  EXPECT_EQ(report.total_breaches(), 0u);
  ASSERT_EQ(report.targets.size(), 1u);
  EXPECT_EQ(report.targets[0].breaches, 0u);
}

// ---------------------------------------------------------------------------
// TelemetryProbe sampling contract.
// ---------------------------------------------------------------------------

TEST(TelemetryProbe, DerivesThroughputAndSolverDeltasPerTick) {
  TelemetryOptions opt;
  opt.interval = 1.0;
  TelemetryProbe probe(opt);
  probe.begin(0.0, nullptr);

  TelemetryTick raw;
  raw.queue_depth = 3.0;
  raw.completed = 4.0;
  raw.net_solves = 10.0;
  probe.tick(2.0, raw);
  raw.completed = 10.0;
  raw.net_solves = 13.0;
  probe.tick(4.0, raw);

  const auto* tput = probe.series().find("throughput");
  ASSERT_NE(tput, nullptr);
  ASSERT_EQ(tput->v.size(), 2u);
  EXPECT_DOUBLE_EQ(tput->v[0], 2.0);  // 4 completed over the first 2 s
  EXPECT_DOUBLE_EQ(tput->v[1], 3.0);  // 6 more over the next 2 s
  const auto* solves = probe.series().find("net_solves");
  ASSERT_NE(solves, nullptr);
  EXPECT_DOUBLE_EQ(solves->v[0], 10.0);
  EXPECT_DOUBLE_EQ(solves->v[1], 3.0);  // per-tick delta, not cumulative
}

TEST(TelemetryProbe, RejectsNonAdvancingTicksAndSkipsEmptyLatencyWindow) {
  TelemetryProbe probe;
  probe.begin(0.0, nullptr);
  TelemetryTick raw;
  probe.tick(1.0, raw);
  probe.tick(1.0, raw);  // same instant: ignored (the final flush may collide)
  probe.tick(0.5, raw);  // time went backwards: ignored
  EXPECT_EQ(probe.tick_count(), 1u);
  // No latency observed yet -> no latency channels at all.
  EXPECT_EQ(probe.series().find("latency_p99"), nullptr);

  probe.observe_latency(1.5, 0.75);
  probe.tick(2.0, raw);
  const auto* p99 = probe.series().find("latency_p99");
  ASSERT_NE(p99, nullptr);
  ASSERT_EQ(p99->v.size(), 1u);
  EXPECT_DOUBLE_EQ(p99->v[0], 0.75);
}

TEST(TelemetryProbe, FinishIsIdempotentAndFreezesTheSloReport) {
  TelemetryOptions opt;
  opt.slo.push_back({"queue_depth", 2.0});
  TelemetryProbe probe(opt);
  probe.begin(0.0, nullptr);
  TelemetryTick raw;
  raw.queue_depth = 5.0;
  probe.tick(1.0, raw);
  probe.finish(3.0);
  EXPECT_TRUE(probe.finished());
  ASSERT_EQ(probe.slo().total_breaches(), 1u);
  EXPECT_DOUBLE_EQ(probe.slo().total_violation_s(), 2.0);  // held 1 s -> 3 s
  probe.finish(3.0);  // second call: no-op
  EXPECT_EQ(probe.slo().total_breaches(), 1u);
}

TEST(TelemetryProbe, BeginResetsForANewEpoch) {
  TelemetryProbe probe;
  probe.begin(0.0, nullptr);
  TelemetryTick raw;
  raw.completed = 8.0;
  probe.tick(2.0, raw);
  probe.finish(2.0);
  probe.begin(10.0, nullptr);
  EXPECT_FALSE(probe.finished());
  EXPECT_EQ(probe.tick_count(), 0u);
  EXPECT_TRUE(probe.series().empty());
  raw.completed = 1.0;
  probe.tick(12.0, raw);
  const auto* tput = probe.series().find("throughput");
  ASSERT_NE(tput, nullptr);
  EXPECT_DOUBLE_EQ(tput->v[0], 0.5);  // delta from the new epoch's baseline
}

// ---------------------------------------------------------------------------
// Sim-clock integration: probed FriedaRun via the paper scenarios.
// ---------------------------------------------------------------------------

PaperScenarioOptions probed_service_opt(double rate = 2.5) {
  PaperScenarioOptions opt;
  opt.scale = 0.004;  // 30 BLAST queries
  opt.service.open_loop = true;
  opt.service.arrivals.kind = workload::ArrivalKind::kPoisson;
  opt.service.arrivals.rate = rate;
  opt.service.arrivals.seed = 42;
  return opt;
}

TEST(ProbedRun, SamplesChannelsOnTheSimClock) {
  TelemetryOptions topt;
  topt.interval = 2.0;
  TelemetryProbe probe(topt);
  auto opt = probed_service_opt();
  opt.telemetry = &probe;
  const auto report = workload::run_blast(PlacementStrategy::kRealTime, opt);

  EXPECT_TRUE(probe.finished());
  EXPECT_GT(probe.tick_count(), 2u);
  for (const char* name : {"queue_depth", "in_flight", "active_workers", "active_vms",
                           "completed", "throughput", "net_solves", "scale_outs",
                           "scale_ins", "latency_p50", "latency_p95", "latency_p99"}) {
    EXPECT_NE(probe.series().find(name), nullptr) << name;
  }
  // Sample times are strictly increasing within each channel, and the final
  // completed-count sample equals the report's.
  for (const auto& ch : probe.series().channels()) {
    for (std::size_t i = 1; i < ch.t.size(); ++i) {
      EXPECT_GT(ch.t[i], ch.t[i - 1]) << ch.name;
    }
  }
  const auto* done = probe.series().find("completed");
  ASSERT_FALSE(done->v.empty());
  EXPECT_DOUBLE_EQ(done->v.back(), static_cast<double>(report.units_completed));
  // Probe timestamps are absolute sim time: the final flush lands exactly
  // at the run's end_time (makespan is end_time minus the setup offset).
  EXPECT_DOUBLE_EQ(done->t.back(), report.end_time);
}

TEST(ProbedRun, FinalWindowedPercentileMatchesRunReportLatency) {
  // A window wide enough to hold every sojourn makes the last windowed
  // percentile the whole-run percentile: it must agree bit for bit with
  // RunReport.latency_p (both use the SampleSet interpolation).
  TelemetryOptions topt;
  topt.interval = 2.0;
  topt.window_count = 0;  // unbounded window = whole run
  TelemetryProbe probe(topt);
  auto opt = probed_service_opt();
  opt.telemetry = &probe;
  const auto report = workload::run_blast(PlacementStrategy::kRealTime, opt);

  ASSERT_GT(report.latency.count(), 0u);
  const std::vector<std::pair<const char*, double>> channels = {
      {"latency_p50", 50.0}, {"latency_p95", 95.0}, {"latency_p99", 99.0}};
  for (const auto& [name, p] : channels) {
    const auto* ch = probe.series().find(name);
    ASSERT_NE(ch, nullptr) << name;
    ASSERT_FALSE(ch->v.empty());
    EXPECT_EQ(ch->v.back(), report.latency_p(p)) << name;
  }
}

TEST(ProbedRun, TimelineIsBitIdenticalAcrossRunsThreadsAndProcessBackend) {
  const auto run_probed_csv = [](const std::string& dump_path) {
    TelemetryOptions topt;
    topt.interval = 2.0;
    TelemetryProbe probe(topt);
    auto opt = probed_service_opt();
    opt.telemetry = &probe;
    const auto report = workload::run_blast(PlacementStrategy::kRealTime, opt);
    if (!dump_path.empty()) probe.write_timeline_csv(dump_path);
    (void)report;
    return probe.timeline_csv();
  };

  const std::string base = run_probed_csv("");
  EXPECT_NE(base.find("queue_depth"), std::string::npos);
  EXPECT_EQ(run_probed_csv(""), base);  // repeated run

  // Through the sweep engine, thread backend, varying thread counts.  The
  // probe lives inside the job closure (attached options are
  // unfingerprintable, so the job always executes).
  for (const std::size_t threads : {1u, 3u}) {
    exp::SweepOptions sopt;
    sopt.threads = threads;
    exp::SweepRunner<std::string> runner(sopt);
    runner.set_cache(nullptr);
    std::vector<exp::Job<std::string>> jobs;
    jobs.push_back({"probed", [&] { return run_probed_csv(""); }});
    jobs.push_back({"noise", [&] { return run_probed_csv(""); }});
    const auto out = runner.run(std::move(jobs));
    ASSERT_TRUE(out[0].ok());
    EXPECT_EQ(out[0].get(), base) << threads << " threads";
    EXPECT_EQ(out[1].get(), base);
  }

  // Process backend: the job runs in a forked child, so the probe's series
  // cannot cross the pipe — but a file written by the child can.
  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "probed_timeline_child.csv").string();
  std::remove(path.c_str());
  exp::SweepOptions sopt;
  sopt.backend = exp::SweepBackend::kProcess;
  exp::SweepRunner<core::RunReport> runner(sopt);
  runner.set_cache(nullptr);
  std::vector<exp::Job<core::RunReport>> jobs;
  jobs.push_back({"probed-child", [&] {
                    TelemetryOptions topt;
                    topt.interval = 2.0;
                    TelemetryProbe probe(topt);
                    auto opt = probed_service_opt();
                    opt.telemetry = &probe;
                    auto report = workload::run_blast(PlacementStrategy::kRealTime, opt);
                    probe.write_timeline_csv(path);
                    return report;
                  }});
  const auto out = runner.run(std::move(jobs));
  ASSERT_TRUE(out[0].ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "child did not write " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), base);
  std::remove(path.c_str());
}

TEST(ProbedRun, ProbeDoesNotPerturbTheSimulationOrDisableExecution) {
  auto opt = probed_service_opt();
  const auto plain = workload::run_blast(PlacementStrategy::kRealTime, opt);

  TelemetryProbe probe;
  opt.telemetry = &probe;
  const auto probed = workload::run_blast(PlacementStrategy::kRealTime, opt);

  EXPECT_EQ(probed.makespan(), plain.makespan());
  EXPECT_EQ(probed.units_completed, plain.units_completed);
  ASSERT_EQ(probed.latency.count(), plain.latency.count());
  EXPECT_EQ(probed.latency_p(99.0), plain.latency_p(99.0));
  // An attached probe disqualifies memoization (a cached result would skip
  // the side effects), like tracer/metrics.
  EXPECT_TRUE(workload::fingerprintable(probed_service_opt()));
  EXPECT_FALSE(workload::fingerprintable(opt));
}

TEST(ProbedRun, SloBreachesSurfaceInReportSummaryAndAnchorSpan) {
  // An impossible latency target guarantees breaches on a loaded run.
  TelemetryOptions topt;
  topt.interval = 2.0;
  topt.slo.push_back({"latency_p99", 1e-6});
  topt.slo.push_back({"queue_depth", 1e9});  // never breached
  TelemetryProbe probe(topt);
  Tracer tracer;
  auto opt = probed_service_opt(4.0);
  opt.telemetry = &probe;
  opt.tracer = &tracer;
  const auto report = workload::run_blast(PlacementStrategy::kRealTime, opt);
  (void)report;

  ASSERT_GT(probe.slo().total_breaches(), 0u);
  EXPECT_GT(probe.slo().total_violation_s(), 0.0);
  ASSERT_EQ(probe.slo().targets.size(), 2u);
  EXPECT_EQ(probe.slo().targets[1].breaches, 0u);

  // The trace carries the summary on the anchor span and one "slo" span per
  // breach interval; the analyzer parses both back.
  const auto events = load_chrome_trace(tracer.chrome_json());
  const auto analysis = TraceAnalyzer::analyze(events);
  EXPECT_TRUE(analysis.slo_stats);
  EXPECT_EQ(analysis.slo_breach_count, probe.slo().total_breaches());
  EXPECT_DOUBLE_EQ(analysis.slo_violation_s, probe.slo().total_violation_s());
  ASSERT_EQ(analysis.telemetry.breaches.size(), probe.slo().total_breaches());
  for (std::size_t i = 0; i < analysis.telemetry.breaches.size(); ++i) {
    EXPECT_EQ(analysis.telemetry.breaches[i].channel, probe.slo().breaches[i].channel);
    EXPECT_EQ(analysis.telemetry.breaches[i].start, probe.slo().breaches[i].start);
    EXPECT_EQ(analysis.telemetry.breaches[i].peak, probe.slo().breaches[i].peak);
  }
  const std::string rendered = render_report(analysis, 10);
  EXPECT_NE(rendered.find("SLO"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Counter events: Tracer round trip and the timeline renderer.
// ---------------------------------------------------------------------------

TEST(Counters, ChromeJsonRoundTripRebuildsTheSeriesBitForBit) {
  TelemetryOptions topt;
  topt.interval = 2.0;
  TelemetryProbe probe(topt);
  Tracer tracer;
  auto opt = probed_service_opt();
  opt.telemetry = &probe;
  opt.tracer = &tracer;
  (void)workload::run_blast(PlacementStrategy::kRealTime, opt);

  const auto events = load_chrome_trace(tracer.chrome_json());
  const auto analysis = TraceAnalyzer::analyze(events);
  const auto& parsed = analysis.telemetry.series;
  ASSERT_EQ(parsed.channels().size(), probe.series().channels().size());
  for (std::size_t c = 0; c < parsed.channels().size(); ++c) {
    const auto& got = parsed.channels()[c];
    const auto& want = probe.series().channels()[c];
    EXPECT_EQ(got.name, want.name);
    ASSERT_EQ(got.v.size(), want.v.size()) << got.name;
    for (std::size_t i = 0; i < got.v.size(); ++i) {
      // Values survive exactly (shortest round-trip decimals); timestamps
      // go through the exporter's microsecond grid, so they only match to
      // the tick.
      EXPECT_EQ(got.v[i], want.v[i]) << got.name << "[" << i << "]";
      EXPECT_NEAR(got.t[i], want.t[i], 1e-6) << got.name << "[" << i << "]";
    }
  }
}

TEST(Counters, DetachedTracerStillRecordsTheSeries) {
  TelemetryProbe probe;
  probe.begin(0.0, nullptr);
  TelemetryTick raw;
  raw.queue_depth = 1.0;
  probe.tick(1.0, raw);
  probe.finish(1.0);
  EXPECT_NE(probe.series().find("queue_depth"), nullptr);
}

TEST(Counters, RenderTimelineShowsChannelsSparklinesAndBreaches) {
  Tracer tracer;
  TelemetryOptions topt;
  topt.interval = 2.0;
  topt.slo.push_back({"queue_depth", 0.0});  // breach whenever nonempty
  TelemetryProbe probe(topt);
  auto opt = probed_service_opt(4.0);
  opt.telemetry = &probe;
  opt.tracer = &tracer;
  (void)workload::run_blast(PlacementStrategy::kRealTime, opt);

  const auto analysis = TraceAnalyzer::analyze(load_chrome_trace(tracer.chrome_json()));
  const std::string out = render_timeline(analysis, 32);
  EXPECT_NE(out.find("queue_depth"), std::string::npos);
  EXPECT_NE(out.find("throughput"), std::string::npos);
  EXPECT_NE(out.find("SLO"), std::string::npos);
  // Sparklines draw from the fixed ramp; a loaded run has at least one
  // non-blank, non-baseline glyph somewhere.
  EXPECT_NE(out.find_first_of(":-=+*#%@"), std::string::npos);

  // A trace without counters renders the fallback, not a crash.
  TraceEvent ev;
  ev.name = "exec unit 0";
  ev.cat = "exec";
  ev.process = kWorkerTrack;
  ev.end = 1.0;
  const auto bare_analysis = TraceAnalyzer::analyze({ev});
  const std::string empty_out = render_timeline(bare_analysis, 32);
  EXPECT_NE(empty_out.find("no telemetry"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wall-clock integration: rt::RtEngine sampling thread.
// ---------------------------------------------------------------------------

TEST(RtTelemetry, ThreadedRunSamplesOnWallClockAndObservesLatency) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "frieda_rt_telemetry";
  fs::remove_all(root);
  const auto catalog = rt::make_dataset((root / "src").string(), 8, 4 * KiB, 7);

  rt::RtOptions ropt;
  ropt.strategy = PlacementStrategy::kRealTime;
  ropt.worker_count = 2;
  ropt.staging_root = (root / "stage").string();
  TelemetryOptions topt;
  topt.interval = 0.005;  // sample fast enough to land several wall ticks
  topt.slo.push_back({"queue_depth", 1e9});
  TelemetryProbe probe(topt);
  ropt.telemetry = &probe;

  rt::RtEngine engine((root / "src").string(), ropt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  const auto report = engine.run(
      std::move(units), core::CommandTemplate("analyze $inp1"),
      [](const core::WorkUnit&, const std::vector<std::string>&, const std::string&) {
        // Enough work that the 5 ms sampler fires at least once mid-run.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return true;
      });

  EXPECT_TRUE(report.all_completed());
  EXPECT_TRUE(probe.finished());
  EXPECT_GE(probe.tick_count(), 1u);
  const auto* done = probe.series().find("completed");
  ASSERT_NE(done, nullptr);
  EXPECT_DOUBLE_EQ(done->v.back(), static_cast<double>(report.units_completed));
  // Every unit's dispatch->terminal sojourn was observed, so the windowed
  // percentile channel exists and the final tick covers all units.
  EXPECT_NE(probe.series().find("latency_p99"), nullptr);
  EXPECT_EQ(probe.slo().total_breaches(), 0u);
  fs::remove_all(root);
}

}  // namespace
}  // namespace frieda::obs
