// Observability layer tests: the tracer and metrics registry in isolation,
// plus a traced Figure-6a scenario validated structurally — the Chrome JSON
// export parses, unit spans cover every unit, staging/exec spans nest inside
// their unit's lifecycle span, and the CSV has one row per recorded event.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "frieda/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/rt_engine.hpp"
#include "workload/scenarios.hpp"

namespace frieda::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader, just enough to validate the trace-event export.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key '" << key << "'";
    static const Json null_json;
    return it == object.end() ? null_json : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing garbage after JSON document";
    return v;
  }

  bool failed() const { return failed_; }

 private:
  void fail(const std::string& why) {
    if (!failed_) ADD_FAILURE() << "JSON parse error at byte " << pos_ << ": " << why;
    failed_ = true;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  Json value() {
    skip_ws();
    if (failed_ || pos_ >= s_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    return number();
  }

  Json object() {
    Json v;
    v.type = Json::Type::kObject;
    eat('{');
    if (eat('}')) return v;
    do {
      skip_ws();
      Json key = string_value();
      if (failed_) return v;
      if (!eat(':')) {
        fail("expected ':' in object");
        return v;
      }
      v.object.emplace(key.str, value());
    } while (eat(',') && !failed_);
    if (!eat('}')) fail("expected '}'");
    return v;
  }

  Json array() {
    Json v;
    v.type = Json::Type::kArray;
    eat('[');
    if (eat(']')) return v;
    do {
      v.array.push_back(value());
    } while (eat(',') && !failed_);
    if (!eat(']')) fail("expected ']'");
    return v;
  }

  Json string_value() {
    Json v;
    v.type = Json::Type::kString;
    if (!eat('"')) {
      fail("expected '\"'");
      return v;
    }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              fail("truncated \\u escape");
              return v;
            }
            const unsigned long code = std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(code);  // control chars only in our exports
            break;
          }
          default: fail("bad escape"); return v;
        }
      }
      v.str.push_back(c);
    }
    if (!eat('"')) fail("unterminated string");
    return v;
  }

  Json boolean() {
    Json v;
    v.type = Json::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Json null_value() {
    Json v;
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Json number() {
    Json v;
    v.type = Json::Type::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) {
      fail("expected number");
      return v;
    }
    v.number = std::atof(s_.substr(start, pos_ - start).c_str());
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  for (const char c : text) n += (c == '\n');
  return n;
}

// ---------------------------------------------------------------------------
// Tracer in isolation
// ---------------------------------------------------------------------------

TEST(Tracer, RecordsSpansAndInstants) {
  Tracer t;
  TraceEvent span;
  span.name = "exec unit 0";
  span.cat = "exec";
  span.process = kWorkerTrack;
  span.track = 3;
  span.start = 1.0;
  span.end = 2.5;
  span.args = {{"unit", "0"}};
  t.span(span);

  TraceEvent inst;
  inst.name = "requeue";
  inst.cat = "control";
  inst.start = 4.0;
  t.instant(inst);

  EXPECT_EQ(t.event_count(), 2u);
  EXPECT_EQ(t.span_count("exec"), 1u);
  EXPECT_EQ(t.span_count("control"), 0u);  // instants are not spans
  const auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kSpan);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kInstant);
}

TEST(Tracer, CsvHasOneRowPerEventAndQuotesSpecials) {
  Tracer t;
  TraceEvent span;
  span.name = "stage file,with\"comma";  // must be RFC-4180 quoted
  span.cat = "staging";
  span.start = 0.0;
  span.end = 1.0;
  span.args = {{"file", "a,b"}};
  t.span(span);
  TraceEvent inst;
  inst.name = "evict";
  inst.cat = "control";
  inst.start = 2.0;
  t.instant(inst);

  const std::string csv = t.csv();
  EXPECT_EQ(count_lines(csv), 1 + t.event_count());  // header + one row each
  EXPECT_NE(csv.find("\"stage file,with\"\"comma\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 4), "kind");
}

TEST(Tracer, ChromeJsonParsesAndEscapes) {
  Tracer t;
  TraceEvent span;
  span.name = "weird \"name\"\nwith newline";
  span.cat = "unit";
  span.process = kUnitTrack;
  span.track = 7;
  span.start = 0.5;
  span.end = 1.5;
  t.span(span);

  const std::string json = t.chrome_json();
  JsonParser parser(json);
  const Json doc = parser.parse();
  ASSERT_FALSE(parser.failed());
  ASSERT_EQ(doc.type, Json::Type::kObject);
  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, Json::Type::kArray);
  // One metadata process_name record plus the span.
  bool found_span = false;
  for (const auto& ev : events.array) {
    if (ev.at("ph").str != "X") continue;
    found_span = true;
    EXPECT_EQ(ev.at("name").str, span.name);
    EXPECT_DOUBLE_EQ(ev.at("ts").number, 0.5e6);   // microseconds
    EXPECT_DOUBLE_EQ(ev.at("dur").number, 1.0e6);
    EXPECT_DOUBLE_EQ(ev.at("pid").number, kUnitTrack);
    EXPECT_DOUBLE_EQ(ev.at("tid").number, 7.0);
  }
  EXPECT_TRUE(found_span);
}

TEST(Tracer, EventCapDropsAndCountsAndMarksExports) {
  Tracer t;
  EXPECT_EQ(t.max_events(), Tracer::kDefaultMaxEvents);
  t.set_max_events(2);
  for (int i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.name = "exec unit " + std::to_string(i);
    ev.cat = "exec";
    ev.start = static_cast<double>(i);
    ev.end = static_cast<double>(i) + 0.5;
    t.span(std::move(ev));
  }
  EXPECT_EQ(t.event_count(), 2u);  // stored
  EXPECT_EQ(t.dropped_events(), 3u);

  // Both exporters carry a truncation marker naming the dropped count.
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("trace-truncated"), std::string::npos);
  EXPECT_NE(csv.find("dropped_events=3"), std::string::npos);
  EXPECT_EQ(count_lines(csv), 1 + t.event_count() + 1);  // header + rows + marker
  const std::string json = t.chrome_json();
  JsonParser parser(json);
  const Json doc = parser.parse();
  ASSERT_FALSE(parser.failed());
  bool marker = false;
  for (const auto& ev : doc.at("traceEvents").array) {
    marker |= ev.has("name") && ev.at("name").str == "trace-truncated";
  }
  EXPECT_TRUE(marker);
}

TEST(Tracer, NoMarkerWithoutDrops) {
  Tracer t;
  TraceEvent ev;
  ev.name = "exec unit 0";
  ev.cat = "exec";
  ev.end = 1.0;
  t.span(std::move(ev));
  EXPECT_EQ(t.dropped_events(), 0u);
  EXPECT_EQ(t.csv().find("trace-truncated"), std::string::npos);
  EXPECT_EQ(t.chrome_json().find("trace-truncated"), std::string::npos);
}

TEST(Tracer, UnboundedCapStoresEverything) {
  Tracer t;
  t.set_max_events(0);  // unbounded
  for (int i = 0; i < 100; ++i) {
    TraceEvent ev;
    ev.name = "e";
    ev.cat = "exec";
    t.span(std::move(ev));
  }
  EXPECT_EQ(t.event_count(), 100u);
  EXPECT_EQ(t.dropped_events(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics registry in isolation
// ---------------------------------------------------------------------------

TEST(Metrics, CreateOrGetAndKindConflicts) {
  MetricsRegistry m;
  Counter& c = m.counter("net.transfers");
  c.inc();
  c.inc(4);
  EXPECT_EQ(m.counter("net.transfers").value(), 5u);  // same instrument
  m.gauge("run.makespan_s").set(12.5);
  EXPECT_EQ(m.size(), 2u);

  EXPECT_THROW(m.gauge("net.transfers"), FriedaError);
  EXPECT_THROW(m.counter("run.makespan_s"), FriedaError);
  EXPECT_THROW(m.stats("net.transfers"), FriedaError);

  EXPECT_NE(m.find_counter("net.transfers"), nullptr);
  EXPECT_EQ(m.find_counter("run.makespan_s"), nullptr);  // wrong kind
  EXPECT_EQ(m.find_gauge("absent"), nullptr);
}

TEST(Metrics, StatsAndHistogramExpandInCsv) {
  MetricsRegistry m;
  auto& s = m.stats("run.unit_exec_s");
  s.add(1.0);
  s.add(3.0);
  auto& h = m.histogram("run.latency", 0.0, 10.0, 2);
  h.add(1.0);
  h.add(9.0);
  // Re-request with different parameters: the first creation wins.
  EXPECT_EQ(&m.histogram("run.latency", 0.0, 99.0, 7), &h);

  const std::string csv = m.csv();
  EXPECT_NE(csv.find("run.unit_exec_s.count"), std::string::npos);
  EXPECT_NE(csv.find("run.unit_exec_s.mean"), std::string::npos);
  EXPECT_NE(csv.find("run.latency.bucket_0"), std::string::npos);
  EXPECT_NE(csv.find("run.latency.bucket_1"), std::string::npos);
  EXPECT_NE(csv.find("run.latency.total"), std::string::npos);
  const std::string summary = m.summary();
  EXPECT_NE(summary.find("run.unit_exec_s"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Traced Figure-6a scenario: structural validation
// ---------------------------------------------------------------------------

struct TracedRun {
  Tracer tracer;
  MetricsRegistry metrics;
  core::RunReport report;
};

const TracedRun& traced_fig6a() {
  static TracedRun* run = [] {
    auto* r = new TracedRun;
    workload::PaperScenarioOptions opt;
    opt.scale = 0.02;
    opt.tracer = &r->tracer;
    opt.metrics = &r->metrics;
    r->report = workload::run_als(core::PlacementStrategy::kRealTime, opt);
    r->report.fill_metrics(r->metrics);
    return r;
  }();
  return *run;
}

TEST(TracedFig6a, UnitSpanPerUnitAndCsvRowPerEvent) {
  const auto& run = traced_fig6a();
  EXPECT_TRUE(run.report.all_completed());
  EXPECT_EQ(run.tracer.span_count("unit"), run.report.units_total);
  EXPECT_GT(run.tracer.span_count("flow"), 0u);
  EXPECT_GT(run.tracer.span_count("exec"), 0u);
  // Flat CSV: exactly one row per recorded event plus the header.
  EXPECT_EQ(count_lines(run.tracer.csv()), 1 + run.tracer.event_count());
}

TEST(TracedFig6a, ChromeJsonParsesWithAllEventsPresent) {
  const auto& run = traced_fig6a();
  const std::string json = run.tracer.chrome_json();
  JsonParser parser(json);
  const Json doc = parser.parse();
  ASSERT_FALSE(parser.failed());
  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, Json::Type::kArray);

  std::size_t spans = 0, instants = 0, metadata = 0;
  for (const auto& ev : events.array) {
    ASSERT_EQ(ev.type, Json::Type::kObject);
    const std::string& ph = ev.at("ph").str;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    EXPECT_TRUE(ev.has("name"));
    EXPECT_TRUE(ev.has("ts"));
    EXPECT_TRUE(ev.has("pid"));
    EXPECT_TRUE(ev.has("tid"));
    if (ph == "X") {
      ++spans;
      EXPECT_GE(ev.at("dur").number, 0.0);
    } else {
      EXPECT_EQ(ph, "i");
      ++instants;
    }
  }
  EXPECT_GT(metadata, 0u);  // process_name records for the track groups
  EXPECT_EQ(spans + instants, run.tracer.event_count());
}

TEST(TracedFig6a, StagingAndExecSpansNestInsideTheirUnitSpan) {
  const auto& run = traced_fig6a();
  const auto events = run.tracer.events();

  // Unit lifecycle spans, keyed by unit id (the tid on the unit track).
  std::map<std::uint32_t, std::pair<double, double>> unit_span;
  for (const auto& ev : events) {
    if (ev.kind == TraceEvent::Kind::kSpan && ev.cat == "unit") {
      unit_span[ev.track] = {ev.start, ev.end};
    }
  }
  ASSERT_EQ(unit_span.size(), run.report.units_total);

  constexpr double kEps = 1e-9;
  std::size_t nested = 0;
  for (const auto& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan) continue;
    if (ev.cat != "staging" && ev.cat != "exec" && ev.cat != "pending") continue;
    const auto unit_arg =
        std::find_if(ev.args.begin(), ev.args.end(),
                     [](const TraceArg& a) { return a.key == "unit"; });
    if (unit_arg == ev.args.end()) continue;  // node-level staging: no unit
    const auto id = static_cast<std::uint32_t>(std::stoul(unit_arg->value));
    ASSERT_TRUE(unit_span.count(id)) << ev.cat << " span names unknown unit " << id;
    const auto [lo, hi] = unit_span[id];
    EXPECT_GE(ev.start, lo - kEps) << ev.cat << " span starts before unit " << id;
    EXPECT_LE(ev.end, hi + kEps) << ev.cat << " span ends after unit " << id;
    ++nested;
  }
  EXPECT_GT(nested, 0u);
}

TEST(TracedFig6a, MetricsCoverNetworkAndRun) {
  const auto& run = traced_fig6a();
  const auto* solves = run.metrics.find_counter("net.solver_invocations");
  ASSERT_NE(solves, nullptr);
  EXPECT_GT(solves->value(), 0u);
  const auto* bytes = run.metrics.find_counter("net.bytes_moved");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->value(), run.report.bytes_moved);
  const auto* transfers = run.metrics.find_counter("net.transfers");
  ASSERT_NE(transfers, nullptr);
  EXPECT_EQ(transfers->value(), run.report.transfers);

  // Event-queue activity snapshot (always counted, exported opt-in).
  const auto* scheduled = run.metrics.find_gauge("sim.events_scheduled");
  ASSERT_NE(scheduled, nullptr);
  EXPECT_GT(scheduled->value(), 0.0);
  const auto* fired = run.metrics.find_gauge("sim.events_fired");
  ASSERT_NE(fired, nullptr);
  EXPECT_LE(fired->value(), scheduled->value());

  // fill_metrics gauges mirror the report.
  const auto* makespan = run.metrics.find_gauge("run.makespan_s");
  ASSERT_NE(makespan, nullptr);
  EXPECT_DOUBLE_EQ(makespan->value(), run.report.makespan());
  const auto* completed = run.metrics.find_gauge("run.units_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_DOUBLE_EQ(completed->value(), static_cast<double>(run.report.units_completed));
}

TEST(TracedFig6a, TracingDoesNotPerturbTheSimulation) {
  // The same scenario untraced must land on the exact same simulated result
  // (tracing is observation only — measurement must not change the system).
  workload::PaperScenarioOptions opt;
  opt.scale = 0.02;
  const auto untraced = workload::run_als(core::PlacementStrategy::kRealTime, opt);
  const auto& traced = traced_fig6a().report;
  EXPECT_DOUBLE_EQ(untraced.makespan(), traced.makespan());
  EXPECT_DOUBLE_EQ(untraced.transfer_busy(), traced.transfer_busy());
  EXPECT_DOUBLE_EQ(untraced.compute_busy(), traced.compute_busy());
  EXPECT_EQ(untraced.bytes_moved, traced.bytes_moved);
  EXPECT_EQ(untraced.transfers, traced.transfers);
}

TEST(TracedFig6a, ExportersWriteFiles) {
  namespace fs = std::filesystem;
  const auto& run = traced_fig6a();
  const fs::path dir = fs::path(testing::TempDir()) / "frieda_obs_export";
  fs::create_directories(dir);
  const auto json_path = (dir / "trace.json").string();
  const auto csv_path = (dir / "trace.csv").string();
  const auto metrics_path = (dir / "metrics.csv").string();
  run.tracer.write_chrome_json(json_path);
  run.tracer.write_csv(csv_path);
  run.metrics.write_csv(metrics_path);
  EXPECT_GT(fs::file_size(json_path), 0u);
  EXPECT_GT(fs::file_size(csv_path), 0u);
  EXPECT_GT(fs::file_size(metrics_path), 0u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Threaded runtime tracing (wall-clock timestamps)
// ---------------------------------------------------------------------------

TEST(RtTracing, ThreadedRunRecordsUnitAndExecSpans) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "frieda_obs_rt";
  fs::remove_all(root);
  rt::make_dataset((root / "source").string(), 6, 32 * KiB, 5);

  Tracer tracer;
  rt::RtOptions opt;
  opt.strategy = core::PlacementStrategy::kRealTime;
  opt.worker_count = 2;
  opt.staging_root = (root / "staging").string();
  opt.tracer = &tracer;
  rt::RtEngine engine((root / "source").string(), opt);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());
  const std::size_t n = units.size();
  const auto report = engine.run(
      std::move(units), core::CommandTemplate("app $inp1"),
      [](const core::WorkUnit&, const std::vector<std::string>&, const std::string&) {
        return true;
      });
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(tracer.span_count("unit"), n);
  EXPECT_EQ(tracer.span_count("exec"), n);
  for (const auto& ev : tracer.events()) {
    EXPECT_GE(ev.start, 0.0);  // wall offsets since run start
    EXPECT_GE(ev.end, ev.start);
  }

  MetricsRegistry metrics;
  report.fill_metrics(metrics);
  const auto* completed = metrics.find_gauge("rt.units_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_DOUBLE_EQ(completed->value(), static_cast<double>(n));
  fs::remove_all(root);
}

}  // namespace
}  // namespace frieda::obs
