#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace frieda::sim {
namespace {

TEST(Channel, BufferedSendRecv) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      int value = i;
      co_await c.send(std::move(value));
      co_await s.delay(1.0);
    }
    c.close();
  }(sim, ch));
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<> {
    while (true) {
      auto v = co_await c.recv();
      if (!v) break;
      out.push_back(*v);
    }
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(Channel, RecvBlocksUntilSend) {
  Simulation sim;
  Channel<std::string> ch(sim);
  double recv_time = -1.0;
  sim.spawn([](Simulation& s, Channel<std::string>& c, double& t) -> Task<> {
    auto v = co_await c.recv();
    EXPECT_EQ(*v, "hello");
    t = s.now();
  }(sim, ch, recv_time));
  sim.spawn([](Simulation& s, Channel<std::string>& c) -> Task<> {
    co_await s.delay(5.0);
    co_await c.send("hello");
  }(sim, ch));
  sim.run();
  EXPECT_DOUBLE_EQ(recv_time, 5.0);
}

TEST(Channel, MultipleReceiversFifo) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, int>> got;  // (receiver id, value)
  auto receiver = [&](int id) -> Task<> {
    auto v = co_await ch.recv();
    got.emplace_back(id, *v);
  };
  sim.spawn(receiver(1));
  sim.spawn(receiver(2));
  sim.spawn([](Channel<int>& c) -> Task<> {
    co_await c.send(100);
    co_await c.send(200);
  }(ch));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  // Oldest waiter gets the first value.
  EXPECT_EQ(got[0], (std::pair<int, int>{1, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{2, 200}));
}

TEST(Channel, BoundedSendBlocks) {
  Simulation sim;
  Channel<int> ch(sim, 1);
  std::vector<double> send_times;
  sim.spawn([](Simulation& s, Channel<int>& c, std::vector<double>& t) -> Task<> {
    co_await c.send(1);
    t.push_back(s.now());
    co_await c.send(2);  // blocks until the consumer drains
    t.push_back(s.now());
  }(sim, ch, send_times));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(4.0);
    (void)co_await c.recv();
    (void)co_await c.recv();
  }(sim, ch));
  sim.run();
  ASSERT_EQ(send_times.size(), 2u);
  EXPECT_DOUBLE_EQ(send_times[0], 0.0);
  EXPECT_DOUBLE_EQ(send_times[1], 4.0);
}

TEST(Channel, TrySend) {
  Simulation sim;
  Channel<int> ch(sim, 2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));  // full
  EXPECT_EQ(ch.size(), 2u);
  ch.close();
  EXPECT_FALSE(ch.try_send(4));  // closed
}

TEST(Channel, CloseDrainsBufferThenNullopt) {
  Simulation sim;
  Channel<int> ch(sim);
  EXPECT_TRUE(ch.try_send(7));
  ch.close();
  std::vector<std::optional<int>> got;
  sim.spawn([](Channel<int>& c, std::vector<std::optional<int>>& out) -> Task<> {
    out.push_back(co_await c.recv());
    out.push_back(co_await c.recv());
  }(ch, got));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::optional<int>(7));
  EXPECT_EQ(got[1], std::nullopt);
}

TEST(Channel, CloseWakesBlockedReceivers) {
  Simulation sim;
  Channel<int> ch(sim);
  int woke = 0;
  auto receiver = [&]() -> Task<> {
    auto v = co_await ch.recv();
    EXPECT_FALSE(v.has_value());
    ++woke;
  };
  sim.spawn(receiver());
  sim.spawn(receiver());
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(1.0);
    c.close();
  }(sim, ch));
  sim.run();
  EXPECT_EQ(woke, 2);
}

TEST(Channel, CloseWakesBlockedSenderWithFalse) {
  Simulation sim;
  Channel<int> ch(sim, 1);
  bool second_send_ok = true;
  sim.spawn([](Channel<int>& c, bool& ok) -> Task<> {
    EXPECT_TRUE(co_await c.send(1));
    ok = co_await c.send(2);  // blocks, then fails on close
  }(ch, second_send_ok));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(2.0);
    c.close();
  }(sim, ch));
  sim.run();
  EXPECT_FALSE(second_send_ok);
}

TEST(Channel, RecvUntilTimesOut) {
  Simulation sim;
  Channel<int> ch(sim);
  std::optional<int> got = 99;
  double when = -1.0;
  sim.spawn([](Simulation& s, Channel<int>& c, std::optional<int>& out, double& t) -> Task<> {
    out = co_await c.recv_until(3.0);
    t = s.now();
  }(sim, ch, got, when));
  sim.run();
  EXPECT_EQ(got, std::nullopt);
  EXPECT_DOUBLE_EQ(when, 3.0);
}

TEST(Channel, RecvUntilDeliveredBeforeDeadline) {
  Simulation sim;
  Channel<int> ch(sim);
  std::optional<int> got;
  double when = -1.0;
  sim.spawn([](Simulation& s, Channel<int>& c, std::optional<int>& out, double& t) -> Task<> {
    out = co_await c.recv_until(10.0);
    t = s.now();
  }(sim, ch, got, when));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(2.0);
    co_await c.send(5);
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got, std::optional<int>(5));
  EXPECT_DOUBLE_EQ(when, 2.0);
}

TEST(Channel, RecvUntilPastDeadlineImmediate) {
  Simulation sim;
  Channel<int> ch(sim);
  std::optional<int> got = 1;
  sim.spawn([](Simulation& s, Channel<int>& c, std::optional<int>& out) -> Task<> {
    co_await s.delay(5.0);
    out = co_await c.recv_until(3.0);  // deadline already passed
  }(sim, ch, got));
  sim.run();
  EXPECT_EQ(got, std::nullopt);
}

TEST(Channel, ChannelStillUsableAfterTimeout) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<std::optional<int>> got;
  sim.spawn([](Channel<int>& c, std::vector<std::optional<int>>& out) -> Task<> {
    out.push_back(co_await c.recv_until(1.0));  // times out
    out.push_back(co_await c.recv());           // later delivery works
  }(ch, got));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(2.0);
    co_await c.send(42);
  }(sim, ch));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::nullopt);
  EXPECT_EQ(got[1], std::optional<int>(42));
}

TEST(Channel, ManyProducersOneConsumer) {
  Simulation sim;
  Channel<int> ch(sim);
  int total = 0;
  for (int p = 0; p < 5; ++p) {
    sim.spawn([](Simulation& s, Channel<int>& c, int id) -> Task<> {
      for (int i = 0; i < 10; ++i) {
        co_await s.delay(0.1 * (id + 1));
        co_await c.send(1);
      }
    }(sim, ch, p));
  }
  sim.spawn([](Channel<int>& c, int& sum) -> Task<> {
    for (int i = 0; i < 50; ++i) {
      auto v = co_await c.recv();
      sum += *v;
    }
  }(ch, total));
  sim.run();
  EXPECT_EQ(total, 50);
}

}  // namespace
}  // namespace frieda::sim
