// StableHasher / Fingerprint: deterministic, typed, order-sensitive field
// hashing — the encoding the sweep engine's result cache is keyed by.
#include <gtest/gtest.h>

#include <set>

#include "common/hash.hpp"

namespace frieda {
namespace {

Fingerprint fp_of(const char* s) {
  StableHasher h;
  return h.mix_str(s).digest();
}

TEST(StableHasher, Deterministic) {
  StableHasher a;
  a.mix_str("als").mix_u64(2012).mix_f64(0.2).mix_bool(true);
  StableHasher b;
  b.mix_str("als").mix_u64(2012).mix_f64(0.2).mix_bool(true);
  EXPECT_EQ(a.digest(), b.digest());
  // digest() is non-consuming: continuing the stream changes the value.
  const auto mid = a.digest();
  a.mix_u64(1);
  EXPECT_NE(mid, a.digest());
}

TEST(StableHasher, OrderAndTypeMatter) {
  std::set<Fingerprint> seen;
  {
    StableHasher h;
    EXPECT_TRUE(seen.insert(h.mix_u64(1).mix_str("x").digest()).second);
  }
  {
    StableHasher h;  // same fields, swapped order
    EXPECT_TRUE(seen.insert(h.mix_str("x").mix_u64(1).digest()).second);
  }
  {
    StableHasher h;  // same bit patterns, different types
    EXPECT_TRUE(seen.insert(h.mix_i64(1).mix_str("x").digest()).second);
  }
  {
    StableHasher h;  // bool(1) != u64(1)
    EXPECT_TRUE(seen.insert(h.mix_bool(true).mix_str("x").digest()).second);
  }
}

TEST(StableHasher, StringBoundariesAreUnambiguous) {
  // Concatenation across mix_str calls must not alias a single longer mix.
  StableHasher ab;
  ab.mix_str("ab").mix_str("c");
  StableHasher a_bc;
  a_bc.mix_str("a").mix_str("bc");
  StableHasher abc;
  abc.mix_str("abc");
  EXPECT_NE(ab.digest(), a_bc.digest());
  EXPECT_NE(ab.digest(), abc.digest());
  EXPECT_NE(a_bc.digest(), abc.digest());
  // Longer-than-chunk strings hash by content, not identity.
  EXPECT_EQ(fp_of("a string longer than eight bytes"),
            fp_of("a string longer than eight bytes"));
  EXPECT_NE(fp_of("a string longer than eight bytes"),
            fp_of("a string longer than eight bytfs"));
  StableHasher nul;
  nul.mix_str(std::string_view("\0", 1));
  EXPECT_NE(fp_of(""), nul.digest());  // empty vs one NUL differ by length
}

TEST(StableHasher, DoubleCanonicalization) {
  StableHasher pos, neg;
  pos.mix_f64(0.0);
  neg.mix_f64(-0.0);
  EXPECT_EQ(pos.digest(), neg.digest());  // -0.0 == 0.0, so same key
  StableHasher a, b;
  a.mix_f64(0.1);
  b.mix_f64(0.1000000000000001);
  EXPECT_NE(a.digest(), b.digest());  // distinct bit patterns stay distinct
}

TEST(StableHasher, NoTrivialCollisions) {
  // Sanity avalanche check: nearby integers spread out over both words.
  std::set<Fingerprint> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    StableHasher h;
    EXPECT_TRUE(seen.insert(h.mix_u64(i).digest()).second) << i;
  }
  std::set<std::uint64_t> hi_words, lo_words;
  for (const auto& f : seen) {
    hi_words.insert(f.hi);
    lo_words.insert(f.lo);
  }
  EXPECT_EQ(hi_words.size(), seen.size());
  EXPECT_EQ(lo_words.size(), seen.size());
}

TEST(Fingerprint, HexAndOrdering) {
  const Fingerprint zero{};
  EXPECT_EQ(zero.to_hex(), std::string(32, '0'));
  const Fingerprint one{0, 1};
  EXPECT_EQ(one.to_hex(), "0000000000000000" "0000000000000001");
  EXPECT_LT(zero, one);
  EXPECT_LT(one, (Fingerprint{1, 0}));
  EXPECT_NE(zero, one);
}

}  // namespace
}  // namespace frieda
