// Robustness demo (Section V.A "Robust").
//
// Runs the same image-analysis campaign twice with a VM crash at t=100 s:
// once with the paper's base behavior (the controller isolates the failed
// workers; their units are reported, not restarted) and once with the
// future-work requeue extension enabled (lost units are re-staged to the
// survivors and the campaign completes).
#include <cstdio>
#include <memory>

#include "workload/scenarios.hpp"

using namespace frieda;
using core::PlacementStrategy;

namespace {

core::RunReport crash_run(bool requeue) {
  // Keep the injector alive for the duration of the simulated run.
  static std::unique_ptr<cluster::FailureInjector> injector;
  workload::PaperScenarioOptions opt;
  opt.scale = 0.1;
  opt.requeue_on_failure = requeue;
  opt.arrange = [](sim::Simulation&, cluster::VirtualCluster& cluster, core::FriedaRun&) {
    injector = std::make_unique<cluster::FailureInjector>(cluster);
    injector->schedule(/*vm=*/2, /*when=*/25.0);
  };
  auto report = workload::run_als(PlacementStrategy::kRealTime, opt);
  injector.reset();
  return report;
}

void narrate(const char* title, const core::RunReport& report) {
  std::printf("=== %s ===\n%s", title, report.summary().c_str());
  std::printf("accounting: %zu completed + %zu failed + %zu unprocessed = %zu total\n\n",
              report.units_completed, report.units_failed, report.units_unprocessed,
              report.units_total);
}

}  // namespace

int main() {
  std::printf("VM 2 will crash at t=25 s in both runs.\n\n");

  const auto base = crash_run(false);
  narrate("base FRIEDA: isolate failed workers (paper Section V.A)", base);

  const auto extended = crash_run(true);
  narrate("requeue extension: re-dispatch lost units (paper future work)", extended);

  const bool ok = base.workers_isolated > 0 && !base.all_completed() &&
                  extended.all_completed();
  std::printf("isolation lost %zu units; requeue recovered all of them: %s\n",
              base.units_failed + base.units_unprocessed, ok ? "yes" : "no");
  return ok ? 0 : 1;
}
