// Open-loop service mode: FRIEDA as a long-running query service.
//
// Every other example submits a closed batch and waits for the makespan.
// Here a Poisson arrival process feeds BLAST queries into a running
// deployment at a sustained rate, the report carries sojourn-time
// percentiles (arrival -> completion), and the queue-depth-reactive
// elasticity policy provisions extra VMs when the backlog grows and drains
// them when it clears — the paper's "Elastic" property measured the way a
// service operator would (docs/service_mode.md).
//
// The arrival rate is chosen above the fixed fleet's ~1.96 units/s capacity,
// so the fixed-fleet run backs up while the reactive run scales out.
//
// Usage: open_loop_service [scale]   (default 0.02 => 150 queries)
#include <cstdio>
#include <cstdlib>

#include "workload/arrivals.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using core::PlacementStrategy;

namespace {

workload::PaperScenarioOptions service_opt(double scale, bool reactive) {
  workload::PaperScenarioOptions opt;
  opt.scale = scale;
  opt.service.open_loop = true;
  opt.service.arrivals.kind = workload::ArrivalKind::kPoisson;
  opt.service.arrivals.rate = 4.0;  // ~2x the 16-core fleet's capacity
  opt.service.arrivals.seed = 42;   // same arrival stream for both runs
  if (reactive) {
    opt.service.elastic.enabled = true;
    opt.service.elastic.scale_out_depth = 12;
    opt.service.elastic.scale_in_depth = 2;
    opt.service.elastic.check_interval = 4.0;
    opt.service.elastic.hysteresis = 2;
    opt.service.elastic.max_extra_vms = 4;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;

  std::printf("== fixed fleet (4 VMs, no elasticity) ==\n");
  const auto fixed =
      workload::run_blast(PlacementStrategy::kRealTime, service_opt(scale, false));
  std::printf("%s\n", fixed.summary().c_str());

  std::printf("== reactive fleet (scale-out at queue depth 12, up to 4 extra VMs) ==\n");
  const auto reactive =
      workload::run_blast(PlacementStrategy::kRealTime, service_opt(scale, true));
  std::printf("%s\n", reactive.summary().c_str());

  std::printf("tail latency: fixed p99 %.2f s -> reactive p99 %.2f s "
              "(%zu scale-outs, %zu scale-ins)\n",
              fixed.latency_p(99.0), reactive.latency_p(99.0), reactive.scale_outs,
              reactive.scale_ins);

  // Doubles as the CI smoke check for the service mode: both runs must
  // complete every query and produce non-empty sojourn percentiles.
  const bool ok = fixed.all_completed() && reactive.all_completed() &&
                  fixed.latency.count() == fixed.units_completed &&
                  reactive.latency.count() == reactive.units_completed &&
                  fixed.latency_p(99.0) > 0.0 && reactive.latency_p(99.0) > 0.0;
  return ok ? 0 : 1;
}
