// Elastic scaling demo (Section V.A "Elastic").
//
// A long BLAST campaign starts on 2 VMs; 2 more VMs are provisioned 60
// simulated seconds in, join the master through the controller, and absorb
// work; one original VM is drained and released near the end.  Every event
// is narrated from the run report.
#include <algorithm>
#include <cstdio>

#include "workload/scenarios.hpp"

using namespace frieda;
using core::PlacementStrategy;

int main() {
  workload::PaperScenarioOptions opt;
  opt.scale = 0.1;
  opt.worker_vms = 2;
  opt.arrange = [](sim::Simulation& sim, cluster::VirtualCluster&, core::FriedaRun& run) {
    sim.schedule_at(60.0, [&run] {
      std::printf("[t=60] controller: scaling out — provisioning 2 more c1.xlarge\n");
      auto type = cluster::c1_xlarge();
      type.boot_time = 30.0;
      run.add_vm(type);
      run.add_vm(type);
    });
    sim.schedule_at(240.0, [&run] {
      std::printf("[t=240] controller: scaling in — draining vm 1\n");
      run.remove_vm(1);
    });
  };

  const auto report = workload::run_blast(PlacementStrategy::kRealTime, opt);
  std::printf("%s\n", report.summary().c_str());

  std::printf("per-worker outcome (worker/vm/slot: units, busy seconds, flags):\n");
  for (const auto& w : report.workers) {
    std::printf("  w%-3u vm%-2u slot%-2u: %4zu units, %8.1f s%s%s\n", w.worker, w.vm, w.slot,
                w.units_completed, w.busy_seconds, w.isolated ? "  [isolated]" : "",
                w.drained ? "  [drained]" : "");
  }

  const bool elastic_helped =
      std::any_of(report.workers.begin(), report.workers.end(),
                  [](const auto& w) { return w.vm >= 2 && w.units_completed > 0; });
  std::printf("elastic workers processed units: %s\n", elastic_helped ? "yes" : "no");
  return report.all_completed() && elastic_helped ? 0 : 1;
}
