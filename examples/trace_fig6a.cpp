// Traced Figure-6a run: the real-time ALS scenario with the observability
// layer attached.
//
// Demonstrates the opt-in tracer + metrics registry (docs/observability.md):
// the run records per-unit lifecycle spans, staging/execution spans,
// per-flow network spans and protocol instants, then exports
//   * trace_fig6a.json — Chrome trace-event JSON, loadable in Perfetto /
//     chrome://tracing (each unit is a lane in the "units" track);
//   * trace_fig6a.csv  — the same events as a flat CSV for ad-hoc analysis;
//   * metrics_fig6a.csv — named counters/gauges/stats from the run;
//   * timeline_fig6a.csv — the live telemetry series (channel,t_s,value)
//     sampled by a TelemetryProbe on a 2 s sim-clock interval.  The same
//     samples land in the JSON as Chrome counter events, so Perfetto shows
//     counter tracks interleaved with the spans and `frieda-trace timeline
//     trace_fig6a.json` renders per-channel sparklines from them.
//
// Usage: trace_fig6a [scale]   (default scale 0.05; 1.0 = paper size)
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using core::PlacementStrategy;

int main(int argc, char** argv) {
  double scale = 0.05;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0) {
    std::fprintf(stderr, "usage: %s [scale > 0]\n", argv[0]);
    return 1;
  }

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::TelemetryOptions topt;
  topt.interval = 2.0;
  topt.slo.push_back({"queue_depth", 64.0});
  obs::TelemetryProbe probe(topt);

  workload::PaperScenarioOptions opt;
  opt.scale = scale;
  opt.tracer = &tracer;
  opt.metrics = &metrics;
  opt.telemetry = &probe;
  const auto report = workload::run_als(PlacementStrategy::kRealTime, opt);
  report.fill_metrics(metrics);

  std::printf("%s", report.summary().c_str());
  std::printf("\nrecorded %zu trace events (%zu unit spans, %zu flow spans), "
              "%zu telemetry samples over %zu ticks\n",
              tracer.event_count(), tracer.span_count("unit"), tracer.span_count("flow"),
              probe.series().sample_count(), probe.tick_count());
  std::printf("%s", probe.slo().summary().c_str());

  tracer.write_chrome_json("trace_fig6a.json");
  tracer.write_csv("trace_fig6a.csv");
  metrics.write_csv("metrics_fig6a.csv");
  probe.write_timeline_csv("timeline_fig6a.csv");
  std::printf("wrote trace_fig6a.json (open in Perfetto), trace_fig6a.csv, "
              "metrics_fig6a.csv, timeline_fig6a.csv\n");
  std::printf("\nmetrics:\n%s", metrics.summary().c_str());
  return report.all_completed() ? 0 : 1;
}
