// Declarative experiment runner: execute a FRIEDA scenario described in an
// INI config file, with key=value command-line overrides.
//
//   run_scenario my_experiment.conf run.strategy=pre-partition-remote
//   run_scenario --demo                 # built-in demo scenario
//
// Prints the run summary and the per-unit/per-worker CSVs' first lines; see
// src/workload/scenario_config.hpp for the full key reference.
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "workload/scenario_config.hpp"

using namespace frieda;

namespace {

constexpr const char* kDemo = R"(
[cluster]
vms = 4
cores = 4
nic_mbps = 100
seed = 7

[workload]
kind = synthetic
files = 120
file_mb = 6
task_s = 3
task_cv = 0.6
output_kb = 40

[run]
strategy = real-time
prefetch = 1
requeue = true

[events]
fail = 2@20
add_vms_at = 30
add_vms = 1
)";

}  // namespace

int main(int argc, char** argv) {
  Config config;
  std::vector<std::string> overrides;
  bool have_file = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      config = Config::parse(kDemo);
      have_file = true;
    } else if (arg.find('=') != std::string::npos) {
      overrides.push_back(arg);
    } else {
      config = Config::load_file(arg);
      have_file = true;
    }
  }
  if (!have_file) {
    std::fprintf(stderr,
                 "usage: run_scenario (<config-file> | --demo) [key=value ...]\n"
                 "see src/workload/scenario_config.hpp for the key reference\n");
    return 2;
  }
  config.apply_overrides(overrides);

  std::printf("effective configuration:\n%s\n", config.to_string().c_str());
  const auto report = workload::run_scenario(config);
  std::printf("%s\n", report.summary().c_str());
  return report.all_completed() ? 0 : 1;
}
