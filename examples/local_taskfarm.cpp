// Real threaded task farm over real files — no simulation.
//
// Generates a dataset of actual files, then farms a checksum "analysis"
// program across worker threads with the real-time strategy, staging each
// file copy through a 40 MB/s token bucket (a scaled-down 100 Mbps NIC).
// The same FRIEDA protocol types drive this run and the simulated ones.
//
// Usage: local_taskfarm [files] [file_kib] [workers]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "frieda/partition.hpp"
#include "runtime/rt_engine.hpp"

using namespace frieda;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const std::size_t files = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const std::size_t file_kib = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
  const std::size_t workers = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;

  const fs::path root = fs::temp_directory_path() / "frieda_taskfarm_demo";
  fs::remove_all(root);
  const std::string source = (root / "source").string();
  std::printf("generating %zu x %zu KiB input files under %s ...\n", files, file_kib,
              source.c_str());
  rt::make_dataset(source, files, file_kib * KiB, /*seed=*/7);

  rt::RtOptions options;
  options.strategy = core::PlacementStrategy::kRealTime;
  options.worker_count = workers;
  options.staging_root = (root / "staging").string();
  options.bandwidth = 40e6;  // throttle staging to 40 MB/s

  rt::RtEngine engine(source, options);
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  engine.catalog());

  // The "program": checksum every byte of the staged input.
  const auto checksum_task = [](const core::WorkUnit&,
                                const std::vector<std::string>& paths,
                                const std::string& command) {
    std::uint64_t sum = 0;
    for (const auto& path : paths) {
      std::ifstream in(path, std::ios::binary);
      char buf[64 * 1024];
      while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
        sum = std::accumulate(buf, buf + in.gcount(), sum,
                              [](std::uint64_t a, char c) {
                                return a * 1099511628211ull + static_cast<unsigned char>(c);
                              });
        if (in.gcount() < static_cast<std::streamsize>(sizeof(buf))) break;
      }
    }
    (void)command;
    return sum != 0;  // any real data checksums to nonzero
  };

  std::printf("farming %zu units over %zu worker threads (real-time strategy)...\n",
              units.size(), workers);
  const auto report =
      engine.run(std::move(units), core::CommandTemplate("checksum $inp1"), checksum_task);

  std::printf("makespan        %.3f s\n", report.makespan);
  std::printf("bytes staged    %.2f MiB\n",
              static_cast<double>(report.bytes_staged) / static_cast<double>(MiB));
  std::printf("units           %zu completed, %zu failed\n", report.units_completed,
              report.units_failed);
  for (std::size_t w = 0; w < report.per_worker_completed.size(); ++w) {
    std::printf("  worker %zu: %zu units\n", w, report.per_worker_completed[w]);
  }
  fs::remove_all(root);
  return report.all_completed() ? 0 : 1;
}
