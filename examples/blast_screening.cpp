// BLAST screening campaign (the paper's bioinformatics workload) with
// adaptive strategy selection.
//
// Demonstrates the "Intelligent" property (Section V.A): the controller
// first consults the execution history; with no history it falls back to a
// workload-shape heuristic, runs the campaign, records the outcome, and a
// second campaign then picks the strategy with the best historical makespan.
//
// Usage: blast_screening [scale]   (default scale 0.1 => 750 sequences)
#include <cstdio>
#include <cstdlib>

#include "frieda/adaptive.hpp"
#include "workload/calibration.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using core::PlacementStrategy;

int main(int argc, char** argv) {
  workload::PaperScenarioOptions opt;
  opt.scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  // Describe the workload shape for the history-free heuristic.
  core::WorkloadShape shape;
  shape.bytes_per_unit = workload::calib::kBlastSequenceBytes;
  shape.seconds_per_unit = workload::calib::kBlastMeanTaskSeconds;
  shape.cost_cv = workload::calib::kBlastTaskCv;
  shape.staging_bandwidth = opt.nic;
  shape.total_cores = static_cast<unsigned>(opt.worker_vms) * opt.cores_per_vm;

  core::ExecutionHistory history;
  core::AdaptiveSelector selector(history);
  const auto first_choice = selector.choose("blast", shape);
  std::printf("campaign 1: no history — heuristic picks '%s'\n",
              core::to_string(first_choice));

  const auto first = workload::run_blast(first_choice, opt);
  std::printf("%s\n", first.summary().c_str());
  history.record(first);

  // Benchmark the alternative too, so the history covers both candidates.
  for (const auto candidate : core::AdaptiveSelector::candidates()) {
    if (history.observations("blast", candidate) > 0) continue;
    std::printf("probing alternative strategy '%s'...\n", core::to_string(candidate));
    const auto probe = workload::run_blast(candidate, opt);
    history.record(probe);
    std::printf("  makespan %.2f s\n", probe.makespan());
  }

  core::AdaptiveSelector informed(history);
  const auto second_choice = informed.choose("blast", shape);
  std::printf("campaign 2: history now picks '%s'\n", core::to_string(second_choice));
  const auto second = workload::run_blast(second_choice, opt);
  std::printf("%s\n", second.summary().c_str());

  std::printf("serialized history:\n%s", history.serialize().c_str());
  return second.all_completed() ? 0 : 1;
}
