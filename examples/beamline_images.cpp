// Light-source beamline image analysis (the paper's ALS workload),
// configuration-driven.
//
// Shows the Config-based control plane: strategy, scheme, cluster size and
// bandwidth come from key=value arguments, so the same binary explores the
// whole Figure 6a design space:
//
//   beamline_images strategy=real-time scale=0.1
//   beamline_images strategy=pre-partition-remote nic_mbps=50 vms=8
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;

int main(int argc, char** argv) {
  Config cfg;
  cfg.apply_overrides(std::vector<std::string>(argv + 1, argv + argc));

  workload::PaperScenarioOptions opt;
  opt.scale = cfg.get_double("scale", 0.1);
  opt.worker_vms = static_cast<std::size_t>(cfg.get_int("vms", 4));
  opt.cores_per_vm = static_cast<unsigned>(cfg.get_int("cores", 4));
  opt.nic = mbps(cfg.get_double("nic_mbps", 100.0));
  opt.multicore = cfg.get_bool("multicore", true);
  opt.prefetch = static_cast<int>(cfg.get_int("prefetch", 1));

  const auto strategy_name = cfg.get_string("strategy", "real-time");
  const auto strategy = core::parse_placement_strategy(strategy_name);
  if (!strategy) {
    std::fprintf(stderr,
                 "unknown strategy '%s' (try real-time, pre-partition-remote, "
                 "pre-partition-local, no-partition-common, remote-read)\n",
                 strategy_name.c_str());
    return 2;
  }

  std::printf("beamline image comparison: strategy=%s scale=%.2f vms=%zu cores=%u\n",
              strategy_name.c_str(), opt.scale, opt.worker_vms, opt.cores_per_vm);
  const auto report = workload::run_als(*strategy, opt);
  std::printf("%s\n", report.summary().c_str());
  std::printf("transfer-bound fraction of makespan: %.0f%%\n",
              report.makespan() > 0 ? report.transfer_busy() / report.makespan() * 100 : 0.0);
  return report.all_completed() ? 0 : 1;
}
