// Two-stage beamline pipeline driven by the workflow layer (paper Section
// VI: a higher-level engine chaining FRIEDA runs).
//
//   stage 1 "denoise":  every raw image -> cleaned image (half the bytes),
//                       left on the worker that produced it;
//   stage 2 "compare":  pairwise-adjacent comparison of cleaned images with
//                       locality-aware dispatch, so work follows the data.
#include <cstdio>

#include "frieda/workflow.hpp"

using namespace frieda;
using core::PartitionScheme;
using core::PlacementStrategy;
using core::WorkflowStage;

int main() {
  sim::Simulation sim(2026);
  cluster::VirtualCluster cluster(sim);
  auto flavor = cluster::c1_xlarge();
  flavor.boot_time = 0.0;
  cluster.provision(flavor, 4);

  storage::FileCatalog raw;
  for (int i = 0; i < 64; ++i) {
    raw.add_file("raw_" + std::to_string(i) + ".tif", 6 * MB);
  }

  core::Workflow pipeline(cluster);

  WorkflowStage denoise;
  denoise.name = "denoise";
  denoise.scheme = PartitionScheme::kSingleFile;
  denoise.command = "denoise --sigma 1.5 $inp1";
  denoise.options.strategy = PlacementStrategy::kRealTime;
  denoise.task_seconds = [](const core::WorkUnit& u, const storage::FileCatalog& cat) {
    return static_cast<double>(u.input_bytes(cat)) / 4e6;  // 4 MB/s filter
  };
  denoise.output_bytes = [](const core::WorkUnit& u, const storage::FileCatalog& cat) {
    return u.input_bytes(cat) / 2;
  };
  pipeline.add_stage(denoise);

  WorkflowStage compare;
  compare.name = "compare";
  compare.scheme = PartitionScheme::kPairwiseAdjacent;
  compare.command = "compare_images $inp1 $inp2";
  compare.options.strategy = PlacementStrategy::kRealTime;
  compare.options.locality_aware = true;  // run where the cleaned images are
  compare.task_seconds = [](const core::WorkUnit& u, const storage::FileCatalog& cat) {
    return static_cast<double>(u.input_bytes(cat)) / 7e6;
  };
  compare.output_bytes = [](const core::WorkUnit&, const storage::FileCatalog&) {
    return Bytes{25 * KB};  // similarity report
  };
  pipeline.add_stage(compare);

  const auto result = pipeline.execute(raw);

  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    const auto& r = result.stages[i];
    std::printf("stage %zu (%s): %zu/%zu units in %.2f s, %.1f MB moved\n", i + 1,
                r.app.c_str(), r.units_completed, r.units_total, r.makespan(),
                static_cast<double>(r.bytes_moved) / 1e6);
  }
  std::printf("pipeline total: %.2f s, final outputs: %zu report files\n",
              result.total_makespan, result.final_outputs.count());
  std::printf("source egress: %.1f MB (stage 2 stayed on the workers)\n",
              static_cast<double>(
                  cluster.network().traffic(cluster.source_node()).bytes_sent) /
                  1e6);
  return result.all_completed() ? 0 : 1;
}
