// Quickstart: farm a data-parallel program over a simulated virtual cluster
// with FRIEDA in ~40 lines.
//
//   1. provision a cluster (2 VMs x 4 cores + a data-source node);
//   2. describe the input directory (a FileCatalog) and the application
//      (an AppModel: how long a task runs, what data it needs);
//   3. generate work units with a partition scheme;
//   4. pick a placement strategy and run.
//
// Build & run:  cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/synthetic.hpp"

using namespace frieda;

int main() {
  // A simulated cloud: the Simulation is the virtual clock, the cluster
  // provisions VMs on it.
  sim::Simulation sim(/*seed=*/2024);
  cluster::VirtualCluster cluster(sim);
  auto flavor = cluster::c1_xlarge();  // 4 cores, 100 Mbps NIC
  flavor.boot_time = 10.0;
  cluster.provision(flavor, /*count=*/2);

  // The application: 100 input files of 4 MB, ~2 s of compute each.
  workload::SyntheticParams params;
  params.file_count = 100;
  params.mean_file_bytes = 4 * MB;
  params.mean_task_seconds = 2.0;
  params.task_cv = 0.4;  // some tasks are slower — real-time will balance them
  workload::SyntheticModel app(params);

  // Partition generation: one file per program instance (the default
  // grouping; try kPairwiseAdjacent or kAllToAll for paired workloads).
  auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                  app.catalog());

  // The execution syntax, exactly as the paper's Section II.D sends it to
  // workers: $inp1 is replaced with the staged file location at runtime.
  core::CommandTemplate command("my_analysis --fast $inp1");

  // Control-plane directives: lazy real-time partitioning with pipelining.
  core::RunOptions options;
  options.strategy = core::PlacementStrategy::kRealTime;
  options.multicore = true;

  core::FriedaRun run(cluster, app.catalog(), std::move(units), app, command, options);
  const auto report = run.run();

  std::printf("%s\n", report.summary().c_str());
  std::printf("Example bound command for unit 0: %s\n",
              command.bind_unit(core::WorkUnit{0, {0}}, app.catalog()).c_str());
  return report.all_completed() ? 0 : 1;
}
