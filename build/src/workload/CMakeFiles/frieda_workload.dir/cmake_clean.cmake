file(REMOVE_RECURSE
  "CMakeFiles/frieda_workload.dir/blast.cpp.o"
  "CMakeFiles/frieda_workload.dir/blast.cpp.o.d"
  "CMakeFiles/frieda_workload.dir/image_compare.cpp.o"
  "CMakeFiles/frieda_workload.dir/image_compare.cpp.o.d"
  "CMakeFiles/frieda_workload.dir/scenario_config.cpp.o"
  "CMakeFiles/frieda_workload.dir/scenario_config.cpp.o.d"
  "CMakeFiles/frieda_workload.dir/scenarios.cpp.o"
  "CMakeFiles/frieda_workload.dir/scenarios.cpp.o.d"
  "CMakeFiles/frieda_workload.dir/synthetic.cpp.o"
  "CMakeFiles/frieda_workload.dir/synthetic.cpp.o.d"
  "libfrieda_workload.a"
  "libfrieda_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frieda_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
