file(REMOVE_RECURSE
  "libfrieda_workload.a"
)
