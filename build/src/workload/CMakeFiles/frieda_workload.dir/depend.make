# Empty dependencies file for frieda_workload.
# This may be replaced when dependencies are built.
