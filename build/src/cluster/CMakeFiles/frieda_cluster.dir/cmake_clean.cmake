file(REMOVE_RECURSE
  "CMakeFiles/frieda_cluster.dir/cluster.cpp.o"
  "CMakeFiles/frieda_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/frieda_cluster.dir/vm.cpp.o"
  "CMakeFiles/frieda_cluster.dir/vm.cpp.o.d"
  "libfrieda_cluster.a"
  "libfrieda_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frieda_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
