# Empty dependencies file for frieda_cluster.
# This may be replaced when dependencies are built.
