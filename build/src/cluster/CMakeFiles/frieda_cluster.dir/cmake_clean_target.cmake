file(REMOVE_RECURSE
  "libfrieda_cluster.a"
)
