file(REMOVE_RECURSE
  "CMakeFiles/frieda_sim.dir/event_queue.cpp.o"
  "CMakeFiles/frieda_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/frieda_sim.dir/simulation.cpp.o"
  "CMakeFiles/frieda_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/frieda_sim.dir/sync.cpp.o"
  "CMakeFiles/frieda_sim.dir/sync.cpp.o.d"
  "libfrieda_sim.a"
  "libfrieda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frieda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
