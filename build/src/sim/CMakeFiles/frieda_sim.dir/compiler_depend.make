# Empty compiler generated dependencies file for frieda_sim.
# This may be replaced when dependencies are built.
