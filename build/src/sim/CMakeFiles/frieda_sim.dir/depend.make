# Empty dependencies file for frieda_sim.
# This may be replaced when dependencies are built.
