file(REMOVE_RECURSE
  "libfrieda_sim.a"
)
