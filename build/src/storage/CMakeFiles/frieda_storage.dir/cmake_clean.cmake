file(REMOVE_RECURSE
  "CMakeFiles/frieda_storage.dir/device.cpp.o"
  "CMakeFiles/frieda_storage.dir/device.cpp.o.d"
  "CMakeFiles/frieda_storage.dir/file.cpp.o"
  "CMakeFiles/frieda_storage.dir/file.cpp.o.d"
  "libfrieda_storage.a"
  "libfrieda_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frieda_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
