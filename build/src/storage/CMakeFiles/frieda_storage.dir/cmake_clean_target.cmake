file(REMOVE_RECURSE
  "libfrieda_storage.a"
)
