# Empty compiler generated dependencies file for frieda_storage.
# This may be replaced when dependencies are built.
