# Empty dependencies file for frieda_rt.
# This may be replaced when dependencies are built.
