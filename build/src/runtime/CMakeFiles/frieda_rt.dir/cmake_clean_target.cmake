file(REMOVE_RECURSE
  "libfrieda_rt.a"
)
