file(REMOVE_RECURSE
  "CMakeFiles/frieda_rt.dir/rt_engine.cpp.o"
  "CMakeFiles/frieda_rt.dir/rt_engine.cpp.o.d"
  "CMakeFiles/frieda_rt.dir/token_bucket.cpp.o"
  "CMakeFiles/frieda_rt.dir/token_bucket.cpp.o.d"
  "libfrieda_rt.a"
  "libfrieda_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frieda_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
