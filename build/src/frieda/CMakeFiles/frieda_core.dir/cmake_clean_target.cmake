file(REMOVE_RECURSE
  "libfrieda_core.a"
)
