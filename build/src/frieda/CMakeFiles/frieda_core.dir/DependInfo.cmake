
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frieda/adaptive.cpp" "src/frieda/CMakeFiles/frieda_core.dir/adaptive.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/frieda/assignment.cpp" "src/frieda/CMakeFiles/frieda_core.dir/assignment.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/assignment.cpp.o.d"
  "/root/repo/src/frieda/command.cpp" "src/frieda/CMakeFiles/frieda_core.dir/command.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/command.cpp.o.d"
  "/root/repo/src/frieda/partition.cpp" "src/frieda/CMakeFiles/frieda_core.dir/partition.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/partition.cpp.o.d"
  "/root/repo/src/frieda/protocol.cpp" "src/frieda/CMakeFiles/frieda_core.dir/protocol.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/protocol.cpp.o.d"
  "/root/repo/src/frieda/report.cpp" "src/frieda/CMakeFiles/frieda_core.dir/report.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/report.cpp.o.d"
  "/root/repo/src/frieda/run.cpp" "src/frieda/CMakeFiles/frieda_core.dir/run.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/run.cpp.o.d"
  "/root/repo/src/frieda/types.cpp" "src/frieda/CMakeFiles/frieda_core.dir/types.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/types.cpp.o.d"
  "/root/repo/src/frieda/workflow.cpp" "src/frieda/CMakeFiles/frieda_core.dir/workflow.cpp.o" "gcc" "src/frieda/CMakeFiles/frieda_core.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/frieda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frieda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/frieda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/frieda_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/frieda_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
