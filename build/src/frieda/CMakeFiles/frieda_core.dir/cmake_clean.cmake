file(REMOVE_RECURSE
  "CMakeFiles/frieda_core.dir/adaptive.cpp.o"
  "CMakeFiles/frieda_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/frieda_core.dir/assignment.cpp.o"
  "CMakeFiles/frieda_core.dir/assignment.cpp.o.d"
  "CMakeFiles/frieda_core.dir/command.cpp.o"
  "CMakeFiles/frieda_core.dir/command.cpp.o.d"
  "CMakeFiles/frieda_core.dir/partition.cpp.o"
  "CMakeFiles/frieda_core.dir/partition.cpp.o.d"
  "CMakeFiles/frieda_core.dir/protocol.cpp.o"
  "CMakeFiles/frieda_core.dir/protocol.cpp.o.d"
  "CMakeFiles/frieda_core.dir/report.cpp.o"
  "CMakeFiles/frieda_core.dir/report.cpp.o.d"
  "CMakeFiles/frieda_core.dir/run.cpp.o"
  "CMakeFiles/frieda_core.dir/run.cpp.o.d"
  "CMakeFiles/frieda_core.dir/types.cpp.o"
  "CMakeFiles/frieda_core.dir/types.cpp.o.d"
  "CMakeFiles/frieda_core.dir/workflow.cpp.o"
  "CMakeFiles/frieda_core.dir/workflow.cpp.o.d"
  "libfrieda_core.a"
  "libfrieda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frieda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
