# Empty dependencies file for frieda_core.
# This may be replaced when dependencies are built.
