file(REMOVE_RECURSE
  "libfrieda_common.a"
)
