file(REMOVE_RECURSE
  "CMakeFiles/frieda_common.dir/config.cpp.o"
  "CMakeFiles/frieda_common.dir/config.cpp.o.d"
  "CMakeFiles/frieda_common.dir/csv.cpp.o"
  "CMakeFiles/frieda_common.dir/csv.cpp.o.d"
  "CMakeFiles/frieda_common.dir/log.cpp.o"
  "CMakeFiles/frieda_common.dir/log.cpp.o.d"
  "CMakeFiles/frieda_common.dir/rng.cpp.o"
  "CMakeFiles/frieda_common.dir/rng.cpp.o.d"
  "CMakeFiles/frieda_common.dir/stats.cpp.o"
  "CMakeFiles/frieda_common.dir/stats.cpp.o.d"
  "CMakeFiles/frieda_common.dir/string_util.cpp.o"
  "CMakeFiles/frieda_common.dir/string_util.cpp.o.d"
  "CMakeFiles/frieda_common.dir/table.cpp.o"
  "CMakeFiles/frieda_common.dir/table.cpp.o.d"
  "CMakeFiles/frieda_common.dir/timeline.cpp.o"
  "CMakeFiles/frieda_common.dir/timeline.cpp.o.d"
  "libfrieda_common.a"
  "libfrieda_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frieda_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
