# Empty dependencies file for frieda_common.
# This may be replaced when dependencies are built.
