file(REMOVE_RECURSE
  "libfrieda_net.a"
)
