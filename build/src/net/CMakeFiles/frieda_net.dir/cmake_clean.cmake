file(REMOVE_RECURSE
  "CMakeFiles/frieda_net.dir/fairshare.cpp.o"
  "CMakeFiles/frieda_net.dir/fairshare.cpp.o.d"
  "CMakeFiles/frieda_net.dir/network.cpp.o"
  "CMakeFiles/frieda_net.dir/network.cpp.o.d"
  "CMakeFiles/frieda_net.dir/topology.cpp.o"
  "CMakeFiles/frieda_net.dir/topology.cpp.o.d"
  "libfrieda_net.a"
  "libfrieda_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frieda_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
