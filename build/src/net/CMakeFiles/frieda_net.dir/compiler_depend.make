# Empty compiler generated dependencies file for frieda_net.
# This may be replaced when dependencies are built.
