file(REMOVE_RECURSE
  "CMakeFiles/elastic_pipeline.dir/elastic_pipeline.cpp.o"
  "CMakeFiles/elastic_pipeline.dir/elastic_pipeline.cpp.o.d"
  "elastic_pipeline"
  "elastic_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
