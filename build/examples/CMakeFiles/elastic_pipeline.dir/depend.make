# Empty dependencies file for elastic_pipeline.
# This may be replaced when dependencies are built.
