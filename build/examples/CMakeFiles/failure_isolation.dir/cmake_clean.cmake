file(REMOVE_RECURSE
  "CMakeFiles/failure_isolation.dir/failure_isolation.cpp.o"
  "CMakeFiles/failure_isolation.dir/failure_isolation.cpp.o.d"
  "failure_isolation"
  "failure_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
