# Empty dependencies file for failure_isolation.
# This may be replaced when dependencies are built.
