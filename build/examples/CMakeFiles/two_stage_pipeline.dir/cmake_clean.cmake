file(REMOVE_RECURSE
  "CMakeFiles/two_stage_pipeline.dir/two_stage_pipeline.cpp.o"
  "CMakeFiles/two_stage_pipeline.dir/two_stage_pipeline.cpp.o.d"
  "two_stage_pipeline"
  "two_stage_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_stage_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
