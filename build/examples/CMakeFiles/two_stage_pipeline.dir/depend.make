# Empty dependencies file for two_stage_pipeline.
# This may be replaced when dependencies are built.
