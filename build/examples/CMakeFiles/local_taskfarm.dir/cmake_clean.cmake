file(REMOVE_RECURSE
  "CMakeFiles/local_taskfarm.dir/local_taskfarm.cpp.o"
  "CMakeFiles/local_taskfarm.dir/local_taskfarm.cpp.o.d"
  "local_taskfarm"
  "local_taskfarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_taskfarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
