# Empty dependencies file for local_taskfarm.
# This may be replaced when dependencies are built.
