# Empty dependencies file for blast_screening.
# This may be replaced when dependencies are built.
