file(REMOVE_RECURSE
  "CMakeFiles/blast_screening.dir/blast_screening.cpp.o"
  "CMakeFiles/blast_screening.dir/blast_screening.cpp.o.d"
  "blast_screening"
  "blast_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
