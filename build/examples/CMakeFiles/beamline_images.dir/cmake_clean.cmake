file(REMOVE_RECURSE
  "CMakeFiles/beamline_images.dir/beamline_images.cpp.o"
  "CMakeFiles/beamline_images.dir/beamline_images.cpp.o.d"
  "beamline_images"
  "beamline_images.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beamline_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
