# Empty compiler generated dependencies file for beamline_images.
# This may be replaced when dependencies are built.
