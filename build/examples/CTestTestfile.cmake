# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blast_screening "/root/repo/build/examples/blast_screening" "0.05")
set_tests_properties(example_blast_screening PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_beamline_images "/root/repo/build/examples/beamline_images" "scale=0.05")
set_tests_properties(example_beamline_images PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_elastic_pipeline "/root/repo/build/examples/elastic_pipeline")
set_tests_properties(example_elastic_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_isolation "/root/repo/build/examples/failure_isolation")
set_tests_properties(example_failure_isolation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_two_stage_pipeline "/root/repo/build/examples/two_stage_pipeline")
set_tests_properties(example_two_stage_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_scenario "/root/repo/build/examples/run_scenario" "--demo")
set_tests_properties(example_run_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_local_taskfarm "/root/repo/build/examples/local_taskfarm" "8" "64" "2")
set_tests_properties(example_local_taskfarm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
