file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/test_config.cpp.o"
  "CMakeFiles/test_common.dir/test_config.cpp.o.d"
  "CMakeFiles/test_common.dir/test_csv_table.cpp.o"
  "CMakeFiles/test_common.dir/test_csv_table.cpp.o.d"
  "CMakeFiles/test_common.dir/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/test_strutil.cpp.o"
  "CMakeFiles/test_common.dir/test_strutil.cpp.o.d"
  "CMakeFiles/test_common.dir/test_units.cpp.o"
  "CMakeFiles/test_common.dir/test_units.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
