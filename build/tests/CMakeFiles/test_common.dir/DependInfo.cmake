
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/test_common.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_csv_table.cpp" "tests/CMakeFiles/test_common.dir/test_csv_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_csv_table.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/test_common.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/test_common.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strutil.cpp" "tests/CMakeFiles/test_common.dir/test_strutil.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_strutil.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/test_common.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/frieda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frieda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
