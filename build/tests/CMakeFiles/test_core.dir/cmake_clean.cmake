file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_assignment_adaptive.cpp.o"
  "CMakeFiles/test_core.dir/test_assignment_adaptive.cpp.o.d"
  "CMakeFiles/test_core.dir/test_command_protocol.cpp.o"
  "CMakeFiles/test_core.dir/test_command_protocol.cpp.o.d"
  "CMakeFiles/test_core.dir/test_partition.cpp.o"
  "CMakeFiles/test_core.dir/test_partition.cpp.o.d"
  "CMakeFiles/test_core.dir/test_timeline.cpp.o"
  "CMakeFiles/test_core.dir/test_timeline.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
