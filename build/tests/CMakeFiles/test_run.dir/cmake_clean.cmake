file(REMOVE_RECURSE
  "CMakeFiles/test_run.dir/test_failures_elasticity.cpp.o"
  "CMakeFiles/test_run.dir/test_failures_elasticity.cpp.o.d"
  "CMakeFiles/test_run.dir/test_run_edges.cpp.o"
  "CMakeFiles/test_run.dir/test_run_edges.cpp.o.d"
  "CMakeFiles/test_run.dir/test_run_integration.cpp.o"
  "CMakeFiles/test_run.dir/test_run_integration.cpp.o.d"
  "CMakeFiles/test_run.dir/test_run_properties.cpp.o"
  "CMakeFiles/test_run.dir/test_run_properties.cpp.o.d"
  "test_run"
  "test_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
