file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_channel.cpp.o"
  "CMakeFiles/test_sim.dir/test_channel.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_event_queue.cpp.o"
  "CMakeFiles/test_sim.dir/test_event_queue.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_simulation.cpp.o"
  "CMakeFiles/test_sim.dir/test_simulation.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sync.cpp.o"
  "CMakeFiles/test_sim.dir/test_sync.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
