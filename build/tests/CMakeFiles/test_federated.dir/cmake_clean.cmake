file(REMOVE_RECURSE
  "CMakeFiles/test_federated.dir/test_federated.cpp.o"
  "CMakeFiles/test_federated.dir/test_federated.cpp.o.d"
  "test_federated"
  "test_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
