// frieda-trace: offline trace analytics for exported Chrome-trace JSON.
//
// Loads a trace written by obs::Tracer::write_chrome_json (e.g. the
// trace_fig6a example or any driver run with tracing attached) and prints
// the time-attribution / critical-path report.
//
//   frieda-trace run.json                     # print the report
//   frieda-trace run.json --path 80           # show up to 80 path segments
//   frieda-trace run.json --gantt gantt.csv   # also export the utilization
//                                             # timeline CSV
//   frieda-trace run.json --path-csv path.csv # also export the path CSV
//   frieda-trace run.json --check             # validate analyzer invariants
//                                             # (exit 1 on violation; CI)
//   frieda-trace timeline run.json            # per-channel telemetry stats,
//                                             # ascii sparklines, SLO breaches
//   frieda-trace timeline run.json --width 80 # wider sparklines
//   frieda-trace timeline run.json --csv t.csv  # re-export the sampled
//                                             # series as channel,t_s,value
//
// --check asserts the properties the analyzer guarantees by construction:
// a non-empty critical path containing at least one real (non-wait) span,
// path durations summing to the makespan, and attribution categories
// summing to worker-seconds (percentages sum to 100 within 0.1).
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "obs/analysis.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--check] [--path N] [--gantt out.csv] "
               "[--path-csv out.csv]\n"
               "       %s timeline <trace.json> [--width N] [--csv out.csv]\n",
               argv0, argv0);
  return 2;
}

/// Strict non-negative integer parse for CLI counts (--path, --width):
/// full consumption, no sign, no range overflow — same contract as the
/// FRIEDA_SWEEP_PROGRESS interval parser, so a typo fails loudly instead of
/// silently becoming 0.
bool parse_count(const char* text, std::size_t& out) {
  if (text == nullptr || *text == '\0') return false;
  if (std::strchr(text, '-') != nullptr) return false;  // strtoul accepts "-1"
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  FRIEDA_CHECK(out.good(), "cannot open '" << path << "'");
  out << content;
  FRIEDA_CHECK(out.good(), "write to '" << path << "' failed");
}

/// The invariants CI asserts on every traced fig6a run.
int check(const frieda::obs::TraceAnalysis& a) {
  int failures = 0;
  const auto fail = [&failures](const char* what, double got, double want) {
    std::fprintf(stderr, "CHECK FAILED: %s (got %.9f, want %.9f)\n", what, got, want);
    ++failures;
  };

  if (!a.anchored) {
    std::fprintf(stderr, "CHECK FAILED: no run-anchor span (cat \"run\") in trace\n");
    ++failures;
  }
  if (a.makespan() <= 0.0) fail("makespan > 0", a.makespan(), 0.0);

  std::size_t real_segments = 0;
  for (const auto& seg : a.critical_path) real_segments += !seg.wait;
  if (a.critical_path.empty() || real_segments == 0) {
    std::fprintf(stderr,
                 "CHECK FAILED: critical path empty or wait-only (%zu segments, %zu real)\n",
                 a.critical_path.size(), real_segments);
    ++failures;
  }

  // Path tiles the run window: durations sum to the makespan.
  const double path_tol = 1e-6 * std::max(1.0, a.makespan());
  if (std::abs(a.critical_path_seconds() - a.makespan()) > path_tol) {
    fail("critical path sums to makespan", a.critical_path_seconds(), a.makespan());
  }

  // Attribution partitions worker-seconds: percentages sum to 100 +- 0.1.
  if (!a.workers.empty()) {
    const double pct = 100.0 * a.totals.total() / a.worker_seconds();
    if (std::abs(pct - 100.0) > 0.1) fail("attribution percentages sum to 100", pct, 100.0);
  } else {
    std::fprintf(stderr, "CHECK FAILED: no worker lanes found in trace\n");
    ++failures;
  }

  if (failures == 0) {
    std::printf("frieda-trace --check: all invariants hold (%zu events, %zu workers, "
                "makespan %.6f s)\n",
                a.events, a.workers.size(), a.makespan());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string gantt_path;
  std::string path_csv_path;
  std::string timeline_csv_path;
  std::size_t max_path_rows = 40;
  std::size_t spark_width = 60;
  bool do_check = false;
  bool do_timeline = false;

  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "timeline") == 0) {
    do_timeline = true;
    first = 2;
  }

  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (!do_timeline && std::strcmp(arg, "--check") == 0) {
      do_check = true;
    } else if (!do_timeline && std::strcmp(arg, "--path") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], max_path_rows)) {
        std::fprintf(stderr, "frieda-trace: --path expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (!do_timeline && std::strcmp(arg, "--gantt") == 0 && i + 1 < argc) {
      gantt_path = argv[++i];
    } else if (!do_timeline && std::strcmp(arg, "--path-csv") == 0 && i + 1 < argc) {
      path_csv_path = argv[++i];
    } else if (do_timeline && std::strcmp(arg, "--width") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], spark_width) || spark_width == 0) {
        std::fprintf(stderr, "frieda-trace: --width expects a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (do_timeline && std::strcmp(arg, "--csv") == 0 && i + 1 < argc) {
      timeline_csv_path = argv[++i];
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (trace_path.empty()) return usage(argv[0]);

  try {
    const auto events = frieda::obs::read_chrome_trace(trace_path);
    const auto analysis = frieda::obs::TraceAnalyzer::analyze(events);
    if (do_timeline) {
      if (!timeline_csv_path.empty()) {
        write_file(timeline_csv_path, analysis.telemetry.series.csv());
      }
      std::fputs(frieda::obs::render_timeline(analysis, spark_width).c_str(), stdout);
      return 0;
    }
    if (!gantt_path.empty()) write_file(gantt_path, frieda::obs::gantt_csv(analysis));
    if (!path_csv_path.empty()) {
      write_file(path_csv_path, frieda::obs::critical_path_csv(analysis));
    }
    if (do_check) return check(analysis);
    std::fputs(frieda::obs::render_report(analysis, max_path_rows).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "frieda-trace: %s\n", e.what());
    return 1;
  }
  return 0;
}
