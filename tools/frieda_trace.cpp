// frieda-trace: offline trace analytics for exported Chrome-trace JSON.
//
// Loads a trace written by obs::Tracer::write_chrome_json (e.g. the
// trace_fig6a example or any driver run with tracing attached) and prints
// the time-attribution / critical-path report.
//
//   frieda-trace run.json                     # print the report
//   frieda-trace run.json --path 80           # show up to 80 path segments
//   frieda-trace run.json --gantt gantt.csv   # also export the utilization
//                                             # timeline CSV
//   frieda-trace run.json --path-csv path.csv # also export the path CSV
//   frieda-trace run.json --check             # validate analyzer invariants
//                                             # (exit 1 on violation; CI)
//
// --check asserts the properties the analyzer guarantees by construction:
// a non-empty critical path containing at least one real (non-wait) span,
// path durations summing to the makespan, and attribution categories
// summing to worker-seconds (percentages sum to 100 within 0.1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "obs/analysis.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--check] [--path N] [--gantt out.csv] "
               "[--path-csv out.csv]\n",
               argv0);
  return 2;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  FRIEDA_CHECK(out.good(), "cannot open '" << path << "'");
  out << content;
  FRIEDA_CHECK(out.good(), "write to '" << path << "' failed");
}

/// The invariants CI asserts on every traced fig6a run.
int check(const frieda::obs::TraceAnalysis& a) {
  int failures = 0;
  const auto fail = [&failures](const char* what, double got, double want) {
    std::fprintf(stderr, "CHECK FAILED: %s (got %.9f, want %.9f)\n", what, got, want);
    ++failures;
  };

  if (!a.anchored) {
    std::fprintf(stderr, "CHECK FAILED: no run-anchor span (cat \"run\") in trace\n");
    ++failures;
  }
  if (a.makespan() <= 0.0) fail("makespan > 0", a.makespan(), 0.0);

  std::size_t real_segments = 0;
  for (const auto& seg : a.critical_path) real_segments += !seg.wait;
  if (a.critical_path.empty() || real_segments == 0) {
    std::fprintf(stderr,
                 "CHECK FAILED: critical path empty or wait-only (%zu segments, %zu real)\n",
                 a.critical_path.size(), real_segments);
    ++failures;
  }

  // Path tiles the run window: durations sum to the makespan.
  const double path_tol = 1e-6 * std::max(1.0, a.makespan());
  if (std::abs(a.critical_path_seconds() - a.makespan()) > path_tol) {
    fail("critical path sums to makespan", a.critical_path_seconds(), a.makespan());
  }

  // Attribution partitions worker-seconds: percentages sum to 100 +- 0.1.
  if (!a.workers.empty()) {
    const double pct = 100.0 * a.totals.total() / a.worker_seconds();
    if (std::abs(pct - 100.0) > 0.1) fail("attribution percentages sum to 100", pct, 100.0);
  } else {
    std::fprintf(stderr, "CHECK FAILED: no worker lanes found in trace\n");
    ++failures;
  }

  if (failures == 0) {
    std::printf("frieda-trace --check: all invariants hold (%zu events, %zu workers, "
                "makespan %.6f s)\n",
                a.events, a.workers.size(), a.makespan());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string gantt_path;
  std::string path_csv_path;
  std::size_t max_path_rows = 40;
  bool do_check = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      do_check = true;
    } else if (std::strcmp(arg, "--path") == 0 && i + 1 < argc) {
      max_path_rows = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--gantt") == 0 && i + 1 < argc) {
      gantt_path = argv[++i];
    } else if (std::strcmp(arg, "--path-csv") == 0 && i + 1 < argc) {
      path_csv_path = argv[++i];
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (trace_path.empty()) return usage(argv[0]);

  try {
    const auto events = frieda::obs::read_chrome_trace(trace_path);
    const auto analysis = frieda::obs::TraceAnalyzer::analyze(events);
    if (!gantt_path.empty()) write_file(gantt_path, frieda::obs::gantt_csv(analysis));
    if (!path_csv_path.empty()) {
      write_file(path_csv_path, frieda::obs::critical_path_csv(analysis));
    }
    if (do_check) return check(analysis);
    std::fputs(frieda::obs::render_report(analysis, max_path_rows).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "frieda-trace: %s\n", e.what());
    return 1;
  }
  return 0;
}
