// Awaitable message channel for coroutine processes.
//
// Channel<T> models the communication links of Figures 2–4 in the paper:
// controller→master configuration, worker→master data requests, and
// master→worker work dispatch.  Semantics follow Go channels with close:
//
//   * send() suspends while the buffer is full (bounded channels);
//   * recv() suspends while the buffer is empty and the channel is open;
//   * close() wakes every blocked receiver with nullopt and every blocked
//     sender with false; buffered items already sent are still delivered;
//   * recv_until(deadline) additionally resumes with nullopt at `deadline`
//     if nothing arrived — used for failure-detection timeouts.
//
// Delivery wake-ups go through the event queue for deterministic FIFO order.
#pragma once

#include <coroutine>
#include <deque>
#include <limits>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace frieda::sim {

/// Buffered, awaitable, closable SPSC/MPMC channel (any number of tasks may
/// send or receive; ordering among same-time operations is FIFO).
template <typename T>
class Channel {
 public:
  /// Construct with a buffer capacity (default: effectively unbounded).
  explicit Channel(Simulation& sim,
                   std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : sim_(sim), capacity_(capacity) {
    FRIEDA_CHECK(capacity_ > 0, "channel capacity must be > 0");
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Number of buffered items.
  std::size_t size() const { return buffer_.size(); }

  /// True once close() has been called.
  bool closed() const { return closed_; }

  /// Non-blocking send; returns false when the channel is closed or full.
  bool try_send(T value) {
    if (closed_) return false;
    if (deliver_to_waiting_receiver(value)) return true;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(value));
      return true;
    }
    return false;
  }

  /// Awaitable send.  Resumes with true once the value was delivered or
  /// buffered, false if the channel closed first.
  ///
  /// NOTE: construct the message into a *named* local and pass it with
  /// std::move().  GCC 12 miscompiles non-trivial conversion temporaries
  /// materialized as call arguments inside co_await expressions (the
  /// temporary's payload is double-destroyed), so this API deliberately
  /// takes an rvalue reference instead of a by-value parameter.
  auto send(T&& value) {
    struct Awaiter {
      Channel& ch;
      T value;
      std::shared_ptr<typename Channel::SendNode> node;
      bool immediate_ok = false;

      bool await_ready() {
        if (ch.closed_) return true;  // immediate_ok stays false
        if (ch.deliver_to_waiting_receiver(value)) {
          immediate_ok = true;
          return true;
        }
        if (ch.buffer_.size() < ch.capacity_) {
          ch.buffer_.push_back(std::move(value));
          immediate_ok = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        node = std::make_shared<typename Channel::SendNode>();
        node->handle = h;
        node->value = std::move(value);
        ch.send_waiters_.push_back(node);
      }
      bool await_resume() {
        if (node) return node->accepted;
        return immediate_ok;
      }
    };
    return Awaiter{*this, std::move(value), nullptr};
  }

  /// Awaitable receive; resumes with a value, or nullopt once the channel is
  /// closed and drained.
  auto recv() { return RecvAwaiter{*this, std::nullopt, std::nullopt, nullptr}; }

  /// Awaitable receive with an absolute-time deadline; resumes with nullopt
  /// at `deadline` if nothing was delivered by then (channel stays usable).
  auto recv_until(SimTime deadline) {
    return RecvAwaiter{*this, deadline, std::nullopt, nullptr};
  }

  /// Close the channel: wakes blocked receivers (nullopt after drain) and
  /// blocked senders (false).  Idempotent.
  void close() {
    if (closed_) return;
    closed_ = true;
    for (auto& node : recv_waiters_) {
      if (node->fired) continue;
      node->fired = true;
      cancel_timer(*node);
      auto h = node->handle;
      sim_.schedule_in(0.0, [h] { h.resume(); });
    }
    recv_waiters_.clear();
    for (auto& node : send_waiters_) {
      if (node->fired) continue;
      node->fired = true;
      node->accepted = false;
      auto h = node->handle;
      sim_.schedule_in(0.0, [h] { h.resume(); });
    }
    send_waiters_.clear();
  }

 private:
  struct RecvNode {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
    bool fired = false;
    EventQueue::Handle timer;
  };
  struct SendNode {
    std::coroutine_handle<> handle;
    std::optional<T> value;
    bool fired = false;
    bool accepted = false;
  };

  struct RecvAwaiter {
    Channel& ch;
    std::optional<SimTime> deadline;
    std::optional<T> result;
    std::shared_ptr<RecvNode> node;

    bool await_ready() {
      if (!ch.buffer_.empty()) {
        result = std::move(ch.buffer_.front());
        ch.buffer_.pop_front();
        ch.admit_waiting_sender();
        return true;
      }
      if (ch.closed_) return true;  // -> nullopt
      if (deadline && *deadline <= ch.sim_.now()) return true;  // immediate timeout
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      node = std::make_shared<RecvNode>();
      node->handle = h;
      if (deadline) {
        auto weak = std::weak_ptr<RecvNode>(node);
        Channel* chp = &ch;
        node->timer = ch.sim_.schedule_at(*deadline, [weak, chp] {
          if (auto n = weak.lock(); n && !n->fired) {
            n->fired = true;
            chp->drop_recv_waiter(n.get());
            auto h = n->handle;
            h.resume();
          }
        });
      }
      ch.recv_waiters_.push_back(node);
    }
    std::optional<T> await_resume() {
      if (node) return std::move(node->slot);
      return std::move(result);
    }
  };

  void cancel_timer(RecvNode& node) {
    if (node.timer.pending()) sim_.cancel(node.timer);
  }

  void drop_recv_waiter(const RecvNode* node) {
    for (auto it = recv_waiters_.begin(); it != recv_waiters_.end(); ++it) {
      if (it->get() == node) {
        recv_waiters_.erase(it);
        return;
      }
    }
  }

  /// Try to hand `value` directly to the oldest live waiting receiver.
  bool deliver_to_waiting_receiver(T& value) {
    while (!recv_waiters_.empty()) {
      auto node = recv_waiters_.front();
      recv_waiters_.pop_front();
      if (node->fired) continue;
      node->fired = true;
      cancel_timer(*node);
      node->slot = std::move(value);
      auto h = node->handle;
      sim_.schedule_in(0.0, [h] { h.resume(); });
      return true;
    }
    return false;
  }

  /// After a buffered item was consumed, move a blocked sender's value in.
  void admit_waiting_sender() {
    while (!send_waiters_.empty() && buffer_.size() < capacity_) {
      auto node = send_waiters_.front();
      send_waiters_.pop_front();
      if (node->fired) continue;
      node->fired = true;
      node->accepted = true;
      buffer_.push_back(std::move(*node->value));
      auto h = node->handle;
      sim_.schedule_in(0.0, [h] { h.resume(); });
    }
  }

  Simulation& sim_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> buffer_;
  std::deque<std::shared_ptr<RecvNode>> recv_waiters_;
  std::deque<std::shared_ptr<SendNode>> send_waiters_;
};

}  // namespace frieda::sim
