#include "sim/sync.hpp"

#include "common/error.hpp"

namespace frieda::sim {

void Signal::trigger() {
  if (triggered_) return;
  triggered_ = true;
  std::deque<std::coroutine_handle<>> waiters;
  waiters.swap(waiters_);
  for (auto h : waiters) {
    sim_.schedule_in(0.0, [h] { h.resume(); });
  }
}

Semaphore::Semaphore(Simulation& sim, std::int64_t permits) : sim_(sim), permits_(permits) {
  FRIEDA_CHECK(permits >= 0, "semaphore permits must be >= 0");
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_.schedule_in(0.0, [h] { h.resume(); });
  } else {
    ++permits_;
  }
}

void WaitGroup::add(std::int64_t n) {
  FRIEDA_CHECK(n >= 0, "WaitGroup::add of negative count");
  count_ += n;
}

void WaitGroup::done() {
  FRIEDA_CHECK(count_ > 0, "WaitGroup::done below zero");
  --count_;
  if (count_ == 0) {
    std::deque<std::coroutine_handle<>> waiters;
    waiters.swap(waiters_);
    for (auto h : waiters) {
      sim_.schedule_in(0.0, [h] { h.resume(); });
    }
  }
}

}  // namespace frieda::sim
