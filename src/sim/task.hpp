// Coroutine task type for simulation processes.
//
// sim::Task<T> is a lazily-started coroutine: nothing runs until the task is
// either co_awaited by another task (it then starts immediately via symmetric
// transfer and resumes the awaiter on completion) or spawned as a root
// process on a Simulation (it is then resumed from the event loop).
//
// Ownership: the Task object owns the coroutine frame (RAII).  Awaiting a
// task keeps it alive in the awaiting frame; spawning moves it into the
// Simulation's root registry, which destroys it after completion.
//
// Exceptions thrown inside a task propagate to the awaiter; exceptions that
// escape a *root* task abort the simulation run() with the stored error.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

namespace frieda::sim {

namespace detail {

/// Storage + return hook for non-void task results.
template <typename T>
struct TaskPromiseStorage {
  std::optional<T> value;
  void return_value(T v) { value.emplace(std::move(v)); }
  T take_value() { return std::move(*value); }
};

/// Storage + return hook for void tasks.
template <>
struct TaskPromiseStorage<void> {
  void return_void() {}
  void take_value() {}
};

}  // namespace detail

/// Lazily-started coroutine returning T.  Move-only.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using handle_type = std::coroutine_handle<promise_type>;

  struct promise_type : detail::TaskPromiseStorage<T> {
    std::coroutine_handle<> continuation{};
    std::function<void()> on_done{};  // set only for spawned root tasks
    std::exception_ptr exception{};

    Task get_return_object() { return Task(handle_type::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(handle_type h) noexcept {
        auto& p = h.promise();
        if (p.continuation) return p.continuation;
        if (p.on_done) p.on_done();
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// True when a coroutine frame is attached.
  bool valid() const { return handle_ != nullptr; }

  /// True when the coroutine ran to completion.
  bool done() const { return handle_ && handle_.done(); }

  /// Underlying handle (used by Simulation::spawn).
  handle_type handle() const { return handle_; }

  /// Awaiting a task starts it immediately (symmetric transfer) and resumes
  /// the awaiter when it completes, yielding its value or rethrowing.
  auto operator co_await() noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return h.promise().take_value();
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(handle_type h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  handle_type handle_ = nullptr;
};

}  // namespace frieda::sim
