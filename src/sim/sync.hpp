// Coroutine synchronization primitives for the simulator.
//
// All wake-ups go through the simulation's event queue (never direct
// resumption inside the notifier), which bounds stack depth and keeps
// same-time ordering deterministic and FIFO.
//
// Lifetime rule: primitives must outlive every task suspended on them.  In
// practice they live in scenario objects that outlive Simulation::run().
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/simulation.hpp"

namespace frieda::sim {

/// One-shot broadcast signal: tasks wait() until some task calls trigger().
/// Waiting on an already-triggered signal completes immediately.
class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(sim) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// True once trigger() has been called.
  bool triggered() const { return triggered_; }

  /// Fire the signal, waking all current waiters; idempotent.
  void trigger();

  /// Awaitable; resumes when the signal has been triggered.
  auto wait() {
    struct Awaiter {
      Signal& s;
      bool await_ready() const noexcept { return s.triggered_; }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  bool triggered_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO handoff semantics: release() wakes the
/// longest-waiting acquirer directly instead of incrementing the count, so
/// no later arrival can overtake it.
class Semaphore {
 public:
  /// Construct with the initial number of available permits.
  Semaphore(Simulation& sim, std::int64_t permits);
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Currently available permits.
  std::int64_t available() const { return permits_; }

  /// Number of tasks blocked in acquire().
  std::size_t waiting() const { return waiters_.size(); }

  /// Awaitable; resumes once a permit has been granted to this task.
  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() const noexcept {
        if (s.permits_ > 0) {
          --s.permits_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Return a permit; hands it to the oldest waiter if any.
  void release();

 private:
  Simulation& sim_;
  std::int64_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Completion counter: add(n) registers pending work, done() retires one
/// unit, wait() resumes once the count reaches zero.  The count may grow
/// again after reaching zero; wait() observes the instantaneous state.
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(sim) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  /// Register `n` additional units of pending work.
  void add(std::int64_t n = 1);

  /// Retire one unit; wakes waiters when the count reaches zero.
  void done();

  /// Outstanding count.
  std::int64_t count() const { return count_; }

  /// Awaitable; resumes when the count is zero.
  auto wait() {
    struct Awaiter {
      WaitGroup& wg;
      bool await_ready() const noexcept { return wg.count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) { wg.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  std::int64_t count_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace frieda::sim
