#include "sim/simulation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace frieda::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

Simulation::~Simulation() = default;

EventQueue::Handle Simulation::schedule_at(SimTime t, EventQueue::Callback fn) {
  return queue_.push(std::max(t, now_), std::move(fn));
}

EventQueue::Handle Simulation::schedule_in(SimTime dt, EventQueue::Callback fn) {
  return queue_.push(now_ + std::max(dt, 0.0), std::move(fn));
}

void Simulation::cancel(EventQueue::Handle& h) { queue_.cancel(h); }

void Simulation::spawn(Task<> task, std::string name) {
  FRIEDA_CHECK(task.valid(), "spawn of an empty task");
  const std::uint64_t id = next_root_id_++;
  auto [it, inserted] = roots_.emplace(id, Root{std::move(task), std::move(name)});
  FRIEDA_CHECK(inserted, "duplicate root id");
  auto handle = it->second.task.handle();
  handle.promise().on_done = [this, id] { finished_roots_.push_back(id); };
  schedule_in(0.0, [handle] {
    if (!handle.done()) handle.resume();
  });
}

void Simulation::dispatch_one() {
  auto [t, fn] = queue_.pop();
  now_ = t;
  ++events_processed_;
  fn();
  collect_finished_roots();
}

void Simulation::collect_finished_roots() {
  while (!finished_roots_.empty()) {
    const std::uint64_t id = finished_roots_.back();
    finished_roots_.pop_back();
    auto it = roots_.find(id);
    if (it == roots_.end()) continue;
    auto& promise = it->second.task.handle().promise();
    if (promise.exception && !first_error_) {
      first_error_ = promise.exception;
      FLOG(kError, "sim", "root process '" << it->second.name << "' terminated with an exception");
      stopped_ = true;
    }
    roots_.erase(it);
  }
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) dispatch_one();
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool Simulation::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) dispatch_one();
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  now_ = std::max(now_, t);
  return !queue_.empty();
}

}  // namespace frieda::sim
