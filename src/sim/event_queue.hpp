// Time-ordered event queue for the discrete-event simulator.
//
// Events are ordered by (timestamp, insertion sequence), which makes
// same-time events FIFO and the whole simulation deterministic.  Cancellation
// is lazy: a cancelled event stays in the heap as a tombstone and is skipped
// on pop, which keeps cancel() O(1) — important because the flow-level
// network model cancels and reschedules completion events on every flow
// arrival/departure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace frieda::sim {

/// Min-heap of timestamped callbacks with stable FIFO ordering at equal times.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Cancellation handle for a scheduled event.  Default-constructed handles
  /// are inert; handles may outlive the queue.
  class Handle {
   public:
    Handle() = default;

    /// True when this handle refers to an event that has neither fired nor
    /// been cancelled.
    bool pending() const { return node_ && !node_->cancelled && !node_->fired; }

   private:
    friend class EventQueue;
    struct Node {
      SimTime time = 0.0;
      std::uint64_t seq = 0;
      Callback fn;
      bool cancelled = false;
      bool fired = false;
    };
    explicit Handle(std::shared_ptr<Node> node) : node_(std::move(node)) {}
    std::shared_ptr<Node> node_;
  };

  /// Schedule `fn` at absolute time `t` (must be >= the last popped time;
  /// enforced by the Simulation wrapper, not here).
  Handle push(SimTime t, Callback fn);

  /// Cancel a scheduled event; no-op if it already fired or was cancelled.
  void cancel(Handle& h);

  /// True when no live (non-cancelled) events remain.
  bool empty();

  /// Timestamp of the next live event.  Requires !empty().
  SimTime next_time();

  /// Pop and return the next live event's (time, callback).
  /// Requires !empty().
  std::pair<SimTime, Callback> pop();

  /// Number of live events (linear scan-free approximation is impossible with
  /// tombstones, so this counts pushes minus fires minus cancels).
  std::size_t size() const { return live_; }

 private:
  using NodePtr = std::shared_ptr<Handle::Node>;
  struct Later {
    bool operator()(const NodePtr& a, const NodePtr& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };
  void purge_cancelled_top();

  std::priority_queue<NodePtr, std::vector<NodePtr>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace frieda::sim
