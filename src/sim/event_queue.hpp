// Time-ordered event queue for the discrete-event simulator.
//
// Events are ordered by (timestamp, insertion sequence), which makes
// same-time events FIFO and the whole simulation deterministic.  Cancellation
// is lazy: a cancelled event leaves a tombstone entry in the heap that is
// skipped on pop, which keeps cancel() O(1) — important because the
// flow-level network model cancels and reschedules completion events on
// every flow arrival/departure.
//
// Storage is a slab of pooled event slots addressed by (index, generation)
// handles.  Slots are recycled through an intrusive free list, so push/
// cancel/pop perform no per-event heap allocation once the slab and the heap
// vector have reached their high-water capacity (callbacks with captures
// small enough for std::function's inline buffer stay allocation-free too).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace frieda::sim {

/// Min-heap of timestamped callbacks with stable FIFO ordering at equal times.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Cancellation handle for a scheduled event: a (slot, generation) ticket
  /// into the queue's slab.  Default-constructed handles are inert.  Handles
  /// are trivially destructible, so destroying one after the queue is gone is
  /// fine, but pending() must not be called once the queue is destroyed.
  class Handle {
   public:
    Handle() = default;

    /// True when this handle refers to an event that has neither fired nor
    /// been cancelled.
    bool pending() const;

   private:
    friend class EventQueue;
    Handle(const EventQueue* queue, std::uint32_t slot, std::uint32_t gen)
        : queue_(queue), slot_(slot), gen_(gen) {}
    const EventQueue* queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  /// Schedule `fn` at absolute time `t` (must be >= the last popped time;
  /// enforced by the Simulation wrapper, not here).
  Handle push(SimTime t, Callback fn);

  /// Cancel a scheduled event; no-op if it already fired or was cancelled.
  void cancel(Handle& h);

  /// True when no live (non-cancelled) events remain.
  bool empty() const;

  /// Timestamp of the next live event.  Requires !empty().
  SimTime next_time() const;

  /// Pop and return the next live event's (time, callback).
  /// Requires !empty().
  std::pair<SimTime, Callback> pop();

  /// Number of live events.  The tombstone design keeps this exact without a
  /// scan: every push increments the count and every fire or cancel
  /// decrements it, while tombstones left in the heap are already excluded.
  std::size_t size() const { return live_; }

  /// Lifetime activity counters (always on: four unconditional integer
  /// increments per event are in the measurement noise of the engine
  /// benchmarks).  The obs layer snapshots these into a MetricsRegistry.
  struct Counters {
    std::uint64_t scheduled = 0;     ///< push() calls
    std::uint64_t cancelled = 0;     ///< effective cancels (pending events)
    std::uint64_t fired = 0;         ///< pop() calls
    std::uint64_t slots_reused = 0;  ///< slab slots recycled via the free list
  };

  /// Lifetime activity so far.
  const Counters& counters() const { return counters_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// Pooled event state; recycled via the free list.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;        ///< bumped on fire/cancel to invalidate handles
    std::uint32_t next_free = kNilSlot;
    bool live = false;            ///< scheduled and neither fired nor cancelled
  };
  /// Heap entries are value copies of the ordering key plus the slab ticket;
  /// an entry whose generation no longer matches its slot is a tombstone.
  struct HeapEntry {
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool slot_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slots_.size() && slots_[slot].live && slots_[slot].gen == gen;
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  // Dropping tombstones off the top doesn't change the observable state, so
  // const queries may purge.
  void purge_cancelled_top() const;

  mutable std::vector<HeapEntry> heap_;  ///< binary heap ordered by Later
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  Counters counters_;

  friend class Handle;
};

inline bool EventQueue::Handle::pending() const {
  return queue_ != nullptr && queue_->slot_pending(slot_, gen_);
}

}  // namespace frieda::sim
