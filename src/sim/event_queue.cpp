#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace frieda::sim {

EventQueue::Handle EventQueue::push(SimTime t, Callback fn) {
  auto node = std::make_shared<Handle::Node>();
  node->time = t;
  node->seq = next_seq_++;
  node->fn = std::move(fn);
  heap_.push(node);
  ++live_;
  return Handle(node);
}

void EventQueue::cancel(Handle& h) {
  if (h.node_ && !h.node_->cancelled && !h.node_->fired) {
    h.node_->cancelled = true;
    h.node_->fn = nullptr;  // release captured state eagerly
    --live_;
  }
  h.node_.reset();
}

void EventQueue::purge_cancelled_top() {
  while (!heap_.empty() && heap_.top()->cancelled) heap_.pop();
}

bool EventQueue::empty() {
  purge_cancelled_top();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  FRIEDA_CHECK(!empty(), "next_time() on empty event queue");
  return heap_.top()->time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  FRIEDA_CHECK(!empty(), "pop() on empty event queue");
  NodePtr node = heap_.top();
  heap_.pop();
  node->fired = true;
  --live_;
  return {node->time, std::move(node->fn)};
}

}  // namespace frieda::sim
