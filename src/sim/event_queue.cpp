#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace frieda::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNilSlot;
    ++counters_.slots_reused;
    return slot;
  }
  FRIEDA_CHECK(slots_.size() < kNilSlot, "event queue slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  ++s.gen;  // invalidates outstanding handles and heap tombstones
  s.next_free = free_head_;
  free_head_ = slot;
}

EventQueue::Handle EventQueue::push(SimTime t, Callback fn) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  heap_.push_back(HeapEntry{t, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  ++counters_.scheduled;
  return Handle(this, slot, s.gen);
}

void EventQueue::cancel(Handle& h) {
  if (h.queue_ == this && slot_pending(h.slot_, h.gen_)) {
    slots_[h.slot_].fn = nullptr;  // release captured state eagerly
    release_slot(h.slot_);         // heap entry becomes a tombstone
    --live_;
    ++counters_.cancelled;
  }
  h.queue_ = nullptr;
}

void EventQueue::purge_cancelled_top() const {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (slots_[top.slot].live && slots_[top.slot].gen == top.gen) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  purge_cancelled_top();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  FRIEDA_CHECK(!empty(), "next_time() on empty event queue");
  return heap_.front().time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  FRIEDA_CHECK(!empty(), "pop() on empty event queue");
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Callback fn = std::move(slots_[top.slot].fn);
  slots_[top.slot].fn = nullptr;
  release_slot(top.slot);
  --live_;
  ++counters_.fired;
  return {top.time, std::move(fn)};
}

}  // namespace frieda::sim
