// The simulation kernel: virtual clock, event loop, and process spawning.
//
// A Simulation owns an EventQueue and a registry of root coroutine processes.
// All wake-ups in the system (delays, channel deliveries, signal triggers)
// are funneled through the event queue, so same-time events execute in FIFO
// order and every run is deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"

namespace frieda::sim {

/// Discrete-event simulation context.
class Simulation {
 public:
  /// Construct with the seed for the simulation-wide RNG stream.
  explicit Simulation(std::uint64_t seed = 42);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  /// Current virtual time in seconds.
  SimTime now() const { return now_; }

  /// Schedule a callback at absolute virtual time `t` (clamped to now()).
  EventQueue::Handle schedule_at(SimTime t, EventQueue::Callback fn);

  /// Schedule a callback `dt` seconds from now (dt clamped to >= 0).
  EventQueue::Handle schedule_in(SimTime dt, EventQueue::Callback fn);

  /// Cancel a previously scheduled callback.
  void cancel(EventQueue::Handle& h);

  /// Spawn a root process.  The task starts at the current time, runs
  /// concurrently with other processes, and is destroyed on completion.
  /// `name` appears in diagnostics.
  void spawn(Task<> task, std::string name = "proc");

  /// Run until the event queue drains or stop() is called.
  /// Rethrows the first exception that escaped a root process.
  void run();

  /// Run events with time <= t, then advance the clock to exactly t.
  /// Returns true if the queue still has pending events after t.
  bool run_until(SimTime t);

  /// Request that run() return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events dispatched so far.
  std::uint64_t events_processed() const { return events_processed_; }

  /// Event-queue activity counters (scheduled/cancelled/fired/pool reuse);
  /// snapshot these into an obs::MetricsRegistry for run reports.
  const EventQueue::Counters& event_counters() const { return queue_.counters(); }

  /// Number of live root processes.
  std::size_t live_processes() const { return roots_.size(); }

  /// Simulation-wide RNG (fork() it for per-component streams).
  Rng& rng() { return rng_; }

  /// Awaitable that resumes the current coroutine `dt` seconds later.
  /// delay(0) yields to the event loop (FIFO with same-time events).
  auto delay(SimTime dt) {
    struct DelayAwaiter {
      Simulation& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_in(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return DelayAwaiter{*this, dt};
  }

 private:
  void dispatch_one();
  void collect_finished_roots();

  EventQueue queue_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  Rng rng_;

  struct Root {
    Task<> task;
    std::string name;
  };
  std::uint64_t next_root_id_ = 0;
  std::unordered_map<std::uint64_t, Root> roots_;
  std::vector<std::uint64_t> finished_roots_;
  std::exception_ptr first_error_{};
};

}  // namespace frieda::sim
