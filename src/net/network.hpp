// Flow-level network simulation with max-min fair bandwidth sharing.
//
// A transfer is a fluid flow from a source node to a destination node.  At
// every flow arrival/departure the rates of all active flows are recomputed
// with the max-min fair solver and the single next-completion event is
// rescheduled.  This models TCP-like sharing of the paper's 100 Mbps
// provisioned links without per-packet simulation, which is exactly the
// granularity the evaluation observes (whole-file scp durations).
//
// Fast path: flows with the same (src, dst) endpoints traverse exactly the
// same resources, so they are coalesced into one weighted flow class and the
// solver runs over O(distinct classes) instead of O(flows) (see
// docs/performance.md).  Each class's constraint vector is computed once and
// cached against a monotonically increasing invalidation version (topology
// mutations + node failure/restore events); the capacity/constraint buffers
// are reused across recomputes instead of being rebuilt from scratch.
//
// Node failure support: fail_node() aborts every flow touching the node;
// the awaiting process resumes with TransferStatus::kFailed, mirroring a
// dropped scp connection when a VM disappears.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "net/fairshare.hpp"
#include "net/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace frieda::obs {
class Counter;
class MetricsRegistry;
class Tracer;
}  // namespace frieda::obs

namespace frieda::net {

/// Terminal status of a transfer.
enum class TransferStatus {
  kCompleted,  ///< all bytes delivered
  kFailed,     ///< a participating node failed mid-flight
};

/// Result handed back to the process that awaited the transfer.
struct TransferResult {
  TransferStatus status = TransferStatus::kCompleted;
  Bytes requested = 0;     ///< bytes asked for
  Bytes transferred = 0;   ///< bytes actually moved before completion/failure
  SimTime started = 0.0;   ///< when the flow entered the network
  SimTime finished = 0.0;  ///< when it completed or was aborted

  /// Wall-clock duration of the flow.
  SimTime duration() const { return finished - started; }

  /// Convenience: completed successfully?
  bool ok() const { return status == TransferStatus::kCompleted; }
};

/// Aggregate per-node traffic accounting.
struct NodeTraffic {
  Bytes bytes_sent = 0;
  Bytes bytes_received = 0;
};

/// The network service.  One instance per simulation.
class Network {
 public:
  /// Construct over a topology.  `latency` is the per-transfer setup cost
  /// (connection establishment; the paper uses scp per file).  `loopback`
  /// is the rate for src==dst copies, which bypass the NIC.
  Network(sim::Simulation& sim, Topology topology, SimTime latency = 1e-3,
          Bandwidth loopback = gbps(10));

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The topology (mutable: elasticity adds nodes at runtime).
  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  /// Move `bytes` from `src` to `dst`; resumes when done or failed.
  ///
  /// `streams` > 1 splits the payload into that many parallel flows (the
  /// GridFTP-style striped transfer the paper lists as future work,
  /// Section II.C): each stream competes for fair share independently, so a
  /// striped transfer wins a larger fraction of a contended link.  Each
  /// stream pays the per-connection setup latency.
  sim::Task<TransferResult> transfer(NodeId src, NodeId dst, Bytes bytes,
                                     unsigned streams = 1);

  /// Abort all flows touching `node`; subsequent transfers to/from it fail
  /// immediately.  Mirrors a VM crash.
  void fail_node(NodeId node);

  /// Restore a previously failed node (re-provisioned replacement VM slot).
  void restore_node(NodeId node);

  /// True when the node has been failed.
  bool node_failed(NodeId node) const { return failed_nodes_.count(node) > 0; }

  /// Number of flows currently in the fluid model.
  std::size_t active_flows() const { return flows_.size(); }

  /// Number of distinct flow classes the solver currently runs over (streams
  /// and transfers sharing a (src, dst) pair coalesce into one class).
  std::size_t active_flow_classes() const { return active_classes_.size(); }

  /// Per-node accounting of completed traffic.
  NodeTraffic traffic(NodeId node) const;

  /// Total bytes moved by transfers (including partial bytes of failed ones).
  Bytes total_bytes_moved() const { return total_bytes_moved_; }

  /// Total number of transfers started.
  std::uint64_t transfers_started() const { return transfers_started_; }

  /// Time integral bookkeeping hook: called with every finished transfer,
  /// on every exit path (completed, failed at setup, failed mid-flight).
  void set_observer(std::function<void(NodeId src, NodeId dst, const TransferResult&)> obs) {
    observer_ = std::move(obs);
  }

  /// Attach a tracer for per-transfer flow spans (bytes, achieved rate,
  /// solver recompute count).  nullptr (the default) disables tracing; the
  /// hot path then only pays a pointer test.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a metrics registry; the network's counters (net.solver_invocations,
  /// net.flows_coalesced, net.bytes_moved, net.transfers, net.transfers_failed)
  /// are resolved once here and incremented by cached pointer afterwards.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Fluid-solver invocations so far (rate recomputes over active flows).
  std::uint64_t solver_invocations() const { return solves_; }

 private:
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    Bytes requested = 0;
    double remaining = 0.0;  // fractional bytes in the fluid model
    Bandwidth rate = 0.0;
    SimTime started = 0.0;
    std::uint32_t class_slot = 0;  // index into classes_
    TransferStatus status = TransferStatus::kCompleted;
    bool done = false;
    std::unique_ptr<sim::Signal> signal;
  };
  using FlowPtr = std::shared_ptr<Flow>;

  /// One coalesced (src, dst) flow class with its cached constraint vector.
  struct FlowClass {
    NodeId src = 0;
    NodeId dst = 0;
    std::vector<std::size_t> resources;  ///< persistent resource ids
    std::uint64_t cached_version = 0;    ///< invalidation stamp for `resources`
    bool cached = false;
    // Per-solve state (valid when epoch == solve_epoch_).
    std::uint64_t epoch = 0;
    std::uint64_t live = 0;   ///< live flows in this class this solve
    std::uint32_t order = 0;  ///< dense class index this solve
  };

  void advance_flows();    // progress remaining bytes to sim.now()
  void recompute_rates();  // solve max-min and reschedule completion event
  void complete_flow(const FlowPtr& flow, TransferStatus status);
  /// Close out a transfer on any exit path; `solves_at_start` dates the
  /// transfer's entry for the trace span's recompute count.
  void finish_transfer(NodeId src, NodeId dst, TransferResult& result,
                       std::uint64_t solves_at_start);

  /// Invalidation stamp: changes whenever the topology mutates or a node
  /// fails / is restored.
  std::uint64_t invalidation_version() const {
    return topology_.version() + failure_version_;
  }
  std::uint32_t class_for(NodeId src, NodeId dst);
  std::size_t resource_id(std::uint64_t key, Bandwidth cap);
  void rebuild_class_resources(FlowClass& cls);

  sim::Simulation& sim_;
  Topology topology_;
  SimTime latency_;
  Bandwidth loopback_;

  std::vector<FlowPtr> flows_;
  SimTime last_advance_ = 0.0;
  sim::EventQueue::Handle completion_event_;
  std::unordered_set<NodeId> failed_nodes_;
  std::uint64_t failure_version_ = 0;

  // ---- flow-class registry ----
  std::vector<FlowClass> classes_;
  std::unordered_map<std::uint64_t, std::uint32_t> class_of_pair_;  // packed (src,dst)
  std::uint64_t solve_epoch_ = 0;

  // ---- persistent resource registry (rebuilt on invalidation) ----
  std::unordered_map<std::uint64_t, std::size_t> resource_ids_;
  std::vector<Bandwidth> resource_caps_;
  std::uint64_t resources_version_ = 0;
  bool resources_valid_ = false;

  // ---- reusable solver buffers ----
  std::vector<std::uint32_t> active_classes_;   ///< class slots, first-flow order
  std::vector<std::size_t> resource_dense_;     ///< persistent id -> dense index
  std::vector<std::uint64_t> resource_epoch_;   ///< stamp for resource_dense_
  std::vector<Bandwidth> dense_caps_;           ///< solver capacities
  std::vector<WeightedFlowConstraints> solver_classes_;  ///< grow-only
  std::vector<Bandwidth> class_rates_;
  FairshareScratch fair_scratch_;

  std::unordered_map<NodeId, NodeTraffic> traffic_;
  Bytes total_bytes_moved_ = 0;
  std::uint64_t transfers_started_ = 0;
  std::uint64_t solves_ = 0;  ///< fluid-solver invocations (always counted)
  std::function<void(NodeId, NodeId, const TransferResult&)> observer_;

  // ---- observability taps (null = disabled; see docs/observability.md) ----
  obs::Tracer* tracer_ = nullptr;
  struct {
    obs::Counter* solver_invocations = nullptr;
    obs::Counter* flows_coalesced = nullptr;
    obs::Counter* bytes_moved = nullptr;
    obs::Counter* transfers = nullptr;
    obs::Counter* transfers_failed = nullptr;
  } metrics_;
};

}  // namespace frieda::net
