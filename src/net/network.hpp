// Flow-level network simulation with max-min fair bandwidth sharing.
//
// A transfer is a fluid flow from a source node to a destination node.  At
// every flow arrival/departure the rates of all active flows are recomputed
// with the max-min fair solver and the single next-completion event is
// rescheduled.  This models TCP-like sharing of the paper's 100 Mbps
// provisioned links without per-packet simulation, which is exactly the
// granularity the evaluation observes (whole-file scp durations).
//
// Node failure support: fail_node() aborts every flow touching the node;
// the awaiting process resumes with TransferStatus::kFailed, mirroring a
// dropped scp connection when a VM disappears.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace frieda::net {

/// Terminal status of a transfer.
enum class TransferStatus {
  kCompleted,  ///< all bytes delivered
  kFailed,     ///< a participating node failed mid-flight
};

/// Result handed back to the process that awaited the transfer.
struct TransferResult {
  TransferStatus status = TransferStatus::kCompleted;
  Bytes requested = 0;     ///< bytes asked for
  Bytes transferred = 0;   ///< bytes actually moved before completion/failure
  SimTime started = 0.0;   ///< when the flow entered the network
  SimTime finished = 0.0;  ///< when it completed or was aborted

  /// Wall-clock duration of the flow.
  SimTime duration() const { return finished - started; }

  /// Convenience: completed successfully?
  bool ok() const { return status == TransferStatus::kCompleted; }
};

/// Aggregate per-node traffic accounting.
struct NodeTraffic {
  Bytes bytes_sent = 0;
  Bytes bytes_received = 0;
};

/// The network service.  One instance per simulation.
class Network {
 public:
  /// Construct over a topology.  `latency` is the per-transfer setup cost
  /// (connection establishment; the paper uses scp per file).  `loopback`
  /// is the rate for src==dst copies, which bypass the NIC.
  Network(sim::Simulation& sim, Topology topology, SimTime latency = 1e-3,
          Bandwidth loopback = gbps(10));

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The topology (mutable: elasticity adds nodes at runtime).
  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  /// Move `bytes` from `src` to `dst`; resumes when done or failed.
  ///
  /// `streams` > 1 splits the payload into that many parallel flows (the
  /// GridFTP-style striped transfer the paper lists as future work,
  /// Section II.C): each stream competes for fair share independently, so a
  /// striped transfer wins a larger fraction of a contended link.  Each
  /// stream pays the per-connection setup latency.
  sim::Task<TransferResult> transfer(NodeId src, NodeId dst, Bytes bytes,
                                     unsigned streams = 1);

  /// Abort all flows touching `node`; subsequent transfers to/from it fail
  /// immediately.  Mirrors a VM crash.
  void fail_node(NodeId node);

  /// Restore a previously failed node (re-provisioned replacement VM slot).
  void restore_node(NodeId node);

  /// True when the node has been failed.
  bool node_failed(NodeId node) const { return failed_nodes_.count(node) > 0; }

  /// Number of flows currently in the fluid model.
  std::size_t active_flows() const { return flows_.size(); }

  /// Per-node accounting of completed traffic.
  NodeTraffic traffic(NodeId node) const;

  /// Total bytes moved by completed transfers.
  Bytes total_bytes_moved() const { return total_bytes_moved_; }

  /// Total number of transfers started.
  std::uint64_t transfers_started() const { return transfers_started_; }

  /// Time integral bookkeeping hook: called with every finished transfer.
  void set_observer(std::function<void(NodeId src, NodeId dst, const TransferResult&)> obs) {
    observer_ = std::move(obs);
  }

 private:
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    Bytes requested = 0;
    double remaining = 0.0;  // fractional bytes in the fluid model
    Bandwidth rate = 0.0;
    SimTime started = 0.0;
    TransferStatus status = TransferStatus::kCompleted;
    bool done = false;
    std::unique_ptr<sim::Signal> signal;
  };
  using FlowPtr = std::shared_ptr<Flow>;

  void advance_flows();    // progress remaining bytes to sim.now()
  void recompute_rates();  // solve max-min and reschedule completion event
  void complete_flow(const FlowPtr& flow, TransferStatus status);

  sim::Simulation& sim_;
  Topology topology_;
  SimTime latency_;
  Bandwidth loopback_;

  std::vector<FlowPtr> flows_;
  SimTime last_advance_ = 0.0;
  sim::EventQueue::Handle completion_event_;
  std::unordered_set<NodeId> failed_nodes_;

  std::unordered_map<NodeId, NodeTraffic> traffic_;
  Bytes total_bytes_moved_ = 0;
  std::uint64_t transfers_started_ = 0;
  std::function<void(NodeId, NodeId, const TransferResult&)> observer_;
};

}  // namespace frieda::net
