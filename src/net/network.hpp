// Flow-level network simulation with max-min fair bandwidth sharing.
//
// A transfer is a fluid flow from a source node to a destination node.
// Flows with the same (src, dst) endpoints traverse exactly the same
// resources, so they are coalesced into one weighted flow class and the
// max-min solver runs over O(distinct classes) instead of O(flows).  This
// models TCP-like sharing of the paper's 100 Mbps provisioned links without
// per-packet simulation, which is exactly the granularity the evaluation
// observes (whole-file scp durations).
//
// The allocation is maintained *incrementally* between events (see
// docs/performance.md "Incremental re-solve and hierarchical topology").
// Every class keeps its solved per-flow rate, a cumulative work accumulator
// (bytes delivered per member flow, accrued lazily in O(1)), a min-heap of
// member flows keyed by completion work target, and its own next-completion
// event.  A flow arrival, departure or failure dirties only the connected
// component of classes reachable from the changed class across shared
// resources — max-min allocations decompose exactly over such components —
// so untouched classes keep their rates and their scheduled completion
// events without re-densification or re-solve.  Topology mutations and node
// failure/restore bump an invalidation version that forces one full solve.
//
// Node failure support: fail_node() aborts every flow touching the node;
// the awaiting process resumes with TransferStatus::kFailed, mirroring a
// dropped scp connection when a VM disappears.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "net/fairshare.hpp"
#include "net/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace frieda::obs {
class Counter;
class MetricsRegistry;
class Tracer;
}  // namespace frieda::obs

namespace frieda::net {

/// Terminal status of a transfer.
enum class TransferStatus {
  kCompleted,  ///< all bytes delivered
  kFailed,     ///< a participating node failed mid-flight
};

/// Result handed back to the process that awaited the transfer.
struct TransferResult {
  TransferStatus status = TransferStatus::kCompleted;
  Bytes requested = 0;     ///< bytes asked for
  Bytes transferred = 0;   ///< bytes actually moved before completion/failure
  SimTime started = 0.0;   ///< when the flow entered the network
  SimTime finished = 0.0;  ///< when it completed or was aborted

  /// Wall-clock duration of the flow.
  SimTime duration() const { return finished - started; }

  /// Convenience: completed successfully?
  bool ok() const { return status == TransferStatus::kCompleted; }
};

/// Aggregate per-node traffic accounting.
struct NodeTraffic {
  Bytes bytes_sent = 0;
  Bytes bytes_received = 0;
};

/// The network service.  One instance per simulation.
class Network {
 public:
  /// Construct over a topology.  `latency` is the per-transfer setup cost
  /// (connection establishment; the paper uses scp per file).  `loopback`
  /// is the rate for src==dst copies, which bypass the NIC.
  Network(sim::Simulation& sim, Topology topology, SimTime latency = 1e-3,
          Bandwidth loopback = gbps(10));

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The topology (mutable: elasticity adds nodes at runtime).
  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  /// Move `bytes` from `src` to `dst`; resumes when done or failed.
  ///
  /// `streams` > 1 splits the payload into that many parallel flows (the
  /// GridFTP-style striped transfer the paper lists as future work,
  /// Section II.C): each stream competes for fair share independently, so a
  /// striped transfer wins a larger fraction of a contended link.  Each
  /// stream pays the per-connection setup latency.
  sim::Task<TransferResult> transfer(NodeId src, NodeId dst, Bytes bytes,
                                     unsigned streams = 1);

  /// Abort all flows touching `node`; subsequent transfers to/from it fail
  /// immediately.  Mirrors a VM crash.
  void fail_node(NodeId node);

  /// Restore a previously failed node (re-provisioned replacement VM slot).
  void restore_node(NodeId node);

  /// True when the node has been failed.
  bool node_failed(NodeId node) const { return failed_nodes_.count(node) > 0; }

  /// Number of flows currently in the fluid model.
  std::size_t active_flows() const { return live_flows_; }

  /// Number of distinct flow classes the solver currently runs over (streams
  /// and transfers sharing a (src, dst) pair coalesce into one class).
  std::size_t active_flow_classes() const { return active_classes_.size(); }

  /// Per-node accounting of completed traffic.
  NodeTraffic traffic(NodeId node) const;

  /// Total bytes moved by transfers (including partial bytes of failed ones).
  Bytes total_bytes_moved() const { return total_bytes_moved_; }

  /// Total number of transfers started.
  std::uint64_t transfers_started() const { return transfers_started_; }

  /// Time integral bookkeeping hook: called with every finished transfer,
  /// on every exit path (completed, failed at setup, failed mid-flight).
  void set_observer(std::function<void(NodeId src, NodeId dst, const TransferResult&)> obs) {
    observer_ = std::move(obs);
  }

  /// Attach a tracer for per-transfer flow spans (bytes, achieved rate,
  /// solver recompute count).  nullptr (the default) disables tracing; the
  /// hot path then only pays a pointer test.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a metrics registry; the network's counters (net.solver_invocations,
  /// net.solver_full_solves, net.solver_dirty_classes, net.flows_coalesced,
  /// net.bytes_moved, net.transfers, net.transfers_failed) are resolved once
  /// here and incremented by cached pointer afterwards.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Fluid-solver invocations so far (component re-solves + full solves).
  std::uint64_t solver_invocations() const { return solves_; }

  /// Solves that rebuilt everything (invalidation: topology mutation or node
  /// failure/restore).  solves() - full_solves() is the incremental hit count.
  std::uint64_t solver_full_solves() const { return full_solves_; }

  /// Total classes re-solved across all solves (the dirty-set sizes); the
  /// average dirty set is this over solver_invocations().
  std::uint64_t solver_dirty_classes() const { return dirty_classes_total_; }

  /// Test hook: after every incremental solve, run a fresh full solve on the
  /// side and check every active class's stored rate against it (throws
  /// FriedaError on divergence).  Off by default; costs a full solve per event.
  void set_differential_check(bool on) { differential_check_ = on; }

 private:
  struct Flow {
    Bytes requested = 0;
    double target = 0.0;     ///< class work level at which this flow drains
    double remaining = 0.0;  ///< set at terminal time (partial bytes of failures)
    std::uint64_t seq = 0;   ///< global arrival sequence (heap tie-break)
    std::uint32_t class_slot = 0;
    TransferStatus status = TransferStatus::kCompleted;
    bool done = false;
    std::unique_ptr<sim::Signal> signal;
  };
  using FlowPtr = std::shared_ptr<Flow>;

  /// One coalesced (src, dst) flow class: cached constraint vector plus the
  /// persistent fluid state the incremental solver maintains between events.
  struct FlowClass {
    NodeId src = 0;
    NodeId dst = 0;
    std::vector<std::size_t> resources;   ///< persistent resource ids
    std::vector<std::uint32_t> user_pos;  ///< our slot in resource_users_[pid]
    std::uint64_t cached_version = 0;     ///< invalidation stamp for `resources`
    bool cached = false;
    bool active = false;    ///< has live flows (member of active_classes_)
    bool attached = false;  ///< registered in resource_users_
    std::uint32_t active_index = 0;  ///< position in active_classes_
    // Fluid state (valid while active).
    Bandwidth rate = 0.0;    ///< solved per-flow rate
    double work = 0.0;       ///< cumulative bytes delivered per member flow
    SimTime work_time = 0.0; ///< instant `work` was last accrued to
    std::vector<FlowPtr> heap;  ///< min-heap of members by (target, seq)
    sim::EventQueue::Handle completion;  ///< this class's next-drain event
    SimTime completion_time = 0.0;       ///< absolute time of that event
    // Per-solve scratch.
    std::uint64_t visit_epoch = 0;  ///< BFS stamp (dirty-set collection)
    std::uint32_t comp_index = 0;   ///< dense index within the current solve
  };

  void accrue(FlowClass& cls);  // advance `work` to sim.now() at the old rate
  void activate_class(std::uint32_t slot);
  void deactivate_class(std::uint32_t slot);
  void attach_class(std::uint32_t slot);
  void detach_class(std::uint32_t slot);
  /// Re-solve after a change seeded at `seed_slot`: full solve when the
  /// invalidation version moved, else the seed's connected component only.
  void resolve(std::uint32_t seed_slot);
  void full_solve();
  void collect_component(std::uint32_t seed_slot);  // BFS into component_
  /// Shared solve tail over component_: accrue, drain, solve, reschedule.
  void solve_component(bool full);
  void update_completion(std::uint32_t slot);
  void on_class_completion(std::uint32_t slot);
  void complete_flow(const FlowPtr& flow, TransferStatus status);
  void run_differential_check();
  /// Close out a transfer on any exit path; `solves_at_start` dates the
  /// transfer's entry for the trace span's recompute count.
  void finish_transfer(NodeId src, NodeId dst, TransferResult& result,
                       std::uint64_t solves_at_start);

  /// Invalidation stamp: changes whenever the topology mutates or a node
  /// fails / is restored.
  std::uint64_t invalidation_version() const {
    return topology_.version() + failure_version_;
  }
  std::uint32_t class_for(NodeId src, NodeId dst);
  std::size_t resource_id(std::uint64_t key, Bandwidth cap);
  void rebuild_class_resources(FlowClass& cls);

  sim::Simulation& sim_;
  Topology topology_;
  SimTime latency_;
  Bandwidth loopback_;

  std::unordered_set<NodeId> failed_nodes_;
  std::uint64_t failure_version_ = 0;
  std::uint64_t next_flow_seq_ = 0;
  std::size_t live_flows_ = 0;

  // ---- flow-class registry ----
  std::vector<FlowClass> classes_;
  std::unordered_map<std::uint64_t, std::uint32_t> class_of_pair_;  // packed (src,dst)
  std::vector<std::uint32_t> active_classes_;  ///< slots of classes with flows
  std::uint64_t solve_epoch_ = 0;

  // ---- persistent resource registry (rebuilt on invalidation) ----
  std::unordered_map<std::uint64_t, std::size_t> resource_ids_;
  std::vector<Bandwidth> resource_caps_;
  std::vector<std::vector<std::uint32_t>> resource_users_;  ///< active classes per pid
  std::uint64_t resources_version_ = 0;
  bool resources_valid_ = false;

  // ---- reusable solver buffers ----
  std::vector<std::uint32_t> component_;        ///< dirty set (class slots)
  std::vector<FlowPtr> drained_;                ///< flows completing this solve
  std::vector<std::size_t> resource_dense_;     ///< persistent id -> dense index
  std::vector<std::uint64_t> resource_epoch_;   ///< stamp for BFS / densify
  std::vector<Bandwidth> dense_caps_;           ///< solver capacities
  std::vector<WeightedFlowConstraints> solver_classes_;  ///< grow-only
  std::vector<Bandwidth> class_rates_;
  FairshareScratch fair_scratch_;

  std::vector<NodeTraffic> traffic_;  ///< indexed by node id (dense hot path)
  Bytes total_bytes_moved_ = 0;
  std::uint64_t transfers_started_ = 0;
  std::uint64_t solves_ = 0;        ///< fluid-solver invocations (always counted)
  std::uint64_t full_solves_ = 0;   ///< invalidation-forced global solves
  std::uint64_t dirty_classes_total_ = 0;  ///< sum of per-solve dirty-set sizes
  bool differential_check_ = false;
  std::function<void(NodeId, NodeId, const TransferResult&)> observer_;

  // ---- observability taps (null = disabled; see docs/observability.md) ----
  obs::Tracer* tracer_ = nullptr;
  struct {
    obs::Counter* solver_invocations = nullptr;
    obs::Counter* solver_full_solves = nullptr;
    obs::Counter* solver_dirty_classes = nullptr;
    obs::Counter* flows_coalesced = nullptr;
    obs::Counter* bytes_moved = nullptr;
    obs::Counter* transfers = nullptr;
    obs::Counter* transfers_failed = nullptr;
  } metrics_;
};

}  // namespace frieda::net
