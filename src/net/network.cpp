#include "net/network.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace frieda::net {

namespace {
// A flow is considered drained when less than this many bytes remain; absorbs
// fluid-model floating point drift.
constexpr double kEpsilonBytes = 1e-6;
// Completion events are never scheduled closer than this, so the clock always
// makes representable progress (guards against the asymptotic-drain loop
// where remaining/rate underflows the current time's ulp).
constexpr double kMinTimeStep = 1e-9;

// Persistent resource key space: kind in the top bits, node/pair id below.
// Mirrors the table the pre-coalescing implementation rebuilt per recompute.
std::uint64_t egress_key(NodeId n) { return 0x1000000000ull + n; }
std::uint64_t ingress_key(NodeId n) { return 0x2000000000ull + n; }
std::uint64_t pair_key(NodeId s, NodeId d) {
  return 0x3000000000ull + (static_cast<std::uint64_t>(s) << 20) + d;
}
constexpr std::uint64_t kBackboneKey = 0x4000000000ull;
std::uint64_t loopback_key(NodeId n) { return 0x5000000000ull + n; }
std::uint64_t site_key(SiteId a, SiteId b) {
  if (a > b) std::swap(a, b);
  return 0x6000000000ull + (static_cast<std::uint64_t>(a) << 16) + b;
}

std::uint64_t class_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
}  // namespace

Network::Network(sim::Simulation& sim, Topology topology, SimTime latency, Bandwidth loopback)
    : sim_(sim), topology_(std::move(topology)), latency_(latency), loopback_(loopback) {
  FRIEDA_CHECK(latency_ >= 0.0, "latency must be >= 0");
  FRIEDA_CHECK(loopback_ > 0.0, "loopback bandwidth must be > 0");
}

void Network::set_metrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    metrics_ = {};
    return;
  }
  metrics_.solver_invocations = &registry->counter("net.solver_invocations");
  metrics_.flows_coalesced = &registry->counter("net.flows_coalesced");
  metrics_.bytes_moved = &registry->counter("net.bytes_moved");
  metrics_.transfers = &registry->counter("net.transfers");
  metrics_.transfers_failed = &registry->counter("net.transfers_failed");
}

void Network::finish_transfer(NodeId src, NodeId dst, TransferResult& result,
                              std::uint64_t solves_at_start) {
  result.finished = sim_.now();
  traffic_[src].bytes_sent += result.transferred;
  traffic_[dst].bytes_received += result.transferred;
  total_bytes_moved_ += result.transferred;
  if (metrics_.transfers) {
    metrics_.transfers->inc();
    metrics_.bytes_moved->inc(result.transferred);
    if (!result.ok()) metrics_.transfers_failed->inc();
  }
  if (tracer_) {
    const double dur = result.duration();
    obs::TraceEvent ev;
    ev.name = "xfer " + std::to_string(src) + "->" + std::to_string(dst);
    ev.cat = "flow";
    ev.process = obs::kNetworkTrack;
    ev.track = dst;
    ev.start = result.started;
    ev.end = result.finished;
    ev.args = {{"bytes", std::to_string(result.transferred)},
               {"requested", std::to_string(result.requested)},
               {"rate_bps", std::to_string(dur > 0.0
                                ? static_cast<double>(result.transferred) / dur
                                : 0.0)},
               {"recomputes", std::to_string(solves_ - solves_at_start)},
               {"status", result.ok() ? "ok" : "failed"}};
    tracer_->span(std::move(ev));
  }
  if (observer_) observer_(src, dst, result);
}

std::uint32_t Network::class_for(NodeId src, NodeId dst) {
  const auto [it, inserted] = class_of_pair_.emplace(
      class_key(src, dst), static_cast<std::uint32_t>(classes_.size()));
  if (inserted) {
    FlowClass cls;
    cls.src = src;
    cls.dst = dst;
    classes_.push_back(std::move(cls));
  }
  return it->second;
}

std::size_t Network::resource_id(std::uint64_t key, Bandwidth cap) {
  const auto [it, inserted] = resource_ids_.emplace(key, resource_caps_.size());
  if (inserted) {
    resource_caps_.push_back(cap);
    resource_dense_.push_back(0);
    resource_epoch_.push_back(0);
  }
  return it->second;
}

void Network::rebuild_class_resources(FlowClass& cls) {
  cls.resources.clear();
  if (cls.src == cls.dst) {
    // Loopback copies share the node's loopback device, not the NIC.
    cls.resources.push_back(resource_id(loopback_key(cls.src), loopback_));
  } else {
    cls.resources.push_back(resource_id(egress_key(cls.src), topology_.egress(cls.src)));
    cls.resources.push_back(resource_id(ingress_key(cls.dst), topology_.ingress(cls.dst)));
    const Bandwidth pair_cap = topology_.pair_limit(cls.src, cls.dst);
    if (pair_cap != std::numeric_limits<Bandwidth>::infinity()) {
      cls.resources.push_back(resource_id(pair_key(cls.src, cls.dst), pair_cap));
    }
    if (topology_.has_backbone_cap()) {
      cls.resources.push_back(resource_id(kBackboneKey, topology_.backbone_capacity()));
    }
    if (topology_.has_intersite_caps()) {
      const SiteId sa = topology_.site(cls.src);
      const SiteId sb = topology_.site(cls.dst);
      const Bandwidth wan = topology_.intersite_capacity(sa, sb);
      if (wan != std::numeric_limits<Bandwidth>::infinity()) {
        cls.resources.push_back(resource_id(site_key(sa, sb), wan));
      }
    }
  }
  cls.cached_version = invalidation_version();
  cls.cached = true;
}

sim::Task<TransferResult> Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                                            unsigned streams) {
  FRIEDA_CHECK(src < topology_.node_count() && dst < topology_.node_count(),
               "transfer endpoints out of range");
  FRIEDA_CHECK(streams >= 1, "transfer needs at least one stream");
  ++transfers_started_;
  const std::uint64_t solves_at_start = solves_;
  TransferResult result;
  result.requested = bytes;
  result.started = sim_.now();

  if (node_failed(src) || node_failed(dst)) {
    result.status = TransferStatus::kFailed;
    finish_transfer(src, dst, result, solves_at_start);
    co_return result;
  }
  // Each stream pays connection setup; streams are established sequentially
  // (control traffic), then run in parallel.
  if (latency_ > 0.0) co_await sim_.delay(latency_ * streams);
  if (node_failed(src) || node_failed(dst)) {  // failed during setup
    result.status = TransferStatus::kFailed;
    finish_transfer(src, dst, result, solves_at_start);
    co_return result;
  }
  if (bytes == 0) {
    finish_transfer(src, dst, result, solves_at_start);
    co_return result;
  }

  streams = static_cast<unsigned>(
      std::min<Bytes>(streams, std::max<Bytes>(bytes, 1)));  // no empty streams
  const std::uint32_t cls = class_for(src, dst);
  std::vector<FlowPtr> stream_flows;
  stream_flows.reserve(streams);
  advance_flows();
  for (unsigned s = 0; s < streams; ++s) {
    const Bytes share = bytes / streams + (s < bytes % streams ? 1 : 0);
    auto flow = std::make_shared<Flow>();
    flow->src = src;
    flow->dst = dst;
    flow->requested = share;
    flow->remaining = static_cast<double>(share);
    flow->started = sim_.now();
    flow->class_slot = cls;
    flow->signal = std::make_unique<sim::Signal>(sim_);
    flows_.push_back(flow);
    stream_flows.push_back(std::move(flow));
  }
  recompute_rates();

  for (const auto& flow : stream_flows) co_await flow->signal->wait();

  result.status = TransferStatus::kCompleted;
  result.transferred = 0;
  for (const auto& flow : stream_flows) {
    if (flow->status == TransferStatus::kFailed) result.status = TransferStatus::kFailed;
    const double moved =
        static_cast<double>(flow->requested) - std::max(flow->remaining, 0.0);
    result.transferred += flow->status == TransferStatus::kCompleted
                              ? flow->requested
                              : static_cast<Bytes>(moved + 0.5);
  }
  finish_transfer(src, dst, result, solves_at_start);
  co_return result;
}

void Network::advance_flows() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_advance_;
  if (dt > 0.0) {
    for (auto& flow : flows_) flow->remaining -= flow->rate * dt;
  }
  last_advance_ = now;
}

void Network::recompute_rates() {
  // Drop finished flows from the active set first (compacted in place).
  std::size_t keep = 0;
  for (auto& flow : flows_) {
    if (flow->done) continue;
    if (flow->remaining <= kEpsilonBytes ||
        (flow->rate > 0.0 && flow->remaining <= flow->rate * kMinTimeStep)) {
      complete_flow(flow, TransferStatus::kCompleted);
      continue;
    }
    flows_[keep++] = std::move(flow);
  }
  flows_.resize(keep);

  if (completion_event_.pending()) sim_.cancel(completion_event_);
  active_classes_.clear();
  if (flows_.empty()) return;

  // Invalidate the persistent resource registry when the topology or the
  // failure set changed; class constraint vectors re-cache lazily below.
  const std::uint64_t version = invalidation_version();
  if (!resources_valid_ || resources_version_ != version) {
    resource_ids_.clear();
    resource_caps_.clear();
    resource_dense_.clear();
    resource_epoch_.clear();
    resources_version_ = version;
    resources_valid_ = true;
  }

  // Collect the active classes in first-flow order, counting live members.
  ++solve_epoch_;
  for (const auto& flow : flows_) {
    FlowClass& cls = classes_[flow->class_slot];
    if (cls.epoch != solve_epoch_) {
      cls.epoch = solve_epoch_;
      cls.live = 0;
      cls.order = static_cast<std::uint32_t>(active_classes_.size());
      active_classes_.push_back(flow->class_slot);
      if (!cls.cached || cls.cached_version != version) rebuild_class_resources(cls);
    }
    ++cls.live;
  }

  // Densify: remap each active class's persistent resource ids onto a compact
  // 0..n-1 capacity table (stale resources of departed classes are skipped).
  const std::size_t nc = active_classes_.size();
  if (solver_classes_.size() < nc) solver_classes_.resize(nc);  // grow-only
  dense_caps_.clear();
  for (std::size_t i = 0; i < nc; ++i) {
    const FlowClass& cls = classes_[active_classes_[i]];
    WeightedFlowConstraints& wc = solver_classes_[i];
    wc.resources.clear();
    for (const std::size_t pid : cls.resources) {
      if (resource_epoch_[pid] != solve_epoch_) {
        resource_epoch_[pid] = solve_epoch_;
        resource_dense_[pid] = dense_caps_.size();
        dense_caps_.push_back(resource_caps_[pid]);
      }
      wc.resources.push_back(resource_dense_[pid]);
    }
    wc.count = cls.live;
  }

  ++solves_;
  if (metrics_.solver_invocations) {
    metrics_.solver_invocations->inc();
    metrics_.flows_coalesced->inc(flows_.size() - nc);
  }
  max_min_fair_rates_weighted(dense_caps_, solver_classes_.data(), nc, fair_scratch_,
                              class_rates_);

  SimTime next_completion = std::numeric_limits<SimTime>::infinity();
  for (const auto& flow : flows_) {
    const Bandwidth rate = class_rates_[classes_[flow->class_slot].order];
    flow->rate = rate;
    if (rate > 0.0) {
      next_completion = std::min(next_completion, flow->remaining / rate);
    }
  }
  FRIEDA_CHECK(next_completion != std::numeric_limits<SimTime>::infinity(),
               "active flows exist but none can make progress");

  completion_event_ = sim_.schedule_in(std::max(next_completion, kMinTimeStep), [this] {
    advance_flows();
    recompute_rates();
  });
}

void Network::complete_flow(const FlowPtr& flow, TransferStatus status) {
  flow->done = true;
  flow->status = status;
  if (status == TransferStatus::kCompleted) flow->remaining = 0.0;
  flow->signal->trigger();
}

void Network::fail_node(NodeId node) {
  if (!failed_nodes_.insert(node).second) return;
  ++failure_version_;
  FLOG(kDebug, "net", "node " << node << " failed; aborting its flows");
  advance_flows();
  for (auto& flow : flows_) {
    if (flow->done) continue;
    if (flow->src == node || flow->dst == node) {
      complete_flow(flow, TransferStatus::kFailed);
    }
  }
  recompute_rates();
}

void Network::restore_node(NodeId node) {
  if (failed_nodes_.erase(node) > 0) ++failure_version_;
}

NodeTraffic Network::traffic(NodeId node) const {
  const auto it = traffic_.find(node);
  return it == traffic_.end() ? NodeTraffic{} : it->second;
}

}  // namespace frieda::net
