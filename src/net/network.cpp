#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace frieda::net {

namespace {
// A flow is considered drained when less than this many bytes remain; absorbs
// fluid-model floating point drift.
constexpr double kEpsilonBytes = 1e-6;
// Completion events are never scheduled closer than this, so the clock always
// makes representable progress (guards against the asymptotic-drain loop
// where remaining/rate underflows the current time's ulp).
constexpr double kMinTimeStep = 1e-9;

// Persistent resource key space: kind in the top bits, node/pair id below.
std::uint64_t egress_key(NodeId n) { return 0x1000000000ull + n; }
std::uint64_t ingress_key(NodeId n) { return 0x2000000000ull + n; }
std::uint64_t pair_key(NodeId s, NodeId d) {
  return 0x3000000000ull + (static_cast<std::uint64_t>(s) << 20) + d;
}
constexpr std::uint64_t kBackboneKey = 0x4000000000ull;
std::uint64_t loopback_key(NodeId n) { return 0x5000000000ull + n; }
std::uint64_t site_key(SiteId a, SiteId b) {
  if (a > b) std::swap(a, b);
  return 0x6000000000ull + (static_cast<std::uint64_t>(a) << 16) + b;
}
std::uint64_t rack_key(RackId r) { return 0x7000000000ull + r; }

std::uint64_t class_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
}  // namespace

Network::Network(sim::Simulation& sim, Topology topology, SimTime latency, Bandwidth loopback)
    : sim_(sim), topology_(std::move(topology)), latency_(latency), loopback_(loopback) {
  FRIEDA_CHECK(latency_ >= 0.0, "latency must be >= 0");
  FRIEDA_CHECK(loopback_ > 0.0, "loopback bandwidth must be > 0");
}

void Network::set_metrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    metrics_ = {};
    return;
  }
  metrics_.solver_invocations = &registry->counter("net.solver_invocations");
  metrics_.solver_full_solves = &registry->counter("net.solver_full_solves");
  metrics_.solver_dirty_classes = &registry->counter("net.solver_dirty_classes");
  metrics_.flows_coalesced = &registry->counter("net.flows_coalesced");
  metrics_.bytes_moved = &registry->counter("net.bytes_moved");
  metrics_.transfers = &registry->counter("net.transfers");
  metrics_.transfers_failed = &registry->counter("net.transfers_failed");
}

void Network::finish_transfer(NodeId src, NodeId dst, TransferResult& result,
                              std::uint64_t solves_at_start) {
  result.finished = sim_.now();
  const NodeId hi = std::max(src, dst);
  if (traffic_.size() <= hi) traffic_.resize(std::max<std::size_t>(topology_.node_count(), hi + 1));
  traffic_[src].bytes_sent += result.transferred;
  traffic_[dst].bytes_received += result.transferred;
  total_bytes_moved_ += result.transferred;
  if (metrics_.transfers) {
    metrics_.transfers->inc();
    metrics_.bytes_moved->inc(result.transferred);
    if (!result.ok()) metrics_.transfers_failed->inc();
  }
  if (tracer_) {
    const double dur = result.duration();
    obs::TraceEvent ev;
    ev.name = "xfer " + std::to_string(src) + "->" + std::to_string(dst);
    ev.cat = "flow";
    ev.process = obs::kNetworkTrack;
    ev.track = dst;
    ev.start = result.started;
    ev.end = result.finished;
    ev.args = {{"bytes", std::to_string(result.transferred)},
               {"requested", std::to_string(result.requested)},
               {"rate_bps", std::to_string(dur > 0.0
                                ? static_cast<double>(result.transferred) / dur
                                : 0.0)},
               {"recomputes", std::to_string(solves_ - solves_at_start)},
               {"status", result.ok() ? "ok" : "failed"}};
    tracer_->span(std::move(ev));
  }
  if (observer_) observer_(src, dst, result);
}

std::uint32_t Network::class_for(NodeId src, NodeId dst) {
  const auto [it, inserted] = class_of_pair_.emplace(
      class_key(src, dst), static_cast<std::uint32_t>(classes_.size()));
  if (inserted) {
    FlowClass cls;
    cls.src = src;
    cls.dst = dst;
    classes_.push_back(std::move(cls));
  }
  return it->second;
}

std::size_t Network::resource_id(std::uint64_t key, Bandwidth cap) {
  const auto [it, inserted] = resource_ids_.emplace(key, resource_caps_.size());
  if (inserted) {
    resource_caps_.push_back(cap);
    resource_users_.emplace_back();
    resource_dense_.push_back(0);
    resource_epoch_.push_back(0);
  }
  return it->second;
}

void Network::rebuild_class_resources(FlowClass& cls) {
  cls.resources.clear();
  if (cls.src == cls.dst) {
    // Loopback copies share the node's loopback device, not the NIC.
    cls.resources.push_back(resource_id(loopback_key(cls.src), loopback_));
  } else {
    cls.resources.push_back(resource_id(egress_key(cls.src), topology_.egress(cls.src)));
    cls.resources.push_back(resource_id(ingress_key(cls.dst), topology_.ingress(cls.dst)));
    const Bandwidth pair_cap = topology_.pair_limit(cls.src, cls.dst);
    if (pair_cap != std::numeric_limits<Bandwidth>::infinity()) {
      cls.resources.push_back(resource_id(pair_key(cls.src, cls.dst), pair_cap));
    }
    if (topology_.has_rack_uplinks()) {
      // Hierarchy level between node and core: a flow leaving (or entering) a
      // rack traverses that rack's shared uplink; intra-rack traffic bypasses
      // it.  Both lookups are O(1) vector indexing.
      const RackId ra = topology_.rack(cls.src);
      const RackId rb = topology_.rack(cls.dst);
      if (ra != rb) {
        const Bandwidth up_a = topology_.rack_uplink(ra);
        if (up_a != std::numeric_limits<Bandwidth>::infinity()) {
          cls.resources.push_back(resource_id(rack_key(ra), up_a));
        }
        const Bandwidth up_b = topology_.rack_uplink(rb);
        if (up_b != std::numeric_limits<Bandwidth>::infinity()) {
          cls.resources.push_back(resource_id(rack_key(rb), up_b));
        }
      }
    }
    if (topology_.has_backbone_cap()) {
      cls.resources.push_back(resource_id(kBackboneKey, topology_.backbone_capacity()));
    }
    if (topology_.has_intersite_caps()) {
      const SiteId sa = topology_.site(cls.src);
      const SiteId sb = topology_.site(cls.dst);
      const Bandwidth wan = topology_.intersite_capacity(sa, sb);
      if (wan != std::numeric_limits<Bandwidth>::infinity()) {
        cls.resources.push_back(resource_id(site_key(sa, sb), wan));
      }
    }
  }
  cls.cached_version = invalidation_version();
  cls.cached = true;
}

sim::Task<TransferResult> Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                                            unsigned streams) {
  FRIEDA_CHECK(src < topology_.node_count() && dst < topology_.node_count(),
               "transfer endpoints out of range");
  FRIEDA_CHECK(streams >= 1, "transfer needs at least one stream");
  ++transfers_started_;
  const std::uint64_t solves_at_start = solves_;
  TransferResult result;
  result.requested = bytes;
  result.started = sim_.now();

  if (node_failed(src) || node_failed(dst)) {
    result.status = TransferStatus::kFailed;
    finish_transfer(src, dst, result, solves_at_start);
    co_return result;
  }
  // Each stream pays connection setup; streams are established sequentially
  // (control traffic), then run in parallel.
  if (latency_ > 0.0) co_await sim_.delay(latency_ * streams);
  if (node_failed(src) || node_failed(dst)) {  // failed during setup
    result.status = TransferStatus::kFailed;
    finish_transfer(src, dst, result, solves_at_start);
    co_return result;
  }
  if (bytes == 0) {
    finish_transfer(src, dst, result, solves_at_start);
    co_return result;
  }

  streams = static_cast<unsigned>(
      std::min<Bytes>(streams, std::max<Bytes>(bytes, 1)));  // no empty streams
  const std::uint32_t slot = class_for(src, dst);
  FlowClass& cls = classes_[slot];
  if (cls.active) {
    accrue(cls);  // targets below are relative to the class's work *now*
  } else {
    activate_class(slot);
  }
  const auto heap_less = [](const FlowPtr& a, const FlowPtr& b) {
    return a->target > b->target || (a->target == b->target && a->seq > b->seq);
  };
  std::vector<FlowPtr> stream_flows;
  stream_flows.reserve(streams);
  for (unsigned s = 0; s < streams; ++s) {
    const Bytes share = bytes / streams + (s < bytes % streams ? 1 : 0);
    auto flow = std::make_shared<Flow>();
    flow->requested = share;
    flow->target = cls.work + static_cast<double>(share);
    flow->seq = next_flow_seq_++;
    flow->class_slot = slot;
    flow->signal = std::make_unique<sim::Signal>(sim_);
    cls.heap.push_back(flow);
    std::push_heap(cls.heap.begin(), cls.heap.end(), heap_less);
    stream_flows.push_back(std::move(flow));
  }
  live_flows_ += streams;
  resolve(slot);

  for (const auto& flow : stream_flows) co_await flow->signal->wait();

  result.status = TransferStatus::kCompleted;
  result.transferred = 0;
  for (const auto& flow : stream_flows) {
    if (flow->status == TransferStatus::kFailed) result.status = TransferStatus::kFailed;
    if (flow->status == TransferStatus::kCompleted) {
      result.transferred += flow->requested;
    } else {
      // Partial bytes of an aborted flow; the fluid model can overshoot the
      // request by a fraction of a byte, so clamp to what was asked for.
      const double moved =
          static_cast<double>(flow->requested) - std::max(flow->remaining, 0.0);
      result.transferred +=
          std::min<Bytes>(flow->requested, static_cast<Bytes>(moved + 0.5));
    }
  }
  finish_transfer(src, dst, result, solves_at_start);
  co_return result;
}

void Network::accrue(FlowClass& cls) {
  const SimTime now = sim_.now();
  const SimTime dt = now - cls.work_time;
  if (dt > 0.0 && cls.rate > 0.0) cls.work += cls.rate * dt;
  cls.work_time = now;
}

void Network::activate_class(std::uint32_t slot) {
  FlowClass& cls = classes_[slot];
  cls.active = true;
  cls.active_index = static_cast<std::uint32_t>(active_classes_.size());
  active_classes_.push_back(slot);
  cls.rate = 0.0;
  cls.work = 0.0;
  cls.work_time = sim_.now();
}

void Network::deactivate_class(std::uint32_t slot) {
  FlowClass& cls = classes_[slot];
  if (cls.attached) detach_class(slot);
  if (cls.completion.pending()) sim_.cancel(cls.completion);
  cls.active = false;
  cls.rate = 0.0;
  // Swap-remove from active_classes_, fixing the moved class's back-pointer.
  const std::uint32_t last = active_classes_.back();
  active_classes_[cls.active_index] = last;
  classes_[last].active_index = cls.active_index;
  active_classes_.pop_back();
}

void Network::attach_class(std::uint32_t slot) {
  FlowClass& cls = classes_[slot];
  cls.user_pos.resize(cls.resources.size());
  for (std::size_t i = 0; i < cls.resources.size(); ++i) {
    auto& users = resource_users_[cls.resources[i]];
    cls.user_pos[i] = static_cast<std::uint32_t>(users.size());
    users.push_back(slot);
  }
  cls.attached = true;
}

void Network::detach_class(std::uint32_t slot) {
  FlowClass& cls = classes_[slot];
  for (std::size_t i = 0; i < cls.resources.size(); ++i) {
    const std::size_t pid = cls.resources[i];
    auto& users = resource_users_[pid];
    const std::uint32_t pos = cls.user_pos[i];
    const std::uint32_t moved = users.back();
    users[pos] = moved;
    users.pop_back();
    if (moved != slot) {
      // Tell the moved class where it lives now (its resource lists are
      // short — at most egress/ingress/pair/2 uplinks/backbone/site).
      FlowClass& other = classes_[moved];
      for (std::size_t j = 0; j < other.resources.size(); ++j) {
        if (other.resources[j] == pid) {
          other.user_pos[j] = pos;
          break;
        }
      }
    }
  }
  cls.attached = false;
}

void Network::resolve(std::uint32_t seed_slot) {
  const std::uint64_t version = invalidation_version();
  if (!resources_valid_ || resources_version_ != version) {
    full_solve();
    return;
  }
  collect_component(seed_slot);
  solve_component(/*full=*/false);
}

void Network::collect_component(std::uint32_t seed_slot) {
  const std::uint64_t bfs_epoch = ++solve_epoch_;
  component_.clear();
  classes_[seed_slot].visit_epoch = bfs_epoch;
  component_.push_back(seed_slot);
  for (std::size_t i = 0; i < component_.size(); ++i) {
    const std::uint32_t slot = component_[i];
    FlowClass& cls = classes_[slot];
    if (!cls.attached) {
      // Freshly (re)activated class: cache its constraint vector against the
      // current registry and register it with its resources.
      if (!cls.cached || cls.cached_version != resources_version_) {
        rebuild_class_resources(cls);
      }
      attach_class(slot);
    }
    for (const std::size_t pid : cls.resources) {
      if (resource_epoch_[pid] == bfs_epoch) continue;
      resource_epoch_[pid] = bfs_epoch;
      for (const std::uint32_t user : resource_users_[pid]) {
        FlowClass& other = classes_[user];
        if (other.visit_epoch == bfs_epoch) continue;
        other.visit_epoch = bfs_epoch;
        component_.push_back(user);
      }
    }
  }
}

void Network::full_solve() {
  const std::uint64_t version = invalidation_version();
  // Rebuild the resource registry from scratch: capacities may have changed
  // (set_nic and friends) and the key → id mapping with them.
  resource_ids_.clear();
  resource_caps_.clear();
  resource_users_.clear();
  resource_dense_.clear();
  resource_epoch_.clear();
  resources_version_ = version;
  resources_valid_ = true;
  component_ = active_classes_;
  for (const std::uint32_t slot : component_) {
    FlowClass& cls = classes_[slot];
    cls.attached = false;  // the user lists above are gone
    rebuild_class_resources(cls);
    attach_class(slot);
  }
  ++full_solves_;
  if (metrics_.solver_full_solves) metrics_.solver_full_solves->inc();
  solve_component(/*full=*/true);
}

void Network::solve_component(bool full) {
  const auto heap_less = [](const FlowPtr& a, const FlowPtr& b) {
    return a->target > b->target || (a->target == b->target && a->seq > b->seq);
  };
  // Bring every dirty class's work level up to now at its old rate, then
  // drain the flows that have reached their target.
  drained_.clear();
  for (const std::uint32_t slot : component_) {
    FlowClass& cls = classes_[slot];
    accrue(cls);
    while (!cls.heap.empty()) {
      const FlowPtr& f = cls.heap.front();
      const double remaining = f->target - cls.work;
      if (remaining <= kEpsilonBytes ||
          (cls.rate > 0.0 && remaining <= cls.rate * kMinTimeStep)) {
        drained_.push_back(f);
        std::pop_heap(cls.heap.begin(), cls.heap.end(), heap_less);
        cls.heap.pop_back();
      } else {
        break;
      }
    }
  }
  if (!drained_.empty()) {
    // Complete in global arrival order so waiter wake-ups match the order
    // the pre-incremental implementation produced (it swept a flat flow list).
    std::sort(drained_.begin(), drained_.end(),
              [](const FlowPtr& a, const FlowPtr& b) { return a->seq < b->seq; });
    live_flows_ -= drained_.size();
    for (const auto& flow : drained_) complete_flow(flow, TransferStatus::kCompleted);
    drained_.clear();
  }
  // Emptied classes leave the active set (and the constraint graph).
  std::size_t keep = 0;
  for (const std::uint32_t slot : component_) {
    if (classes_[slot].heap.empty()) {
      deactivate_class(slot);
    } else {
      component_[keep++] = slot;
    }
  }
  component_.resize(keep);
  if (component_.empty()) return;

  // Densify the component's resources onto a compact capacity table.
  const std::uint64_t dense_epoch = ++solve_epoch_;
  const std::size_t nc = component_.size();
  if (solver_classes_.size() < nc) solver_classes_.resize(nc);  // grow-only
  dense_caps_.clear();
  std::size_t component_flows = 0;
  for (std::size_t i = 0; i < nc; ++i) {
    FlowClass& cls = classes_[component_[i]];
    cls.comp_index = static_cast<std::uint32_t>(i);
    WeightedFlowConstraints& wc = solver_classes_[i];
    wc.resources.clear();
    for (const std::size_t pid : cls.resources) {
      if (resource_epoch_[pid] != dense_epoch) {
        resource_epoch_[pid] = dense_epoch;
        resource_dense_[pid] = dense_caps_.size();
        dense_caps_.push_back(resource_caps_[pid]);
      }
      wc.resources.push_back(resource_dense_[pid]);
    }
    wc.count = cls.heap.size();
    component_flows += cls.heap.size();
  }

  ++solves_;
  dirty_classes_total_ += nc;
  if (metrics_.solver_invocations) {
    metrics_.solver_invocations->inc();
    metrics_.solver_dirty_classes->inc(nc);
    metrics_.flows_coalesced->inc(component_flows - nc);
  }
  max_min_fair_rates_weighted(dense_caps_, solver_classes_.data(), nc, fair_scratch_,
                              class_rates_);

  if (full) {
    // The pre-incremental solver required global progress; keep that check
    // where we still see the whole system at once.
    bool any_progress = false;
    for (std::size_t i = 0; i < nc; ++i) any_progress |= class_rates_[i] > 0.0;
    FRIEDA_CHECK(any_progress, "active flows exist but none can make progress");
  }

  for (std::size_t i = 0; i < nc; ++i) {
    classes_[component_[i]].rate = class_rates_[i];
    update_completion(component_[i]);
  }

  if (differential_check_) run_differential_check();
}

void Network::update_completion(std::uint32_t slot) {
  FlowClass& cls = classes_[slot];
  if (cls.rate <= 0.0) {
    // No finite bottleneck (orphan class): it cannot drain until some event
    // changes its component.  Matches the pre-incremental behavior of a
    // zero-rate flow simply never contributing a completion estimate.
    if (cls.completion.pending()) sim_.cancel(cls.completion);
    return;
  }
  const SimTime now = sim_.now();  // == cls.work_time after accrue()
  const SimTime t =
      now + std::max((cls.heap.front()->target - cls.work) / cls.rate, kMinTimeStep);
  if (cls.completion.pending()) {
    // Keep the pending event when the drain moved later (a rate drop): it
    // fires early, finds nothing drained, and re-arms itself at the exact
    // time without a solve (on_class_completion's fast path).  Cancelling
    // and rescheduling O(component) events per solve is what this avoids —
    // lazy tombstones would otherwise dominate small components.
    if (t >= cls.completion_time) return;
    sim_.cancel(cls.completion);
  }
  cls.completion_time = t;
  cls.completion = sim_.schedule_in(t - now, [this, slot] { on_class_completion(slot); });
}

void Network::on_class_completion(std::uint32_t slot) {
  FlowClass& cls = classes_[slot];
  if (!cls.active) return;  // deactivated after this event was already inflight
  // Fast re-arm: the event fired before the actual drain (its estimate went
  // stale when the class's rate dropped).  If nothing invalidated the rates
  // since — any solve touching this component would have updated cls.rate
  // and this event — the stored rate gives the exact drain time, so re-arm
  // without re-solving anything.
  if (resources_valid_ && resources_version_ == invalidation_version() &&
      cls.rate > 0.0 && !cls.heap.empty()) {
    accrue(cls);
    const double remaining = cls.heap.front()->target - cls.work;
    if (remaining > kEpsilonBytes && remaining > cls.rate * kMinTimeStep) {
      const SimTime now = sim_.now();
      const SimTime t = now + std::max(remaining / cls.rate, kMinTimeStep);
      cls.completion_time = t;
      cls.completion = sim_.schedule_in(t - now, [this, slot] { on_class_completion(slot); });
      return;
    }
  }
  // A real drain (or an invalidation): the sweep covers the whole component,
  // so simultaneous completions behind one bottleneck resolve in a single
  // pass (their own events then find empty heaps / get cancelled).
  resolve(slot);
}

void Network::complete_flow(const FlowPtr& flow, TransferStatus status) {
  flow->done = true;
  flow->status = status;
  if (status == TransferStatus::kCompleted) flow->remaining = 0.0;
  flow->signal->trigger();
}

void Network::run_differential_check() {
  // Fresh, from-first-principles solve over every active class, compared
  // against the incrementally maintained rates.  Deliberately uses local
  // buffers so it cannot disturb the persistent state it is auditing.
  std::unordered_map<std::size_t, std::size_t> dense;
  std::vector<Bandwidth> caps;
  std::vector<WeightedFlowConstraints> classes;
  classes.reserve(active_classes_.size());
  for (const std::uint32_t slot : active_classes_) {
    const FlowClass& cls = classes_[slot];
    WeightedFlowConstraints wc;
    for (const std::size_t pid : cls.resources) {
      const auto [it, inserted] = dense.emplace(pid, caps.size());
      if (inserted) caps.push_back(resource_caps_[pid]);
      wc.resources.push_back(it->second);
    }
    wc.count = cls.heap.size();
    classes.push_back(std::move(wc));
  }
  FairshareScratch scratch;
  std::vector<Bandwidth> rates;
  max_min_fair_rates_weighted(caps, classes.data(), classes.size(), scratch, rates);
  for (std::size_t i = 0; i < active_classes_.size(); ++i) {
    const FlowClass& cls = classes_[active_classes_[i]];
    const double tol = 1e-9 * std::max(1.0, rates[i]);
    FRIEDA_CHECK(std::abs(cls.rate - rates[i]) <= tol,
                 "incremental rate diverged from full solve for class "
                     << cls.src << "->" << cls.dst << ": incremental " << cls.rate
                     << " vs full " << rates[i]);
  }
}

void Network::fail_node(NodeId node) {
  if (!failed_nodes_.insert(node).second) return;
  ++failure_version_;
  FLOG(kDebug, "net", "node " << node << " failed; aborting its flows");
  // Abort every flow touching the node, crediting the bytes its class's old
  // rate delivered up to now (the awaiting transfer reports partial bytes).
  component_ = active_classes_;  // snapshot: deactivation mutates the list
  for (const std::uint32_t slot : component_) {
    FlowClass& cls = classes_[slot];
    if (cls.src != node && cls.dst != node) continue;
    accrue(cls);
    live_flows_ -= cls.heap.size();
    for (const auto& flow : cls.heap) {
      flow->remaining = std::max(flow->target - cls.work, 0.0);
      complete_flow(flow, TransferStatus::kFailed);
    }
    cls.heap.clear();
    deactivate_class(slot);
  }
  // The failure bumped the invalidation version: rebuild and re-solve the
  // survivors globally (their constraint vectors may now differ).
  if (!active_classes_.empty()) full_solve();
}

void Network::restore_node(NodeId node) {
  if (failed_nodes_.erase(node) > 0) ++failure_version_;
}

NodeTraffic Network::traffic(NodeId node) const {
  return node < traffic_.size() ? traffic_[node] : NodeTraffic{};
}

}  // namespace frieda::net
