#include "net/network.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/fairshare.hpp"

namespace frieda::net {

namespace {
// A flow is considered drained when less than this many bytes remain; absorbs
// fluid-model floating point drift.
constexpr double kEpsilonBytes = 1e-6;
// Completion events are never scheduled closer than this, so the clock always
// makes representable progress (guards against the asymptotic-drain loop
// where remaining/rate underflows the current time's ulp).
constexpr double kMinTimeStep = 1e-9;
}  // namespace

Network::Network(sim::Simulation& sim, Topology topology, SimTime latency, Bandwidth loopback)
    : sim_(sim), topology_(std::move(topology)), latency_(latency), loopback_(loopback) {
  FRIEDA_CHECK(latency_ >= 0.0, "latency must be >= 0");
  FRIEDA_CHECK(loopback_ > 0.0, "loopback bandwidth must be > 0");
}

sim::Task<TransferResult> Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                                            unsigned streams) {
  FRIEDA_CHECK(src < topology_.node_count() && dst < topology_.node_count(),
               "transfer endpoints out of range");
  FRIEDA_CHECK(streams >= 1, "transfer needs at least one stream");
  ++transfers_started_;
  TransferResult result;
  result.requested = bytes;
  result.started = sim_.now();

  if (node_failed(src) || node_failed(dst)) {
    result.status = TransferStatus::kFailed;
    result.finished = sim_.now();
    co_return result;
  }
  // Each stream pays connection setup; streams are established sequentially
  // (control traffic), then run in parallel.
  if (latency_ > 0.0) co_await sim_.delay(latency_ * streams);
  if (node_failed(src) || node_failed(dst)) {  // failed during setup
    result.status = TransferStatus::kFailed;
    result.finished = sim_.now();
    co_return result;
  }
  if (bytes == 0) {
    result.finished = sim_.now();
    traffic_[src].bytes_sent += 0;
    if (observer_) observer_(src, dst, result);
    co_return result;
  }

  streams = static_cast<unsigned>(
      std::min<Bytes>(streams, std::max<Bytes>(bytes, 1)));  // no empty streams
  std::vector<FlowPtr> stream_flows;
  stream_flows.reserve(streams);
  advance_flows();
  for (unsigned s = 0; s < streams; ++s) {
    const Bytes share = bytes / streams + (s < bytes % streams ? 1 : 0);
    auto flow = std::make_shared<Flow>();
    flow->src = src;
    flow->dst = dst;
    flow->requested = share;
    flow->remaining = static_cast<double>(share);
    flow->started = sim_.now();
    flow->signal = std::make_unique<sim::Signal>(sim_);
    flows_.push_back(flow);
    stream_flows.push_back(std::move(flow));
  }
  recompute_rates();

  for (const auto& flow : stream_flows) co_await flow->signal->wait();

  result.status = TransferStatus::kCompleted;
  result.transferred = 0;
  for (const auto& flow : stream_flows) {
    if (flow->status == TransferStatus::kFailed) result.status = TransferStatus::kFailed;
    const double moved =
        static_cast<double>(flow->requested) - std::max(flow->remaining, 0.0);
    result.transferred += flow->status == TransferStatus::kCompleted
                              ? flow->requested
                              : static_cast<Bytes>(moved + 0.5);
  }
  result.finished = sim_.now();

  traffic_[src].bytes_sent += result.transferred;
  traffic_[dst].bytes_received += result.transferred;
  total_bytes_moved_ += result.transferred;
  if (observer_) observer_(src, dst, result);
  co_return result;
}

void Network::advance_flows() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_advance_;
  if (dt > 0.0) {
    for (auto& flow : flows_) flow->remaining -= flow->rate * dt;
  }
  last_advance_ = now;
}

void Network::recompute_rates() {
  // Drop finished flows from the active set first.
  std::vector<FlowPtr> live;
  live.reserve(flows_.size());
  for (auto& flow : flows_) {
    if (flow->done) continue;
    if (flow->remaining <= kEpsilonBytes ||
        (flow->rate > 0.0 && flow->remaining <= flow->rate * kMinTimeStep)) {
      complete_flow(flow, TransferStatus::kCompleted);
      continue;
    }
    live.push_back(flow);
  }
  flows_ = std::move(live);

  if (completion_event_.pending()) sim_.cancel(completion_event_);
  if (flows_.empty()) return;

  // Build the resource table: egress per distinct src, ingress per distinct
  // dst, provisioned pair limits, optional backbone, and a loopback class.
  std::vector<Bandwidth> capacities;
  std::unordered_map<std::uint64_t, std::size_t> resource_index;
  const auto resource = [&](std::uint64_t key, Bandwidth cap) {
    auto [it, inserted] = resource_index.emplace(key, capacities.size());
    if (inserted) capacities.push_back(cap);
    return it->second;
  };
  // Key space: kind in the top bits, node/pair id below.
  const auto egress_key = [](NodeId n) { return 0x1000000000ull + n; };
  const auto ingress_key = [](NodeId n) { return 0x2000000000ull + n; };
  const auto pair_key = [](NodeId s, NodeId d) {
    return 0x3000000000ull + (static_cast<std::uint64_t>(s) << 20) + d;
  };
  constexpr std::uint64_t kBackboneKey = 0x4000000000ull;
  const auto site_key = [](SiteId a, SiteId b) {
    if (a > b) std::swap(a, b);
    return 0x6000000000ull + (static_cast<std::uint64_t>(a) << 16) + b;
  };

  std::vector<FlowConstraints> constraints(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto& flow = flows_[i];
    auto& c = constraints[i];
    if (flow->src == flow->dst) {
      // Loopback copies share the node's loopback device, not the NIC.
      c.resources.push_back(resource(0x5000000000ull + flow->src, loopback_));
      continue;
    }
    c.resources.push_back(resource(egress_key(flow->src), topology_.egress(flow->src)));
    c.resources.push_back(resource(ingress_key(flow->dst), topology_.ingress(flow->dst)));
    const Bandwidth pair_cap = topology_.pair_limit(flow->src, flow->dst);
    if (pair_cap != std::numeric_limits<Bandwidth>::infinity()) {
      c.resources.push_back(resource(pair_key(flow->src, flow->dst), pair_cap));
    }
    if (topology_.has_backbone_cap()) {
      c.resources.push_back(resource(kBackboneKey, topology_.backbone_capacity()));
    }
    if (topology_.has_intersite_caps()) {
      const SiteId sa = topology_.site(flow->src);
      const SiteId sb = topology_.site(flow->dst);
      const Bandwidth wan = topology_.intersite_capacity(sa, sb);
      if (wan != std::numeric_limits<Bandwidth>::infinity()) {
        c.resources.push_back(resource(site_key(sa, sb), wan));
      }
    }
  }

  const auto rates = max_min_fair_rates(capacities, constraints);

  SimTime next_completion = std::numeric_limits<SimTime>::infinity();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i]->rate = rates[i];
    if (rates[i] > 0.0) {
      next_completion = std::min(next_completion, flows_[i]->remaining / rates[i]);
    }
  }
  FRIEDA_CHECK(next_completion != std::numeric_limits<SimTime>::infinity(),
               "active flows exist but none can make progress");

  completion_event_ = sim_.schedule_in(std::max(next_completion, kMinTimeStep), [this] {
    advance_flows();
    recompute_rates();
  });
}

void Network::complete_flow(const FlowPtr& flow, TransferStatus status) {
  flow->done = true;
  flow->status = status;
  if (status == TransferStatus::kCompleted) flow->remaining = 0.0;
  flow->signal->trigger();
}

void Network::fail_node(NodeId node) {
  if (!failed_nodes_.insert(node).second) return;
  FLOG(kDebug, "net", "node " << node << " failed; aborting its flows");
  advance_flows();
  for (auto& flow : flows_) {
    if (flow->done) continue;
    if (flow->src == node || flow->dst == node) {
      complete_flow(flow, TransferStatus::kFailed);
    }
  }
  recompute_rates();
}

void Network::restore_node(NodeId node) { failed_nodes_.erase(node); }

NodeTraffic Network::traffic(NodeId node) const {
  const auto it = traffic_.find(node);
  return it == traffic_.end() ? NodeTraffic{} : it->second;
}

}  // namespace frieda::net
