#include "net/topology.hpp"

#include "common/error.hpp"

namespace frieda::net {

NodeId Topology::add_node(std::string name, Bandwidth egress, Bandwidth ingress) {
  FRIEDA_CHECK(egress > 0 && ingress > 0, "NIC capacities must be positive");
  nodes_.push_back(Node{std::move(name), egress, ingress});
  ++version_;
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Topology::check(NodeId id) const {
  FRIEDA_CHECK(id < nodes_.size(), "node id " << id << " out of range");
}

const std::string& Topology::name(NodeId id) const {
  check(id);
  return nodes_[id].name;
}

Bandwidth Topology::egress(NodeId id) const {
  check(id);
  return nodes_[id].egress;
}

Bandwidth Topology::ingress(NodeId id) const {
  check(id);
  return nodes_[id].ingress;
}

void Topology::set_nic(NodeId id, Bandwidth egress, Bandwidth ingress) {
  check(id);
  FRIEDA_CHECK(egress > 0 && ingress > 0, "NIC capacities must be positive");
  nodes_[id].egress = egress;
  nodes_[id].ingress = ingress;
  ++version_;
}

void Topology::set_pair_limit(NodeId src, NodeId dst, Bandwidth cap) {
  check(src);
  check(dst);
  FRIEDA_CHECK(cap > 0, "pair limit must be positive");
  pair_limits_[pair_key(src, dst)] = cap;
  ++version_;
}

Bandwidth Topology::pair_limit(NodeId src, NodeId dst) const {
  const auto it = pair_limits_.find(pair_key(src, dst));
  if (it == pair_limits_.end()) return std::numeric_limits<Bandwidth>::infinity();
  return it->second;
}

void Topology::set_rack(NodeId id, RackId rack) {
  check(id);
  nodes_[id].rack = rack;
  ++version_;
}

RackId Topology::rack(NodeId id) const {
  check(id);
  return nodes_[id].rack;
}

void Topology::set_rack_uplink(RackId rack, Bandwidth cap) {
  FRIEDA_CHECK(rack != kNoRack, "cannot configure an uplink for kNoRack");
  FRIEDA_CHECK(cap > 0, "rack uplink capacity must be positive");
  if (rack >= rack_uplinks_.size()) {
    rack_uplinks_.resize(rack + 1, std::numeric_limits<Bandwidth>::infinity());
  }
  if (rack_uplinks_[rack] == std::numeric_limits<Bandwidth>::infinity()) {
    ++rack_uplinks_configured_;
  }
  rack_uplinks_[rack] = cap;
  ++version_;
}

Bandwidth Topology::rack_uplink(RackId rack) const {
  if (rack == kNoRack || rack >= rack_uplinks_.size()) {
    return std::numeric_limits<Bandwidth>::infinity();
  }
  return rack_uplinks_[rack];
}

void Topology::set_site(NodeId id, SiteId site) {
  check(id);
  nodes_[id].site = site;
  ++version_;
}

SiteId Topology::site(NodeId id) const {
  check(id);
  return nodes_[id].site;
}

void Topology::set_intersite_capacity(SiteId a, SiteId b, Bandwidth cap) {
  FRIEDA_CHECK(a != b, "inter-site capacity needs two distinct sites");
  FRIEDA_CHECK(cap > 0, "inter-site capacity must be positive");
  intersite_[site_key(a, b)] = cap;
  ++version_;
}

Bandwidth Topology::intersite_capacity(SiteId a, SiteId b) const {
  if (a == b) return std::numeric_limits<Bandwidth>::infinity();
  const auto it = intersite_.find(site_key(a, b));
  if (it == intersite_.end()) return std::numeric_limits<Bandwidth>::infinity();
  return it->second;
}

}  // namespace frieda::net
