// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// Each active flow traverses a set of capacity-constrained resources (source
// NIC egress, destination NIC ingress, optionally a provisioned pair limit
// and a backbone cap).  The solver assigns every flow the max-min fair rate:
// repeatedly find the most-constrained resource, freeze its flows at the
// equal share it can afford, remove them, and continue.  This is the standard
// fluid model for TCP-like sharing and is what makes the master's NIC the
// staging bottleneck in the paper's experiments (Section IV).
//
// Two entry points share one implementation:
//   * max_min_fair_rates           — one FlowConstraints per flow (legacy);
//   * max_min_fair_rates_weighted  — flows with identical resource sets are
//     coalesced into a counted class, so the progressive-filling rounds cost
//     O(distinct classes) instead of O(flows).  This is the network model's
//     fast path: the N parallel streams of one src→dst transfer, or many
//     transfers over the same pair, are a single class.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace frieda::net {

/// One flow's demand: the indices of the resources it traverses.
struct FlowConstraints {
  std::vector<std::size_t> resources;
};

/// A coalesced class of `count` identical flows that all traverse exactly the
/// same resources.  Each member flow receives the class's per-flow rate.
struct WeightedFlowConstraints {
  std::vector<std::size_t> resources;
  std::uint64_t count = 1;
};

/// Reusable solver buffers; pass the same instance across calls to avoid
/// reallocating per-solve scratch state (the network recomputes rates on
/// every flow arrival/departure).
struct FairshareScratch {
  std::vector<double> residual;
  std::vector<std::uint64_t> unfrozen;
  std::vector<unsigned char> frozen;
};

/// Solve max-min fair rates.
///
/// `capacities[r]` is resource r's capacity in bytes/second; `flows[f]` lists
/// the resources flow f traverses (must be non-empty, indices in range).
/// Returns one rate per flow.  Flows through zero-capacity resources get 0;
/// flows whose every resource is unconstrained (+infinity) get 0 as well
/// (orphan flows — the fluid model has no finite bottleneck to fill against).
std::vector<Bandwidth> max_min_fair_rates(const std::vector<Bandwidth>& capacities,
                                          const std::vector<FlowConstraints>& flows);

/// Counted/weighted variant: `classes[c]` stands for `classes[c].count`
/// identical flows.  Returns the per-flow rate of each class (every member
/// flow of class c runs at the returned rates[c]).  Equivalent to expanding
/// each class into `count` copies and calling max_min_fair_rates.
std::vector<Bandwidth> max_min_fair_rates_weighted(
    const std::vector<Bandwidth>& capacities,
    const std::vector<WeightedFlowConstraints>& classes);

/// Allocation-lean overload: reuses `scratch` buffers and writes the per-flow
/// class rates into `rates_out` (resized to classes.size()).
void max_min_fair_rates_weighted(const std::vector<Bandwidth>& capacities,
                                 const std::vector<WeightedFlowConstraints>& classes,
                                 FairshareScratch& scratch,
                                 std::vector<Bandwidth>& rates_out);

/// Pointer/count variant of the allocation-lean overload, for callers that
/// keep a grow-only class buffer and solve over a prefix of it.
void max_min_fair_rates_weighted(const std::vector<Bandwidth>& capacities,
                                 const WeightedFlowConstraints* classes, std::size_t count,
                                 FairshareScratch& scratch,
                                 std::vector<Bandwidth>& rates_out);

}  // namespace frieda::net
