// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// Each active flow traverses a set of capacity-constrained resources (source
// NIC egress, destination NIC ingress, optionally a provisioned pair limit
// and a backbone cap).  The solver assigns every flow the max-min fair rate:
// repeatedly find the most-constrained resource, freeze its flows at the
// equal share it can afford, remove them, and continue.  This is the standard
// fluid model for TCP-like sharing and is what makes the master's NIC the
// staging bottleneck in the paper's experiments (Section IV).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace frieda::net {

/// One flow's demand: the indices of the resources it traverses.
struct FlowConstraints {
  std::vector<std::size_t> resources;
};

/// Solve max-min fair rates.
///
/// `capacities[r]` is resource r's capacity in bytes/second; `flows[f]` lists
/// the resources flow f traverses (must be non-empty, indices in range).
/// Returns one rate per flow.  Flows through zero-capacity resources get 0.
std::vector<Bandwidth> max_min_fair_rates(const std::vector<Bandwidth>& capacities,
                                          const std::vector<FlowConstraints>& flows);

}  // namespace frieda::net
