// Network topology: a node / rack / site hierarchy with NIC capacities,
// optional rack uplinks, inter-site WAN caps, provisioned pair limits and a
// backbone capacity.
//
// The evaluation topology (paper Section IV.A) is a star: every VM hangs off
// a non-blocking switch through a 100 Mbps provisioned NIC.  A flow src→dst
// therefore traverses src's egress, dst's ingress, optionally a provisioned
// per-pair limit, and optionally the shared backbone.
//
// At cloud scale the star generalizes to a hierarchy: nodes are grouped into
// racks (each with an optional shared uplink capacity), racks into federated
// sites (each pair with an optional WAN cap).  A flow's full constraint
// vector — egress, ingress, the uplink of each racked endpoint when the
// endpoints sit in different racks, the inter-site WAN, the backbone — is
// assembled from indexed arrays in O(1) per resource, which keeps the
// constraint graph sparse: flows confined to one rack share nothing with
// other racks unless a backbone cap couples them, so the network model's
// incremental solver can re-solve small dirty sets (see docs/performance.md).
//
// Pair and inter-site overrides live in hashed flat maps keyed by packed
// integer ids (not ordered std::maps); rack membership and uplinks are plain
// vectors indexed by node/rack id.  Every mutation bumps version(), which
// the network uses to invalidate its cached per-flow constraint vectors.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace frieda::net {

/// Identifier of a topology node (VM, data source, storage server).
using NodeId = std::uint32_t;

/// Identifier of a site in a federated deployment (paper Sections I, V.C:
/// "federated cloud sites").  Site 0 is the default/home site.
using SiteId = std::uint16_t;

/// Identifier of a rack (a group of nodes behind one shared uplink).
using RackId = std::uint32_t;

/// Sentinel: the node has not been assigned to a rack (it hangs directly off
/// the core switch and traverses no uplink).
inline constexpr RackId kNoRack = 0xffffffffu;

/// Star topology with per-node NIC capacities and optional overrides.
class Topology {
 public:
  /// Add a node; returns its id.  `egress`/`ingress` are NIC capacities in
  /// bytes/second.
  NodeId add_node(std::string name, Bandwidth egress, Bandwidth ingress);

  /// Number of nodes.
  std::size_t node_count() const { return nodes_.size(); }

  /// Node's display name.
  const std::string& name(NodeId id) const;

  /// NIC capacities.
  Bandwidth egress(NodeId id) const;
  Bandwidth ingress(NodeId id) const;

  /// Replace a node's NIC capacities (elastic re-provisioning).
  void set_nic(NodeId id, Bandwidth egress, Bandwidth ingress);

  /// Provision a directional per-pair bandwidth cap (src -> dst).
  void set_pair_limit(NodeId src, NodeId dst, Bandwidth cap);

  /// Pair cap if provisioned, else +infinity.
  Bandwidth pair_limit(NodeId src, NodeId dst) const;

  /// Cap the aggregate backbone (default: unconstrained switch).
  void set_backbone_capacity(Bandwidth cap) {
    backbone_ = cap;
    ++version_;
  }

  /// Backbone capacity (+infinity when unconstrained).
  Bandwidth backbone_capacity() const { return backbone_; }

  /// True when a backbone cap was configured.
  bool has_backbone_cap() const {
    return backbone_ != std::numeric_limits<Bandwidth>::infinity();
  }

  /// Assign a node to a rack.  A flow whose endpoints sit in different racks
  /// traverses the uplink of each racked endpoint; intra-rack flows (and
  /// endpoints left at kNoRack) bypass the uplinks entirely.
  void set_rack(NodeId id, RackId rack);

  /// The node's rack (kNoRack when unassigned).
  RackId rack(NodeId id) const;

  /// Cap the shared uplink of `rack` (up and down traffic share it, like a
  /// top-of-rack switch trunk).
  void set_rack_uplink(RackId rack, Bandwidth cap);

  /// Rack uplink capacity (+infinity when not configured).
  Bandwidth rack_uplink(RackId rack) const;

  /// True when any rack uplink was configured.
  bool has_rack_uplinks() const { return rack_uplinks_configured_ > 0; }

  /// Number of rack uplinks configured so far.
  std::size_t rack_count() const { return rack_uplinks_.size(); }

  /// Assign a node to a federated site (default: site 0).
  void set_site(NodeId id, SiteId site);

  /// The node's site.
  SiteId site(NodeId id) const;

  /// Cap the WAN between two sites (order-insensitive); inter-site flows in
  /// both directions share this capacity, like a provisioned circuit.
  void set_intersite_capacity(SiteId a, SiteId b, Bandwidth cap);

  /// Inter-site capacity (+infinity when not configured).
  Bandwidth intersite_capacity(SiteId a, SiteId b) const;

  /// True when any inter-site cap was configured.
  bool has_intersite_caps() const { return !intersite_.empty(); }

  /// Monotonic mutation counter: bumped by every change that can alter a
  /// flow's constraint set or a resource's capacity (add_node, set_nic,
  /// set_pair_limit, set_backbone_capacity, set_site,
  /// set_intersite_capacity).  Caches keyed on this value stay valid exactly
  /// as long as it is unchanged.
  std::uint64_t version() const { return version_; }

 private:
  struct Node {
    std::string name;
    Bandwidth egress;
    Bandwidth ingress;
    SiteId site = 0;
    RackId rack = kNoRack;
  };
  void check(NodeId id) const;

  static std::uint64_t pair_key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  static std::uint32_t site_key(SiteId a, SiteId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint32_t>(a) << 16) | b;
  }

  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, Bandwidth> pair_limits_;
  std::unordered_map<std::uint32_t, Bandwidth> intersite_;
  std::vector<Bandwidth> rack_uplinks_;  ///< indexed by RackId; +inf = unset
  std::size_t rack_uplinks_configured_ = 0;
  Bandwidth backbone_ = std::numeric_limits<Bandwidth>::infinity();
  std::uint64_t version_ = 0;
};

}  // namespace frieda::net
