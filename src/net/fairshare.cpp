#include "net/fairshare.hpp"

#include <limits>

#include "common/error.hpp"

namespace frieda::net {

std::vector<Bandwidth> max_min_fair_rates(const std::vector<Bandwidth>& capacities,
                                          const std::vector<FlowConstraints>& flows) {
  const std::size_t nr = capacities.size();
  const std::size_t nf = flows.size();
  std::vector<Bandwidth> rate(nf, 0.0);
  if (nf == 0) return rate;

  // Residual capacity per resource and number of unfrozen flows crossing it.
  std::vector<double> residual(capacities);
  std::vector<std::size_t> unfrozen_count(nr, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    FRIEDA_CHECK(!flows[f].resources.empty(), "flow " << f << " traverses no resources");
    for (std::size_t r : flows[f].resources) {
      FRIEDA_CHECK(r < nr, "flow " << f << " references resource " << r << " out of range");
      ++unfrozen_count[r];
    }
  }

  std::vector<bool> frozen(nf, false);
  std::size_t remaining = nf;
  while (remaining > 0) {
    // Find the bottleneck resource: smallest equal share among resources
    // that still carry unfrozen flows.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < nr; ++r) {
      if (unfrozen_count[r] == 0) continue;
      const double share = std::max(residual[r], 0.0) / static_cast<double>(unfrozen_count[r]);
      best_share = std::min(best_share, share);
    }
    if (best_share == std::numeric_limits<double>::infinity()) break;  // orphan flows

    // Freeze every unfrozen flow that crosses a resource at the bottleneck
    // share.  (All resources whose share equals best_share are saturated.)
    bool froze_any = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool bottlenecked = false;
      for (std::size_t r : flows[f].resources) {
        if (unfrozen_count[r] == 0) continue;
        const double share =
            std::max(residual[r], 0.0) / static_cast<double>(unfrozen_count[r]);
        if (share <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      frozen[f] = true;
      froze_any = true;
      rate[f] = best_share;
      --remaining;
      for (std::size_t r : flows[f].resources) {
        residual[r] -= best_share;
        --unfrozen_count[r];
      }
    }
    FRIEDA_CHECK(froze_any, "max-min solver failed to make progress");
  }
  return rate;
}

}  // namespace frieda::net
