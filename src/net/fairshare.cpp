#include "net/fairshare.hpp"

#include <limits>

#include "common/error.hpp"

namespace frieda::net {

namespace {

// Progressive filling over coalesced classes.  `res_of(c)` yields class c's
// resource list, `count_of(c)` its member count.  Writes the per-flow rate of
// each class into `rate` (pre-sized to nc, zero-initialised).
//
// Freezing a class subtracts the share once per member rather than
// count*share in one multiply: every member of a round's freeze set receives
// exactly the round's bottleneck share, so the repeated subtraction keeps the
// residuals bit-identical to running the flat per-flow solver — coalescing is
// a pure speedup, not a semantic change.
template <typename ResOf, typename CountOf>
void solve(const std::vector<Bandwidth>& capacities, std::size_t nc, ResOf res_of,
           CountOf count_of, FairshareScratch& scratch, std::vector<Bandwidth>& rate) {
  const std::size_t nr = capacities.size();

  // Residual capacity per resource and number of unfrozen flows crossing it.
  auto& residual = scratch.residual;
  auto& unfrozen_count = scratch.unfrozen;
  auto& frozen = scratch.frozen;
  residual.assign(capacities.begin(), capacities.end());
  unfrozen_count.assign(nr, 0);
  frozen.assign(nc, 0);

  for (std::size_t c = 0; c < nc; ++c) {
    FRIEDA_CHECK(!res_of(c).empty(), "flow class " << c << " traverses no resources");
    for (std::size_t r : res_of(c)) {
      FRIEDA_CHECK(r < nr, "flow class " << c << " references resource " << r << " out of range");
      unfrozen_count[r] += count_of(c);
    }
  }

  std::size_t remaining = nc;
  while (remaining > 0) {
    // Find the bottleneck resource: smallest equal share among resources
    // that still carry unfrozen flows.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < nr; ++r) {
      if (unfrozen_count[r] == 0) continue;
      const double share = std::max(residual[r], 0.0) / static_cast<double>(unfrozen_count[r]);
      best_share = std::min(best_share, share);
    }
    if (best_share == std::numeric_limits<double>::infinity()) break;  // orphan flows

    // Freeze every unfrozen class that crosses a resource at the bottleneck
    // share.  (All resources whose share equals best_share are saturated.)
    bool froze_any = false;
    for (std::size_t c = 0; c < nc; ++c) {
      if (frozen[c]) continue;
      bool bottlenecked = false;
      for (std::size_t r : res_of(c)) {
        if (unfrozen_count[r] == 0) continue;
        const double share =
            std::max(residual[r], 0.0) / static_cast<double>(unfrozen_count[r]);
        if (share <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      frozen[c] = 1;
      froze_any = true;
      rate[c] = best_share;
      --remaining;
      const std::uint64_t count = count_of(c);
      for (std::size_t r : res_of(c)) {
        for (std::uint64_t k = 0; k < count; ++k) residual[r] -= best_share;
        unfrozen_count[r] -= count;
      }
    }
    FRIEDA_CHECK(froze_any, "max-min solver failed to make progress");
  }
}

}  // namespace

std::vector<Bandwidth> max_min_fair_rates(const std::vector<Bandwidth>& capacities,
                                          const std::vector<FlowConstraints>& flows) {
  std::vector<Bandwidth> rate(flows.size(), 0.0);
  if (flows.empty()) return rate;
  FairshareScratch scratch;
  solve(
      capacities, flows.size(),
      [&](std::size_t f) -> const std::vector<std::size_t>& { return flows[f].resources; },
      [](std::size_t) -> std::uint64_t { return 1; }, scratch, rate);
  return rate;
}

void max_min_fair_rates_weighted(const std::vector<Bandwidth>& capacities,
                                 const WeightedFlowConstraints* classes, std::size_t count,
                                 FairshareScratch& scratch,
                                 std::vector<Bandwidth>& rates_out) {
  rates_out.assign(count, 0.0);
  if (count == 0) return;
  for (std::size_t c = 0; c < count; ++c) {
    FRIEDA_CHECK(classes[c].count > 0, "flow class " << c << " has zero members");
  }
  solve(
      capacities, count,
      [&](std::size_t c) -> const std::vector<std::size_t>& { return classes[c].resources; },
      [&](std::size_t c) -> std::uint64_t { return classes[c].count; }, scratch, rates_out);
}

void max_min_fair_rates_weighted(const std::vector<Bandwidth>& capacities,
                                 const std::vector<WeightedFlowConstraints>& classes,
                                 FairshareScratch& scratch,
                                 std::vector<Bandwidth>& rates_out) {
  max_min_fair_rates_weighted(capacities, classes.data(), classes.size(), scratch, rates_out);
}

std::vector<Bandwidth> max_min_fair_rates_weighted(
    const std::vector<Bandwidth>& capacities,
    const std::vector<WeightedFlowConstraints>& classes) {
  std::vector<Bandwidth> rate;
  FairshareScratch scratch;
  max_min_fair_rates_weighted(capacities, classes, scratch, rate);
  return rate;
}

}  // namespace frieda::net
