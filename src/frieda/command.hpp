// Execution-syntax templates (paper Section II.D).
//
// "If 'app' is the program that needs to be executed and takes arg1 and arg2
//  as params and inp1 as input, then the execution command is sent to the
//  workers as `app arg1 arg2 $inp1`, where $inp1 is replaced by the location
//  of the file at runtime."
//
// CommandTemplate parses that syntax, validates that the $inpN placeholders
// are dense (inp1..inpK), and binds concrete file paths when the worker
// receives a work unit.  FRIEDA never modifies the program itself.
#pragma once

#include <string>
#include <vector>

#include "frieda/types.hpp"
#include "storage/file.hpp"

namespace frieda::core {

/// A parsed program invocation template with $inpN input placeholders.
class CommandTemplate {
 public:
  /// Parse from the paper's syntax.  Throws FriedaError on malformed or
  /// non-dense placeholders ($inp1..$inpK each exactly once).
  explicit CommandTemplate(const std::string& spec);

  /// Number of input placeholders K (files each program instance consumes).
  std::size_t input_arity() const { return arity_; }

  /// The program token (first word).
  const std::string& program() const { return tokens_.front(); }

  /// Raw template text.
  const std::string& spec() const { return spec_; }

  /// Substitute file locations for the placeholders; requires
  /// paths.size() == input_arity().
  std::string bind(const std::vector<std::string>& paths) const;

  /// Bind using the catalog names of a work unit's files, prefixed with a
  /// staging directory ("/data/<name>").
  std::string bind_unit(const WorkUnit& unit, const storage::FileCatalog& catalog,
                        const std::string& staging_dir = "/data") const;

  /// Batch form of bind_unit over a whole partition list (execution-template
  /// capture): out[i] is bind_unit(units[i], ...).
  std::vector<std::string> bind_all(const std::vector<WorkUnit>& units,
                                    const storage::FileCatalog& catalog,
                                    const std::string& staging_dir = "/data") const;

  /// True when a unit's group size matches the template's arity.
  bool accepts(const WorkUnit& unit) const { return unit.inputs.size() == arity_; }

 private:
  std::string spec_;
  std::vector<std::string> tokens_;  // split on whitespace
  std::size_t arity_ = 0;
};

}  // namespace frieda::core
