#include "frieda/report_io.hpp"

#include <cstdint>
#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "runtime/rt_engine.hpp"

namespace frieda::core {

namespace {

constexpr const char* kRunHeader = "frieda-run-report v1";
constexpr const char* kRtHeader = "frieda-rt-report v1";

void append_hex(std::string& out, std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) out += digits[(v >> shift) & 0xf];
}

// Strict unsigned parse: decimal digits only, full consumption, no sign.
std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

std::optional<bool> parse_bool01(const std::string& s) {
  if (s == "0") return false;
  if (s == "1") return true;
  return std::nullopt;
}

// Line cursor over the serialized text; every getter throws on truncation,
// so a child that died mid-write surfaces as a parse error, not garbage.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  std::string next(const char* what) {
    std::string line;
    FRIEDA_CHECK(static_cast<bool>(std::getline(in_, line)),
                 "truncated report: missing " << what);
    return line;
  }

  // Next line split into fields; checks the record tag and field count.
  std::vector<std::string> record(const char* tag, std::size_t fields) {
    const std::string line = next(tag);
    auto parts = split_escaped(line);
    FRIEDA_CHECK(parts.has_value(), "malformed report line '" << line << "'");
    FRIEDA_CHECK(parts->size() == fields && (*parts)[0] == tag,
                 "expected " << fields << "-field '" << tag << "' record, got '" << line
                             << "'");
    return std::move(*parts);
  }

 private:
  std::istringstream in_;
};

double require_f64(const std::string& field) {
  const auto v = parse_f64_bits(field);
  FRIEDA_CHECK(v.has_value(), "malformed f64 field '" << field << "'");
  return *v;
}

std::uint64_t require_u64(const std::string& field) {
  const auto v = parse_u64(field);
  FRIEDA_CHECK(v.has_value(), "malformed integer field '" << field << "'");
  return *v;
}

bool require_bool(const std::string& field) {
  const auto v = parse_bool01(field);
  FRIEDA_CHECK(v.has_value(), "malformed bool field '" << field << "' (want 0/1)");
  return *v;
}

}  // namespace

std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '|': out += "\\|"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::optional<std::vector<std::string>> split_escaped(const std::string& line) {
  std::vector<std::string> parts(1);
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) return std::nullopt;
      const char next = line[++i];
      switch (next) {
        case '\\': parts.back() += '\\'; break;
        case '|': parts.back() += '|'; break;
        case 'n': parts.back() += '\n'; break;
        default: return std::nullopt;
      }
    } else if (c == '|') {
      parts.emplace_back();
    } else {
      parts.back() += c;
    }
  }
  return parts;
}

std::string f64_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  std::string out;
  out.reserve(16);
  append_hex(out, bits);
  return out;
}

std::optional<double> parse_f64_bits(const std::string& s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t bits = 0;
  for (char c : s) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
    bits = (bits << 4) | digit;
  }
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string serialize_run_report(const RunReport& r) {
  std::ostringstream os;
  os << kRunHeader << "\n";
  os << "size|" << r.units.size() << "|" << r.workers.size() << "|"
     << r.timeline.intervals().size() << "|" << r.latency.count() << "\n";
  os << "head|" << escape_field(r.app) << "|" << escape_field(r.strategy) << "|"
     << escape_field(r.scheme) << "\n";
  os << "time|" << f64_bits(r.ready_time) << "|" << f64_bits(r.start_time) << "|"
     << f64_bits(r.staging_end) << "|" << f64_bits(r.end_time) << "\n";
  os << "units|" << r.units_total << "|" << r.units_completed << "|" << r.units_failed
     << "|" << r.units_unprocessed << "\n";
  os << "net|" << r.bytes_moved << "|" << r.transfers << "|" << r.workers_isolated << "\n";
  os << "svc|" << (r.open_loop ? 1 : 0) << "|" << f64_bits(r.serve_start) << "|"
     << r.scale_outs << "|" << r.scale_ins << "\n";
  for (const double s : r.latency.samples()) os << "l|" << f64_bits(s) << "\n";
  for (const auto& u : r.units) {
    os << "u|" << u.unit << "|" << static_cast<int>(u.status) << "|" << u.worker << "|"
       << u.attempts << "|" << f64_bits(u.arrival) << "|" << f64_bits(u.dispatched) << "|"
       << f64_bits(u.finished) << "|" << f64_bits(u.transfer_seconds) << "|"
       << f64_bits(u.exec_seconds) << "\n";
  }
  for (const auto& w : r.workers) {
    os << "w|" << w.worker << "|" << w.vm << "|" << w.slot << "|" << w.units_completed
       << "|" << f64_bits(w.busy_seconds) << "|" << (w.isolated ? 1 : 0) << "|"
       << (w.drained ? 1 : 0) << "\n";
  }
  for (const auto& iv : r.timeline.intervals()) {
    os << "i|" << static_cast<int>(iv.kind) << "|" << f64_bits(iv.start) << "|"
       << f64_bits(iv.end) << "|" << escape_field(iv.label) << "\n";
  }
  os << "end\n";
  return os.str();
}

RunReport deserialize_run_report(const std::string& text) {
  LineReader in(text);
  FRIEDA_CHECK(in.next("header") == kRunHeader,
               "not a serialized run report (want '" << kRunHeader << "' header)");
  const auto size = in.record("size", 5);
  const std::size_t n_units = require_u64(size[1]);
  const std::size_t n_workers = require_u64(size[2]);
  const std::size_t n_intervals = require_u64(size[3]);
  const std::size_t n_latency = require_u64(size[4]);

  RunReport r;
  const auto head = in.record("head", 4);
  r.app = head[1];
  r.strategy = head[2];
  r.scheme = head[3];
  const auto time = in.record("time", 5);
  r.ready_time = require_f64(time[1]);
  r.start_time = require_f64(time[2]);
  r.staging_end = require_f64(time[3]);
  r.end_time = require_f64(time[4]);
  const auto units = in.record("units", 5);
  r.units_total = require_u64(units[1]);
  r.units_completed = require_u64(units[2]);
  r.units_failed = require_u64(units[3]);
  r.units_unprocessed = require_u64(units[4]);
  const auto net = in.record("net", 4);
  r.bytes_moved = require_u64(net[1]);
  r.transfers = require_u64(net[2]);
  r.workers_isolated = require_u64(net[3]);
  const auto svc = in.record("svc", 5);
  r.open_loop = require_bool(svc[1]);
  r.serve_start = require_f64(svc[2]);
  r.scale_outs = require_u64(svc[3]);
  r.scale_ins = require_u64(svc[4]);

  for (std::size_t i = 0; i < n_latency; ++i) {
    r.latency.add(require_f64(in.record("l", 2)[1]));
  }
  r.units.reserve(n_units);
  for (std::size_t i = 0; i < n_units; ++i) {
    const auto u = in.record("u", 10);
    UnitRecord rec;
    rec.unit = static_cast<WorkUnitId>(require_u64(u[1]));
    const std::uint64_t status = require_u64(u[2]);
    FRIEDA_CHECK(status <= static_cast<std::uint64_t>(UnitStatus::kUnprocessed),
                 "unknown unit status " << status);
    rec.status = static_cast<UnitStatus>(status);
    rec.worker = static_cast<WorkerId>(require_u64(u[3]));
    rec.attempts = static_cast<int>(require_u64(u[4]));
    rec.arrival = require_f64(u[5]);
    rec.dispatched = require_f64(u[6]);
    rec.finished = require_f64(u[7]);
    rec.transfer_seconds = require_f64(u[8]);
    rec.exec_seconds = require_f64(u[9]);
    r.units.push_back(rec);
  }
  r.workers.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    const auto w = in.record("w", 8);
    WorkerReport rec;
    rec.worker = static_cast<WorkerId>(require_u64(w[1]));
    rec.vm = static_cast<std::uint32_t>(require_u64(w[2]));
    rec.slot = static_cast<unsigned>(require_u64(w[3]));
    rec.units_completed = require_u64(w[4]);
    rec.busy_seconds = require_f64(w[5]);
    rec.isolated = require_bool(w[6]);
    rec.drained = require_bool(w[7]);
    r.workers.push_back(rec);
  }
  for (std::size_t i = 0; i < n_intervals; ++i) {
    const auto iv = in.record("i", 5);
    const std::uint64_t kind = require_u64(iv[1]);
    FRIEDA_CHECK(kind <= static_cast<std::uint64_t>(ActivityKind::kStage),
                 "unknown activity kind " << kind);
    r.timeline.record(static_cast<ActivityKind>(kind), require_f64(iv[2]),
                      require_f64(iv[3]), iv[4]);
  }
  FRIEDA_CHECK(in.next("end marker") == "end", "truncated report: missing end marker");
  return r;
}

std::string serialize_rt_report(const rt::RtReport& r) {
  std::ostringstream os;
  os << kRtHeader << "\n";
  os << "size|" << r.units.size() << "|" << r.per_worker_completed.size() << "\n";
  os << "sum|" << f64_bits(r.makespan) << "|" << f64_bits(r.staging_seconds) << "|"
     << r.units_completed << "|" << r.units_failed << "|" << r.bytes_staged << "\n";
  for (const auto& u : r.units) {
    os << "u|" << u.unit << "|" << u.worker << "|" << (u.ok ? 1 : 0) << "|"
       << f64_bits(u.transfer_seconds) << "|" << f64_bits(u.exec_seconds) << "\n";
  }
  for (const std::size_t c : r.per_worker_completed) os << "pw|" << c << "\n";
  os << "end\n";
  return os.str();
}

rt::RtReport deserialize_rt_report(const std::string& text) {
  LineReader in(text);
  FRIEDA_CHECK(in.next("header") == kRtHeader,
               "not a serialized rt report (want '" << kRtHeader << "' header)");
  const auto size = in.record("size", 3);
  const std::size_t n_units = require_u64(size[1]);
  const std::size_t n_workers = require_u64(size[2]);

  rt::RtReport r;
  const auto sum = in.record("sum", 6);
  r.makespan = require_f64(sum[1]);
  r.staging_seconds = require_f64(sum[2]);
  r.units_completed = require_u64(sum[3]);
  r.units_failed = require_u64(sum[4]);
  r.bytes_staged = require_u64(sum[5]);
  r.units.reserve(n_units);
  for (std::size_t i = 0; i < n_units; ++i) {
    const auto u = in.record("u", 6);
    rt::RtUnitRecord rec;
    rec.unit = static_cast<WorkUnitId>(require_u64(u[1]));
    rec.worker = static_cast<WorkerId>(require_u64(u[2]));
    rec.ok = require_bool(u[3]);
    rec.transfer_seconds = require_f64(u[4]);
    rec.exec_seconds = require_f64(u[5]);
    r.units.push_back(rec);
  }
  r.per_worker_completed.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    r.per_worker_completed.push_back(require_u64(in.record("pw", 2)[1]));
  }
  FRIEDA_CHECK(in.next("end marker") == "end", "truncated report: missing end marker");
  return r;
}

}  // namespace frieda::core
