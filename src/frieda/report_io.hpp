// Versioned wire serialization for run reports.
//
// The multi-process sweep backend (src/exp/process_pool.hpp) executes each
// job in a forked child and ships the outcome back to the parent over a
// pipe.  What crosses that pipe is the text produced here: a versioned,
// line-based, escape-aware rendering of a `core::RunReport` or
// `rt::RtReport` that round-trips *exactly* — every double is encoded as
// its IEEE-754 bit pattern, so a report deserialized in the parent is
// field-identical (and therefore CSV-byte-identical) to the one the child
// measured.  The same text is what `exp::ResultCache` persists to disk
// (FRIEDA_RESULT_CACHE_FILE).
//
// Format (one record per line, '|'-delimited, string fields escaped with
// the same backslash scheme `ExecutionHistory` uses — see escape_field):
//
//   frieda-run-report v1
//   size|<units>|<workers>|<intervals>|<latency samples>
//   head|<app>|<strategy>|<scheme>
//   time|<ready>|<start>|<staging_end>|<end>          (f64 bit-pattern hex)
//   units|<total>|<completed>|<failed>|<unprocessed>
//   net|<bytes_moved>|<transfers>|<workers_isolated>
//   svc|<open_loop>|<serve_start>|<scale_outs>|<scale_ins>
//   l|<sample>                                        (one per latency sample)
//   u|<unit>|<status>|<worker>|<attempts>|<arrival>|<dispatched>|<finished>|<transfer>|<exec>
//   w|<worker>|<vm>|<slot>|<units_completed>|<busy>|<isolated>|<drained>
//   i|<kind>|<start>|<end>|<label>
//   end
//
// Deserialization is strict: a missing header, wrong version, count
// mismatch, malformed field, or missing `end` marker throws FriedaError —
// which is exactly how a child crash that truncates the stream surfaces as
// an isolated error outcome instead of a silently corrupted report.
//
// Layering note: `rt::RtReport` is a plain struct declared in
// src/runtime/rt_engine.hpp; serializing it here uses only the header (no
// frieda_rt link dependency), keeping both codecs next to the report types
// they mirror.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "frieda/report.hpp"

namespace frieda::rt {
struct RtReport;
}  // namespace frieda::rt

namespace frieda::core {

/// Escape '|', '\' and newlines so a free-form string can live in one
/// '|'-delimited field (shared with ExecutionHistory's history lines).
std::string escape_field(const std::string& s);

/// Split on unescaped '|' and decode escapes.  nullopt when the line ends
/// mid-escape (truncated) or uses an unknown escape sequence.
std::optional<std::vector<std::string>> split_escaped(const std::string& line);

/// Exact 16-hex-digit IEEE-754 bit pattern of `v` (round-trips NaNs,
/// signed zeros, everything — unlike any decimal rendering).
std::string f64_bits(double v);

/// Inverse of f64_bits; nullopt unless `s` is exactly 16 hex digits.
std::optional<double> parse_f64_bits(const std::string& s);

/// Render `report` in the versioned wire format above.
std::string serialize_run_report(const RunReport& report);

/// Parse a serialized RunReport; throws FriedaError on any malformation
/// (wrong header, truncation, count mismatch, bad field).
RunReport deserialize_run_report(const std::string& text);

/// Same pair for the threaded runtime's report (header "frieda-rt-report v1";
/// records: sum|..., u|..., pw|<completed> per worker, end).
std::string serialize_rt_report(const rt::RtReport& report);
rt::RtReport deserialize_rt_report(const std::string& text);

}  // namespace frieda::core
