#include "frieda/workflow.hpp"

#include <memory>

#include "common/error.hpp"
#include "common/log.hpp"
#include "frieda/partition.hpp"

namespace frieda::core {

namespace {

/// Adapter binding a stage's cost/output callbacks to its catalog.
class StageModel final : public AppModel {
 public:
  StageModel(const WorkflowStage& stage, const storage::FileCatalog& catalog)
      : stage_(stage), catalog_(catalog) {}

  const std::string& name() const override { return stage_.name; }
  SimTime task_seconds(const WorkUnit& unit) const override {
    return stage_.task_seconds(unit, catalog_);
  }
  Bytes common_data_bytes() const override { return stage_.common_data_bytes; }
  Bytes output_bytes(const WorkUnit& unit) const override {
    return stage_.output_bytes ? stage_.output_bytes(unit, catalog_) : 0;
  }

 private:
  const WorkflowStage& stage_;
  const storage::FileCatalog& catalog_;
};

}  // namespace

bool WorkflowResult::all_completed() const {
  for (const auto& report : stages) {
    if (!report.all_completed()) return false;
  }
  return !stages.empty();
}

void Workflow::add_stage(WorkflowStage stage) {
  FRIEDA_CHECK(!stage.name.empty(), "workflow stage needs a name");
  FRIEDA_CHECK(static_cast<bool>(stage.task_seconds),
               "workflow stage '" << stage.name << "' needs a task_seconds function");
  stages_.push_back(std::move(stage));
}

WorkflowResult Workflow::execute(const storage::FileCatalog& inputs) {
  FRIEDA_CHECK(!stages_.empty(), "workflow has no stages");

  WorkflowResult result;
  // Catalogs must outlive the runs referencing them; keep them all.
  std::vector<std::unique_ptr<storage::FileCatalog>> catalogs;
  catalogs.push_back(std::make_unique<storage::FileCatalog>(inputs));
  // Where each current-catalog file physically lives (empty = source).
  std::vector<std::pair<storage::FileId, cluster::VmId>> placed;

  for (std::size_t i = 0; i < stages_.size(); ++i) {
    auto& stage = stages_[i];
    const auto& catalog = *catalogs.back();
    FRIEDA_CHECK(catalog.count() > 0,
                 "stage '" << stage.name << "' has no inputs (previous stage produced none)");

    auto units = PartitionGenerator::generate(stage.scheme, catalog);
    auto model = std::make_unique<StageModel>(stage, catalog);

    RunOptions options = stage.options;
    options.scheme = stage.scheme;
    options.inputs_at_source = (i == 0);

    FriedaRun run(cluster_, catalog, units, *model, CommandTemplate(stage.command),
                  options);
    for (const auto& [file, vm] : placed) run.seed_replica(vm, file);

    FLOG(kInfo, "workflow", "stage '" << stage.name << "' starting with "
                                      << catalog.count() << " inputs");
    auto report = run.run();
    result.total_makespan += report.makespan();

    // Build the next catalog from the completed units' outputs, which stay
    // on the VM that produced them.
    auto next = std::make_unique<storage::FileCatalog>();
    std::vector<std::pair<storage::FileId, cluster::VmId>> next_placed;
    for (const auto& rec : report.units) {
      if (rec.status != UnitStatus::kCompleted) continue;
      const Bytes out = model->output_bytes(units[rec.unit]);
      if (out == 0) continue;
      const auto id = next->add_file(
          stage.name + "_out_" + std::to_string(rec.unit) + ".dat", out);
      next_placed.emplace_back(id, report.workers[rec.worker].vm);
    }
    result.stages.push_back(std::move(report));
    catalogs.push_back(std::move(next));
    placed = std::move(next_placed);
  }

  result.final_outputs = *catalogs.back();
  return result;
}

}  // namespace frieda::core
