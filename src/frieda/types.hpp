// Core vocabulary of the FRIEDA framework.
//
// The paper separates *partition generation* (which files form one program
// instance's input, Section II.E) from *placement strategy* (where and when
// the bytes move, Section III).  Both are control-plane decisions that the
// execution plane merely carries out — keeping them as plain enums/data here
// is what lets the same master/worker code run every strategy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/file.hpp"

namespace frieda::core {

/// Identifier of one work unit (one program instance's input group).
using WorkUnitId = std::uint32_t;

/// Identifier of one worker (one program instance slot; with multicore
/// enabled a VM hosts one worker per core, Section II.C).
using WorkerId = std::uint32_t;

/// File-grouping schemes of the partition generator (paper Section II.E).
enum class PartitionScheme {
  kSingleFile,        ///< default: one file per program instance
  kOneToAll,          ///< first file paired with each of the rest
  kPairwiseAdjacent,  ///< adjacent files paired (the ALS image workload)
  kAllToAll,          ///< every unordered pair of distinct files
};

/// Data placement/movement strategies (paper Section III.B + extensions).
enum class PlacementStrategy {
  kNoPartitionCommon,   ///< full data set pre-distributed to every node
  kPrePartitionLocal,   ///< partitions already resident on compute nodes
  kPrePartitionRemote,  ///< partitions staged from the source, then compute
  kRealTime,            ///< lazy pull: master sends data as workers ask
  kRemoteRead,          ///< no staging: tasks read inputs over the network
  kSharedVolume,        ///< inputs on a mounted shared volume (iSCSI/shared
                        ///< FS, Section III.A); tasks stream from its server
};

/// How pre-partitioning maps work units to workers.
enum class AssignmentPolicy {
  kRoundRobin,    ///< unit i -> worker (i mod W)
  kBlock,         ///< contiguous blocks of units per worker
  kSizeBalanced,  ///< greedy LPT on input bytes
};

/// One program instance's input group as produced by the partition generator.
struct WorkUnit {
  WorkUnitId id = 0;
  std::vector<storage::FileId> inputs;

  /// Total input bytes for this unit.
  Bytes input_bytes(const storage::FileCatalog& catalog) const;

  /// Structural equality (template audits compare captured partition lists
  /// against fresh rebuilds).
  friend bool operator==(const WorkUnit& a, const WorkUnit& b) {
    return a.id == b.id && a.inputs == b.inputs;
  }
  friend bool operator!=(const WorkUnit& a, const WorkUnit& b) { return !(a == b); }
};

/// Enum <-> string conversions (used by Config-driven scenarios).
const char* to_string(PartitionScheme scheme);
const char* to_string(PlacementStrategy strategy);
const char* to_string(AssignmentPolicy policy);
std::optional<PartitionScheme> parse_partition_scheme(const std::string& name);
std::optional<PlacementStrategy> parse_placement_strategy(const std::string& name);
std::optional<AssignmentPolicy> parse_assignment_policy(const std::string& name);

}  // namespace frieda::core
