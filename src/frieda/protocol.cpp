#include "frieda/protocol.hpp"

#include "frieda/command.hpp"

namespace frieda::core {

namespace {
struct ControlNamer {
  const char* operator()(const StartMaster&) const { return "START_MASTER"; }
  const char* operator()(const SetPartitionInfo&) const { return "SET_PARTITION_INFO"; }
  const char* operator()(const ForkWorkers&) const { return "FORK_REMOTE_WORKERS"; }
  const char* operator()(const IsolateWorker&) const { return "ISOLATE_WORKER"; }
  const char* operator()(const AddWorkers&) const { return "ADD_WORKERS"; }
  const char* operator()(const DrainWorker&) const { return "DRAIN_WORKER"; }
  const char* operator()(const ControlDone&) const { return "CONTROL_DONE"; }
};
struct WorkerNamer {
  const char* operator()(const RegisterWorker&) const { return "REGISTER_WORKER"; }
  const char* operator()(const RequestWork&) const { return "REQUEST_DATA"; }
  const char* operator()(const ExecStatus&) const { return "EXEC_STATUS"; }
};
struct MasterNamer {
  const char* operator()(const AssignWork&) const { return "FILE_METADATA"; }
  const char* operator()(const NoMoreWork&) const { return "NO_MORE_WORK"; }
};
}  // namespace

const char* message_name(const ControlMessage& m) { return std::visit(ControlNamer{}, m); }
const char* message_name(const WorkerMessage& m) { return std::visit(WorkerNamer{}, m); }
const char* message_name(const MasterMessage& m) { return std::visit(MasterNamer{}, m); }

std::vector<AssignWork> bind_units(const CommandTemplate& command,
                                   const std::vector<WorkUnit>& units,
                                   const storage::FileCatalog& catalog,
                                   const std::string& staging_dir, bool inputs_staged) {
  auto commands = command.bind_all(units, catalog, staging_dir);
  std::vector<AssignWork> out;
  out.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    AssignWork work;
    work.unit = units[i];
    work.command = std::move(commands[i]);
    work.inputs_staged = inputs_staged;
    out.push_back(std::move(work));
  }
  return out;
}

}  // namespace frieda::core
