#include "frieda/command.hpp"

#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace frieda::core {

namespace {
/// Returns N for "$inpN" tokens, 0 otherwise.
std::size_t placeholder_index(const std::string& token) {
  if (!strutil::starts_with(token, "$inp")) return 0;
  const auto n = strutil::to_int(token.substr(4));
  if (!n || *n <= 0) return 0;
  return static_cast<std::size_t>(*n);
}
}  // namespace

CommandTemplate::CommandTemplate(const std::string& spec) : spec_(strutil::trim(spec)) {
  std::istringstream in(spec_);
  std::string token;
  while (in >> token) tokens_.push_back(token);
  FRIEDA_CHECK(!tokens_.empty(), "empty command template");

  std::set<std::size_t> seen;
  for (const auto& t : tokens_) {
    const std::size_t idx = placeholder_index(t);
    if (idx == 0) {
      FRIEDA_CHECK(!strutil::starts_with(t, "$inp"),
                   "malformed input placeholder '" << t << "' (use $inp1, $inp2, ...)");
      continue;
    }
    FRIEDA_CHECK(seen.insert(idx).second, "duplicate placeholder $inp" << idx);
  }
  arity_ = seen.size();
  // Dense check: placeholders must be exactly {1..K}.
  for (std::size_t i = 1; i <= arity_; ++i) {
    FRIEDA_CHECK(seen.count(i), "placeholders must be dense: missing $inp" << i);
  }
}

std::string CommandTemplate::bind(const std::vector<std::string>& paths) const {
  FRIEDA_CHECK(paths.size() == arity_, "template expects " << arity_ << " inputs, got "
                                                           << paths.size());
  std::ostringstream out;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (i) out << ' ';
    const std::size_t idx = placeholder_index(tokens_[i]);
    if (idx > 0) {
      out << paths[idx - 1];
    } else {
      out << tokens_[i];
    }
  }
  return out.str();
}

std::string CommandTemplate::bind_unit(const WorkUnit& unit,
                                       const storage::FileCatalog& catalog,
                                       const std::string& staging_dir) const {
  std::vector<std::string> paths;
  paths.reserve(unit.inputs.size());
  for (const auto f : unit.inputs) paths.push_back(staging_dir + "/" + catalog.info(f).name);
  return bind(paths);
}

std::vector<std::string> CommandTemplate::bind_all(const std::vector<WorkUnit>& units,
                                                   const storage::FileCatalog& catalog,
                                                   const std::string& staging_dir) const {
  std::vector<std::string> out;
  out.reserve(units.size());
  for (const auto& u : units) out.push_back(bind_unit(u, catalog, staging_dir));
  return out;
}

}  // namespace frieda::core
