// Run reports: everything a FRIEDA execution measures.
//
// The bench harnesses read these fields to regenerate the paper's Table I
// (total wall time per strategy) and Figure 6 (data-transfer vs. execution
// decomposition, including the real-time strategy's transfer/compute
// overlap).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/timeline.hpp"
#include "common/units.hpp"
#include "frieda/types.hpp"

namespace frieda::obs {
class MetricsRegistry;
}  // namespace frieda::obs

namespace frieda::core {

/// Terminal state of one work unit.
enum class UnitStatus {
  kPending,      ///< not yet dispatched (non-terminal)
  kInFlight,     ///< dispatched, awaiting status (non-terminal)
  kCompleted,    ///< executed successfully
  kFailed,       ///< dispatched at least once but never completed
  kUnprocessed,  ///< never dispatched (ran out of live workers)
};

/// Render a unit status name.
const char* to_string(UnitStatus status);

/// Per-unit outcome record.
struct UnitRecord {
  WorkUnitId unit = 0;
  UnitStatus status = UnitStatus::kPending;
  WorkerId worker = 0;              ///< last worker it was dispatched to
  int attempts = 0;                 ///< dispatch attempts
  SimTime arrival = 0.0;            ///< open-loop: when the unit entered the
                                    ///< queue (0 for closed-batch runs)
  SimTime dispatched = 0.0;         ///< last dispatch time
  SimTime finished = 0.0;           ///< terminal time
  SimTime transfer_seconds = 0.0;   ///< input staging time for this unit
  SimTime exec_seconds = 0.0;       ///< program execution time
};

/// Per-worker summary.
struct WorkerReport {
  WorkerId worker = 0;
  std::uint32_t vm = 0;
  unsigned slot = 0;                ///< core index on the VM
  std::size_t units_completed = 0;
  SimTime busy_seconds = 0.0;       ///< total execution time on this worker
  bool isolated = false;            ///< removed by the controller after failure
  bool drained = false;             ///< removed by elastic scale-in
};

/// Full result of one FRIEDA run.
struct RunReport {
  std::string app;
  std::string strategy;
  std::string scheme;

  SimTime ready_time = 0.0;    ///< all initial VMs booted
  SimTime start_time = 0.0;    ///< data management began (== ready_time)
  SimTime staging_end = 0.0;   ///< upfront staging finished (pre modes)
  SimTime end_time = 0.0;      ///< all units terminal

  std::size_t units_total = 0;
  std::size_t units_completed = 0;
  std::size_t units_failed = 0;
  std::size_t units_unprocessed = 0;

  Bytes bytes_moved = 0;        ///< network bytes during the run
  std::size_t transfers = 0;    ///< network transfers during the run
  std::size_t workers_isolated = 0;

  // Open-loop service mode (empty/zero for closed-batch runs).
  bool open_loop = false;       ///< units were injected by an arrival process
  SimTime serve_start = 0.0;    ///< when serving (and the arrival clock) began
  SampleSet latency;            ///< per-unit sojourn (arrival -> completion)
  std::size_t scale_outs = 0;   ///< VMs added by the elasticity policy
  std::size_t scale_ins = 0;    ///< VMs drained and released by the policy

  std::vector<UnitRecord> units;
  std::vector<WorkerReport> workers;
  Timeline timeline;

  /// Wall time of the whole run (staging + execution).
  SimTime makespan() const { return end_time - start_time; }

  /// Duration of the upfront staging phase (0 for real-time/remote-read).
  SimTime staging_seconds() const { return staging_end - start_time; }

  /// Union time with at least one data transfer active.
  SimTime transfer_busy() const { return timeline.busy_time(ActivityKind::kTransfer); }

  /// Union time with at least one program instance running.
  SimTime compute_busy() const { return timeline.busy_time(ActivityKind::kCompute); }

  /// Time where transfers and computation ran simultaneously — the overlap
  /// the real-time strategy exploits (Figure 6 discussion).
  SimTime overlap() const {
    return timeline.overlap_time(ActivityKind::kTransfer, ActivityKind::kCompute);
  }

  /// True when every unit completed.
  bool all_completed() const { return units_completed == units_total; }

  /// Open-loop: the p-th sojourn-latency percentile over completed units
  /// (seconds from arrival to completion).  Requires at least one completion.
  SimTime latency_p(double p) const { return latency.percentile(p); }

  /// Open-loop: completions per second over the serving window.  0 for
  /// closed-batch runs or degenerate windows.
  double sustained_throughput() const {
    const SimTime window = end_time - serve_start;
    if (!open_loop || window <= 0.0) return 0.0;
    return static_cast<double>(units_completed) / window;
  }

  /// Multi-line human-readable summary.
  std::string summary() const;

  /// Per-unit records as CSV text (for Gantt-style plotting):
  /// unit,status,worker,attempts,arrival,dispatched,finished,transfer_s,exec_s.
  std::string units_csv() const;

  /// Per-worker summary as CSV text:
  /// worker,vm,slot,units_completed,busy_seconds,isolated,drained.
  std::string workers_csv() const;

  /// Export the report's aggregates into `registry`: run.* gauges (makespan,
  /// busy-time decomposition, unit outcome counts, traffic) plus per-unit
  /// attempt/transfer/exec distributions as run.unit_* stats instruments.
  void fill_metrics(obs::MetricsRegistry& registry) const;
};

}  // namespace frieda::core
