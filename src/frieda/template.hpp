// Execution templates: cached, validated control-plane decisions.
//
// Every FriedaRun recomputes the same control-plane work — partition
// generation, the pre-partition assignment table, and one command binding
// per unit — even when a sweep re-runs an identical scenario with only the
// seed or the worker count changed.  Execution Templates (Mashayekhi et
// al., PAPERS.md) remove that bottleneck: the first run of a scenario
// *captures* an immutable template of its control-plane decisions, and
// subsequent runs *instantiate* from it, patching only what changed.
//
// What a template holds, and what invalidates it:
//
//   captured decision          reused when            patched / rebuilt when
//   -------------------------  ---------------------  -------------------------
//   partition list (units)     same app+scale+scheme  key change -> new template
//   per-unit AssignWork        same staging dir and   strategy change -> new key
//     prototypes (bound        staged/streamed side   (command text embeds the
//     command + metadata)      of the strategy        staging decision)
//   assignment table           same policy and        worker-count/VM-set change
//                              worker count           -> table recomputed (patch)
//   arrival schedule           same arrival config    arrival config change ->
//     (open-loop protocol      and unit count         schedule regenerated
//     schedule)                                       (patch)
//
// The template *key* (see workload::template_fingerprint) therefore hashes
// only the structural fields — app, placement strategy, dataset scale,
// NIC/topology class — and deliberately excludes the patchable ones (seed,
// VM count, cores, arrival config).  Seed-only and shape-only reruns hit
// the same template; a strategy or topology change misses and rebuilds.
//
// TemplateStore is the process-global, mutex-guarded, LRU-bounded home of
// captured templates — the control-plane analogue of exp::ResultCache.
// `FRIEDA_TEMPLATES=0` opts out globally; `FRIEDA_TEMPLATE_AUDIT=1` turns
// on the differential-check mode (the same validation pattern the
// incremental network solver uses): every templated decision is recomputed
// from scratch and asserted structurally equal before use.
//
// Determinism: instantiating from a template is value-identical to a
// from-scratch rebuild by construction (and asserted under audit), so runs,
// reports, tables, and committed CSVs are byte-identical either way.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "frieda/command.hpp"
#include "frieda/protocol.hpp"
#include "frieda/types.hpp"
#include "storage/file.hpp"

namespace frieda::core {

/// One scenario's captured control-plane decisions.  Immutable after
/// capture(); safe to share by shared_ptr across concurrently executing
/// runs (exp::SweepRunner jobs).
class ExecutionTemplate {
 public:
  /// Capture and validate a template.  `units` is the generated partition
  /// list; one AssignWork prototype is bound per unit against `command` /
  /// `catalog` / `staging_dir`; the assignment table is computed for
  /// (`policy`, `worker_count`).  `arrival_key` identifies the open-loop
  /// arrival schedule `arrivals` was generated from (0 = closed batch,
  /// empty schedule).  Throws FriedaError when validation fails (arity
  /// mismatch, non-dense unit ids, assignment not covering every unit
  /// exactly once).
  static std::shared_ptr<const ExecutionTemplate> capture(
      std::vector<WorkUnit> units, const CommandTemplate& command,
      const storage::FileCatalog& catalog, std::string staging_dir, bool inputs_staged,
      AssignmentPolicy policy, std::size_t worker_count, std::uint64_t arrival_key,
      std::vector<SimTime> arrivals);

  /// The partition list (dense, ordered unit ids).
  const std::vector<WorkUnit>& units() const { return units_; }

  /// Per-unit protocol prototypes: the exact AssignWork the master would
  /// build for unit i (bound command line included).  prototypes()[i]
  /// corresponds to units()[i].
  const std::vector<AssignWork>& prototypes() const { return prototypes_; }

  /// Assignment table captured for (assignment_policy, assignment_workers).
  AssignmentPolicy assignment_policy() const { return policy_; }
  std::size_t assignment_workers() const { return worker_count_; }
  const std::vector<std::vector<WorkUnitId>>& assignment() const { return assignment_; }

  /// Staging prefix the prototype command lines were bound against.
  const std::string& staging_dir() const { return staging_dir_; }

  /// Whether the prototypes carry inputs_staged (pre-staged strategies) or
  /// not (remote-read / shared-volume streaming).
  bool inputs_staged() const { return inputs_staged_; }

  /// Identity of the captured arrival schedule (see
  /// workload::arrival_schedule_key); 0 means closed batch, no schedule.
  std::uint64_t arrival_key() const { return arrival_key_; }
  const std::vector<SimTime>& arrivals() const { return arrivals_; }

  /// Structural identity of the partition list (see partition_signature in
  /// partition.hpp) — a cheap equality proxy for audits and tests.
  const Fingerprint& partition_sig() const { return partition_sig_; }

 private:
  ExecutionTemplate() = default;

  std::vector<WorkUnit> units_;
  std::vector<AssignWork> prototypes_;
  std::vector<std::vector<WorkUnitId>> assignment_;
  AssignmentPolicy policy_ = AssignmentPolicy::kRoundRobin;
  std::size_t worker_count_ = 0;
  std::string staging_dir_;
  bool inputs_staged_ = true;
  std::uint64_t arrival_key_ = 0;
  std::vector<SimTime> arrivals_;
  Fingerprint partition_sig_;
};

/// Process-global home of captured templates, keyed by the structural
/// scenario fingerprint.  Mirrors exp::ResultCache: mutex-guarded, bounded
/// by an LRU cap, first-insert-wins.  Templates are held by shared_ptr, so
/// an evicted template stays valid for runs still holding it.
class TemplateStore {
 public:
  /// Default entry cap.  A template for a 100k-unit scenario is a few tens
  /// of MB, so the cap is far tighter than ResultCache's — today's drivers
  /// use a handful of (app, strategy, scale) combinations.
  static constexpr std::size_t kDefaultMaxEntries = 64;

  explicit TemplateStore(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// The cached template, or nullptr on miss.  A hit refreshes the entry's
  /// recency and counts toward hits(); a miss counts toward misses().
  std::shared_ptr<const ExecutionTemplate> lookup(const Fingerprint& key);

  /// Store `tmpl` under `key`; the first insert wins (identical keys mean
  /// structurally identical templates).  Returns whether the entry was new.
  /// May evict the least-recently-used entry when over the cap.
  bool insert(const Fingerprint& key, std::shared_ptr<const ExecutionTemplate> tmpl);

  /// Change the entry cap (0 = unbounded); shrinking evicts the LRU tail.
  void set_max_entries(std::size_t cap);
  std::size_t max_entries() const;
  std::size_t size() const;
  void clear();  ///< drops entries, keeps counters and mode flags

  // Lifetime statistics (mirrored into obs::MetricsRegistry by the
  // scenario drivers as frieda.template_hits / _builds / _patches).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t builds() const;     ///< templates captured and inserted
  std::uint64_t patches() const;    ///< patched instantiations (see note_patch)
  std::uint64_t evictions() const;  ///< entries discarded by the LRU cap

  /// Record that a template was captured / that an instantiation had to
  /// patch a decision (worker-count delta, arrival-config delta).
  void note_build();
  void note_patch(std::uint64_t n = 1);

  /// Master switch: when disabled, the scenario drivers neither consult nor
  /// populate the store (every run rebuilds from scratch).  Seeded from
  /// FRIEDA_TEMPLATES for the global store; 1 by default.
  bool enabled() const;
  void set_enabled(bool enabled);

  /// Differential-check audit mode: every templated decision is also
  /// recomputed from scratch and asserted structurally equal before use
  /// (the Network::set_differential_check pattern).  Seeded from
  /// FRIEDA_TEMPLATE_AUDIT for the global store; off by default.
  bool differential_check() const;
  void set_differential_check(bool on);

  /// The process-wide store every scenario driver consults, which is what
  /// makes templates pay off *across* the runs of one sweep.  First use
  /// applies FRIEDA_TEMPLATES / FRIEDA_TEMPLATE_AUDIT (invalid values log
  /// kWarn and keep the defaults).
  static TemplateStore& global();

 private:
  using Entry = std::pair<Fingerprint, std::shared_ptr<const ExecutionTemplate>>;

  void trim();  // callers hold mutex_

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t builds_ = 0;
  std::uint64_t patches_ = 0;
  std::uint64_t evictions_ = 0;
  bool enabled_ = true;
  bool audit_ = false;
  /// Front = most recently used; `map_` points into the list.
  std::list<Entry> lru_;
  std::map<Fingerprint, std::list<Entry>::iterator> map_;
};

namespace detail {
/// Parse a boolean-ish env value: "0"/"false"/"off"/"no" -> 0,
/// "1"/"true"/"on"/"yes" -> 1 (ASCII case-insensitive), anything else -> -1
/// (invalid; the caller logs and keeps its default).
int parse_bool_env(const char* text);
}  // namespace detail

}  // namespace frieda::core
