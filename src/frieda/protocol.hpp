// Wire protocol between controller, master, and workers.
//
// Mirrors the message flow of Figures 2–4: the controller initializes the
// master with the partition strategy (START_MASTER / SET_PARTITION_INFO) and
// forks workers (FORK_REMOTE_WORKERS); workers register, request data, and
// report execution status; the controller can push runtime reconfiguration
// (the open controller-master channel of Section II.D) including failure
// isolation and elastic add/remove of workers.
//
// In the simulated deployment these structs travel over sim::Channel; the
// threaded runtime (src/runtime) reuses the same types over thread-safe
// queues, so the protocol is defined once.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/units.hpp"
#include "frieda/types.hpp"

namespace frieda::core {

// ---- controller -> master --------------------------------------------------

/// Initialize the master with the run's data-management strategy.
struct StartMaster {
  PlacementStrategy strategy = PlacementStrategy::kRealTime;
  AssignmentPolicy assignment = AssignmentPolicy::kRoundRobin;
};

/// Hand the generated partition (work units) to the master.
struct SetPartitionInfo {
  std::vector<WorkUnit> units;
};

/// Announce workers forked on the execution plane.
struct ForkWorkers {
  std::vector<WorkerId> workers;
};

/// Isolate a failed worker: stop dispatching to it (Section V.A, Robust).
struct IsolateWorker {
  WorkerId worker = 0;
};

/// Elastic scale-out: new workers joined mid-run (Section V.A, Elastic).
struct AddWorkers {
  std::vector<WorkerId> workers;
};

/// Elastic scale-in request: drain and stop dispatching to a worker.
struct DrainWorker {
  WorkerId worker = 0;
};

/// Controller tells the master no further reconfiguration will arrive.
struct ControlDone {};

using ControlMessage = std::variant<StartMaster, SetPartitionInfo, ForkWorkers, IsolateWorker,
                                    AddWorkers, DrainWorker, ControlDone>;

// ---- worker -> master --------------------------------------------------

/// Worker announces itself and opens its connection (Fig. 4 "initialize and
/// register" + "connection acknowledgement").
struct RegisterWorker {
  WorkerId worker = 0;
};

/// Worker asks for its next input group (Fig. 4 "request data").
struct RequestWork {
  WorkerId worker = 0;
};

/// Worker reports one finished execution (Fig. 4 "send execution status").
struct ExecStatus {
  WorkerId worker = 0;
  WorkUnitId unit = 0;
  bool ok = true;
  SimTime transfer_seconds = 0.0;  ///< time spent acquiring input data
  SimTime exec_seconds = 0.0;      ///< time spent executing the program
};

using WorkerMessage = std::variant<RegisterWorker, RequestWork, ExecStatus>;

// ---- master -> worker --------------------------------------------------

/// One assignment: the unit, its bound command line, and where the inputs
/// are (FILE_METADATA; the FILE_DATA bytes move through the network model).
struct AssignWork {
  WorkUnit unit;
  std::string command;
  bool inputs_staged = true;  ///< false for remote-read: worker pulls bytes

  /// Structural equality (template audits compare prototype assignments
  /// against freshly bound ones).
  friend bool operator==(const AssignWork& a, const AssignWork& b) {
    return a.unit == b.unit && a.command == b.command && a.inputs_staged == b.inputs_staged;
  }
  friend bool operator!=(const AssignWork& a, const AssignWork& b) { return !(a == b); }
};

/// No further work; the worker should exit its loop.
struct NoMoreWork {};

using MasterMessage = std::variant<AssignWork, NoMoreWork>;

class CommandTemplate;

/// Build one AssignWork prototype per unit — exactly the message the master
/// would construct at dispatch time (unit, bound command line, staging
/// flag).  Execution templates capture these once and serve copies on every
/// subsequent instantiation instead of re-binding per dispatch.
std::vector<AssignWork> bind_units(const CommandTemplate& command,
                                   const std::vector<WorkUnit>& units,
                                   const storage::FileCatalog& catalog,
                                   const std::string& staging_dir, bool inputs_staged);

/// Human-readable message names for traces.
const char* message_name(const ControlMessage& m);
const char* message_name(const WorkerMessage& m);
const char* message_name(const MasterMessage& m);

}  // namespace frieda::core
