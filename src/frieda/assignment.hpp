// Pre-partition assignment: mapping work units onto workers ahead of time.
//
// "In pre-determined and homogeneous workloads, optimal solutions can be
//  found by pre-partitioning the data before the computation starts."
//  (paper Section III.A).  The policy decides which worker owns which units;
// the master then stages exactly those bytes to the worker's node.
#pragma once

#include <vector>

#include "frieda/types.hpp"
#include "storage/file.hpp"

namespace frieda::core {

/// Assign `units` across `worker_count` workers.
/// Returns worker-indexed lists of unit ids.
///
/// * kRoundRobin — unit i to worker (i mod W); the paper's default.
/// * kBlock — contiguous ranges, ceil(n/W) per worker.
/// * kSizeBalanced — greedy LPT on input bytes: largest unit to the
///   currently lightest worker, which tightens the makespan bound when file
///   sizes vary.
std::vector<std::vector<WorkUnitId>> assign_units(AssignmentPolicy policy,
                                                  const std::vector<WorkUnit>& units,
                                                  const storage::FileCatalog& catalog,
                                                  std::size_t worker_count);

/// True when `table` is a well-formed assignment of `unit_count` dense unit
/// ids over `worker_count` workers: one list per worker, every unit id in
/// [0, unit_count) appearing exactly once.  Execution templates validate
/// captured tables with this before serving them to runs.
bool valid_assignment(const std::vector<std::vector<WorkUnitId>>& table,
                      std::size_t unit_count, std::size_t worker_count);

}  // namespace frieda::core
