#include "frieda/assignment.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace frieda::core {

std::vector<std::vector<WorkUnitId>> assign_units(AssignmentPolicy policy,
                                                  const std::vector<WorkUnit>& units,
                                                  const storage::FileCatalog& catalog,
                                                  std::size_t worker_count) {
  FRIEDA_CHECK(worker_count > 0, "assignment needs at least one worker");
  std::vector<std::vector<WorkUnitId>> out(worker_count);
  switch (policy) {
    case AssignmentPolicy::kRoundRobin:
      for (std::size_t i = 0; i < units.size(); ++i) {
        out[i % worker_count].push_back(units[i].id);
      }
      break;
    case AssignmentPolicy::kBlock: {
      const std::size_t per = (units.size() + worker_count - 1) / worker_count;
      for (std::size_t i = 0; i < units.size(); ++i) {
        out[std::min(per == 0 ? 0 : i / per, worker_count - 1)].push_back(units[i].id);
      }
      break;
    }
    case AssignmentPolicy::kSizeBalanced: {
      // LPT: sort by descending input bytes, place on lightest worker.
      std::vector<std::size_t> order(units.size());
      std::iota(order.begin(), order.end(), 0);
      std::vector<Bytes> sizes(units.size());
      for (std::size_t i = 0; i < units.size(); ++i) sizes[i] = units[i].input_bytes(catalog);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) { return sizes[a] > sizes[b]; });
      std::vector<Bytes> load(worker_count, 0);
      for (const std::size_t i : order) {
        const auto lightest = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        out[lightest].push_back(units[i].id);
        load[lightest] += sizes[i];
      }
      break;
    }
  }
  return out;
}

bool valid_assignment(const std::vector<std::vector<WorkUnitId>>& table,
                      std::size_t unit_count, std::size_t worker_count) {
  if (table.size() != worker_count) return false;
  std::vector<char> seen(unit_count, 0);
  std::size_t total = 0;
  for (const auto& worker_units : table) {
    for (const auto u : worker_units) {
      if (u >= unit_count || seen[u]) return false;
      seen[u] = 1;
      ++total;
    }
  }
  return total == unit_count;
}

}  // namespace frieda::core
