#include "frieda/types.hpp"

namespace frieda::core {

Bytes WorkUnit::input_bytes(const storage::FileCatalog& catalog) const {
  Bytes total = 0;
  for (const auto f : inputs) total += catalog.info(f).size;
  return total;
}

const char* to_string(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kSingleFile: return "single-file";
    case PartitionScheme::kOneToAll: return "one-to-all";
    case PartitionScheme::kPairwiseAdjacent: return "pairwise-adjacent";
    case PartitionScheme::kAllToAll: return "all-to-all";
  }
  return "?";
}

const char* to_string(PlacementStrategy strategy) {
  switch (strategy) {
    case PlacementStrategy::kNoPartitionCommon: return "no-partition-common";
    case PlacementStrategy::kPrePartitionLocal: return "pre-partition-local";
    case PlacementStrategy::kPrePartitionRemote: return "pre-partition-remote";
    case PlacementStrategy::kRealTime: return "real-time";
    case PlacementStrategy::kRemoteRead: return "remote-read";
    case PlacementStrategy::kSharedVolume: return "shared-volume";
  }
  return "?";
}

const char* to_string(AssignmentPolicy policy) {
  switch (policy) {
    case AssignmentPolicy::kRoundRobin: return "round-robin";
    case AssignmentPolicy::kBlock: return "block";
    case AssignmentPolicy::kSizeBalanced: return "size-balanced";
  }
  return "?";
}

std::optional<PartitionScheme> parse_partition_scheme(const std::string& name) {
  if (name == "single-file") return PartitionScheme::kSingleFile;
  if (name == "one-to-all") return PartitionScheme::kOneToAll;
  if (name == "pairwise-adjacent") return PartitionScheme::kPairwiseAdjacent;
  if (name == "all-to-all") return PartitionScheme::kAllToAll;
  return std::nullopt;
}

std::optional<PlacementStrategy> parse_placement_strategy(const std::string& name) {
  if (name == "no-partition-common") return PlacementStrategy::kNoPartitionCommon;
  if (name == "pre-partition-local") return PlacementStrategy::kPrePartitionLocal;
  if (name == "pre-partition-remote") return PlacementStrategy::kPrePartitionRemote;
  if (name == "real-time") return PlacementStrategy::kRealTime;
  if (name == "remote-read") return PlacementStrategy::kRemoteRead;
  if (name == "shared-volume") return PlacementStrategy::kSharedVolume;
  return std::nullopt;
}

std::optional<AssignmentPolicy> parse_assignment_policy(const std::string& name) {
  if (name == "round-robin") return AssignmentPolicy::kRoundRobin;
  if (name == "block") return AssignmentPolicy::kBlock;
  if (name == "size-balanced") return AssignmentPolicy::kSizeBalanced;
  return std::nullopt;
}

}  // namespace frieda::core
