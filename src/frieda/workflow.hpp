// Workflow driver: chained FRIEDA stages (paper Section VI).
//
// "FRIEDA supports only data-parallel tasks.  However, it is possible for a
//  higher-level workflow engine to interact with FRIEDA to control parts or
//  all of its workflow execution."
//
// Workflow is that higher-level engine for linear pipelines: each stage is
// one FRIEDA run; its per-unit outputs become the next stage's input
// catalog.  Outputs stay on the VM that produced them (the paper's local-
// output mode), so stage i+1 runs with inputs_at_source=false, seeded
// replicas, and — optionally — locality-aware dispatch that sends work to
// where the previous stage left the data.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "frieda/report.hpp"
#include "frieda/run.hpp"
#include "storage/file.hpp"

namespace frieda::core {

/// One stage of a linear data-parallel workflow.
struct WorkflowStage {
  std::string name;
  PartitionScheme scheme = PartitionScheme::kSingleFile;
  std::string command = "app $inp1";
  RunOptions options;  ///< strategy etc.; inputs_at_source is managed by the
                       ///< driver (true only for the first stage)

  /// Service time of one unit over the stage's catalog (required).
  std::function<SimTime(const WorkUnit&, const storage::FileCatalog&)> task_seconds;

  /// Output size of one unit (required for every stage but the last; a
  /// stage with no output function produces an empty final catalog).
  std::function<Bytes(const WorkUnit&, const storage::FileCatalog&)> output_bytes;

  /// Common data every node needs before this stage runs.
  Bytes common_data_bytes = 0;
};

/// Per-stage and end-to-end results.
struct WorkflowResult {
  std::vector<RunReport> stages;
  storage::FileCatalog final_outputs;  ///< catalog produced by the last stage
  SimTime total_makespan = 0.0;        ///< sum of stage makespans

  /// True when every unit of every stage completed.
  bool all_completed() const;
};

/// Linear workflow executor over one cluster.
class Workflow {
 public:
  /// Construct over a provisioned cluster (shared by all stages).
  explicit Workflow(cluster::VirtualCluster& cluster) : cluster_(cluster) {}

  Workflow(const Workflow&) = delete;
  Workflow& operator=(const Workflow&) = delete;

  /// Append a stage; stages execute in insertion order.
  void add_stage(WorkflowStage stage);

  /// Number of configured stages.
  std::size_t stage_count() const { return stages_.size(); }

  /// Run all stages to completion over `inputs` (resident at the source).
  /// Failed units simply produce no output for the next stage; the result
  /// records per-stage reports.
  WorkflowResult execute(const storage::FileCatalog& inputs);

 private:
  cluster::VirtualCluster& cluster_;
  std::vector<WorkflowStage> stages_;
};

}  // namespace frieda::core
