#include "frieda/partition.hpp"

#include "common/error.hpp"

namespace frieda::core {

namespace {
std::vector<WorkUnit> wrap(std::vector<std::vector<storage::FileId>> groups) {
  std::vector<WorkUnit> units;
  units.reserve(groups.size());
  for (auto& g : groups) {
    WorkUnit u;
    u.id = static_cast<WorkUnitId>(units.size());
    u.inputs = std::move(g);
    units.push_back(std::move(u));
  }
  return units;
}
}  // namespace

std::vector<WorkUnit> PartitionGenerator::generate(PartitionScheme scheme,
                                                   const storage::FileCatalog& catalog) {
  const auto ids = catalog.all_ids();
  const std::size_t n = ids.size();
  std::vector<std::vector<storage::FileId>> groups;
  switch (scheme) {
    case PartitionScheme::kSingleFile:
      groups.reserve(n);
      for (auto f : ids) groups.push_back({f});
      break;
    case PartitionScheme::kOneToAll:
      FRIEDA_CHECK(n >= 2, "one-to-all needs at least two files, got " << n);
      groups.reserve(n - 1);
      for (std::size_t i = 1; i < n; ++i) groups.push_back({ids[0], ids[i]});
      break;
    case PartitionScheme::kPairwiseAdjacent:
      groups.reserve(n / 2);
      for (std::size_t i = 0; i + 1 < n; i += 2) groups.push_back({ids[i], ids[i + 1]});
      break;
    case PartitionScheme::kAllToAll:
      FRIEDA_CHECK(n >= 2, "all-to-all needs at least two files, got " << n);
      groups.reserve(n * (n - 1) / 2);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) groups.push_back({ids[i], ids[j]});
      }
      break;
  }
  return wrap(std::move(groups));
}

void PartitionGenerator::register_scheme(const std::string& name, CustomScheme scheme) {
  FRIEDA_CHECK(static_cast<bool>(scheme), "custom scheme '" << name << "' is empty");
  custom_[name] = std::move(scheme);
}

bool PartitionGenerator::has_scheme(const std::string& name) const {
  return custom_.count(name) > 0;
}

std::vector<WorkUnit> PartitionGenerator::generate_custom(
    const std::string& name, const storage::FileCatalog& catalog) const {
  const auto it = custom_.find(name);
  FRIEDA_CHECK(it != custom_.end(), "unknown custom partition scheme '" << name << "'");
  return wrap(it->second(catalog));
}

std::vector<std::string> PartitionGenerator::scheme_names() const {
  std::vector<std::string> names;
  names.reserve(custom_.size());
  for (const auto& [name, fn] : custom_) names.push_back(name);
  return names;
}

Fingerprint partition_signature(const std::vector<WorkUnit>& units) {
  StableHasher h;
  h.mix_str("frieda-partition-v1").mix_u64(units.size());
  for (const auto& u : units) {
    h.mix_u64(u.id).mix_u64(u.inputs.size());
    for (const auto f : u.inputs) h.mix_u64(f);
  }
  return h.digest();
}

}  // namespace frieda::core
