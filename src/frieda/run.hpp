// FriedaRun: one end-to-end FRIEDA execution over the simulated cloud.
//
// Wires the paper's three actors together (Figure 1):
//
//   controller  — control plane: initializes the master with the strategy
//                 and partition info, forks workers, relays failure
//                 isolation and elastic add/remove at runtime.
//   master      — execution plane: stages data per the placement strategy,
//                 farms work units to workers, serves real-time data
//                 requests, and accounts every unit to a terminal state.
//   workers     — one per core (multicore) or per VM: request data, execute
//                 the program instance, report status.  Workers are
//                 symmetric: identical code, different data.
//
// All three are coroutine processes on the shared Simulation; protocol
// messages travel through sim::Channels exactly along the arrows of
// Figures 2–4.
//
// Lifetime: construct over an already-provisioned VirtualCluster, optionally
// seed replicas (pre-partition-local), optionally schedule failures or
// elasticity on the simulation, then call run() once.  The FriedaRun must
// outlive the simulation run (it registers cluster callbacks).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"
#include "frieda/app_model.hpp"
#include "frieda/command.hpp"
#include "frieda/protocol.hpp"
#include "frieda/report.hpp"
#include "frieda/template.hpp"
#include "frieda/types.hpp"
#include "sim/channel.hpp"
#include "storage/file.hpp"

namespace frieda::obs {
class Counter;
class MetricsRegistry;
class TelemetryProbe;
struct TelemetryTick;
class Tracer;
}  // namespace frieda::obs

namespace frieda::core {

/// Queue-depth-reactive elasticity for the open-loop service mode: the
/// controller periodically samples the master's dispatch-queue depth and
/// provisions an extra VM when a backlog persists (scale-out) or drains and
/// releases one it previously added when the queue stays short (scale-in).
/// Only VMs added by the policy are ever removed, and transitions are gated
/// by a hysteresis window so a single noisy sample cannot flap the fleet.
struct ElasticPolicy {
  bool enabled = false;
  std::size_t scale_out_depth = 16;  ///< queue depth that arms a scale-out
  std::size_t scale_in_depth = 2;    ///< queue depth that arms a scale-in
  SimTime check_interval = 5.0;      ///< seconds between depth samples
  int hysteresis = 3;                ///< consecutive armed samples required
  std::size_t max_extra_vms = 4;     ///< cap on policy-added VMs alive at once
};

/// Per-run configuration (the controller's directives).
struct RunOptions {
  PlacementStrategy strategy = PlacementStrategy::kRealTime;
  AssignmentPolicy assignment = AssignmentPolicy::kRoundRobin;
  PartitionScheme scheme = PartitionScheme::kSingleFile;  ///< for reporting
  bool multicore = true;            ///< one worker per core vs. per VM
  bool requeue_on_failure = false;  ///< paper future-work extension: restart
                                    ///< units lost to failed workers
  int max_attempts = 3;             ///< dispatch attempts per unit (requeue cap)
  int prefetch = 1;                 ///< assignments staged ahead per worker; the
                                    ///< real-time pipelining that interleaves the
                                    ///< transfer and execution phases (Section II.C)
  SimTime dispatch_overhead = 0.005;  ///< master bookkeeping per assignment
  SimTime control_latency = 0.002;    ///< controller->master message latency
  std::string staging_dir = "/data";  ///< prefix for bound input paths
  unsigned transfer_streams = 1;      ///< parallel streams per file transfer
                                      ///< (GridFTP-style striping, Section II.C)
  bool track_disk_capacity = true;    ///< account staged bytes against the
                                      ///< VM-local disks (Section III.A)
  bool evict_processed_inputs = true; ///< real-time mode may evict staged
                                      ///< inputs of completed units when the
                                      ///< local disk fills up
  bool locality_aware = false;        ///< real-time dispatch prefers units
                                      ///< whose inputs already reside on the
                                      ///< requesting worker's node — the
                                      ///< "network topology aware" dispatch
                                      ///< for federated sites (Section I)
  std::size_t locality_scan_depth = 64;  ///< queue prefix searched for a
                                         ///< data-local unit
  bool inputs_at_source = true;       ///< catalog files live in the source
                                      ///< node's input directory; false when
                                      ///< inputs are prior outputs scattered
                                      ///< across worker VMs (workflows) —
                                      ///< seed their locations with
                                      ///< seed_replica() before run()
  obs::Tracer* tracer = nullptr;      ///< opt-in structured tracing (unit
                                      ///< lifecycle, staging/exec, network
                                      ///< flows, protocol events); nullptr =
                                      ///< off, zero cost on the hot path
  obs::MetricsRegistry* metrics = nullptr;  ///< opt-in named counters
                                      ///< (requeues, evictions, solver
                                      ///< invocations, ...); nullptr = off
  obs::TelemetryProbe* telemetry = nullptr;  ///< opt-in live telemetry: the
                                      ///< probe is ticked on its interval in
                                      ///< simulation time from serving start
                                      ///< to run end (queue depth, in-flight,
                                      ///< windowed latency percentiles, ...);
                                      ///< nullptr = off, zero cost
  std::vector<SimTime> arrivals;      ///< open-loop service mode: one offset
                                      ///< per unit (seconds after serving
                                      ///< starts, ascending); units enter the
                                      ///< dispatch queue as they arrive
                                      ///< instead of all at once.  Empty =
                                      ///< closed batch (the default).  Only
                                      ///< the queue-fed strategies support
                                      ///< this (real-time, remote-read,
                                      ///< shared-volume).
  ElasticPolicy elastic_policy;       ///< queue-depth-reactive scale-out/in
                                      ///< (open-loop mode only)
  std::shared_ptr<const ExecutionTemplate> exec_template;
                                      ///< captured control-plane decisions to
                                      ///< instantiate from (see template.hpp);
                                      ///< the units passed to the constructor
                                      ///< must be the template's, and decisions
                                      ///< whose captured inputs no longer match
                                      ///< (assignment worker count, staging
                                      ///< dir) are recomputed — counted as
                                      ///< patches.  nullptr = build everything
                                      ///< from scratch (the default).
};

/// One configured execution; see file comment for the protocol walk-through.
class FriedaRun {
 public:
  /// Construct over a provisioned cluster.  `units` come from the
  /// PartitionGenerator; `command` must accept every unit's arity.
  FriedaRun(cluster::VirtualCluster& cluster, const storage::FileCatalog& catalog,
            std::vector<WorkUnit> units, const AppModel& app, CommandTemplate command,
            RunOptions options);
  ~FriedaRun();

  FriedaRun(const FriedaRun&) = delete;
  FriedaRun& operator=(const FriedaRun&) = delete;

  /// Replica ground truth (inspectable by tests; seeded by pre_place_*).
  storage::ReplicaMap& replicas() { return replicas_; }

  /// Seed every input file on the given VMs' nodes — the "data packaged in
  /// the VM image" configuration used by pre-partition-local (Figure 6a).
  void pre_place_all_inputs(const std::vector<cluster::VmId>& vms);

  /// Seed exactly each worker's assigned partition, using the same
  /// assignment the master will compute (pre-partition-local, partitioned).
  void pre_place_partitions(const std::vector<cluster::VmId>& vms);

  /// Seed specific files on one VM (federated scenarios where prior outputs
  /// already live at a remote site).
  void pre_place_files(cluster::VmId vm, const std::vector<storage::FileId>& files);

  /// Register a file that is already resident — and already accounted — on a
  /// VM's disk, e.g. an output a previous run produced there.  Transfers may
  /// then use that VM as a replica source.
  void seed_replica(cluster::VmId vm, storage::FileId file);

  /// Elastic scale-out: provision a VM and join its workers once booted.
  /// Callable before run() or from an ActionPlan callback during it.
  cluster::VmId add_vm(const cluster::InstanceType& type);

  /// Elastic scale-in: drain the VM's workers, then terminate it.
  void remove_vm(cluster::VmId vm);

  /// Crash the master process now and restart it after `recovery_delay`
  /// (the paper's future-work item: "monitoring and recovery of the master
  /// through the controller-master communication channel", Section V.A).
  ///
  /// While down, protocol messages buffer (workers reconnect); work units
  /// whose staging had not yet reached a worker are re-dispatched on
  /// recovery; units already executing on workers are unaffected — the
  /// execution plane survives a control/data-management outage.
  /// Callable from an ActionPlan/arrange hook during the run.
  void crash_master(SimTime recovery_delay);

  /// Execute the scenario to completion; returns the full report.
  /// Must be called exactly once.
  RunReport run();

 private:
  // ---- controller events ----
  struct EvVmFailed { cluster::VmId vm; };
  struct EvVmRunning { cluster::VmId vm; };
  struct EvRemoveVm { cluster::VmId vm; };
  using ControllerEvent = std::variant<EvVmFailed, EvVmRunning, EvRemoveVm>;

  using InboxMessage = std::variant<ControlMessage, WorkerMessage>;

  struct WorkerCtx {
    WorkerId id = 0;
    cluster::VmId vm = 0;
    unsigned slot = 0;
    std::unique_ptr<sim::Channel<MasterMessage>> inbox;
    std::deque<WorkUnitId> preassigned;
    bool registered = false;
    bool isolated = false;
    bool draining = false;
    bool finished = false;  ///< received NoMoreWork / exited
    std::size_t unacked = 0;  ///< committed assignments awaiting ExecStatus
    std::size_t completed = 0;
    SimTime busy_seconds = 0.0;
  };

  // ---- roles ----
  sim::Task<> controller_main();
  sim::Task<> master_main();
  sim::Task<> worker_main(WorkerId id);
  sim::Task<> arrival_pump();   ///< open-loop: inject units at their offsets
  sim::Task<> elastic_main();   ///< queue-depth-reactive scale-out/in
  sim::Task<> telemetry_main(); ///< tick the attached probe on its interval
  /// Snapshot the raw telemetry gauges at sim-now (queue depth, in-flight,
  /// live workers/VMs, cumulative completions/solves/scale events).
  obs::TelemetryTick telemetry_tick_now() const;
  sim::Task<> staging();
  sim::Task<> stage_files_to_node(cluster::VmId vm, std::vector<storage::FileId> files);
  sim::Task<> stage_common_data(cluster::VmId vm);
  sim::Task<> dispatch(WorkerId worker, WorkUnitId unit);

  // ---- master helpers ----
  void handle_control(const ControlMessage& msg);
  void handle_worker_msg(const WorkerMessage& msg);
  void top_up(WorkerId worker);  ///< commit assignments up to the credit limit
  void top_up_all();
  std::optional<WorkUnitId> next_unit_for(WorkerCtx& ws);
  void unit_terminal(WorkUnitId unit, UnitStatus status);
  void unit_not_completed(WorkUnitId unit);  // requeue or fail per options
  void isolate_worker(WorkerId worker);
  void drain_worker(WorkerId worker);
  void maybe_terminate_vm(cluster::VmId vm);
  void check_progress_possible();
  void finish_all();
  // Disk-capacity accounting (Section III.A: "local disk space is very
  // limited").  reserve_disk evicts unpinned processed inputs when allowed.
  void recover_master();
  void force_requeue(WorkUnitId unit);  ///< back to pending, whatever the options
  /// Best replica to pull `file` from when staging to `target`: the source
  /// directory if it has it, else a same-site replica, else any replica.
  std::optional<net::NodeId> replica_source(storage::FileId file, net::NodeId target);
  bool reserve_disk(cluster::VmId vm, Bytes size, bool allow_eviction);
  bool evict_one_replica(cluster::VmId vm);
  void note_staged(cluster::VmId vm, storage::FileId file);
  void pin_unit(WorkUnitId unit, cluster::VmId vm);
  void unpin_unit(WorkUnitId unit);
  void invalidate_unstaged_preassignments();
  bool all_terminal() const { return terminal_count_ == units_.size(); }
  bool worker_live(const WorkerCtx& ws) const;
  bool open_loop() const { return !options_.arrivals.empty(); }
  /// True for the strategies whose workers stream inputs at execution time
  /// instead of having them staged (remote-read, shared-volume).
  bool streams_inputs() const {
    return options_.strategy == PlacementStrategy::kRemoteRead ||
           options_.strategy == PlacementStrategy::kSharedVolume;
  }
  sim::Signal& node_ready(cluster::VmId vm);
  void fork_workers_on(cluster::VmId vm, std::vector<WorkerId>& out);
  unsigned workers_per_vm(cluster::VmId vm) const;

  // ---- execution-template instantiation (template.hpp) ----
  /// The assignment table for `workers` slots: served from the template
  /// when its captured (policy, worker count) match — recomputed otherwise
  /// (a patch).  Under audit mode the templated table is differentially
  /// checked against a fresh computation.
  std::vector<std::vector<WorkUnitId>> plan_assignment(std::size_t workers);
  /// The AssignWork message for `unit`: a copy of the template's prototype
  /// when the staging decision still matches — freshly bound otherwise.
  AssignWork make_assignment(WorkUnitId unit);
  void note_template_patch();

  // ---- observability taps (all no-ops when tracing/metrics are off) ----
  /// Remember when `unit` (re)entered a queue, for its pending span.
  void mark_pending(WorkUnitId unit);
  /// Emit the pending span that ends with this dispatch.
  void trace_dispatched(WorkUnitId unit, WorkerId worker);
  /// Emit the unit's lifecycle span on reaching a terminal state.
  void trace_terminal(const UnitRecord& rec);
  /// Emit a protocol/control instant at sim-now on the run track.
  void trace_instant(const char* name, const char* cat,
                     std::vector<std::pair<const char*, std::string>> args = {});

  // ---- fixed inputs ----
  cluster::VirtualCluster& cluster_;
  sim::Simulation& sim_;
  const storage::FileCatalog& catalog_;
  std::vector<WorkUnit> units_;
  const AppModel& app_;
  CommandTemplate command_;
  RunOptions options_;
  std::vector<cluster::VmId> initial_vms_;

  // ---- shared state ----
  storage::ReplicaMap replicas_;
  Timeline timeline_;
  std::vector<std::unique_ptr<WorkerCtx>> workers_;
  std::vector<UnitRecord> unit_state_;
  std::deque<WorkUnitId> queue_;    ///< shared dispatch queue (real-time, requeues)
  std::size_t terminal_count_ = 0;
  bool initialized_ = false;        ///< StartMaster + partition + workers received
  bool serving_ = false;            ///< staging done; requests are served live
  bool common_preplaced_ = false;   ///< pre_place_*() seeded the common data too
  bool finished_ = false;
  std::size_t isolated_count_ = 0;
  SimTime ready_time_ = 0.0;
  SimTime staging_end_ = 0.0;
  SimTime end_time_ = 0.0;
  bool ran_ = false;

  // Open-loop service state: when serving started (arrival offsets are
  // relative to it), the latency sample set fed by unit_terminal, and the
  // elasticity policy's bookkeeping (VMs it added, scale event counts).
  SimTime serve_start_ = 0.0;
  SampleSet latency_;
  std::vector<cluster::VmId> elastic_live_;  ///< policy-added VMs, oldest first
  std::size_t scale_outs_ = 0;
  std::size_t scale_ins_ = 0;

  std::unique_ptr<sim::Channel<InboxMessage>> inbox_;
  std::unique_ptr<sim::Channel<ControllerEvent>> events_;
  std::unordered_map<cluster::VmId, std::unique_ptr<sim::Signal>> node_ready_;
  std::unique_ptr<sim::Signal> master_done_;

  // Disk accounting state: staged arrival order (eviction candidates), pin
  // counts of inputs referenced by in-flight units, units' pin locations,
  // and nodes whose common data could not be staged.
  std::unordered_map<cluster::VmId, std::deque<storage::FileId>> staged_order_;
  std::unordered_map<cluster::VmId, std::unordered_map<storage::FileId, int>> pins_;
  std::unordered_map<WorkUnitId, cluster::VmId> unit_pin_vm_;
  std::unordered_set<cluster::VmId> invalid_nodes_;
  std::unordered_map<cluster::VmId, int> staging_active_;  ///< transfers in flight

  // Master crash/recovery state: the epoch invalidates dispatches that were
  // mid-staging when the master died; handed_[u] records whether unit u's
  // assignment reached its worker (those survive the outage).
  bool master_down_ = false;
  std::uint64_t master_epoch_ = 0;
  std::unique_ptr<sim::Signal> master_recovered_;
  std::vector<char> handed_;
  std::size_t master_crashes_ = 0;
  std::size_t failure_token_ = 0;  ///< cluster observer registrations,
  std::size_t running_token_ = 0;  ///< released in the destructor

  Bytes bytes_baseline_ = 0;
  std::uint64_t transfers_baseline_ = 0;
  std::uint64_t solves_baseline_ = 0;
  std::uint64_t full_solves_baseline_ = 0;
  std::uint64_t dirty_classes_baseline_ = 0;

  // Observability state: tracer_ mirrors options_.tracer (hot-path guard),
  // the counters are resolved once from options_.metrics in the constructor,
  // and the per-unit timestamps back the pending/unit lifecycle spans.
  obs::Tracer* tracer_ = nullptr;
  obs::TelemetryProbe* telemetry_ = nullptr;  ///< mirrors options_.telemetry
  struct {
    obs::Counter* requeues = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* isolations = nullptr;
    obs::Counter* master_crashes = nullptr;
    obs::Counter* template_patches = nullptr;
  } run_metrics_;

  // Execution-template state: tmpl_ mirrors options_.exec_template (kept
  // alive by it), audit_ snapshots the store's differential-check mode at
  // construction, and the cp_* counters feed the run anchor span
  // ("cp_instantiations" = control-plane decisions made, "cp_templated" =
  // served from the template, "cp_patches" = recomputed because a captured
  // input diverged).  Deliberately not part of RunReport: templated and
  // from-scratch runs must stay field-identical.
  const ExecutionTemplate* tmpl_ = nullptr;
  bool template_audit_ = false;
  std::uint64_t cp_instantiations_ = 0;
  std::uint64_t cp_templated_ = 0;
  std::uint64_t cp_patches_ = 0;
  std::vector<SimTime> trace_born_;     ///< first enqueue time per unit
  std::vector<SimTime> trace_pending_;  ///< latest (re)enqueue time per unit
};

}  // namespace frieda::core
