#include "frieda/adaptive.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "frieda/report_io.hpp"

// History lines are '|'-delimited; app names may contain the delimiter (or a
// backslash, or a newline), so the app field is escaped on write and decoded
// on read via the shared report wire helpers (escape_field / split_escaped
// in frieda/report_io.hpp).  The remaining fields are machine-generated and
// never need escaping.

namespace frieda::core {

void ExecutionHistory::record(const RunReport& report) {
  const auto strategy = parse_placement_strategy(report.strategy);
  FRIEDA_CHECK(strategy.has_value(), "report has unknown strategy '" << report.strategy << "'");
  record(report.app, *strategy, report.makespan());
}

void ExecutionHistory::record(const std::string& app, PlacementStrategy strategy,
                              SimTime makespan) {
  stats_[{app, strategy}].add(makespan);
}

std::size_t ExecutionHistory::observations(const std::string& app,
                                           PlacementStrategy strategy) const {
  const auto it = stats_.find({app, strategy});
  return it == stats_.end() ? 0 : it->second.count();
}

std::optional<SimTime> ExecutionHistory::mean_makespan(const std::string& app,
                                                       PlacementStrategy strategy) const {
  const auto it = stats_.find({app, strategy});
  if (it == stats_.end() || it->second.count() == 0) return std::nullopt;
  return it->second.mean();
}

std::vector<std::string> ExecutionHistory::known_apps() const {
  std::vector<std::string> apps;
  for (const auto& [key, value] : stats_) {
    if (apps.empty() || apps.back() != key.first) apps.push_back(key.first);
  }
  return apps;
}

std::string ExecutionHistory::serialize() const {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [key, value] : stats_) {
    // count observations are compressed to (count x mean); adequate for the
    // selector, which only consults means.
    os << escape_field(key.first) << "|" << to_string(key.second) << "|" << value.count() << "|"
       << value.mean() << "\n";
  }
  return os.str();
}

ExecutionHistory ExecutionHistory::deserialize(const std::string& text) {
  ExecutionHistory history;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (strutil::trim(line).empty()) continue;
    const auto parts = split_escaped(line);
    FRIEDA_CHECK(parts && parts->size() == 4, "malformed history line '" << line << "'");
    const auto& fields = *parts;
    const auto strategy = parse_placement_strategy(fields[1]);
    FRIEDA_CHECK(strategy.has_value(), "unknown strategy in history: '" << fields[1] << "'");
    const auto count = strutil::to_int(fields[2]);
    const auto mean = strutil::to_double(fields[3]);
    FRIEDA_CHECK(count && *count >= 0 && mean && std::isfinite(*mean) && *mean >= 0.0,
                 "malformed history line '" << line << "'");
    for (std::int64_t i = 0; i < *count; ++i) history.record(fields[0], *strategy, *mean);
  }
  return history;
}

const std::vector<PlacementStrategy>& AdaptiveSelector::candidates() {
  static const std::vector<PlacementStrategy> kCandidates = {
      PlacementStrategy::kPrePartitionRemote,
      PlacementStrategy::kRealTime,
  };
  return kCandidates;
}

PlacementStrategy AdaptiveSelector::heuristic(const WorkloadShape& shape) {
  if (shape.data_already_local) return PlacementStrategy::kPrePartitionLocal;
  if (shape.local_disk_capacity > 0) {
    // Storage selection (Section III.A): the strategy must respect the
    // limited VM-local disk.
    if (shape.bytes_per_unit > shape.local_disk_capacity) {
      return PlacementStrategy::kRemoteRead;
    }
    if (shape.bytes_per_node_share > shape.local_disk_capacity) {
      return PlacementStrategy::kRealTime;
    }
  }
  const double stage_seconds =
      shape.staging_bandwidth > 0
          ? static_cast<double>(shape.bytes_per_unit) / shape.staging_bandwidth
          : 0.0;
  const double compute_seconds_parallel =
      shape.seconds_per_unit / std::max(1u, shape.total_cores);
  if (stage_seconds > compute_seconds_parallel) return PlacementStrategy::kRealTime;
  if (shape.cost_cv > 0.25) return PlacementStrategy::kRealTime;
  return PlacementStrategy::kPrePartitionRemote;
}

PlacementStrategy AdaptiveSelector::choose(const std::string& app, const WorkloadShape& shape,
                                           std::size_t min_observations) const {
  PlacementStrategy best = PlacementStrategy::kRealTime;
  SimTime best_mean = 0.0;
  bool have_all = true;
  bool first = true;
  for (const auto candidate : candidates()) {
    if (history_.observations(app, candidate) < min_observations) {
      have_all = false;
      break;
    }
    const auto mean = *history_.mean_makespan(app, candidate);
    if (first || mean < best_mean) {
      best = candidate;
      best_mean = mean;
      first = false;
    }
  }
  if (have_all) return best;
  return heuristic(shape);
}

}  // namespace frieda::core
