// Application model interface.
//
// FRIEDA executes unmodified programs; all it observes is how long a program
// instance runs and which bytes it needs.  An AppModel captures exactly that
// observable surface for the simulator: per-unit service time (deterministic
// per unit, so strategies are compared on identical workloads), common data
// that must be resident on every node before any instance runs (the BLAST
// database), and per-unit output size (left on worker-local storage in the
// paper's evaluation).
#pragma once

#include <string>

#include "common/units.hpp"
#include "frieda/types.hpp"
#include "storage/file.hpp"

namespace frieda::core {

/// Observable behavior of the application being farmed.
class AppModel {
 public:
  virtual ~AppModel() = default;

  /// Display name for reports.
  virtual const std::string& name() const = 0;

  /// Service time (seconds on one core) of the given work unit.  Must be
  /// deterministic: the same unit always costs the same.
  virtual SimTime task_seconds(const WorkUnit& unit) const = 0;

  /// Bytes of common data every node needs before executing anything
  /// (0 when the application has no shared database).
  virtual Bytes common_data_bytes() const = 0;

  /// Output bytes a finished unit leaves on worker-local storage.
  virtual Bytes output_bytes(const WorkUnit& unit) const = 0;
};

}  // namespace frieda::core
