#include "frieda/run.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/log.hpp"
#include "frieda/assignment.hpp"
#include "frieda/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/sync.hpp"

namespace frieda::core {

FriedaRun::FriedaRun(cluster::VirtualCluster& cluster, const storage::FileCatalog& catalog,
                     std::vector<WorkUnit> units, const AppModel& app, CommandTemplate command,
                     RunOptions options)
    : cluster_(cluster),
      sim_(cluster.simulation()),
      catalog_(catalog),
      units_(std::move(units)),
      app_(app),
      command_(std::move(command)),
      options_(std::move(options)),
      initial_vms_(cluster.all_vms()) {
  FRIEDA_CHECK(!units_.empty(), "run needs at least one work unit");
  FRIEDA_CHECK(!initial_vms_.empty(), "run needs at least one provisioned VM");
  unit_state_.resize(units_.size());
  for (std::size_t i = 0; i < units_.size(); ++i) {
    FRIEDA_CHECK(units_[i].id == i, "work unit ids must be dense and ordered");
    FRIEDA_CHECK(command_.accepts(units_[i]),
                 "command template arity " << command_.input_arity()
                                           << " does not match unit " << i << " with "
                                           << units_[i].inputs.size() << " inputs");
    unit_state_[i].unit = units_[i].id;
  }

  if (open_loop()) {
    FRIEDA_CHECK(options_.arrivals.size() == units_.size(),
                 "open-loop mode needs one arrival offset per unit ("
                     << options_.arrivals.size() << " offsets for " << units_.size()
                     << " units)");
    FRIEDA_CHECK(options_.strategy == PlacementStrategy::kRealTime || streams_inputs(),
                 "open-loop mode requires a queue-fed strategy "
                 "(real-time, remote-read, or shared-volume)");
    SimTime prev = 0.0;
    for (const auto t : options_.arrivals) {
      FRIEDA_CHECK(t >= prev, "arrival offsets must be ascending and >= 0");
      prev = t;
    }
  }
  const auto& ep = options_.elastic_policy;
  if (ep.enabled) {
    FRIEDA_CHECK(open_loop(), "the elasticity policy needs open-loop arrivals");
    FRIEDA_CHECK(ep.scale_in_depth < ep.scale_out_depth,
                 "elastic policy: scale_in_depth must be below scale_out_depth");
    FRIEDA_CHECK(ep.check_interval > 0.0, "elastic policy: check_interval must be > 0");
    FRIEDA_CHECK(ep.hysteresis >= 1, "elastic policy: hysteresis must be >= 1");
  }

  handed_.assign(units_.size(), 0);
  inbox_ = std::make_unique<sim::Channel<InboxMessage>>(sim_);
  events_ = std::make_unique<sim::Channel<ControllerEvent>>(sim_);
  master_done_ = std::make_unique<sim::Signal>(sim_);

  // The catalog's files live in the source node's input directory unless
  // the caller says otherwise (workflow stages seed replicas instead).
  // With the shared-volume strategy they live on the volume server.
  if (options_.inputs_at_source) {
    auto home = cluster_.source_node();
    if (options_.strategy == PlacementStrategy::kSharedVolume) {
      const auto storage = cluster_.storage_node();
      FRIEDA_CHECK(storage.has_value(),
                   "shared-volume strategy needs ClusterOptions::with_storage_server");
      home = *storage;
    }
    for (const auto& f : catalog_.files()) replicas_.add(f.id, home);
  }

  // Failure and boot notifications flow to the controller (Fig. 4: failed
  // workers are reported to the controller, which initiates remediation).
  failure_token_ = cluster_.on_failure([this](cluster::VmId vm) {
    replicas_.drop_node(cluster_.vm(vm).node());  // transient storage is gone
    events_->try_send(EvVmFailed{vm});
  });
  running_token_ =
      cluster_.on_running([this](cluster::VmId vm) { events_->try_send(EvVmRunning{vm}); });

  tracer_ = options_.tracer;
  telemetry_ = options_.telemetry;
  if (tracer_) {
    trace_born_.assign(units_.size(), 0.0);
    trace_pending_.assign(units_.size(), 0.0);
  }
  if (options_.metrics) {
    auto& m = *options_.metrics;
    run_metrics_.requeues = &m.counter("run.requeues");
    run_metrics_.evictions = &m.counter("run.evictions");
    run_metrics_.isolations = &m.counter("run.isolations");
    run_metrics_.master_crashes = &m.counter("run.master_crashes");
    run_metrics_.template_patches = &m.counter("frieda.template_patches");
  }

  tmpl_ = options_.exec_template.get();
  if (tmpl_ != nullptr) {
    template_audit_ = TemplateStore::global().differential_check();
    FRIEDA_CHECK(tmpl_->units().size() == units_.size(),
                 "execution template covers " << tmpl_->units().size()
                                              << " units but the run has " << units_.size());
    if (template_audit_) {
      FRIEDA_CHECK(partition_signature(tmpl_->units()) == partition_signature(units_),
                   "template audit: the run's partition list diverged from the "
                   "captured template");
    }
  }
}

FriedaRun::~FriedaRun() {
  cluster_.remove_observer(failure_token_);
  cluster_.remove_observer(running_token_);
}

unsigned FriedaRun::workers_per_vm(cluster::VmId vm) const {
  return options_.multicore ? cluster_.vm(vm).type().cores : 1u;
}

// ---------------------------------------------------------------------------
// Execution-template instantiation (see template.hpp)
// ---------------------------------------------------------------------------

void FriedaRun::note_template_patch() {
  ++cp_patches_;
  if (run_metrics_.template_patches) run_metrics_.template_patches->inc();
}

std::vector<std::vector<WorkUnitId>> FriedaRun::plan_assignment(std::size_t workers) {
  ++cp_instantiations_;
  if (tmpl_ != nullptr && tmpl_->assignment_policy() == options_.assignment &&
      tmpl_->assignment_workers() == workers) {
    if (template_audit_) {
      const auto fresh = assign_units(options_.assignment, units_, catalog_, workers);
      FRIEDA_CHECK(fresh == tmpl_->assignment(),
                   "template audit: captured assignment table diverged from a "
                   "fresh computation for "
                       << workers << " workers");
    }
    ++cp_templated_;
    return tmpl_->assignment();
  }
  if (tmpl_ != nullptr) note_template_patch();  // worker-count / policy delta
  return assign_units(options_.assignment, units_, catalog_, workers);
}

AssignWork FriedaRun::make_assignment(WorkUnitId unit) {
  ++cp_instantiations_;
  const bool staged = !streams_inputs();
  if (tmpl_ != nullptr && tmpl_->inputs_staged() == staged &&
      tmpl_->staging_dir() == options_.staging_dir) {
    AssignWork work = tmpl_->prototypes()[unit];
    if (template_audit_) {
      FRIEDA_CHECK(work.unit == units_[unit] &&
                       work.command ==
                           command_.bind_unit(units_[unit], catalog_, options_.staging_dir),
                   "template audit: prototype assignment for unit "
                       << unit << " diverged from a fresh binding");
    }
    ++cp_templated_;
    return work;
  }
  if (tmpl_ != nullptr) note_template_patch();  // staging decision delta
  AssignWork work;
  work.unit = units_[unit];
  work.command = command_.bind_unit(units_[unit], catalog_, options_.staging_dir);
  work.inputs_staged = staged;
  return work;
}

// ---------------------------------------------------------------------------
// Observability taps (no-ops unless a tracer/registry was attached)
// ---------------------------------------------------------------------------

void FriedaRun::mark_pending(WorkUnitId unit) {
  if (tracer_) trace_pending_[unit] = sim_.now();
}

void FriedaRun::trace_dispatched(WorkUnitId unit, WorkerId worker) {
  if (!tracer_) return;
  const auto& rec = unit_state_[unit];
  obs::TraceEvent ev;
  ev.name = "pending unit " + std::to_string(unit);
  ev.cat = "pending";
  ev.process = obs::kUnitTrack;
  ev.track = static_cast<std::uint32_t>(unit);
  ev.start = trace_pending_[unit];
  ev.end = sim_.now();
  ev.args = {{"attempt", std::to_string(rec.attempts)},
             {"worker", std::to_string(worker)},
             {"vm", std::to_string(workers_[worker]->vm)}};
  tracer_->span(std::move(ev));
}

void FriedaRun::trace_terminal(const UnitRecord& rec) {
  if (!tracer_) return;
  obs::TraceEvent ev;
  ev.name = "unit " + std::to_string(rec.unit);
  ev.cat = "unit";
  ev.process = obs::kUnitTrack;
  ev.track = static_cast<std::uint32_t>(rec.unit);
  ev.start = trace_born_[rec.unit];
  ev.end = rec.finished;
  ev.args = {{"status", to_string(rec.status)},
             {"attempts", std::to_string(rec.attempts)}};
  if (rec.attempts > 0) {
    ev.args.push_back({"worker", std::to_string(rec.worker)});
    ev.args.push_back({"vm", std::to_string(workers_[rec.worker]->vm)});
  }
  tracer_->span(std::move(ev));
}

void FriedaRun::trace_instant(const char* name, const char* cat,
                              std::vector<std::pair<const char*, std::string>> args) {
  if (!tracer_) return;
  obs::TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.process = obs::kRunTrack;
  ev.start = ev.end = sim_.now();
  ev.args.reserve(args.size());
  for (auto& [key, value] : args) ev.args.push_back({key, std::move(value)});
  tracer_->instant(std::move(ev));
}

void FriedaRun::pre_place_all_inputs(const std::vector<cluster::VmId>& vms) {
  common_preplaced_ = true;
  for (const auto vm : vms) {
    const auto node = cluster_.vm(vm).node();
    if (options_.track_disk_capacity) {
      const Bytes needed = catalog_.total_bytes() + app_.common_data_bytes();
      FRIEDA_CHECK(cluster_.vm(vm).disk().allocate(needed),
                   "pre-placed dataset (" << needed << " B) does not fit on vm " << vm
                                          << "'s local disk");
    }
    for (const auto& f : catalog_.files()) replicas_.add(f.id, node);
  }
}

void FriedaRun::pre_place_partitions(const std::vector<cluster::VmId>& vms) {
  common_preplaced_ = true;
  // Reproduce the master's worker ordering: vm order x slot.
  std::vector<cluster::VmId> worker_vm;
  for (const auto vm : vms) {
    for (unsigned s = 0; s < workers_per_vm(vm); ++s) worker_vm.push_back(vm);
  }
  const auto assignment = plan_assignment(worker_vm.size());
  for (std::size_t w = 0; w < assignment.size(); ++w) {
    const auto vm = worker_vm[w];
    const auto node = cluster_.vm(vm).node();
    for (const auto u : assignment[w]) {
      for (const auto f : units_[u].inputs) {
        if (replicas_.has(f, node)) continue;
        if (options_.track_disk_capacity) {
          FRIEDA_CHECK(cluster_.vm(vm).disk().allocate(catalog_.info(f).size),
                       "pre-placed partition does not fit on vm " << vm << "'s local disk");
        }
        replicas_.add(f, node);
      }
    }
  }
  if (options_.track_disk_capacity && app_.common_data_bytes() > 0) {
    for (const auto vm : vms) {
      FRIEDA_CHECK(cluster_.vm(vm).disk().allocate(app_.common_data_bytes()),
                   "common data does not fit on vm " << vm << "'s local disk");
    }
  }
}

void FriedaRun::seed_replica(cluster::VmId vm, storage::FileId file) {
  FRIEDA_CHECK(file < catalog_.count(), "seed_replica: file id out of range");
  replicas_.add(file, cluster_.vm(vm).node());
}

std::optional<net::NodeId> FriedaRun::replica_source(storage::FileId file,
                                                     net::NodeId target) {
  const auto nodes = replicas_.nodes_with(file);
  if (nodes.empty()) return std::nullopt;
  const auto source = cluster_.source_node();
  if (std::find(nodes.begin(), nodes.end(), source) != nodes.end()) return source;
  const auto& topo = cluster_.network().topology();
  for (const auto n : nodes) {
    if (n != target && topo.site(n) == topo.site(target)) return n;
  }
  for (const auto n : nodes) {
    if (n != target) return n;
  }
  return std::nullopt;
}

void FriedaRun::pre_place_files(cluster::VmId vm, const std::vector<storage::FileId>& files) {
  const auto node = cluster_.vm(vm).node();
  for (const auto f : files) {
    if (replicas_.has(f, node)) continue;
    if (options_.track_disk_capacity) {
      FRIEDA_CHECK(cluster_.vm(vm).disk().allocate(catalog_.info(f).size),
                   "pre-placed file " << f << " does not fit on vm " << vm);
    }
    replicas_.add(f, node);
  }
}

cluster::VmId FriedaRun::add_vm(const cluster::InstanceType& type) {
  return cluster_.provision(type);  // EvVmRunning arrives once booted
}

void FriedaRun::crash_master(SimTime recovery_delay) {
  FRIEDA_CHECK(recovery_delay >= 0.0, "recovery delay must be >= 0");
  if (finished_ || master_down_) return;
  ++master_crashes_;
  if (run_metrics_.master_crashes) run_metrics_.master_crashes->inc();
  if (tracer_) {
    trace_instant("master-crash", "protocol",
                  {{"recovery_s", std::to_string(recovery_delay)}});
  }
  master_down_ = true;
  ++master_epoch_;  // abandons every dispatch that was mid-staging
  master_recovered_ = std::make_unique<sim::Signal>(sim_);
  timeline_.record(ActivityKind::kStage, sim_.now(), sim_.now() + recovery_delay,
                   "master-down");
  FLOG(kInfo, "controller", "master failed at t=" << sim_.now() << "; restarting in "
                                                  << recovery_delay << " s");
  sim_.schedule_in(recovery_delay, [this] { recover_master(); });
}

void FriedaRun::recover_master() {
  if (finished_) return;
  master_down_ = false;
  // Resync from the controller's view: assignments that never reached a
  // worker were lost with the master and go back to the queue; everything a
  // worker already holds keeps running (the planes are decoupled).
  for (auto& rec : unit_state_) {
    if (rec.status == UnitStatus::kInFlight && !handed_[rec.unit]) {
      force_requeue(rec.unit);
    }
  }
  if (tracer_) trace_instant("master-recover", "protocol");
  FLOG(kInfo, "controller", "master recovered at t=" << sim_.now());
  master_recovered_->trigger();
  if (serving_) top_up_all();
}

void FriedaRun::force_requeue(WorkUnitId unit) {
  auto& rec = unit_state_[unit];
  if (rec.status == UnitStatus::kInFlight) {
    auto& ws = *workers_[rec.worker];
    FRIEDA_CHECK(ws.unacked > 0, "in-flight accounting underflow");
    --ws.unacked;
  }
  unpin_unit(unit);
  rec.status = UnitStatus::kPending;
  queue_.push_back(unit);
  if (run_metrics_.requeues) run_metrics_.requeues->inc();
  mark_pending(unit);
}

void FriedaRun::remove_vm(cluster::VmId vm) { events_->try_send(EvRemoveVm{vm}); }

sim::Signal& FriedaRun::node_ready(cluster::VmId vm) {
  auto& slot = node_ready_[vm];
  if (!slot) slot = std::make_unique<sim::Signal>(sim_);
  return *slot;
}

bool FriedaRun::worker_live(const WorkerCtx& ws) const {
  return !ws.isolated && !ws.finished && !ws.draining;
}

// ---------------------------------------------------------------------------
// Controller (control plane)
// ---------------------------------------------------------------------------

void FriedaRun::fork_workers_on(cluster::VmId vm, std::vector<WorkerId>& out) {
  const unsigned n = workers_per_vm(vm);
  for (unsigned slot = 0; slot < n; ++slot) {
    auto ctx = std::make_unique<WorkerCtx>();
    ctx->id = static_cast<WorkerId>(workers_.size());
    ctx->vm = vm;
    ctx->slot = slot;
    ctx->inbox = std::make_unique<sim::Channel<MasterMessage>>(sim_);
    out.push_back(ctx->id);
    workers_.push_back(std::move(ctx));
    sim_.spawn(worker_main(workers_.back()->id),
               "worker-" + std::to_string(workers_.back()->id));
  }
}

sim::Task<> FriedaRun::controller_main() {
  // Fig. 4: the controller starts the master and initializes it with the
  // partition strategy, keeping an open channel for runtime reconfiguration.
  co_await sim_.delay(options_.control_latency);
  // Messages are built into named locals before sending: see the note on
  // Channel::send about GCC 12 and co_await argument temporaries.
  InboxMessage start = StartMaster{options_.strategy, options_.assignment};
  co_await inbox_->send(std::move(start));
  InboxMessage partition_info = SetPartitionInfo{units_};
  co_await inbox_->send(std::move(partition_info));

  co_await cluster_.wait_all_running(initial_vms_);
  ready_time_ = sim_.now();

  std::vector<WorkerId> ids;
  for (const auto vm : initial_vms_) {
    if (cluster_.vm(vm).running()) fork_workers_on(vm, ids);
  }
  InboxMessage fork = ForkWorkers{ids};
  co_await inbox_->send(std::move(fork));
  FLOG(kDebug, "controller", "forked " << ids.size() << " workers at t=" << sim_.now());

  const std::set<cluster::VmId> initial_set(initial_vms_.begin(), initial_vms_.end());
  while (true) {
    auto ev = co_await events_->recv();
    if (!ev) break;
    if (const auto* failed = std::get_if<EvVmFailed>(&*ev)) {
      co_await sim_.delay(options_.control_latency);
      for (const auto& ws : workers_) {
        if (ws->vm == failed->vm && !ws->isolated) {
          InboxMessage isolate = IsolateWorker{ws->id};
          co_await inbox_->send(std::move(isolate));
        }
      }
    } else if (const auto* running = std::get_if<EvVmRunning>(&*ev)) {
      if (initial_set.count(running->vm)) continue;  // handled by ForkWorkers
      std::vector<WorkerId> added;
      fork_workers_on(running->vm, added);
      co_await sim_.delay(options_.control_latency);
      InboxMessage add = AddWorkers{added};
      co_await inbox_->send(std::move(add));
      FLOG(kDebug, "controller", "elastic add: vm " << running->vm << " joined with "
                                                    << added.size() << " workers");
    } else if (const auto* remove = std::get_if<EvRemoveVm>(&*ev)) {
      co_await sim_.delay(options_.control_latency);
      for (const auto& ws : workers_) {
        if (ws->vm == remove->vm && worker_live(*ws)) {
          InboxMessage drain = DrainWorker{ws->id};
          co_await inbox_->send(std::move(drain));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Master (execution plane, data management)
// ---------------------------------------------------------------------------

sim::Task<> FriedaRun::master_main() {
  // Phase 1: initialization — wait for the controller's directives.
  while (!initialized_) {
    auto msg = co_await inbox_->recv();
    if (!msg) co_return;
    if (const auto* ctrl = std::get_if<ControlMessage>(&*msg)) {
      handle_control(*ctrl);
    } else {
      handle_worker_msg(std::get<WorkerMessage>(*msg));
    }
  }

  if (workers_.empty()) {
    // Every initial VM failed before booting: nothing can run.
    for (auto& rec : unit_state_) {
      if (rec.status == UnitStatus::kPending) unit_terminal(rec.unit, UnitStatus::kUnprocessed);
    }
    co_return;
  }

  // Phase 2: data staging per the placement strategy.
  co_await staging();
  staging_end_ = sim_.now();
  serving_ = true;
  serve_start_ = sim_.now();

  // Open-loop service mode: the arrival process feeds the queue from here
  // on, and the elasticity policy watches its depth.
  if (open_loop() && !finished_) {
    sim_.spawn(arrival_pump(), "arrival-pump");
    if (options_.elastic_policy.enabled) sim_.spawn(elastic_main(), "elastic-policy");
  }
  // Live telemetry samples from serving start (both modes): the probe's
  // epoch began at run(), but gauges only move once the farm is live.
  if (telemetry_ != nullptr && !finished_) sim_.spawn(telemetry_main(), "telemetry-probe");

  // Kick off the farm: commit assignments up to each worker's credit limit.
  top_up_all();

  // Phase 3: task farming (Fig. 3/4 dispatch loop).
  while (!finished_) {
    auto msg = co_await inbox_->recv();
    if (!msg) break;
    // During a master outage messages buffer (workers reconnect and resend
    // is unnecessary — the channel is the reconnection buffer); they are
    // processed in order once the controller restarts the master.
    while (master_down_) co_await master_recovered_->wait();
    if (finished_) break;
    if (const auto* ctrl = std::get_if<ControlMessage>(&*msg)) {
      handle_control(*ctrl);
    } else {
      handle_worker_msg(std::get<WorkerMessage>(*msg));
    }
  }
}

void FriedaRun::handle_control(const ControlMessage& msg) {
  if (const auto* start = std::get_if<StartMaster>(&msg)) {
    FRIEDA_CHECK(start->strategy == options_.strategy, "strategy mismatch");
    if (tracer_) trace_instant("start-master", "protocol");
  } else if (std::get_if<SetPartitionInfo>(&msg)) {
    // Units were validated in the constructor; nothing further to do.
  } else if (std::get_if<ForkWorkers>(&msg)) {
    initialized_ = true;
    if (tracer_) {
      trace_instant("fork-workers", "protocol",
                    {{"workers", std::to_string(workers_.size())}});
    }
  } else if (const auto* iso = std::get_if<IsolateWorker>(&msg)) {
    isolate_worker(iso->worker);
  } else if (const auto* add = std::get_if<AddWorkers>(&msg)) {
    if (tracer_) {
      trace_instant("add-workers", "protocol",
                    {{"workers", std::to_string(add->workers.size())}});
    }
    for (const auto w : add->workers) {
      const auto vm = workers_[w]->vm;
      if (!node_ready_.count(vm)) {
        sim_.spawn(stage_common_data(vm), "stage-common-elastic");
      }
    }
  } else if (const auto* drain = std::get_if<DrainWorker>(&msg)) {
    drain_worker(drain->worker);
  }
}

void FriedaRun::handle_worker_msg(const WorkerMessage& msg) {
  if (const auto* reg = std::get_if<RegisterWorker>(&msg)) {
    workers_[reg->worker]->registered = true;
  } else if (const auto* req = std::get_if<RequestWork>(&msg)) {
    // The worker's readiness announcement (Fig. 4 "request data").  Before
    // serving starts it is a no-op; master_main tops everyone up after
    // staging completes.
    if (serving_) top_up(req->worker);
  } else if (const auto* status = std::get_if<ExecStatus>(&msg)) {
    auto& ws = *workers_[status->worker];
    auto& rec = unit_state_[status->unit];
    ws.busy_seconds += status->exec_seconds;
    rec.exec_seconds = status->exec_seconds;
    rec.transfer_seconds += status->transfer_seconds;  // remote-read pulls
    if (status->ok) {
      ws.completed += 1;
      unit_terminal(status->unit, UnitStatus::kCompleted);
    } else {
      unit_not_completed(status->unit);
    }
    if (!finished_) top_up(status->worker);
  }
}

std::optional<WorkUnitId> FriedaRun::next_unit_for(WorkerCtx& ws) {
  // Pre-partitioned strategies serve the worker's own queue first; the
  // shared queue carries real-time dispatch and requeued units.
  while (!ws.preassigned.empty()) {
    const auto u = ws.preassigned.front();
    ws.preassigned.pop_front();
    if (unit_state_[u].status == UnitStatus::kPending) return u;
  }
  if (options_.locality_aware && !queue_.empty()) {
    // Topology-aware dispatch: scan a bounded prefix of the queue for a unit
    // whose inputs are already resident on this worker's node, avoiding WAN
    // traffic in federated deployments.
    const auto node = cluster_.vm(ws.vm).node();
    const std::size_t depth = std::min(options_.locality_scan_depth, queue_.size());
    for (std::size_t i = 0; i < depth; ++i) {
      const auto u = queue_[i];
      if (unit_state_[u].status != UnitStatus::kPending) continue;
      const bool local =
          std::all_of(units_[u].inputs.begin(), units_[u].inputs.end(),
                      [&](storage::FileId f) { return replicas_.has(f, node); });
      if (local) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        return u;
      }
    }
  }
  while (!queue_.empty()) {
    const auto u = queue_.front();
    queue_.pop_front();
    if (unit_state_[u].status == UnitStatus::kPending) return u;
  }
  return std::nullopt;
}

void FriedaRun::top_up(WorkerId worker) {
  if (finished_) return;
  auto& ws = *workers_[worker];
  if (ws.isolated || ws.finished) return;
  if (ws.draining) {
    if (ws.unacked == 0) {
      ws.inbox->try_send(NoMoreWork{});
      ws.finished = true;
      maybe_terminate_vm(ws.vm);
      check_progress_possible();
    }
    return;
  }
  // Credit-based farming: one executing assignment plus `prefetch` staged
  // ahead, so real-time transfers overlap the worker's current execution
  // ("the phases are interleaved", Section II.C).
  const std::size_t credits = 1 + static_cast<std::size_t>(std::max(options_.prefetch, 0));
  while (ws.unacked < credits) {
    const auto unit = next_unit_for(ws);
    if (!unit) break;
    auto& rec = unit_state_[*unit];
    rec.status = UnitStatus::kInFlight;
    rec.worker = worker;
    rec.attempts += 1;
    rec.dispatched = sim_.now();
    handed_[*unit] = 0;
    ++ws.unacked;
    trace_dispatched(*unit, worker);
    sim_.spawn(dispatch(worker, *unit), "dispatch");
  }
  if (ws.unacked > 0 || all_terminal()) return;

  const bool worker_exhausted = !options_.requeue_on_failure &&
                                options_.strategy != PlacementStrategy::kRealTime &&
                                !streams_inputs();
  if (worker_exhausted) {
    // Pre-partitioned, no requeue: this worker's share is done.
    ws.inbox->try_send(NoMoreWork{});
    ws.finished = true;
    maybe_terminate_vm(ws.vm);
    check_progress_possible();
  }
  // Otherwise the worker idles; a requeue tops it up again, and finish_all
  // releases it when every unit is terminal.
}

void FriedaRun::top_up_all() {
  for (const auto& ws : workers_) {
    if (finished_) return;
    top_up(ws->id);
  }
}

sim::Task<> FriedaRun::dispatch(WorkerId worker, WorkUnitId unit) {
  auto& ws = *workers_[worker];
  auto& rec = unit_state_[unit];
  // A master crash abandons this dispatch: the epoch changes and the
  // recovery path requeues the unit, so abandoned coroutines just return.
  const std::uint64_t epoch = master_epoch_;
  co_await sim_.delay(options_.dispatch_overhead);
  if (epoch != master_epoch_) co_return;
  co_await node_ready(ws.vm).wait();
  if (epoch != master_epoch_) co_return;
  if (ws.isolated || finished_) {
    if (rec.status == UnitStatus::kInFlight && rec.worker == worker) {
      unit_not_completed(unit);
    }
    co_return;
  }

  SimTime transfer_s = 0.0;
  bool ok = !invalid_nodes_.count(ws.vm);  // common data never arrived there
  if (ok && !streams_inputs()) {
    const auto node = cluster_.vm(ws.vm).node();
    // Inputs of in-flight units are pinned so concurrent dispatches cannot
    // evict them from the worker's limited local disk.
    pin_unit(unit, ws.vm);
    const bool allow_evict = options_.strategy == PlacementStrategy::kRealTime;
    for (const auto f : units_[unit].inputs) {
      if (replicas_.has(f, node)) continue;
      // Backpressure: when the disk is full but another unit is *executing*
      // on this VM (its inputs unpin on completion), wait rather than fail.
      // Units that are merely staging are themselves waiting for space, so
      // they do not count — that would be a mutual-wait livelock.
      int retries = 0;
      while (!reserve_disk(ws.vm, catalog_.info(f).size, allow_evict)) {
        const bool other_executing = std::any_of(
            unit_state_.begin(), unit_state_.end(), [&](const UnitRecord& other) {
              return other.unit != unit && other.status == UnitStatus::kInFlight &&
                     handed_[other.unit] && workers_[other.worker]->vm == ws.vm;
            });
        const bool other_staging = staging_active_[ws.vm] > 0;
        if ((!other_executing && !other_staging) || ws.isolated || finished_ ||
            ++retries > 10000) {
          FLOG(kWarn, "master", "vm " << ws.vm << " local disk full; cannot stage unit "
                                      << unit);
          ok = false;
          break;
        }
        co_await sim_.delay(0.25);
        if (epoch != master_epoch_) co_return;
      }
      if (!ok) break;
      const auto src = replica_source(f, node);
      if (!src) {  // every replica was lost (node churn)
        if (options_.track_disk_capacity) {
          cluster_.vm(ws.vm).disk().release(catalog_.info(f).size);
        }
        ok = false;
        break;
      }
      ++staging_active_[ws.vm];
      const auto r = co_await cluster_.network().transfer(
          *src, node, catalog_.info(f).size, options_.transfer_streams);
      --staging_active_[ws.vm];
      timeline_.record(ActivityKind::kTransfer, r.started, r.finished,
                       "input:" + catalog_.info(f).name);
      if (tracer_) {
        obs::TraceEvent ev;
        ev.name = "stage " + catalog_.info(f).name;
        ev.cat = "staging";
        ev.process = obs::kWorkerTrack;
        ev.track = static_cast<std::uint32_t>(worker);
        ev.start = r.started;
        ev.end = r.finished;
        ev.args = {{"unit", std::to_string(unit)},
                   {"file", catalog_.info(f).name},
                   {"bytes", std::to_string(r.transferred)},
                   {"ok", r.ok() ? "1" : "0"}};
        tracer_->span(std::move(ev));
      }
      transfer_s += r.duration();
      if (!r.ok()) {
        if (options_.track_disk_capacity) {
          cluster_.vm(ws.vm).disk().release(catalog_.info(f).size);
        }
        ok = false;
        break;
      }
      replicas_.add(f, node);
      note_staged(ws.vm, f);
      if (epoch != master_epoch_) co_return;  // bytes kept; unit was requeued
    }
  }
  rec.transfer_seconds += transfer_s;
  if (!ok || ws.isolated) {
    if (rec.status == UnitStatus::kInFlight && rec.worker == worker) {
      unit_not_completed(unit);
      if (!finished_) top_up(worker);  // keep draining the queue
    }
    co_return;
  }

  if (epoch != master_epoch_) co_return;
  AssignWork work = make_assignment(unit);
  handed_[unit] = 1;  // from here on the assignment survives a master crash
  MasterMessage assignment = std::move(work);
  const bool sent = co_await ws.inbox->send(std::move(assignment));
  if (!sent && rec.status == UnitStatus::kInFlight && rec.worker == worker) {
    unit_not_completed(unit);
    if (!finished_) top_up(worker);
  }
}

void FriedaRun::unit_terminal(WorkUnitId unit, UnitStatus status) {
  auto& rec = unit_state_[unit];
  FRIEDA_CHECK(rec.status != UnitStatus::kCompleted && rec.status != UnitStatus::kFailed &&
                   rec.status != UnitStatus::kUnprocessed,
               "unit " << unit << " reached a terminal state twice");
  if (rec.status == UnitStatus::kInFlight) {
    auto& ws = *workers_[rec.worker];
    FRIEDA_CHECK(ws.unacked > 0, "in-flight accounting underflow");
    --ws.unacked;
  }
  unpin_unit(unit);
  rec.status = status;
  rec.finished = sim_.now();
  if (open_loop() && status == UnitStatus::kCompleted) {
    latency_.add(rec.finished - rec.arrival);  // sojourn: arrival -> completion
    if (telemetry_ != nullptr) {
      telemetry_->observe_latency(rec.finished, rec.finished - rec.arrival);
    }
  }
  trace_terminal(rec);
  ++terminal_count_;
  if (all_terminal()) finish_all();
}

void FriedaRun::unit_not_completed(WorkUnitId unit) {
  auto& rec = unit_state_[unit];
  const bool any_live = std::any_of(workers_.begin(), workers_.end(),
                                    [&](const auto& ws) { return worker_live(*ws); });
  if (options_.requeue_on_failure && rec.attempts < options_.max_attempts && any_live) {
    if (rec.status == UnitStatus::kInFlight) {
      auto& ws = *workers_[rec.worker];
      FRIEDA_CHECK(ws.unacked > 0, "in-flight accounting underflow");
      --ws.unacked;
    }
    unpin_unit(unit);
    rec.status = UnitStatus::kPending;
    queue_.push_back(unit);
    if (run_metrics_.requeues) run_metrics_.requeues->inc();
    mark_pending(unit);
    if (tracer_) {
      trace_instant("requeue", "control",
                    {{"unit", std::to_string(unit)},
                     {"attempt", std::to_string(rec.attempts)}});
    }
    top_up_all();
    return;
  }
  unit_terminal(unit, UnitStatus::kFailed);
}

void FriedaRun::isolate_worker(WorkerId worker) {
  auto& ws = *workers_[worker];
  if (ws.isolated || finished_) return;
  ws.isolated = true;
  ++isolated_count_;
  if (run_metrics_.isolations) run_metrics_.isolations->inc();
  if (tracer_) {
    trace_instant("isolate-worker", "protocol",
                  {{"worker", std::to_string(worker)}, {"vm", std::to_string(ws.vm)}});
  }
  ws.inbox->close();  // a blocked worker wakes with nullopt and exits

  // Units in flight on this worker are lost with it.
  for (auto& rec : unit_state_) {
    if (rec.status == UnitStatus::kInFlight && rec.worker == worker) {
      unit_not_completed(rec.unit);
      if (finished_) return;
    }
  }
  // Its pre-assigned share never ran.
  std::deque<WorkUnitId> share;
  share.swap(ws.preassigned);
  for (const auto u : share) {
    if (unit_state_[u].status != UnitStatus::kPending) continue;
    if (options_.requeue_on_failure) {
      queue_.push_back(u);
      mark_pending(u);
    } else {
      unit_terminal(u, UnitStatus::kUnprocessed);
      if (finished_) return;
    }
  }
  if (options_.requeue_on_failure) top_up_all();
  check_progress_possible();
}

void FriedaRun::drain_worker(WorkerId worker) {
  auto& ws = *workers_[worker];
  if (ws.isolated) return;
  if (ws.finished) {
    // Already done with its share; only the VM teardown remains.
    ws.draining = true;
    maybe_terminate_vm(ws.vm);
    return;
  }
  ws.draining = true;
  if (tracer_) {
    trace_instant("drain-worker", "protocol",
                  {{"worker", std::to_string(worker)}, {"vm", std::to_string(ws.vm)}});
  }
  // The worker's remaining pre-assigned share is requeued for the others.
  std::deque<WorkUnitId> share;
  share.swap(ws.preassigned);
  for (const auto u : share) {
    if (unit_state_[u].status == UnitStatus::kPending) {
      queue_.push_back(u);
      mark_pending(u);
    }
  }
  if (serving_) {
    top_up(worker);  // releases the worker immediately when it is idle
    top_up_all();
  }
  check_progress_possible();
}

void FriedaRun::maybe_terminate_vm(cluster::VmId vm) {
  bool all_done = true;
  bool any_drained = false;
  for (const auto& ws : workers_) {
    if (ws->vm != vm) continue;
    any_drained |= ws->draining;
    if (!ws->finished && !ws->isolated) all_done = false;
  }
  if (any_drained && all_done && cluster_.vm(vm).running()) {
    replicas_.drop_node(cluster_.vm(vm).node());
    cluster_.terminate_vm(vm);
    FLOG(kDebug, "master", "elastic remove: vm " << vm << " terminated at t=" << sim_.now());
  }
}

bool FriedaRun::reserve_disk(cluster::VmId vm, Bytes size, bool allow_eviction) {
  if (!options_.track_disk_capacity) return true;
  auto& disk = cluster_.vm(vm).disk();
  while (!disk.allocate(size)) {
    if (!allow_eviction || !options_.evict_processed_inputs || !evict_one_replica(vm)) {
      return false;
    }
  }
  return true;
}

bool FriedaRun::evict_one_replica(cluster::VmId vm) {
  auto& order = staged_order_[vm];
  const auto node = cluster_.vm(vm).node();
  auto& pinned = pins_[vm];
  for (auto it = order.begin(); it != order.end(); ++it) {
    const storage::FileId file = *it;
    if (!replicas_.has(file, node)) {
      continue;  // already gone (node churn); lazily skipped
    }
    if (const auto pin = pinned.find(file); pin != pinned.end() && pin->second > 0) {
      continue;  // an in-flight unit still needs it
    }
    if (replicas_.replica_count(file) <= 1) {
      continue;  // never evict the last copy (inputs may live only on VMs)
    }
    replicas_.remove(file, node);
    cluster_.vm(vm).disk().release(catalog_.info(file).size);
    order.erase(it);
    if (run_metrics_.evictions) run_metrics_.evictions->inc();
    if (tracer_) {
      trace_instant("evict", "control", {{"file", catalog_.info(file).name},
                                         {"vm", std::to_string(vm)}});
    }
    return true;
  }
  return false;
}

void FriedaRun::note_staged(cluster::VmId vm, storage::FileId file) {
  staged_order_[vm].push_back(file);
}

void FriedaRun::pin_unit(WorkUnitId unit, cluster::VmId vm) {
  unit_pin_vm_[unit] = vm;
  auto& pinned = pins_[vm];
  for (const auto f : units_[unit].inputs) ++pinned[f];
}

void FriedaRun::unpin_unit(WorkUnitId unit) {
  const auto it = unit_pin_vm_.find(unit);
  if (it == unit_pin_vm_.end()) return;
  auto& pinned = pins_[it->second];
  for (const auto f : units_[unit].inputs) {
    if (const auto pin = pinned.find(f); pin != pinned.end() && --pin->second <= 0) {
      pinned.erase(pin);
    }
  }
  unit_pin_vm_.erase(it);
}

void FriedaRun::invalidate_unstaged_preassignments() {
  // Upfront staging may have been cut short by disk capacity; the affected
  // units can never run on their assigned worker.
  for (auto& ws : workers_) {
    const auto node = cluster_.vm(ws->vm).node();
    std::deque<WorkUnitId> keep;
    for (const auto u : ws->preassigned) {
      const bool staged =
          std::all_of(units_[u].inputs.begin(), units_[u].inputs.end(),
                      [&](storage::FileId f) { return replicas_.has(f, node); });
      if (staged) {
        keep.push_back(u);
      } else if (unit_state_[u].status == UnitStatus::kPending) {
        if (options_.requeue_on_failure) {
          queue_.push_back(u);  // another worker can stage and run it
          mark_pending(u);
        } else {
          unit_terminal(u, UnitStatus::kUnprocessed);
          if (finished_) return;
        }
      }
    }
    ws->preassigned = std::move(keep);
  }
}

void FriedaRun::check_progress_possible() {
  if (finished_) return;
  const bool any_live = std::any_of(workers_.begin(), workers_.end(),
                                    [&](const auto& ws) { return worker_live(*ws); });
  if (any_live) return;
  // No worker can ever request again: pending units are unprocessable.
  for (auto& rec : unit_state_) {
    if (rec.status == UnitStatus::kPending) {
      unit_terminal(rec.unit, UnitStatus::kUnprocessed);
      if (finished_) return;
    }
  }
}

void FriedaRun::finish_all() {
  if (finished_) return;
  finished_ = true;
  end_time_ = sim_.now();
  for (auto& ws : workers_) {
    if (!ws->finished && !ws->isolated) {
      ws->inbox->try_send(NoMoreWork{});
      ws->finished = true;
    }
    ws->inbox->close();
  }
  events_->close();
  master_done_->trigger();
}

// ---------------------------------------------------------------------------
// Open-loop service mode (arrival injection + reactive elasticity)
// ---------------------------------------------------------------------------

sim::Task<> FriedaRun::arrival_pump() {
  // Inject each unit into the shared dispatch queue at its arrival offset
  // (relative to serving start).  Arrivals keep flowing during a master
  // outage — the queue is the reconnection buffer; recover_master() tops the
  // workers up once the master is back.
  for (std::size_t i = 0; i < units_.size(); ++i) {
    const SimTime at = serve_start_ + options_.arrivals[i];
    if (at > sim_.now()) co_await sim_.delay(at - sim_.now());
    if (finished_) co_return;
    auto& rec = unit_state_[i];
    if (rec.status != UnitStatus::kPending) continue;  // e.g. marked unprocessed
    rec.arrival = sim_.now();
    if (tracer_) trace_born_[i] = sim_.now();
    mark_pending(units_[i].id);
    queue_.push_back(units_[i].id);
    if (tracer_) {
      trace_instant("arrival", "service",
                    {{"unit", std::to_string(i)},
                     {"depth", std::to_string(queue_.size())}});
    }
    if (!master_down_) top_up_all();
  }
}

sim::Task<> FriedaRun::elastic_main() {
  // Queue-depth-reactive elasticity: sample the dispatch queue every
  // check_interval; a backlog sustained for `hysteresis` samples provisions
  // one extra VM, a sustained lull drains and releases the oldest VM this
  // policy added.  The initial fleet is never touched.
  const auto& ep = options_.elastic_policy;
  const cluster::InstanceType vm_type = cluster_.vm(initial_vms_.front()).type();
  int out_streak = 0;
  int in_streak = 0;
  while (!finished_) {
    co_await sim_.delay(ep.check_interval);
    if (finished_) co_return;
    const std::size_t depth = queue_.size();
    if (depth >= ep.scale_out_depth) {
      in_streak = 0;
      if (++out_streak >= ep.hysteresis) {
        out_streak = 0;
        if (elastic_live_.size() < ep.max_extra_vms) {
          const auto vm = add_vm(vm_type);
          elastic_live_.push_back(vm);
          ++scale_outs_;
          FLOG(kInfo, "elastic", "scale-out: vm " << vm << " provisioned at t=" << sim_.now()
                                                  << " (queue depth " << depth << ")");
          if (tracer_) {
            trace_instant("scale-out", "service",
                          {{"vm", std::to_string(vm)}, {"depth", std::to_string(depth)}});
          }
        }
      }
    } else if (depth <= ep.scale_in_depth) {
      out_streak = 0;
      if (++in_streak >= ep.hysteresis) {
        in_streak = 0;
        // Drain-and-release the oldest policy-added VM that is actually up
        // (one still booting is left to join and be considered next time).
        for (auto it = elastic_live_.begin(); it != elastic_live_.end(); ++it) {
          if (!cluster_.vm(*it).running()) continue;
          const auto vm = *it;
          elastic_live_.erase(it);
          ++scale_ins_;
          FLOG(kInfo, "elastic", "scale-in: vm " << vm << " draining at t=" << sim_.now()
                                                 << " (queue depth " << depth << ")");
          if (tracer_) {
            trace_instant("scale-in", "service",
                          {{"vm", std::to_string(vm)}, {"depth", std::to_string(depth)}});
          }
          remove_vm(vm);
          break;
        }
      }
    } else {
      out_streak = 0;
      in_streak = 0;
    }
  }
}

obs::TelemetryTick FriedaRun::telemetry_tick_now() const {
  obs::TelemetryTick t;
  t.queue_depth = static_cast<double>(queue_.size());
  std::size_t in_flight = 0;
  std::size_t live = 0;
  std::size_t completed = 0;
  std::set<cluster::VmId> vms;
  for (const auto& ws : workers_) {
    in_flight += ws->unacked;
    completed += ws->completed;
    if (worker_live(*ws)) {
      ++live;
      vms.insert(ws->vm);
    }
  }
  t.in_flight = static_cast<double>(in_flight);
  t.active_workers = static_cast<double>(live);
  t.active_vms = static_cast<double>(vms.size());
  t.completed = static_cast<double>(completed);
  t.net_solves = static_cast<double>(cluster_.network().solver_invocations() - solves_baseline_);
  t.scale_outs = static_cast<double>(scale_outs_);
  t.scale_ins = static_cast<double>(scale_ins_);
  return t;
}

sim::Task<> FriedaRun::telemetry_main() {
  // Sample the attached probe every interval of simulation time until the
  // run finishes; run() adds the final sample at end_time_ itself.
  const SimTime interval = telemetry_->interval();
  while (!finished_) {
    co_await sim_.delay(interval);
    if (finished_) co_return;
    telemetry_->tick(sim_.now(), telemetry_tick_now());
  }
}

// ---------------------------------------------------------------------------
// Data staging
// ---------------------------------------------------------------------------

sim::Task<> FriedaRun::stage_common_data(cluster::VmId vm) {
  auto& ready = node_ready(vm);
  const Bytes common = app_.common_data_bytes();
  if (common == 0 || options_.strategy == PlacementStrategy::kPrePartitionLocal ||
      common_preplaced_) {
    ready.trigger();
    co_return;
  }
  if (!reserve_disk(vm, common, /*allow_eviction=*/false)) {
    FLOG(kError, "master",
         "common data does not fit on vm " << vm << "; its workers cannot run");
    invalid_nodes_.insert(vm);
    ready.trigger();
    co_return;
  }
  const auto node = cluster_.vm(vm).node();
  const auto r = co_await cluster_.network().transfer(cluster_.source_node(), node, common,
                                                      options_.transfer_streams);
  timeline_.record(ActivityKind::kTransfer, r.started, r.finished, "common-data");
  if (tracer_) {
    obs::TraceEvent ev;
    ev.name = "stage-common";
    ev.cat = "staging";
    ev.process = obs::kRunTrack;
    ev.track = static_cast<std::uint32_t>(vm);
    ev.start = r.started;
    ev.end = r.finished;
    ev.args = {{"vm", std::to_string(vm)}, {"bytes", std::to_string(r.transferred)}};
    tracer_->span(std::move(ev));
  }
  ready.trigger();
}

sim::Task<> FriedaRun::stage_files_to_node(cluster::VmId vm, std::vector<storage::FileId> files) {
  // scp-like: one file at a time per node; nodes stage concurrently and
  // share the master's NIC through the network model.
  co_await stage_common_data(vm);
  const auto node = cluster_.vm(vm).node();
  for (const auto f : files) {
    if (replicas_.has(f, node)) continue;
    if (!reserve_disk(vm, catalog_.info(f).size, /*allow_eviction=*/false)) {
      FLOG(kWarn, "master", "vm " << vm << " local disk full during staging; "
                                  << "remaining files stay at the source");
      co_return;  // invalidate_unstaged_preassignments() marks the fallout
    }
    const auto src = replica_source(f, node);
    if (!src) {
      if (options_.track_disk_capacity) cluster_.vm(vm).disk().release(catalog_.info(f).size);
      co_return;
    }
    const auto r = co_await cluster_.network().transfer(
        *src, node, catalog_.info(f).size, options_.transfer_streams);
    timeline_.record(ActivityKind::kTransfer, r.started, r.finished,
                     "stage:" + catalog_.info(f).name);
    if (tracer_) {
      obs::TraceEvent ev;
      ev.name = "stage-node " + catalog_.info(f).name;
      ev.cat = "staging";
      ev.process = obs::kRunTrack;
      ev.track = static_cast<std::uint32_t>(vm);
      ev.start = r.started;
      ev.end = r.finished;
      ev.args = {{"vm", std::to_string(vm)},
                 {"file", catalog_.info(f).name},
                 {"bytes", std::to_string(r.transferred)},
                 {"ok", r.ok() ? "1" : "0"}};
      tracer_->span(std::move(ev));
    }
    if (!r.ok()) {
      if (options_.track_disk_capacity) cluster_.vm(vm).disk().release(catalog_.info(f).size);
      co_return;  // node died; isolation handles the fallout
    }
    replicas_.add(f, node);
    note_staged(vm, f);
  }
}

sim::Task<> FriedaRun::staging() {
  if (tracer_) {
    trace_born_.assign(units_.size(), sim_.now());
    trace_pending_ = trace_born_;
  }
  const bool pre_mode = options_.strategy == PlacementStrategy::kNoPartitionCommon ||
                        options_.strategy == PlacementStrategy::kPrePartitionLocal ||
                        options_.strategy == PlacementStrategy::kPrePartitionRemote;

  if (pre_mode) {
    // The master determines the per-worker groups at the beginning
    // (paper Section II.F).
    const auto assignment = plan_assignment(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      workers_[w]->preassigned.assign(assignment[w].begin(), assignment[w].end());
    }
  } else if (!open_loop()) {
    // Real-time / remote-read: every unit waits in the shared queue and is
    // handed out lazily as workers ask (the 'lazy' transfer of Section II.F).
    // Open-loop runs leave the queue empty: the arrival pump fills it.
    for (const auto& u : units_) queue_.push_back(u.id);
  }

  std::set<cluster::VmId> vms;
  for (const auto& ws : workers_) vms.insert(ws->vm);

  switch (options_.strategy) {
    case PlacementStrategy::kPrePartitionLocal: {
      // Data must already be resident (packaged in the VM image).
      for (const auto& ws : workers_) {
        const auto node = cluster_.vm(ws->vm).node();
        for (const auto u : ws->preassigned) {
          for (const auto f : units_[u].inputs) {
            FRIEDA_CHECK(replicas_.has(f, node),
                         "pre-partition-local requires file " << f << " on node " << node
                                                              << "; seed with pre_place_*()");
          }
        }
      }
      for (const auto vm : vms) node_ready(vm).trigger();
      break;
    }
    case PlacementStrategy::kPrePartitionRemote:
    case PlacementStrategy::kNoPartitionCommon: {
      // Sequential phases: "process execution starts only when the transfer
      // of data is completed" (Section II.C).
      sim::WaitGroup wg(sim_);
      for (const auto vm : vms) {
        std::vector<storage::FileId> files;
        if (options_.strategy == PlacementStrategy::kNoPartitionCommon) {
          files = catalog_.all_ids();
        } else {
          std::set<storage::FileId> wanted;
          for (const auto& ws : workers_) {
            if (ws->vm != vm) continue;
            for (const auto u : ws->preassigned) {
              for (const auto f : units_[u].inputs) wanted.insert(f);
            }
          }
          files.assign(wanted.begin(), wanted.end());
        }
        wg.add(1);
        sim_.spawn([](FriedaRun& self, cluster::VmId v, std::vector<storage::FileId> fs,
                      sim::WaitGroup& group) -> sim::Task<> {
          co_await self.stage_files_to_node(v, std::move(fs));
          group.done();
        }(*this, vm, std::move(files), wg),
                   "stage-node");
      }
      co_await wg.wait();
      invalidate_unstaged_preassignments();
      break;
    }
    case PlacementStrategy::kRealTime:
    case PlacementStrategy::kRemoteRead:
    case PlacementStrategy::kSharedVolume: {
      // No upfront staging; common data streams in concurrently with the
      // dispatch loop (transfers overlap computation, Section IV.B).
      for (const auto vm : vms) {
        sim_.spawn(stage_common_data(vm), "stage-common");
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Worker (execution plane)
// ---------------------------------------------------------------------------

sim::Task<> FriedaRun::worker_main(WorkerId id) {
  auto& ws = *workers_[id];
  co_await cluster_.wait_running(ws.vm);
  auto& vm = cluster_.vm(ws.vm);
  if (!vm.running()) co_return;  // failed during boot

  InboxMessage reg = RegisterWorker{id};
  co_await inbox_->send(std::move(reg));
  // Announce readiness once (Fig. 4 "request data"); afterwards the master's
  // credit accounting keeps this worker fed until NoMoreWork.
  InboxMessage request = RequestWork{id};
  if (!co_await inbox_->send(std::move(request))) co_return;
  while (true) {
    if (!vm.running()) co_return;
    const auto msg = co_await ws.inbox->recv();
    if (!msg || std::holds_alternative<NoMoreWork>(*msg)) co_return;
    const auto& work = std::get<AssignWork>(*msg);

    SimTime transfer_s = 0.0;
    if (!work.inputs_staged) {
      // Remote-read: the worker streams its inputs over the network at
      // execution time instead of staging them.
      bool read_ok = true;
      for (const auto f : work.unit.inputs) {
        const auto src = replica_source(f, vm.node());
        if (!src) {  // every replica was lost
          read_ok = false;
          break;
        }
        const auto r = co_await cluster_.network().transfer(
            *src, vm.node(), catalog_.info(f).size, options_.transfer_streams);
        timeline_.record(ActivityKind::kTransfer, r.started, r.finished,
                         "remote-read:" + catalog_.info(f).name);
        if (tracer_) {
          obs::TraceEvent ev;
          ev.name = "remote-read " + catalog_.info(f).name;
          ev.cat = "staging";
          ev.process = obs::kWorkerTrack;
          ev.track = static_cast<std::uint32_t>(id);
          ev.start = r.started;
          ev.end = r.finished;
          ev.args = {{"unit", std::to_string(work.unit.id)},
                     {"file", catalog_.info(f).name},
                     {"bytes", std::to_string(r.transferred)},
                     {"ok", r.ok() ? "1" : "0"}};
          tracer_->span(std::move(ev));
        }
        transfer_s += r.duration();
        if (!r.ok()) {
          read_ok = false;
          break;
        }
      }
      if (!read_ok) {
        if (!vm.running()) co_return;  // our VM died mid-read
        InboxMessage fail = ExecStatus{id, work.unit.id, false, transfer_s, 0.0};
        if (!co_await inbox_->send(std::move(fail))) co_return;
        continue;
      }
    }

    const SimTime cost = app_.task_seconds(work.unit);
    const auto result = co_await vm.compute(cost);
    timeline_.record(ActivityKind::kCompute, sim_.now() - result.duration, sim_.now(),
                     app_.name());
    if (tracer_) {
      obs::TraceEvent ev;
      ev.name = "exec unit " + std::to_string(work.unit.id);
      ev.cat = "exec";
      ev.process = obs::kWorkerTrack;
      ev.track = static_cast<std::uint32_t>(id);
      ev.start = sim_.now() - result.duration;
      ev.end = sim_.now();
      ev.args = {{"unit", std::to_string(work.unit.id)},
                 {"vm", std::to_string(ws.vm)},
                 {"completed", result.completed ? "1" : "0"}};
      tracer_->span(std::move(ev));
    }
    if (!result.completed) co_return;  // interrupted by VM failure

    bool io_ok = true;
    const Bytes out_bytes = app_.output_bytes(work.unit);
    if (out_bytes > 0) {
      // Outputs stay on worker-local storage (the paper's evaluation mode)
      // and consume the same limited disk the inputs compete for.
      if (options_.track_disk_capacity && !vm.disk().allocate(out_bytes)) {
        io_ok = false;
      } else {
        const auto io = co_await vm.disk().write(out_bytes);
        io_ok = io.ok;
      }
    }
    InboxMessage status = ExecStatus{id, work.unit.id, io_ok, transfer_s, result.duration};
    if (!co_await inbox_->send(std::move(status))) {
      co_return;
    }
  }
}

// ---------------------------------------------------------------------------
// Run + report
// ---------------------------------------------------------------------------

RunReport FriedaRun::run() {
  FRIEDA_CHECK(!ran_, "FriedaRun::run() may only be called once");
  ran_ = true;
  bytes_baseline_ = cluster_.network().total_bytes_moved();
  transfers_baseline_ = cluster_.network().transfers_started();
  solves_baseline_ = cluster_.network().solver_invocations();
  full_solves_baseline_ = cluster_.network().solver_full_solves();
  dirty_classes_baseline_ = cluster_.network().solver_dirty_classes();
  cluster_.network().set_tracer(tracer_);
  cluster_.network().set_metrics(options_.metrics);
  if (telemetry_ != nullptr) telemetry_->begin(sim_.now(), tracer_);

  sim_.spawn(master_main(), "master");
  sim_.spawn(controller_main(), "controller");
  sim_.run();

  FRIEDA_CHECK(finished_ || all_terminal(),
               "simulation drained but the run did not finish; "
               "a process deadlocked (this is a bug)");

  RunReport report;
  report.app = app_.name();
  report.strategy = to_string(options_.strategy);
  report.scheme = to_string(options_.scheme);
  report.ready_time = ready_time_;
  report.start_time = ready_time_;
  report.staging_end = std::max(staging_end_, ready_time_);
  report.end_time = end_time_;
  report.units_total = units_.size();
  for (const auto& rec : unit_state_) {
    report.units_completed += rec.status == UnitStatus::kCompleted;
    report.units_failed += rec.status == UnitStatus::kFailed;
    report.units_unprocessed += rec.status == UnitStatus::kUnprocessed;
  }
  report.units = unit_state_;
  for (const auto& ws : workers_) {
    WorkerReport wr;
    wr.worker = ws->id;
    wr.vm = ws->vm;
    wr.slot = ws->slot;
    wr.units_completed = ws->completed;
    wr.busy_seconds = ws->busy_seconds;
    wr.isolated = ws->isolated;
    wr.drained = ws->draining;
    report.workers.push_back(wr);
  }
  report.bytes_moved = cluster_.network().total_bytes_moved() - bytes_baseline_;
  report.transfers = cluster_.network().transfers_started() - transfers_baseline_;
  report.workers_isolated = isolated_count_;
  report.timeline = timeline_;
  report.open_loop = open_loop();
  report.serve_start = serve_start_;
  report.latency = latency_;
  report.scale_outs = scale_outs_;
  report.scale_ins = scale_ins_;

  if (telemetry_ != nullptr) {
    // Final sample at the run's end (a no-op when a scheduled tick already
    // landed there), then evaluate SLO targets over the recorded series.
    telemetry_->tick(end_time_, telemetry_tick_now());
    telemetry_->finish(end_time_);
  }

  if (tracer_) {
    // Run-window anchor for trace analytics (obs::TraceAnalyzer): one span
    // covering exactly the reported makespan [ready_time_, end_time_], so
    // the analyzer's critical path and attribution windows match
    // RunReport::makespan() instead of the raw event extent.
    obs::TraceEvent ev;
    ev.name = "run";
    ev.cat = "run";
    ev.process = obs::kRunTrack;
    ev.track = 0;
    ev.start = ready_time_;
    ev.end = end_time_;
    ev.args.push_back({"app", app_.name()});
    ev.args.push_back({"strategy", std::string(to_string(options_.strategy))});
    ev.args.push_back({"workers", std::to_string(workers_.size())});
    // Solver activity over the run window, so frieda-trace can report the
    // incremental-solve hit rate without needing a metrics registry.
    const auto& netw = cluster_.network();
    ev.args.push_back(
        {"net_solves", std::to_string(netw.solver_invocations() - solves_baseline_)});
    ev.args.push_back({"net_full_solves",
                       std::to_string(netw.solver_full_solves() - full_solves_baseline_)});
    ev.args.push_back(
        {"net_dirty_classes",
         std::to_string(netw.solver_dirty_classes() - dirty_classes_baseline_)});
    // Control-plane instantiation counters, so frieda-trace can report the
    // execution-template hit rate (see template.hpp).
    ev.args.push_back({"cp_instantiations", std::to_string(cp_instantiations_)});
    ev.args.push_back({"cp_templated", std::to_string(cp_templated_)});
    ev.args.push_back({"cp_patches", std::to_string(cp_patches_)});
    if (report.open_loop && report.latency.count() > 0) {
      // Service-mode latency summary, so frieda-trace can print the
      // percentile line without re-deriving sojourns from unit spans.
      ev.args.push_back({"latency_p50", std::to_string(report.latency_p(50.0))});
      ev.args.push_back({"latency_p95", std::to_string(report.latency_p(95.0))});
      ev.args.push_back({"latency_p99", std::to_string(report.latency_p(99.0))});
      ev.args.push_back({"sustained_tput", std::to_string(report.sustained_throughput())});
    }
    if (telemetry_ != nullptr && !telemetry_->options().slo.empty()) {
      // SLO totals, so frieda-trace can headline time-in-violation without
      // re-deriving it from the breach spans.
      const auto& slo = telemetry_->slo();
      ev.args.push_back({"slo_breaches", std::to_string(slo.total_breaches())});
      ev.args.push_back({"slo_violation_s", obs::format_sample(slo.total_violation_s())});
    }
    tracer_->span(std::move(ev));
  }
  if (options_.metrics) {
    // Kernel activity snapshot for the run's report; a shared registry across
    // sequential runs keeps the last run's snapshot (counters keep summing).
    auto& m = *options_.metrics;
    const auto& qc = sim_.event_counters();
    m.gauge("sim.events_scheduled").set(static_cast<double>(qc.scheduled));
    m.gauge("sim.events_cancelled").set(static_cast<double>(qc.cancelled));
    m.gauge("sim.events_fired").set(static_cast<double>(qc.fired));
    m.gauge("sim.event_slots_reused").set(static_cast<double>(qc.slots_reused));
  }
  // Detach: the tracer/registry may not outlive this run, but the cluster's
  // network does.
  cluster_.network().set_tracer(nullptr);
  cluster_.network().set_metrics(nullptr);
  return report;
}

}  // namespace frieda::core
