#include "frieda/template.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"
#include "frieda/assignment.hpp"
#include "frieda/partition.hpp"

namespace frieda::core {

std::shared_ptr<const ExecutionTemplate> ExecutionTemplate::capture(
    std::vector<WorkUnit> units, const CommandTemplate& command,
    const storage::FileCatalog& catalog, std::string staging_dir, bool inputs_staged,
    AssignmentPolicy policy, std::size_t worker_count, std::uint64_t arrival_key,
    std::vector<SimTime> arrivals) {
  FRIEDA_CHECK(!units.empty(), "execution template needs at least one work unit");
  FRIEDA_CHECK(worker_count > 0, "execution template needs at least one worker slot");
  for (std::size_t i = 0; i < units.size(); ++i) {
    FRIEDA_CHECK(units[i].id == i, "execution template: unit ids must be dense and ordered");
    FRIEDA_CHECK(command.accepts(units[i]),
                 "execution template: command arity " << command.input_arity()
                                                      << " does not match unit " << i);
  }
  if (arrival_key != 0) {
    FRIEDA_CHECK(arrivals.size() == units.size(),
                 "execution template: arrival schedule must cover every unit ("
                     << arrivals.size() << " offsets for " << units.size() << " units)");
  } else {
    FRIEDA_CHECK(arrivals.empty(), "closed-batch template must carry no arrival schedule");
  }

  auto tmpl = std::shared_ptr<ExecutionTemplate>(new ExecutionTemplate());
  tmpl->prototypes_ = bind_units(command, units, catalog, staging_dir, inputs_staged);
  tmpl->assignment_ = assign_units(policy, units, catalog, worker_count);
  FRIEDA_CHECK(valid_assignment(tmpl->assignment_, units.size(), worker_count),
               "execution template: assignment table does not cover every unit "
               "exactly once");
  tmpl->partition_sig_ = partition_signature(units);
  tmpl->units_ = std::move(units);
  tmpl->policy_ = policy;
  tmpl->worker_count_ = worker_count;
  tmpl->staging_dir_ = std::move(staging_dir);
  tmpl->inputs_staged_ = inputs_staged;
  tmpl->arrival_key_ = arrival_key;
  tmpl->arrivals_ = std::move(arrivals);
  return tmpl;
}

std::shared_ptr<const ExecutionTemplate> TemplateStore::lookup(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU position
  return it->second->second;
}

bool TemplateStore::insert(const Fingerprint& key,
                           std::shared_ptr<const ExecutionTemplate> tmpl) {
  FRIEDA_CHECK(tmpl != nullptr, "TemplateStore::insert: null template");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  lru_.emplace_front(key, std::move(tmpl));
  map_.emplace(key, lru_.begin());
  trim();
  return true;
}

void TemplateStore::set_max_entries(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_entries_ = cap;
  trim();
}

std::size_t TemplateStore::max_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_entries_;
}

std::size_t TemplateStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void TemplateStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

std::uint64_t TemplateStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t TemplateStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t TemplateStore::builds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return builds_;
}

std::uint64_t TemplateStore::patches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return patches_;
}

std::uint64_t TemplateStore::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

void TemplateStore::note_build() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++builds_;
}

void TemplateStore::note_patch(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  patches_ += n;
}

bool TemplateStore::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void TemplateStore::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool TemplateStore::differential_check() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return audit_;
}

void TemplateStore::set_differential_check(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  audit_ = on;
}

void TemplateStore::trim() {
  while (max_entries_ != 0 && map_.size() > max_entries_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

namespace detail {

int parse_bool_env(const char* text) {
  if (text == nullptr || *text == '\0') return -1;
  std::string v(text);
  for (auto& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "0" || v == "false" || v == "off" || v == "no") return 0;
  if (v == "1" || v == "true" || v == "on" || v == "yes") return 1;
  return -1;
}

}  // namespace detail

TemplateStore& TemplateStore::global() {
  static TemplateStore store;
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    if (const char* env = std::getenv("FRIEDA_TEMPLATES")) {
      const int v = detail::parse_bool_env(env);
      if (v < 0) {
        FLOG(kWarn, "template",
             "ignoring FRIEDA_TEMPLATES='" << env
                                           << "' (expected 0/1/true/false); templates stay "
                                              "enabled");
      } else {
        store.set_enabled(v == 1);
      }
    }
    if (const char* env = std::getenv("FRIEDA_TEMPLATE_AUDIT")) {
      const int v = detail::parse_bool_env(env);
      if (v < 0) {
        FLOG(kWarn, "template",
             "ignoring FRIEDA_TEMPLATE_AUDIT='" << env
                                                << "' (expected 0/1/true/false); audit stays "
                                                   "off");
      } else {
        store.set_differential_check(v == 1);
      }
    }
  });
  return store;
}

}  // namespace frieda::core
