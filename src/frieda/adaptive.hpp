// Adaptive strategy selection from execution history.
//
// The paper's "Intelligent" property (Section V.A): "Future work will
// investigate the ability to select the best data management strategy based
// on past executions of an application."  This module implements that
// extension: an ExecutionHistory stores per-(app, strategy) outcomes, and
// the AdaptiveSelector picks the strategy with the best expected makespan —
// falling back to a workload-shape heuristic when history is empty
// (transfer-bound apps favor locality/overlap; skewed compute favors
// real-time balancing).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "frieda/report.hpp"
#include "frieda/types.hpp"

namespace frieda::core {

/// Persistent record of past runs, keyed by application and strategy.
class ExecutionHistory {
 public:
  /// Record one finished run.
  void record(const RunReport& report);

  /// Record a raw observation (app, strategy, makespan) — used when replaying
  /// external logs.
  void record(const std::string& app, PlacementStrategy strategy, SimTime makespan);

  /// Number of observations for (app, strategy).
  std::size_t observations(const std::string& app, PlacementStrategy strategy) const;

  /// Mean makespan of past runs, if any.
  std::optional<SimTime> mean_makespan(const std::string& app,
                                       PlacementStrategy strategy) const;

  /// Apps with at least one observation.
  std::vector<std::string> known_apps() const;

  /// Serialize to a compact text form ("app|strategy|count|mean|m2" lines)
  /// and parse it back — the controller can persist history across runs.
  std::string serialize() const;
  static ExecutionHistory deserialize(const std::string& text);

 private:
  std::map<std::pair<std::string, PlacementStrategy>, RunningStats> stats_;
};

/// Shape summary the fallback heuristic uses when no history exists.
struct WorkloadShape {
  Bytes bytes_per_unit = 0;       ///< mean input bytes per work unit
  SimTime seconds_per_unit = 0.0; ///< mean compute seconds per work unit
  double cost_cv = 0.0;           ///< task-cost skew
  Bandwidth staging_bandwidth = 0;///< master NIC (bytes/s)
  unsigned total_cores = 1;
  bool data_already_local = false;///< replicas pre-seeded on workers
  Bytes local_disk_capacity = 0;  ///< per-VM disk budget (0 = plentiful)
  Bytes bytes_per_node_share = 0; ///< dataset share a node must hold
};

/// Picks a placement strategy for the next run.
class AdaptiveSelector {
 public:
  /// Construct over (possibly empty) history.
  explicit AdaptiveSelector(const ExecutionHistory& history) : history_(history) {}

  /// Choose: lowest historical mean makespan when every candidate strategy
  /// has at least `min_observations` runs; otherwise the shape heuristic.
  PlacementStrategy choose(const std::string& app, const WorkloadShape& shape,
                           std::size_t min_observations = 1) const;

  /// The history-free heuristic, exposed for tests:
  /// * data already local                          -> pre-partition-local
  /// * one unit does not fit the local disk        -> remote-read (stream)
  /// * a node's share does not fit the local disk  -> real-time (eviction
  ///   keeps only the working set resident, Section III.A)
  /// * transfer-bound (stage time > compute time)  -> real-time (overlap)
  /// * skewed compute (cv > 0.25)                  -> real-time (balancing)
  /// * otherwise                                   -> pre-partition-remote
  static PlacementStrategy heuristic(const WorkloadShape& shape);

  /// Candidate strategies the selector considers.
  static const std::vector<PlacementStrategy>& candidates();

 private:
  const ExecutionHistory& history_;
};

}  // namespace frieda::core
