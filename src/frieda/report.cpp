#include "frieda/report.hpp"

#include <sstream>

#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"

namespace frieda::core {

const char* to_string(UnitStatus status) {
  switch (status) {
    case UnitStatus::kPending: return "pending";
    case UnitStatus::kInFlight: return "in-flight";
    case UnitStatus::kCompleted: return "completed";
    case UnitStatus::kFailed: return "failed";
    case UnitStatus::kUnprocessed: return "unprocessed";
  }
  return "?";
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os << "FRIEDA run: app=" << app << " strategy=" << strategy << " scheme=" << scheme << "\n";
  os << "  makespan           " << strutil::human_seconds(makespan()) << "\n";
  os << "  staging phase      " << strutil::human_seconds(staging_seconds()) << "\n";
  os << "  transfer busy      " << strutil::human_seconds(transfer_busy()) << "\n";
  os << "  compute busy       " << strutil::human_seconds(compute_busy()) << "\n";
  os << "  transfer/compute overlap " << strutil::human_seconds(overlap()) << "\n";
  os << "  units              " << units_completed << "/" << units_total << " completed, "
     << units_failed << " failed, " << units_unprocessed << " unprocessed\n";
  os << "  bytes moved        " << strutil::human_bytes(bytes_moved) << " in " << transfers
     << " transfers\n";
  os << "  workers            " << workers.size() << " (" << workers_isolated << " isolated)\n";
  if (open_loop) {
    os << "  service latency    ";
    if (latency.count() > 0) {
      os << "p50=" << strutil::human_seconds(latency_p(50.0))
         << " p95=" << strutil::human_seconds(latency_p(95.0))
         << " p99=" << strutil::human_seconds(latency_p(99.0)) << "\n";
    } else {
      os << "(no completions)\n";
    }
    os << "  sustained tput     " << TextTable::num(sustained_throughput(), 3)
       << " units/s over " << strutil::human_seconds(end_time - serve_start) << "\n";
    os << "  elasticity         " << scale_outs << " scale-outs, " << scale_ins
       << " scale-ins\n";
  }
  return os.str();
}

std::string RunReport::units_csv() const {
  CsvWriter csv({"unit", "status", "worker", "attempts", "arrival", "dispatched", "finished",
                 "transfer_s", "exec_s"});
  for (const auto& rec : units) {
    csv.add_row({std::to_string(rec.unit), to_string(rec.status),
                 std::to_string(rec.worker), std::to_string(rec.attempts),
                 TextTable::num(rec.arrival, 4), TextTable::num(rec.dispatched, 4),
                 TextTable::num(rec.finished, 4), TextTable::num(rec.transfer_seconds, 4),
                 TextTable::num(rec.exec_seconds, 4)});
  }
  return csv.to_string();
}

std::string RunReport::workers_csv() const {
  CsvWriter csv({"worker", "vm", "slot", "units_completed", "busy_seconds", "isolated",
                 "drained"});
  for (const auto& w : workers) {
    csv.add_row({std::to_string(w.worker), std::to_string(w.vm), std::to_string(w.slot),
                 std::to_string(w.units_completed), TextTable::num(w.busy_seconds, 3),
                 w.isolated ? "1" : "0", w.drained ? "1" : "0"});
  }
  return csv.to_string();
}

void RunReport::fill_metrics(obs::MetricsRegistry& registry) const {
  registry.gauge("run.makespan_s").set(makespan());
  registry.gauge("run.staging_s").set(staging_seconds());
  registry.gauge("run.transfer_busy_s").set(transfer_busy());
  registry.gauge("run.compute_busy_s").set(compute_busy());
  registry.gauge("run.overlap_s").set(overlap());
  registry.gauge("run.units_total").set(static_cast<double>(units_total));
  registry.gauge("run.units_completed").set(static_cast<double>(units_completed));
  registry.gauge("run.units_failed").set(static_cast<double>(units_failed));
  registry.gauge("run.units_unprocessed").set(static_cast<double>(units_unprocessed));
  registry.gauge("run.bytes_moved").set(static_cast<double>(bytes_moved));
  registry.gauge("run.transfers").set(static_cast<double>(transfers));
  registry.gauge("run.workers_isolated").set(static_cast<double>(workers_isolated));
  auto& attempts = registry.stats("run.unit_attempts");
  auto& transfer = registry.stats("run.unit_transfer_s");
  auto& exec = registry.stats("run.unit_exec_s");
  for (const auto& rec : units) {
    attempts.add(rec.attempts);
    transfer.add(rec.transfer_seconds);
    exec.add(rec.exec_seconds);
  }
  if (open_loop) {
    registry.gauge("run.sustained_throughput").set(sustained_throughput());
    registry.gauge("run.scale_outs").set(static_cast<double>(scale_outs));
    registry.gauge("run.scale_ins").set(static_cast<double>(scale_ins));
    if (latency.count() > 0) {
      registry.gauge("run.latency_p50_s").set(latency_p(50.0));
      registry.gauge("run.latency_p95_s").set(latency_p(95.0));
      registry.gauge("run.latency_p99_s").set(latency_p(99.0));
    }
  }
}

}  // namespace frieda::core
