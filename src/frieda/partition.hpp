// The partition generator (paper Section II.E).
//
// Operates purely on the logical file list: given a catalog and a grouping
// scheme it emits the work units — "the number of input files that will be
// used for every program instance".  Custom groupings can be registered by
// name, mirroring the paper's "the design allows other schemes to be easily
// added" (Section V.B, Partition Generation).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "frieda/types.hpp"
#include "storage/file.hpp"

namespace frieda::core {

/// Generates work units from a file catalog.
class PartitionGenerator {
 public:
  /// Signature of a custom grouping: file ids in catalog order -> groups.
  using CustomScheme =
      std::function<std::vector<std::vector<storage::FileId>>(const storage::FileCatalog&)>;

  /// Generate work units with a built-in scheme.
  ///
  /// * kSingleFile: n units of one file each.
  /// * kOneToAll: n-1 units pairing file 0 with each other file
  ///   (the BLAST pattern: one query set against each database shard is the
  ///   inverse; here it is "one reference vs. the rest").
  /// * kPairwiseAdjacent: floor(n/2) units {f0,f1},{f2,f3},... — the ALS
  ///   image-comparison pattern, two files per execution.
  /// * kAllToAll: n(n-1)/2 units, every unordered pair.
  static std::vector<WorkUnit> generate(PartitionScheme scheme,
                                        const storage::FileCatalog& catalog);

  /// Register a named custom scheme; overwrites an existing name.
  void register_scheme(const std::string& name, CustomScheme scheme);

  /// True when a custom scheme with this name exists.
  bool has_scheme(const std::string& name) const;

  /// Generate with a registered custom scheme; throws if unknown.
  std::vector<WorkUnit> generate_custom(const std::string& name,
                                        const storage::FileCatalog& catalog) const;

  /// Names of all registered custom schemes, sorted.
  std::vector<std::string> scheme_names() const;

 private:
  std::map<std::string, CustomScheme> custom_;
};

/// Stable structural identity of a partition list: ids, group shapes, and
/// member file ids, order-sensitive.  Two partition lists are equal iff
/// their signatures match (up to hash collision), which gives execution
/// templates and their audits a cheap equality proxy for the unit vector.
Fingerprint partition_signature(const std::vector<WorkUnit>& units);

}  // namespace frieda::core
