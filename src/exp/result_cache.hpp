// In-process memoization of sweep results, keyed by config fingerprint.
//
// Every paper scenario is a deterministic function of its configuration
// (app kind, placement strategy, every PaperScenarioOptions field — the
// seed included), so two jobs with the same `Fingerprint` produce
// field-identical `RunReport`s.  A `ResultCache` exploits that: the sweep
// runner consults it before dispatching a job and serves repeated cells —
// within one grid or across grids of the same process — from the cache
// instead of re-simulating them.  Ablation drivers that re-run a shared
// baseline (e.g. the scale-0.2 real-time run) pay for it once.
//
// Thread safety: lookup/insert/size/clear are mutex-synchronized; values
// are returned *by copy* so a cached report can never be mutated or
// invalidated under a concurrent reader.  Jobs whose configuration cannot
// be fingerprinted (ad-hoc callables, options with `arrange`/tracer/metrics
// hooks) never reach the cache — see exp::scenario_fingerprint.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "common/hash.hpp"

namespace frieda::exp {

template <typename R>
class ResultCache {
 public:
  /// Copy of the cached value, or nullopt on miss.  Counts toward the
  /// hit/miss statistics.
  std::optional<R> lookup(const Fingerprint& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  /// Store `value` under `key`.  The first insert wins (identical keys mean
  /// identical values, so re-inserting would only copy for nothing); returns
  /// whether the entry was new.
  bool insert(const Fingerprint& key, const R& value) {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.emplace(key, value).second;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
  }

  /// Lifetime lookup statistics (for tests and progress lines).
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

  /// The process-wide cache for result type R — the default every
  /// SweepRunner<R> consults, which is what makes memoization work *across*
  /// the independent grids of one driver.  Use `SweepRunner::set_cache`
  /// with a local instance (or nullptr) to isolate or disable.
  static ResultCache& global() {
    static ResultCache cache;
    return cache;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::map<Fingerprint, R> map_;
};

}  // namespace frieda::exp
