// In-process memoization of sweep results, keyed by config fingerprint.
//
// Every paper scenario is a deterministic function of its configuration
// (app kind, placement strategy, every PaperScenarioOptions field — the
// seed included), so two jobs with the same `Fingerprint` produce
// field-identical `RunReport`s.  A `ResultCache` exploits that: the sweep
// runner consults it before dispatching a job and serves repeated cells —
// within one grid or across grids of the same process — from the cache
// instead of re-simulating them.  Ablation drivers that re-run a shared
// baseline (e.g. the scale-0.2 real-time run) pay for it once.
//
// The cache is bounded: at most `max_entries()` results are retained, with
// least-recently-used eviction (a lookup hit or re-insert refreshes the
// entry).  The default cap is generous — today's full ablation suite is a
// few dozen cells — but it means a long-lived service sweeping millions of
// configurations cannot grow the cache without bound.  `evictions()`
// counts the entries discarded, and the sweep runner mirrors the delta
// into its `sweep.cache_evictions` metric.
//
// Thread safety: all members are mutex-synchronized; values are returned
// *by copy* so a cached report can never be mutated or invalidated under a
// concurrent reader (or by eviction).  Jobs whose configuration cannot be
// fingerprinted (ad-hoc callables, options with `arrange`/tracer/metrics
// hooks) never reach the cache — see exp::scenario_fingerprint.
//
// Persistence (FRIEDA_RESULT_CACHE_FILE): a cache with codecs attached via
// `set_persistence` can load a versioned entry file at startup and
// checkpoint itself atomically (temp + rename, the FRIEDA_CALIBRATION_FILE
// pattern) when a sweep completes, so an interrupted CI sweep resumes from
// its surviving cells instead of re-simulating them.  Loading inserts only
// keys the cache does not already hold — in-process entries win on
// conflict — and entries whose payload fails to decode are skipped with a
// warning, never trusted.  The file format is:
//
//   frieda-result-cache v1
//   <32-hex fingerprint> <payload bytes>\n<payload>\n     (one per entry)
//
// Entries are written LRU-first so reloading reproduces the recency order.
// Fingerprints carry the config-hash version salt (exp/cost.cpp), so a
// file from an incompatible build simply never hits.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "common/hash.hpp"
#include "common/log.hpp"

namespace frieda::exp {

template <typename R>
class ResultCache {
 public:
  /// Default entry cap — far above today's grid sizes (the full ablation
  /// suite is < 100 cells) while bounding a runaway sweep's footprint.
  static constexpr std::size_t kDefaultMaxEntries = 4096;

  explicit ResultCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// Copy of the cached value, or nullopt on miss.  A hit refreshes the
  /// entry's recency.  Counts toward the hit/miss statistics.
  std::optional<R> lookup(const Fingerprint& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU position
    return it->second->second;
  }

  /// Store `value` under `key`.  The first insert wins (identical keys mean
  /// identical values, so re-inserting would only copy for nothing — but it
  /// still refreshes the entry's recency); returns whether the entry was
  /// new.  May evict the least-recently-used entry when over the cap.
  bool insert(const Fingerprint& key, const R& value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return false;
    }
    lru_.emplace_front(key, value);
    map_.emplace(key, lru_.begin());
    trim();
    return true;
  }

  /// Change the entry cap (0 = unbounded).  Shrinking below the current
  /// size evicts the LRU tail immediately.
  void set_max_entries(std::size_t cap) {
    std::lock_guard<std::mutex> lock(mutex_);
    max_entries_ = cap;
    trim();
  }

  std::size_t max_entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_entries_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
  }

  /// Lifetime lookup statistics (for tests and progress lines).
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

  /// Entries evicted by the LRU cap over this cache's lifetime (clear()
  /// does not count as eviction).
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }

  /// Value codec for persistence.  The serializer must render a value that
  /// `deserialize` restores field-identically (see frieda/report_io.hpp);
  /// the deserializer throws on malformed payloads.
  using Serializer = std::function<std::string(const R&)>;
  using Deserializer = std::function<R(const std::string&)>;

  /// Attach a checkpoint path and the value codec.  `save_if_persistent`
  /// becomes a real save; pass an empty path to detach.
  void set_persistence(std::string path, Serializer serialize, Deserializer deserialize) {
    std::lock_guard<std::mutex> lock(mutex_);
    persist_path_ = std::move(path);
    serialize_ = std::move(serialize);
    deserialize_ = std::move(deserialize);
  }

  /// The attached checkpoint path (empty = persistence off).
  std::string persist_path() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return persist_path_;
  }

  /// Load entries from `path`, inserting only keys not already cached
  /// (in-process entries win on conflict).  Returns false when the file
  /// exists but carries the wrong header, or when the codec is missing; a
  /// missing file is the normal cold start and returns false quietly.
  /// Malformed or undecodable entries are skipped with a warning.
  bool load_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;  // cold start
    std::string line;
    if (!std::getline(in, line) || line != kPersistHeader) {
      FLOG(kWarn, "sweep",
           "ignoring result-cache file '" << path << "': missing '" << kPersistHeader
                                          << "' header");
      return false;
    }
    Deserializer deserialize;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      deserialize = deserialize_;
    }
    if (!deserialize) {
      FLOG(kWarn, "sweep",
           "result-cache file '" << path << "' present but no deserializer attached");
      return false;
    }
    std::size_t loaded = 0;
    std::size_t skipped = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto sep = line.find(' ');
      Fingerprint key;
      std::uint64_t bytes = 0;
      bool ok = sep == 32 && parse_hex_key(line.substr(0, sep), key) &&
                parse_decimal(line.substr(sep + 1), bytes) && bytes <= kMaxPayloadBytes;
      std::string payload;
      if (ok) {
        payload.resize(static_cast<std::size_t>(bytes));
        ok = static_cast<bool>(in.read(payload.data(),
                                       static_cast<std::streamsize>(payload.size()))) &&
             in.get() == '\n';
      }
      if (ok) {
        try {
          const R value = deserialize(payload);
          insert(key, value);  // first-insert-wins: in-process entries stay
          ++loaded;
          continue;
        } catch (const std::exception&) {
          ok = false;
        }
      }
      if (!ok) {
        ++skipped;
        if (!in) break;  // stream is gone (truncated file): stop, keep what loaded
      }
    }
    if (skipped > 0) {
      FLOG(kWarn, "sweep",
           "result-cache file '" << path << "': skipped " << skipped
                                 << " malformed entr" << (skipped == 1 ? "y" : "ies"));
    }
    return loaded > 0 || skipped == 0;
  }

  /// Write every cached entry to `path` atomically (temp + rename).
  /// Requires an attached serializer; returns whether the file landed.
  bool save_file(const std::string& path) const {
    std::ostringstream body;
    body << kPersistHeader << "\n";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!serialize_) {
        FLOG(kWarn, "sweep", "result cache has no serializer; cannot save '" << path << "'");
        return false;
      }
      // LRU-first: reloading insert()s in file order, leaving the last
      // written (most recent) entries at the front of the new cache.
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        const std::string payload = serialize_(it->second);
        body << it->first.to_hex() << " " << payload.size() << "\n" << payload << "\n";
      }
    }
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out || !(out << body.str()) || !out.flush()) {
        FLOG(kWarn, "sweep", "could not write result-cache file '" << tmp << "'");
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      FLOG(kWarn, "sweep",
           "could not move result-cache file into place at '" << path << "'");
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

  /// Checkpoint to the attached path; no-op (false) when persistence is
  /// off.  The sweep runner calls this when a sweep completes.
  bool save_if_persistent() const {
    const auto path = persist_path();
    if (path.empty()) return false;
    return save_file(path);
  }

  /// The process-wide cache for result type R — the default every
  /// SweepRunner<R> consults, which is what makes memoization work *across*
  /// the independent grids of one driver.  Use `SweepRunner::set_cache`
  /// with a local instance (or nullptr) to isolate or disable.
  static ResultCache& global() {
    static ResultCache cache;
    return cache;
  }

 private:
  static constexpr const char* kPersistHeader = "frieda-result-cache v1";
  /// Payloads above this are a corrupted length field, not a real report.
  static constexpr std::uint64_t kMaxPayloadBytes = 1ull << 32;

  static bool parse_hex_key(const std::string& hex, Fingerprint& key) {
    if (hex.size() != 32) return false;
    std::uint64_t words[2] = {0, 0};
    for (int w = 0; w < 2; ++w) {
      for (int i = 0; i < 16; ++i) {
        const char c = hex[static_cast<std::size_t>(w * 16 + i)];
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else return false;
        words[w] = (words[w] << 4) | digit;
      }
    }
    key.hi = words[0];
    key.lo = words[1];
    return true;
  }

  static bool parse_decimal(const std::string& s, std::uint64_t& out) {
    if (s.empty() || s.size() > 20) return false;
    out = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  }

  void trim() {  // callers hold mutex_
    while (max_entries_ != 0 && map_.size() > max_entries_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
  }

  std::string persist_path_;
  Serializer serialize_;
  Deserializer deserialize_;
  mutable std::mutex mutex_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t max_entries_;
  /// Front = most recently used; `map_` points into the list.
  mutable std::list<std::pair<Fingerprint, R>> lru_;
  std::map<Fingerprint, typename std::list<std::pair<Fingerprint, R>>::iterator> map_;
};

}  // namespace frieda::exp
