// In-process memoization of sweep results, keyed by config fingerprint.
//
// Every paper scenario is a deterministic function of its configuration
// (app kind, placement strategy, every PaperScenarioOptions field — the
// seed included), so two jobs with the same `Fingerprint` produce
// field-identical `RunReport`s.  A `ResultCache` exploits that: the sweep
// runner consults it before dispatching a job and serves repeated cells —
// within one grid or across grids of the same process — from the cache
// instead of re-simulating them.  Ablation drivers that re-run a shared
// baseline (e.g. the scale-0.2 real-time run) pay for it once.
//
// The cache is bounded: at most `max_entries()` results are retained, with
// least-recently-used eviction (a lookup hit or re-insert refreshes the
// entry).  The default cap is generous — today's full ablation suite is a
// few dozen cells — but it means a long-lived service sweeping millions of
// configurations cannot grow the cache without bound.  `evictions()`
// counts the entries discarded, and the sweep runner mirrors the delta
// into its `sweep.cache_evictions` metric.
//
// Thread safety: all members are mutex-synchronized; values are returned
// *by copy* so a cached report can never be mutated or invalidated under a
// concurrent reader (or by eviction).  Jobs whose configuration cannot be
// fingerprinted (ad-hoc callables, options with `arrange`/tracer/metrics
// hooks) never reach the cache — see exp::scenario_fingerprint.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "common/hash.hpp"

namespace frieda::exp {

template <typename R>
class ResultCache {
 public:
  /// Default entry cap — far above today's grid sizes (the full ablation
  /// suite is < 100 cells) while bounding a runaway sweep's footprint.
  static constexpr std::size_t kDefaultMaxEntries = 4096;

  explicit ResultCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// Copy of the cached value, or nullopt on miss.  A hit refreshes the
  /// entry's recency.  Counts toward the hit/miss statistics.
  std::optional<R> lookup(const Fingerprint& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU position
    return it->second->second;
  }

  /// Store `value` under `key`.  The first insert wins (identical keys mean
  /// identical values, so re-inserting would only copy for nothing — but it
  /// still refreshes the entry's recency); returns whether the entry was
  /// new.  May evict the least-recently-used entry when over the cap.
  bool insert(const Fingerprint& key, const R& value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return false;
    }
    lru_.emplace_front(key, value);
    map_.emplace(key, lru_.begin());
    trim();
    return true;
  }

  /// Change the entry cap (0 = unbounded).  Shrinking below the current
  /// size evicts the LRU tail immediately.
  void set_max_entries(std::size_t cap) {
    std::lock_guard<std::mutex> lock(mutex_);
    max_entries_ = cap;
    trim();
  }

  std::size_t max_entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_entries_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
  }

  /// Lifetime lookup statistics (for tests and progress lines).
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

  /// Entries evicted by the LRU cap over this cache's lifetime (clear()
  /// does not count as eviction).
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }

  /// The process-wide cache for result type R — the default every
  /// SweepRunner<R> consults, which is what makes memoization work *across*
  /// the independent grids of one driver.  Use `SweepRunner::set_cache`
  /// with a local instance (or nullptr) to isolate or disable.
  static ResultCache& global() {
    static ResultCache cache;
    return cache;
  }

 private:
  void trim() {  // callers hold mutex_
    while (max_entries_ != 0 && map_.size() > max_entries_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
  }

  mutable std::mutex mutex_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t max_entries_;
  /// Front = most recently used; `map_` points into the list.
  mutable std::list<std::pair<Fingerprint, R>> lru_;
  std::map<Fingerprint, typename std::list<std::pair<Fingerprint, R>>::iterator> map_;
};

}  // namespace frieda::exp
