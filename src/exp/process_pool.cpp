#include "exp/process_pool.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>
#include <set>
#include <sstream>

namespace frieda::exp {

namespace {

// Parent-side registry of pipe write ends that are currently inherited by
// in-flight children.  fork() runs with `fork_mutex` held so the set is
// consistent at the instant of the fork; the child then closes every
// registered fd except its own, guaranteeing the parent sees EOF (and
// therefore detects a crash) as soon as *its* child dies — not when the
// last concurrently forked sibling exits.
std::mutex fork_mutex;
std::set<int>& live_write_fds() {
  static std::set<int> fds;
  return fds;
}

// Frames above this are a corrupted length prefix, not a real report (the
// largest committed sweep reports are a few MB).
constexpr std::uint64_t kMaxFrameBytes = 1ull << 32;

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame: the writer died
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

namespace detail {

bool write_frame(int fd, char status, const std::string& payload) {
  unsigned char header[8];
  const std::uint64_t len = payload.size() + 1;  // status byte + payload
  for (int i = 0; i < 8; ++i) header[i] = static_cast<unsigned char>(len >> (8 * i));
  return write_all(fd, header, sizeof(header)) && write_all(fd, &status, 1) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, char& status, std::string& payload) {
  unsigned char header[8];
  if (!read_all(fd, header, sizeof(header))) return false;
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i) len |= static_cast<std::uint64_t>(header[i]) << (8 * i);
  if (len == 0 || len > kMaxFrameBytes) return false;
  if (!read_all(fd, &status, 1)) return false;
  payload.resize(static_cast<std::size_t>(len - 1));
  return payload.empty() || read_all(fd, payload.data(), payload.size());
}

std::string describe_wait_status(int wait_status) {
  std::ostringstream os;
  if (WIFSIGNALED(wait_status)) {
    const int sig = WTERMSIG(wait_status);
    const char* name = ::strsignal(sig);
    os << "child killed by signal " << sig;
    if (name != nullptr) os << " (" << name << ")";
    return os.str();
  }
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code == 0) return {};
    os << "child exited with status " << code;
    return os.str();
  }
  os << "child ended abnormally (wait status " << wait_status << ")";
  return os.str();
}

}  // namespace detail

ForkOutcome run_in_child(const std::function<std::string()>& work) {
  ForkOutcome outcome;
  int fds[2];
  pid_t pid = -1;
  {
    // pipe + registry insert + fork are one atomic step: no sibling can
    // fork between them and inherit an unregistered write end.
    std::lock_guard<std::mutex> lock(fork_mutex);
    if (::pipe(fds) != 0) {
      outcome.crash = std::string("pipe() failed: ") + std::strerror(errno);
      return outcome;
    }
    live_write_fds().insert(fds[1]);
    pid = ::fork();
    if (pid == 0) {
      // Child: drop every sibling's write end (we hold the lock's *memory*,
      // not the lock — the set cannot change under us in our own copy of
      // the address space), keep only our own.
      ::close(fds[0]);
      for (const int fd : live_write_fds()) {
        if (fd != fds[1]) ::close(fd);
      }
      char status = 'R';
      std::string payload;
      try {
        payload = work();
      } catch (const std::exception& e) {
        status = 'E';
        payload = e.what();
      } catch (...) {
        status = 'E';
        payload = "unknown exception";
      }
      const bool shipped = detail::write_frame(fds[1], status, payload);
      ::close(fds[1]);
      // _exit, never exit: static destructors and buffered stdio belong to
      // the parent, and flushing inherited buffers would duplicate output.
      ::_exit(shipped ? 0 : 3);
    }
  }
  if (pid < 0) {
    outcome.crash = std::string("fork() failed: ") + std::strerror(errno);
    {
      std::lock_guard<std::mutex> lock(fork_mutex);
      live_write_fds().erase(fds[1]);
    }
    ::close(fds[0]);
    ::close(fds[1]);
    return outcome;
  }

  // Parent: retire our write end from the registry and close it so EOF on
  // the read end tracks the child's lifetime alone.
  {
    std::lock_guard<std::mutex> lock(fork_mutex);
    live_write_fds().erase(fds[1]);
  }
  ::close(fds[1]);

  char status = 0;
  std::string payload;
  const bool framed = detail::read_frame(fds[0], status, payload);
  ::close(fds[0]);

  int wait_status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid, &wait_status, 0);
  } while (reaped < 0 && errno == EINTR);

  // A violent death always wins over whatever bytes made it through: a
  // child that SIGSEGVs after a complete-looking frame cannot be trusted.
  std::string died;
  if (reaped < 0) {
    died = std::string("waitpid() failed: ") + std::strerror(errno);
  } else {
    died = detail::describe_wait_status(wait_status);
  }
  if (!died.empty()) {
    outcome.crash = died;
    return outcome;
  }
  if (!framed || (status != 'R' && status != 'E')) {
    outcome.crash = "truncated result frame from child (clean exit, bad stream)";
    return outcome;
  }
  outcome.delivered = true;
  outcome.ok = status == 'R';
  outcome.payload = std::move(payload);
  return outcome;
}

}  // namespace frieda::exp
