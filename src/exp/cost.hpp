// Cost estimates and cache keys for scenario sweep jobs.
//
// Two per-job annotations drive the scheduler (see docs/performance.md,
// "Memoization and cost-aware scheduling"):
//
//   * `scenario_fingerprint` — the memoization key: a stable 128-bit hash of
//     (app kind, execution mode, every PaperScenarioOptions field).  Returns
//     nullopt for configurations that are not a pure function of those
//     fields (arrange/tracer/metrics hooks), which keeps them out of the
//     result cache entirely.
//   * `scenario_cost` — a *relative* wall-time estimate used for
//     longest-first dispatch: estimated work units (dataset size × scale
//     through the app's partition scheme) divided by the number of program
//     instance slots that will chew on them.  Only the ordering matters;
//     the unit is arbitrary.
#pragma once

#include <optional>

#include "common/hash.hpp"
#include "workload/scenarios.hpp"

namespace frieda::exp {

/// Memoization key for a paper-scenario job, or nullopt when the options
/// carry hooks that make the run non-memoizable.  `mode` is the placement
/// strategy name, or "sequential" for the Table-I baselines (which ignore
/// the VM-shape fields, so they hash under their own mode string).
std::optional<Fingerprint> scenario_fingerprint(const char* app, const char* mode,
                                                const workload::PaperScenarioOptions& opt);

/// Relative cost estimate of a paper-scenario job: estimated units over
/// available program-instance slots (1 for the sequential baselines).
double scenario_cost(const char* app, bool sequential,
                     const workload::PaperScenarioOptions& opt);

/// Execution-template key of a paper-scenario job — the control-plane
/// analogue of `scenario_fingerprint`.  Where the result-cache key hashes
/// *every* field (a seed change is a different result), the template key
/// hashes only the structural ones (app, strategy, scale, NIC), so
/// seed-/worker-shape-only reruns share one template and patch the rest
/// (see frieda/template.hpp).  nullopt when the options carry an `arrange`
/// hook, which no captured decision set can cover.
std::optional<Fingerprint> scenario_template_fingerprint(
    const char* app, core::PlacementStrategy strategy,
    const workload::PaperScenarioOptions& opt);

}  // namespace frieda::exp
