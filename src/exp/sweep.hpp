// Parallel sweep engine: memoized, cost-aware batch execution of scenario
// runs on a thread pool or a fork-based process pool.
//
// The paper's entire evaluation — Table I, Figures 6–7, the eight ablations —
// is a grid of *independent, deterministic* simulation runs.  A `SweepRunner`
// executes such a grid on a fixed pool of workers and returns results **in
// job order**, regardless of backend, worker count, completion order, or
// steal order, so a sweep's tables and CSVs are byte-identical to running
// the same jobs sequentially.
//
// Backends (SweepOptions::backend, FRIEDA_SWEEP_BACKEND; see
// docs/performance.md, "Multi-process sweeps and work stealing"):
//   * kThread (default) — jobs run on pool threads in this address space.
//   * kProcess — each job executes in a forked child and ships its report
//     back over a pipe (exp/process_pool.hpp, frieda/report_io.hpp).  A
//     child that SIGSEGVs, aborts, exits nonzero, or truncates its frame
//     becomes *that job's* error outcome; every other job completes.  The
//     deserialized report is field-identical to the in-process one (doubles
//     cross the pipe as bit patterns), so CSVs stay byte-identical across
//     backends.  Requires a ReportCodec for the result type (RunReport and
//     RtReport today); otherwise the runner warns and uses threads.
//     Parent-side hooks baked into a job's closure (tracer, metrics,
//     arrange hooks mutating captured state) take effect in the *child's*
//     copy of the address space: the report is the only thing shipped back.
//
// Work stealing: both backends dispatch through per-worker deques dealt in
// schedule order; an idle worker steals the front half of the fattest
// victim's backlog (`rt::MpmcQueue::try_pop_half`), so a skewed grid cannot
// strand workers behind a few long deques.  Steal batches are counted in
// the `sweep.steals` metric.  Stealing moves whole jobs before they start —
// outcome slots and per-job seeds never change, only which worker runs what.
//
// Scheduling (see docs/performance.md, "Memoization and cost-aware
// scheduling"):
//   * Jobs carrying a config `Fingerprint` are memoized: a `ResultCache`
//     (process-global by default) is consulted before dispatch, duplicate
//     cells within one batch execute once, and fresh results are published
//     back so later grids of the same process hit too.  Cached outcomes are
//     copies of deterministic runs, hence field-identical to executing.
//   * Jobs are dispatched longest-first by their `cost` estimate, so one
//     expensive cell at the tail of a skewed grid no longer idles the rest
//     of the pool.  Outcome slots stay in job order; only the dispatch
//     order changes, and `schedule()` exposes it for tests.
//   * A `frieda_obs::MetricsRegistry` owned by the runner tracks progress
//     (sweep.jobs_completed / sweep.cache_hits / sweep.runs_executed /
//     sweep.cache_evictions counters, a sweep.in_flight gauge,
//     sweep.wall_per_job_s stats).
//   * Jobs tagged with a `Calibration` class feed their measured wall time
//     into a `CostCalibrator` (process-global by default), so later grids
//     dispatch on measured seconds instead of the static unit estimate.
//   * An opt-in `obs::ProgressReporter` (set_progress, or the
//     FRIEDA_SWEEP_PROGRESS environment variable) prints throttled live
//     progress lines with a cost-weighted ETA; off by default, so driver
//     stdout and committed CSVs are unaffected.
//
// Determinism rules:
//   * Each job owns its `sim::Simulation`/`cluster::VirtualCluster`/`Rng` —
//     thread-confined by construction; jobs share only immutable inputs
//     (e.g. a const workload model, see `workload::make_als_model`).
//   * Result slot `i` always belongs to job `i`; neither the pool nor the
//     longest-first schedule ever reorders outcomes.
//   * Per-job seeds, when derived, come from `derive_seed(base, job_index)`
//     (SplitMix64), so appending jobs to a grid never perturbs the seeds —
//     and therefore the results — of the jobs already in it.
//   * A throwing job is isolated: its outcome carries the error message, all
//     other jobs still run to completion.  Failed runs are never cached.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "exp/calibrate.hpp"
#include "exp/process_pool.hpp"
#include "exp/result_cache.hpp"
#include "frieda/report.hpp"
#include "obs/metrics.hpp"
#include "obs/report_sink.hpp"

namespace frieda::exp {

/// Derive the seed of job `job_index` in a sweep with base seed `base_seed`.
/// Pure SplitMix64 mixing of the pair: depends only on (base, index), so a
/// job keeps its seed when other jobs are added before or after it.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index);

/// Execution substrate for sweep jobs (see the header comment).
enum class SweepBackend {
  kThread,   ///< pool threads in this address space
  kProcess,  ///< one forked child per job, outcome shipped over a pipe
};

/// Render a backend name ("thread" / "process").
const char* to_string(SweepBackend backend);

/// Pool configuration for one sweep.
struct SweepOptions {
  /// Worker threads; 0 = auto (the FRIEDA_SWEEP_THREADS environment
  /// variable if set and valid, else std::thread::hardware_concurrency()).
  /// The pool never spawns more threads than there are jobs to execute.
  /// Under the process backend this is the number of concurrent children
  /// (each managed by one parent thread).
  std::size_t threads = 0;

  /// Opt-out for memoization: when false the runner never consults or fills
  /// a result cache and every job executes, duplicates included.
  bool memoize = true;

  /// Execution backend; nullopt = auto (the FRIEDA_SWEEP_BACKEND
  /// environment variable when it is exactly "thread" or "process" — a typo
  /// warns and falls back — else thread).
  std::optional<SweepBackend> backend;

  /// Opt-out for steal-half dispatch (benchmarks and tests only): when
  /// false each worker runs exactly its dealt share of the schedule and
  /// idles when it's done — the stranding behavior stealing eliminates.
  /// Results are identical either way; only the idle tail differs.
  bool steal = true;
};

namespace detail {

/// Values FRIEDA_SWEEP_THREADS will accept; anything above is treated as a
/// typo rather than a request for ten thousand threads.
constexpr long kMaxSweepThreads = 4096;

/// Parse a FRIEDA_SWEEP_THREADS value.  Returns the thread count, or 0 when
/// the text is not a plain integer in [1, kMaxSweepThreads] (garbage, empty,
/// zero, negative, trailing junk, or absurdly large) — the caller falls back
/// and logs.
std::size_t parse_threads_env(const char* text);

/// Parse a FRIEDA_SWEEP_BACKEND value.  Exact-match "thread" / "process"
/// only; anything else (including case or whitespace variants) is nullopt —
/// the caller warns and falls back to thread.
std::optional<SweepBackend> parse_backend_env(const char* text);

/// Resolve SweepOptions::backend against the environment and the result
/// type's codec availability.  A process request without a codec (or an
/// invalid FRIEDA_SWEEP_BACKEND) warns and resolves to thread.
SweepBackend resolve_backend(std::optional<SweepBackend> requested, bool codec_available);

/// Run `body(i)` for every i in `indices` on `threads` pool workers with
/// steal-half dispatch: positions are dealt round-robin in `indices` order
/// onto per-worker deques, and an idle worker steals the front half of the
/// fattest victim's backlog (disabled when `steal` is false — static
/// partition).  Returns one error string per *position in `indices`*
/// (empty = the call returned normally); a throwing body never takes down
/// the pool or other indices.  `steals_out`, when non-null, receives the
/// number of successful steal batches.
std::vector<std::string> run_stealing(const std::vector<std::size_t>& indices,
                                      std::size_t threads,
                                      const std::function<void(std::size_t)>& body,
                                      bool steal, std::uint64_t* steals_out);

/// Resolve SweepOptions::threads against the environment, the hardware and
/// the job count (always >= 1 for a non-empty batch).  Invalid
/// FRIEDA_SWEEP_THREADS values fall back to hardware_concurrency with a
/// warning log line instead of being silently swallowed.
std::size_t resolve_threads(std::size_t requested, std::size_t jobs);

/// Dispatch order for the given cost estimates: indices sorted by
/// descending cost, ties keeping submission order (stable).
std::vector<std::size_t> longest_first(const std::vector<double>& costs);

/// One-time wiring of FRIEDA_RESULT_CACHE_FILE onto the process-global
/// ResultCache<R>: attach the wire codec, load the checkpoint.  No-op for
/// result types without a codec or when the variable is unset/empty.
template <typename R>
void wire_global_cache_persistence() {
  if constexpr (ReportCodec<R>::kAvailable) {
    static std::once_flag once;
    std::call_once(once, [] {
      const char* env = std::getenv("FRIEDA_RESULT_CACHE_FILE");
      if (env == nullptr || *env == '\0') return;
      auto& cache = ResultCache<R>::global();
      cache.set_persistence(
          env, [](const R& r) { return ReportCodec<R>::serialize(r); },
          [](const std::string& text) { return ReportCodec<R>::deserialize(text); });
      cache.load_file(env);
    });
  }
}

}  // namespace detail

/// One unit of sweep work: a tag (for reports and error messages), a
/// thread-confined callable producing the result, and the scheduling
/// annotations.  `{tag, fn}` still works: such a job has no fingerprint
/// (never memoized) and unit cost (FIFO dispatch among its peers).
template <typename R = core::RunReport>
struct Job {
  Job() = default;
  Job(std::string tag_, std::function<R()> fn_,
      std::optional<Fingerprint> fingerprint_ = std::nullopt, double cost_ = 1.0)
      : tag(std::move(tag_)), fn(std::move(fn_)), fingerprint(fingerprint_), cost(cost_) {}

  std::string tag;
  std::function<R()> fn;

  /// Memoization key; set only when the job is a pure function of a
  /// hashable configuration (see exp::scenario_fingerprint).
  std::optional<Fingerprint> fingerprint;

  /// Relative wall-time estimate for longest-first dispatch (any unit,
  /// only the ordering matters).
  double cost = 1.0;

  /// Measured-cost feedback class.  When set, the runner reports this
  /// job's wall time to its `CostCalibrator` as (key, raw_cost, seconds),
  /// so later grids of the same class schedule with measured rates (see
  /// exp/calibrate.hpp).  `raw_cost` is the *uncalibrated* estimate —
  /// `cost` may already be scaled by a previously learned rate.
  struct Calibration {
    std::string key;        ///< class label, e.g. "als/rt"
    double raw_cost = 1.0;  ///< static scenario_cost estimate
  };
  std::optional<Calibration> calibration;
};

/// Result slot of one job: the value, or the error that replaced it.
template <typename R = core::RunReport>
struct JobOutcome {
  std::string tag;
  std::optional<R> value;  ///< empty when the job threw
  std::string error;       ///< non-empty when the job threw
  bool from_cache = false; ///< served from the result cache or an in-batch twin

  bool ok() const { return value.has_value(); }

  /// The job's result; throws FriedaError naming the job when it failed.
  const R& get() const {
    FRIEDA_CHECK(value.has_value(), "sweep job '" << tag << "' failed: " << error);
    return *value;
  }
};

/// Thread-pooled batch executor.  `run()` blocks until every job finished
/// and returns outcomes in deterministic job order.
template <typename R = core::RunReport>
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opt = {}) : opt_(opt) {}

  /// Replace the consulted result cache (default: the process-global
  /// ResultCache<R>).  nullptr disables memoization for this runner,
  /// including in-batch duplicate elimination.
  void set_cache(ResultCache<R>* cache) { cache_ = cache; }

  /// Replace the measured-cost sink (default: the process-global
  /// CostCalibrator).  nullptr disables calibration feedback.
  void set_calibrator(CostCalibrator* calibrator) { calibrator_ = calibrator; }

  /// Attach a live progress reporter (see obs/report_sink.hpp).  Off by
  /// default: with no reporter attached — and FRIEDA_SWEEP_PROGRESS unset —
  /// the runner prints nothing, so driver output stays byte-identical.
  /// The reporter must outlive run(); nullptr detaches.
  void set_progress(obs::ProgressReporter* progress) { progress_ = progress; }

  std::vector<JobOutcome<R>> run(std::vector<Job<R>> jobs) {
    const std::size_t n = jobs.size();
    std::vector<JobOutcome<R>> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i].tag = jobs[i].tag;
    runs_requested_ = n;
    cache_hits_ = 0;
    child_crashes_ = 0;
    steals_ = 0;
    schedule_.clear();
    backend_used_ = detail::resolve_backend(opt_.backend, ReportCodec<R>::kAvailable);

    // Cross-process persistence: when FRIEDA_RESULT_CACHE_FILE names a
    // checkpoint, the global cache loads it before the first lookup (once
    // per process) and run() saves it back on completion below.
    detail::wire_global_cache_persistence<R>();

    // Phase 1 — memoization: serve cache hits, collapse in-batch duplicates
    // onto one primary, collect the jobs that must actually execute.
    ResultCache<R>* cache = opt_.memoize ? cache_ : nullptr;
    std::vector<std::size_t> execute;
    std::vector<std::optional<std::size_t>> twin_of(n);  // job -> earlier identical job
    std::map<Fingerprint, std::size_t> primary;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& fp = jobs[i].fingerprint;
      if (cache != nullptr && fp.has_value()) {
        if (auto hit = cache->lookup(*fp)) {
          out[i].value.emplace(std::move(*hit));
          out[i].from_cache = true;
          ++cache_hits_;
          continue;
        }
        const auto [it, fresh] = primary.try_emplace(*fp, i);
        if (!fresh) {
          twin_of[i] = it->second;
          ++cache_hits_;
          continue;
        }
      }
      execute.push_back(i);
    }

    // Phase 2 — cost-aware dispatch: longest estimated job first, so a
    // skewed grid's long pole starts immediately instead of tailing the
    // FIFO.  Outcome slots are untouched; only the dispatch order changes.
    {
      std::vector<double> costs;
      costs.reserve(execute.size());
      for (const std::size_t i : execute) costs.push_back(jobs[i].cost);
      const auto order = detail::longest_first(costs);
      schedule_.reserve(order.size());
      for (const std::size_t p : order) schedule_.push_back(execute[p]);
    }
    threads_used_ = detail::resolve_threads(opt_.threads, schedule_.size());

    auto& completed = metrics_.counter("sweep.jobs_completed");
    auto& hits_ctr = metrics_.counter("sweep.cache_hits");
    auto& executed_ctr = metrics_.counter("sweep.runs_executed");
    auto& evicted_ctr = metrics_.counter("sweep.cache_evictions");
    auto& crashes_ctr = metrics_.counter("sweep.child_crashes");
    auto& steals_ctr = metrics_.counter("sweep.steals");
    auto& in_flight = metrics_.gauge("sweep.in_flight");
    auto& wall_per_job = metrics_.stats("sweep.wall_per_job_s");

    // Live progress: an attached reporter wins; otherwise the
    // FRIEDA_SWEEP_PROGRESS environment variable can enable one for this
    // run.  Both off (the default) means zero output.
    std::unique_ptr<obs::ProgressReporter> env_progress;
    obs::ProgressReporter* progress = progress_;
    if (progress == nullptr) {
      env_progress = obs::ProgressReporter::from_env();
      progress = env_progress.get();
    }
    // batch_cost sums *scheduled* jobs only — cache hits' and twins' weight
    // is subtracted up front, and `served` removes them from the reporter's
    // count fallback, so a duplicate-heavy grid's ETA tracks the jobs that
    // actually execute instead of the memoized ones completing at zero cost.
    double batch_cost = 0.0;
    for (const std::size_t i : schedule_) batch_cost += jobs[i].cost;
    const std::size_t served = n - schedule_.size();  // cache hits + twins
    if (progress != nullptr) progress->begin(n, batch_cost, served);

    const std::uint64_t evictions_before = cache != nullptr ? cache->evictions() : 0;
    std::vector<double> job_wall(n, 0.0);  // per-job wall seconds; each job owns its slot
    std::size_t done_jobs = 0;             // guarded by metrics_mutex_
    double done_cost = 0.0;                // guarded by metrics_mutex_

    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::uint64_t> crash_count{0};
    const std::function<void(std::size_t)> body = [&](std::size_t i) {
      const auto j0 = std::chrono::steady_clock::now();
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        in_flight.set(in_flight.value() + 1);
      }
      // Instruments are single-writer by contract; pool threads share these,
      // so every update goes through metrics_mutex_ — including the
      // completion bookkeeping, which must also run when fn() throws.
      struct Done {
        SweepRunner* self;
        obs::Gauge& in_flight;
        obs::Counter& completed;
        RunningStats& wall;
        std::chrono::steady_clock::time_point start;
        std::chrono::steady_clock::time_point batch_start;
        obs::ProgressReporter* progress;
        double cost;
        double* wall_slot;
        std::size_t served;
        std::size_t* done_jobs;
        double* done_cost;
        ~Done() {
          const double secs =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
          *wall_slot = secs;
          std::size_t completed_now = 0;
          std::size_t flying = 0;
          double cost_now = 0.0;
          {
            std::lock_guard<std::mutex> lock(self->metrics_mutex_);
            in_flight.set(in_flight.value() - 1);
            completed.inc();
            wall.add(secs);
            *done_jobs += 1;
            *done_cost += cost;
            completed_now = served + *done_jobs;
            flying = static_cast<std::size_t>(in_flight.value());
            cost_now = *done_cost;
          }
          if (progress != nullptr) {
            const double elapsed =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - batch_start)
                    .count();
            progress->update(completed_now, flying, cost_now, elapsed);
          }
        }
      } done{this,     in_flight,    completed,    wall_per_job, j0,         t0,
             progress, jobs[i].cost, &job_wall[i], served,       &done_jobs, &done_cost};
      if constexpr (ReportCodec<R>::kAvailable) {
        if (backend_used_ == SweepBackend::kProcess) {
          // Fork: the child runs fn() in its copy of the address space and
          // ships the serialized report back.  Any way the child can die
          // becomes this job's error outcome (counted as a crash); an 'E'
          // frame is the job's own exception, rethrown with the same what()
          // the thread backend would have recorded.
          const auto& fn = jobs[i].fn;
          const ForkOutcome fo =
              run_in_child([&fn] { return ReportCodec<R>::serialize(fn()); });
          if (!fo.delivered) {
            crash_count.fetch_add(1, std::memory_order_relaxed);
            throw FriedaError(fo.crash);
          }
          if (!fo.ok) throw std::runtime_error(fo.payload);
          try {
            out[i].value.emplace(ReportCodec<R>::deserialize(fo.payload));
          } catch (...) {
            // A frame that parses as neither report nor error is as good as
            // a crash: count it, surface the decode failure as the outcome.
            crash_count.fetch_add(1, std::memory_order_relaxed);
            throw;
          }
          return;
        }
      }
      out[i].value.emplace(jobs[i].fn());
    };
    auto errors =
        detail::run_stealing(schedule_, threads_used_, body, opt_.steal, &steals_);
    child_crashes_ = crash_count.load();
    wall_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    for (std::size_t p = 0; p < schedule_.size(); ++p) {
      out[schedule_[p]].error = std::move(errors[p]);
    }

    // Phase 3 — publish: successful fingerprinted runs enter the cache
    // (errors never do), and in-batch twins copy their primary's outcome.
    if (cache != nullptr) {
      for (const std::size_t i : execute) {
        if (jobs[i].fingerprint.has_value() && out[i].value.has_value()) {
          cache->insert(*jobs[i].fingerprint, *out[i].value);
        }
      }
      // Sweep completion checkpoint: a cache with FRIEDA_RESULT_CACHE_FILE
      // persistence attached writes itself back atomically, so the next
      // process (or a re-run after an interrupt) starts from these cells.
      cache->save_if_persistent();
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!twin_of[i].has_value()) continue;
      const auto& prime = out[*twin_of[i]];
      out[i].value = prime.value;
      out[i].error = prime.error;
      out[i].from_cache = true;
    }
    runs_executed_ = execute.size();

    // Feed measured wall times back into the calibrator — successful,
    // tagged runs only (a failed run's duration carries no signal; cache
    // hits never executed).
    if (calibrator_ != nullptr) {
      for (const std::size_t i : execute) {
        if (jobs[i].calibration.has_value() && out[i].value.has_value()) {
          calibrator_->observe(jobs[i].calibration->key, jobs[i].calibration->raw_cost,
                               job_wall[i]);
        }
      }
      // Sweep completion checkpoint: when the calibrator has a persistence
      // path attached (FRIEDA_CALIBRATION_FILE), the rates just learned are
      // written back so the next process starts warm.
      calibrator_->save_if_persistent();
    }

    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      hits_ctr.inc(cache_hits_);
      executed_ctr.inc(runs_executed_);
      crashes_ctr.inc(child_crashes_);
      steals_ctr.inc(steals_);
      if (cache != nullptr) evicted_ctr.inc(cache->evictions() - evictions_before);
    }
    if (progress != nullptr) progress->finish(n, n, wall_seconds_);
    return out;
  }

  /// Threads the last run() actually used (0 before the first run, and 0
  /// when every job was served from the cache).
  std::size_t threads_used() const { return threads_used_; }

  /// Wall-clock duration of the last run() in seconds.
  double wall_seconds() const { return wall_seconds_; }

  /// Jobs handed to the last run().
  std::size_t runs_requested() const { return runs_requested_; }

  /// Jobs the last run() actually executed (requested − cache_hits for
  /// fully fingerprinted batches; unhashable jobs always execute).
  std::size_t runs_executed() const { return runs_executed_; }

  /// Jobs of the last run() served without executing: result-cache hits
  /// plus in-batch duplicates collapsed onto an executing twin.
  std::size_t cache_hits() const { return cache_hits_; }

  /// Backend the last run() resolved to (after the environment override and
  /// the codec-availability fallback).  kThread before the first run.
  SweepBackend backend_used() const { return backend_used_; }

  /// Forked children of the last run() that died without delivering a
  /// result (fatal signal, nonzero exit, truncated or undecodable frame).
  /// Always 0 under the thread backend.
  std::uint64_t child_crashes() const { return child_crashes_; }

  /// Steal batches of the last run(): times an idle worker took the front
  /// half of another worker's backlog.  0 with opt.steal == false, with a
  /// single worker, and for perfectly balanced dispatch.
  std::uint64_t steals() const { return steals_; }

  /// Dispatch order of the last run(): the executed jobs' ids, longest
  /// estimated cost first (ties in submission order).  Exposed so tests can
  /// assert the schedule decision without timing assumptions.
  const std::vector<std::size_t>& schedule() const { return schedule_; }

  /// Progress metrics owned by this runner; counters accumulate across
  /// run() calls.  Safe to read between runs; during a run, updates are
  /// serialized behind an internal mutex.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  SweepOptions opt_;
  ResultCache<R>* cache_ = &ResultCache<R>::global();
  CostCalibrator* calibrator_ = &CostCalibrator::global();
  obs::ProgressReporter* progress_ = nullptr;
  std::size_t threads_used_ = 0;
  double wall_seconds_ = 0.0;
  std::size_t runs_requested_ = 0;
  std::size_t runs_executed_ = 0;
  std::size_t cache_hits_ = 0;
  SweepBackend backend_used_ = SweepBackend::kThread;
  std::uint64_t child_crashes_ = 0;
  std::uint64_t steals_ = 0;
  std::vector<std::size_t> schedule_;
  obs::MetricsRegistry metrics_;
  std::mutex metrics_mutex_;
};

}  // namespace frieda::exp
