// Parallel sweep engine: thread-pooled batch execution of scenario runs.
//
// The paper's entire evaluation — Table I, Figures 6–7, the eight ablations —
// is a grid of *independent, deterministic* simulation runs.  A `SweepRunner`
// executes such a grid on a fixed pool of `std::thread`s fed through
// `rt::MpmcQueue` and returns results **in job order**, regardless of thread
// count or completion order, so a sweep's tables and CSVs are byte-identical
// to running the same jobs sequentially.
//
// Determinism rules (see docs/performance.md, "Batch sweeps"):
//   * Each job owns its `sim::Simulation`/`cluster::VirtualCluster`/`Rng` —
//     thread-confined by construction; jobs share only immutable inputs
//     (e.g. a const workload model, see `workload::make_als_model`).
//   * Result slot `i` always belongs to job `i`; the pool never reorders.
//   * Per-job seeds, when derived, come from `derive_seed(base, job_index)`
//     (SplitMix64), so appending jobs to a grid never perturbs the seeds —
//     and therefore the results — of the jobs already in it.
//   * A throwing job is isolated: its outcome carries the error message, all
//     other jobs still run to completion.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "frieda/report.hpp"

namespace frieda::exp {

/// Derive the seed of job `job_index` in a sweep with base seed `base_seed`.
/// Pure SplitMix64 mixing of the pair: depends only on (base, index), so a
/// job keeps its seed when other jobs are added before or after it.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index);

/// Pool configuration for one sweep.
struct SweepOptions {
  /// Worker threads; 0 = auto (the FRIEDA_SWEEP_THREADS environment
  /// variable if set, else std::thread::hardware_concurrency()).  The pool
  /// never spawns more threads than there are jobs.
  std::size_t threads = 0;
};

namespace detail {

/// Run `body(i)` for every i in [0, count) on `threads` pool threads.
/// Returns one error string per index (empty = the call returned normally);
/// a throwing body never takes down the pool or other indices.
std::vector<std::string> run_indexed(std::size_t count, std::size_t threads,
                                     const std::function<void(std::size_t)>& body);

/// Resolve SweepOptions::threads against the environment, the hardware and
/// the job count (always >= 1 for a non-empty batch).
std::size_t resolve_threads(std::size_t requested, std::size_t jobs);

}  // namespace detail

/// One unit of sweep work: a tag (for reports and error messages) plus a
/// thread-confined callable producing the result.
template <typename R = core::RunReport>
struct Job {
  std::string tag;
  std::function<R()> fn;
};

/// Result slot of one job: the value, or the error that replaced it.
template <typename R = core::RunReport>
struct JobOutcome {
  std::string tag;
  std::optional<R> value;  ///< empty when the job threw
  std::string error;       ///< non-empty when the job threw

  bool ok() const { return value.has_value(); }

  /// The job's result; throws FriedaError naming the job when it failed.
  const R& get() const {
    FRIEDA_CHECK(value.has_value(), "sweep job '" << tag << "' failed: " << error);
    return *value;
  }
};

/// Thread-pooled batch executor.  `run()` blocks until every job finished
/// and returns outcomes in deterministic job order.
template <typename R = core::RunReport>
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opt = {}) : opt_(opt) {}

  std::vector<JobOutcome<R>> run(std::vector<Job<R>> jobs) {
    std::vector<JobOutcome<R>> out(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) out[i].tag = jobs[i].tag;
    threads_used_ = detail::resolve_threads(opt_.threads, jobs.size());
    const auto t0 = std::chrono::steady_clock::now();
    auto errors = detail::run_indexed(jobs.size(), threads_used_, [&](std::size_t i) {
      out[i].value.emplace(jobs[i].fn());
    });
    wall_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    for (std::size_t i = 0; i < errors.size(); ++i) out[i].error = std::move(errors[i]);
    return out;
  }

  /// Threads the last run() actually used (0 before the first run).
  std::size_t threads_used() const { return threads_used_; }

  /// Wall-clock duration of the last run() in seconds.
  double wall_seconds() const { return wall_seconds_; }

 private:
  SweepOptions opt_;
  std::size_t threads_used_ = 0;
  double wall_seconds_ = 0.0;
};

}  // namespace frieda::exp
