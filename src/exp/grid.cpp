#include "exp/grid.hpp"

#include "frieda/types.hpp"

namespace frieda::exp {

void Grid::stamp_seed(workload::PaperScenarioOptions& opt, JobId index) const {
  if (derive_seeds_) opt.seed = derive_seed(seed_base_, index);
}

std::string Grid::default_tag(const char* app, const char* mode, JobId index) const {
  return std::string(app) + "/" + mode + "#" + std::to_string(index);
}

JobId Grid::add(std::string tag, std::function<core::RunReport()> fn) {
  const JobId id = jobs_.size();
  if (tag.empty()) tag = "job#" + std::to_string(id);
  jobs_.push_back({std::move(tag), std::move(fn)});
  return id;
}

JobId Grid::add_als(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                    std::string tag) {
  const JobId id = jobs_.size();
  stamp_seed(opt, id);
  if (tag.empty()) tag = default_tag("als", core::to_string(strategy), id);
  jobs_.push_back({std::move(tag), [strategy, opt = std::move(opt)] {
                     return workload::run_als(strategy, opt);
                   }});
  return id;
}

JobId Grid::add_blast(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                      std::string tag) {
  const JobId id = jobs_.size();
  stamp_seed(opt, id);
  if (tag.empty()) tag = default_tag("blast", core::to_string(strategy), id);
  jobs_.push_back({std::move(tag), [strategy, opt = std::move(opt)] {
                     return workload::run_blast(strategy, opt);
                   }});
  return id;
}

JobId Grid::add_als_sequential(workload::PaperScenarioOptions opt, std::string tag) {
  const JobId id = jobs_.size();
  stamp_seed(opt, id);
  if (tag.empty()) tag = default_tag("als", "sequential", id);
  jobs_.push_back({std::move(tag), [opt = std::move(opt)] {
                     return workload::run_als_sequential(opt);
                   }});
  return id;
}

JobId Grid::add_blast_sequential(workload::PaperScenarioOptions opt, std::string tag) {
  const JobId id = jobs_.size();
  stamp_seed(opt, id);
  if (tag.empty()) tag = default_tag("blast", "sequential", id);
  jobs_.push_back({std::move(tag), [opt = std::move(opt)] {
                     return workload::run_blast_sequential(opt);
                   }});
  return id;
}

JobId Grid::add_als(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                    std::shared_ptr<const workload::ImageCompareModel> app, std::string tag) {
  const JobId id = jobs_.size();
  stamp_seed(opt, id);
  if (tag.empty()) tag = default_tag("als", core::to_string(strategy), id);
  jobs_.push_back({std::move(tag), [strategy, opt = std::move(opt), app = std::move(app)] {
                     return workload::run_als(strategy, *app, opt);
                   }});
  return id;
}

JobId Grid::add_blast(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                      std::shared_ptr<const workload::BlastModel> app, std::string tag) {
  const JobId id = jobs_.size();
  stamp_seed(opt, id);
  if (tag.empty()) tag = default_tag("blast", core::to_string(strategy), id);
  jobs_.push_back({std::move(tag), [strategy, opt = std::move(opt), app = std::move(app)] {
                     return workload::run_blast(strategy, *app, opt);
                   }});
  return id;
}

JobId Grid::add_als_sequential(workload::PaperScenarioOptions opt,
                               std::shared_ptr<const workload::ImageCompareModel> app,
                               std::string tag) {
  const JobId id = jobs_.size();
  stamp_seed(opt, id);
  if (tag.empty()) tag = default_tag("als", "sequential", id);
  jobs_.push_back({std::move(tag), [opt = std::move(opt), app = std::move(app)] {
                     return workload::run_als_sequential(*app, opt);
                   }});
  return id;
}

JobId Grid::add_blast_sequential(workload::PaperScenarioOptions opt,
                                 std::shared_ptr<const workload::BlastModel> app,
                                 std::string tag) {
  const JobId id = jobs_.size();
  stamp_seed(opt, id);
  if (tag.empty()) tag = default_tag("blast", "sequential", id);
  jobs_.push_back({std::move(tag), [opt = std::move(opt), app = std::move(app)] {
                     return workload::run_blast_sequential(*app, opt);
                   }});
  return id;
}

void ScenarioSweep::run() {
  outcomes_ = runner_.run(grid_.take());
}

const JobOutcome<core::RunReport>& ScenarioSweep::outcome(JobId id) const {
  FRIEDA_CHECK(id < outcomes_.size(),
               "sweep outcome " << id << " out of range (" << outcomes_.size()
                                << " jobs ran; was run() called?)");
  return outcomes_[id];
}

}  // namespace frieda::exp
