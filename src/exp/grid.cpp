#include "exp/grid.hpp"

#include "exp/cost.hpp"
#include "frieda/types.hpp"

namespace frieda::exp {

void Grid::stamp_seed(workload::PaperScenarioOptions& opt, JobId index) const {
  if (derive_seeds_) opt.seed = derive_seed(seed_base_, index);
}

std::string Grid::default_tag(const char* app, const char* mode, JobId index) const {
  return std::string(app) + "/" + mode + "#" + std::to_string(index);
}

JobId Grid::add(std::string tag, std::function<core::RunReport()> fn, double cost) {
  const JobId id = jobs_.size();
  if (tag.empty()) tag = "job#" + std::to_string(id);
  // Ad-hoc jobs are opaque: no fingerprint, so the cache never sees them.
  jobs_.push_back({std::move(tag), std::move(fn), std::nullopt, cost});
  return id;
}

JobId Grid::push_scenario(const char* app, const char* mode, bool sequential,
                          const workload::PaperScenarioOptions& opt, std::string tag,
                          std::function<core::RunReport()> fn) {
  const JobId id = jobs_.size();
  if (tag.empty()) tag = default_tag(app, mode, id);
  // Static estimate, scaled by the measured seconds-per-unit rate of this
  // (app, strategy) class once the calibrator has observed one (grids run
  // earlier in the process teach grids run later; see exp/calibrate.hpp).
  const std::string key = std::string(app) + "/" + mode;
  const double raw = scenario_cost(app, sequential, opt);
  const double cost = calibrator_ != nullptr ? calibrator_->calibrated(key, raw) : raw;
  jobs_.push_back({std::move(tag), std::move(fn), scenario_fingerprint(app, mode, opt),
                   cost});
  jobs_.back().calibration = {key, raw};
  return id;
}

JobId Grid::add_als(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                    std::string tag) {
  stamp_seed(opt, jobs_.size());
  return push_scenario("als", core::to_string(strategy), false, opt, std::move(tag),
                       [strategy, opt] { return workload::run_als(strategy, opt); });
}

JobId Grid::add_blast(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                      std::string tag) {
  stamp_seed(opt, jobs_.size());
  return push_scenario("blast", core::to_string(strategy), false, opt, std::move(tag),
                       [strategy, opt] { return workload::run_blast(strategy, opt); });
}

JobId Grid::add_als_sequential(workload::PaperScenarioOptions opt, std::string tag) {
  stamp_seed(opt, jobs_.size());
  return push_scenario("als", "sequential", true, opt, std::move(tag),
                       [opt] { return workload::run_als_sequential(opt); });
}

JobId Grid::add_blast_sequential(workload::PaperScenarioOptions opt, std::string tag) {
  stamp_seed(opt, jobs_.size());
  return push_scenario("blast", "sequential", true, opt, std::move(tag),
                       [opt] { return workload::run_blast_sequential(opt); });
}

JobId Grid::add_als(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                    std::shared_ptr<const workload::ImageCompareModel> app, std::string tag) {
  stamp_seed(opt, jobs_.size());
  // Shared-model jobs hash identically to their build-the-model twins: the
  // model is a pure function of opt.scale, so the report is the same either
  // way (asserted by tests/test_sweep.cpp, SharedModelMatchesPerJobModel).
  return push_scenario("als", core::to_string(strategy), false, opt, std::move(tag),
                       [strategy, opt, app = std::move(app)] {
                         return workload::run_als(strategy, *app, opt);
                       });
}

JobId Grid::add_blast(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                      std::shared_ptr<const workload::BlastModel> app, std::string tag) {
  stamp_seed(opt, jobs_.size());
  return push_scenario("blast", core::to_string(strategy), false, opt, std::move(tag),
                       [strategy, opt, app = std::move(app)] {
                         return workload::run_blast(strategy, *app, opt);
                       });
}

JobId Grid::add_als_sequential(workload::PaperScenarioOptions opt,
                               std::shared_ptr<const workload::ImageCompareModel> app,
                               std::string tag) {
  stamp_seed(opt, jobs_.size());
  return push_scenario("als", "sequential", true, opt, std::move(tag),
                       [opt, app = std::move(app)] {
                         return workload::run_als_sequential(*app, opt);
                       });
}

JobId Grid::add_blast_sequential(workload::PaperScenarioOptions opt,
                                 std::shared_ptr<const workload::BlastModel> app,
                                 std::string tag) {
  stamp_seed(opt, jobs_.size());
  return push_scenario("blast", "sequential", true, opt, std::move(tag),
                       [opt, app = std::move(app)] {
                         return workload::run_blast_sequential(*app, opt);
                       });
}

void ScenarioSweep::run() {
  FRIEDA_CHECK(!ran_, "ScenarioSweep::run() called twice; a sweep executes once — "
                      "build a new ScenarioSweep to run another grid");
  ran_ = true;
  outcomes_ = runner_.run(grid_.take());
}

const JobOutcome<core::RunReport>& ScenarioSweep::outcome(JobId id) const {
  FRIEDA_CHECK(ran_, "ScenarioSweep::outcome(" << id << ") before run()");
  FRIEDA_CHECK(id < outcomes_.size(),
               "sweep outcome " << id << " out of range (" << outcomes_.size()
                                << " jobs ran)");
  return outcomes_[id];
}

}  // namespace frieda::exp
