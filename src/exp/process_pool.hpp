// Fork-based job execution for the sweep engine.
//
// The thread backend runs every job in the driver's address space: one
// crashed job (SIGSEGV, abort, a runaway FRIEDA_CHECK in third-party code)
// takes the whole 10k-cell sweep down with it, and all jobs share one heap.
// The process backend removes both couplings: each job executes in a
// *forked child*, ships its outcome back over a pipe as a versioned
// serialized report (frieda/report_io.hpp), and any way the child can die —
// fatal signal, abort, nonzero exit, truncated frame — is converted into
// that one job's error outcome while every other job completes.  Crash
// isolation is free, and there is no shared mutable state for tsan to see.
//
// Wire protocol (parent <- child, one frame per job):
//
//   [8-byte little-endian payload length][1 status byte 'R'|'E'][payload]
//
// 'R' payloads are a serialized report; 'E' payloads are the what() of an
// exception the job threw (the thread backend's error path, shipped across
// the process boundary).  The parent reads the exact frame, then reaps the
// child: a signaled or nonzero exit always wins over whatever bytes
// arrived, and a short read is reported as truncation.
//
// Fork hygiene: pipe creation and fork() are serialized behind one mutex,
// and every child closes the other in-flight children's write ends before
// running its job — otherwise a concurrently forked sibling would hold a
// duplicate of our pipe's write end open and delay crash detection until
// *it* exits.  Children terminate through _exit(), never exit(): static
// destructors and stdio flushes belong to the parent.
#pragma once

#include <functional>
#include <string>

#include "frieda/report_io.hpp"
#include "runtime/rt_engine.hpp"

namespace frieda::exp {

/// How one forked job ended, as observed by the parent.
struct ForkOutcome {
  /// The child delivered a complete frame (result or error) and exited
  /// cleanly.  When false, `crash` describes what happened instead.
  bool delivered = false;

  /// Frame status: true = 'R' (serialized report in `payload`), false =
  /// 'E' (`payload` is the thrown exception's message).  Meaningless unless
  /// `delivered`.
  bool ok = false;

  /// Serialized report ('R') or error message ('E').
  std::string payload;

  /// Non-empty when !delivered: human-readable crash description
  /// ("child killed by signal 11 (SIGSEGV)", "child exited with status 3",
  /// "truncated result frame ...").
  std::string crash;
};

/// Fork a child, run `work` in it, and ship the returned bytes back as an
/// 'R' frame ('E' with the message when `work` throws).  Blocks until the
/// frame is read and the child is reaped.  Never throws for child-side
/// failures — they land in the returned outcome.
ForkOutcome run_in_child(const std::function<std::string()>& work);

namespace detail {

/// Write one length-prefixed frame (status byte + payload) to `fd`;
/// async-usable from a forked child.  Returns false on any short write.
bool write_frame(int fd, char status, const std::string& payload);

/// Read one frame from `fd`.  Returns false on EOF/short read/oversized
/// declared length (truncation or a garbage stream).
bool read_frame(int fd, char& status, std::string& payload);

/// Render a wait() status as a human-readable crash description, or an
/// empty string for a clean zero exit.
std::string describe_wait_status(int wait_status);

}  // namespace detail

/// Serialization bridge between the sweep engine's result type and the
/// pipe.  The process backend is available only for result types with a
/// specialization (core::RunReport and rt::RtReport today); for anything
/// else the runner falls back to the thread backend with a warning.
template <typename R>
struct ReportCodec {
  static constexpr bool kAvailable = false;
};

template <>
struct ReportCodec<core::RunReport> {
  static constexpr bool kAvailable = true;
  static std::string serialize(const core::RunReport& r) {
    return core::serialize_run_report(r);
  }
  static core::RunReport deserialize(const std::string& text) {
    return core::deserialize_run_report(text);
  }
};

template <>
struct ReportCodec<rt::RtReport> {
  static constexpr bool kAvailable = true;
  static std::string serialize(const rt::RtReport& r) {
    return core::serialize_rt_report(r);
  }
  static rt::RtReport deserialize(const std::string& text) {
    return core::deserialize_rt_report(text);
  }
};

}  // namespace frieda::exp
