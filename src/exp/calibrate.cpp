#include "exp/calibrate.hpp"

namespace frieda::exp {

void CostCalibrator::observe(const std::string& key, double raw_cost, double wall_seconds) {
  if (raw_cost <= 0.0 || wall_seconds <= 0.0) return;
  const double observed = wall_seconds / raw_cost;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, fresh] = rate_.try_emplace(key, observed);
  if (!fresh) it->second += kAlpha * (observed - it->second);
}

std::optional<double> CostCalibrator::rate(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rate_.find(key);
  if (it == rate_.end()) return std::nullopt;
  return it->second;
}

double CostCalibrator::calibrated(const std::string& key, double raw_cost) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rate_.find(key);
  return it == rate_.end() ? raw_cost : raw_cost * it->second;
}

std::size_t CostCalibrator::classes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rate_.size();
}

void CostCalibrator::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rate_.clear();
}

CostCalibrator& CostCalibrator::global() {
  static CostCalibrator calibrator;
  return calibrator;
}

}  // namespace frieda::exp
