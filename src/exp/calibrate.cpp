#include "exp/calibrate.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/log.hpp"

namespace frieda::exp {

namespace {
constexpr const char* kCalibrationHeader = "frieda-calibration v1";
}  // namespace

void CostCalibrator::observe(const std::string& key, double raw_cost, double wall_seconds) {
  if (raw_cost <= 0.0 || wall_seconds <= 0.0) return;
  const double observed = wall_seconds / raw_cost;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, fresh] = rate_.try_emplace(key, observed);
  if (!fresh) it->second += kAlpha * (observed - it->second);
}

std::optional<double> CostCalibrator::rate(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rate_.find(key);
  if (it == rate_.end()) return std::nullopt;
  return it->second;
}

double CostCalibrator::calibrated(const std::string& key, double raw_cost) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rate_.find(key);
  return it == rate_.end() ? raw_cost : raw_cost * it->second;
}

std::size_t CostCalibrator::classes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rate_.size();
}

void CostCalibrator::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rate_.clear();
}

bool CostCalibrator::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;  // cold start: a missing file is the normal case
  std::string line;
  if (!std::getline(in, line) || line != kCalibrationHeader) {
    FLOG(kWarn, "calibrate",
         "ignoring calibration file '" << path << "': missing '" << kCalibrationHeader
                                       << "' header");
    return false;
  }
  std::size_t loaded = 0;
  std::size_t skipped = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    bool ok = tab != std::string::npos && tab > 0;
    double rate = 0.0;
    if (ok) {
      const std::string value = line.substr(tab + 1);
      char* end = nullptr;
      rate = std::strtod(value.c_str(), &end);
      ok = end != value.c_str() && *end == '\0' && std::isfinite(rate) && rate > 0.0;
    }
    if (!ok) {
      ++skipped;
      continue;
    }
    // In-process observations are fresher than anything on disk.
    if (rate_.try_emplace(line.substr(0, tab), rate).second) ++loaded;
  }
  if (skipped > 0) {
    FLOG(kWarn, "calibrate",
         "calibration file '" << path << "': skipped " << skipped << " malformed line"
                              << (skipped == 1 ? "" : "s"));
  }
  return loaded > 0 || skipped == 0;
}

bool CostCalibrator::save_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ostringstream body;
    body << kCalibrationHeader << "\n";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [key, rate] : rate_) body << key << "\t" << rate << "\n";
    }
    std::ofstream out(tmp, std::ios::trunc);
    if (!out || !(out << body.str()) || !out.flush()) {
      FLOG(kWarn, "calibrate", "could not write calibration file '" << tmp << "'");
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    FLOG(kWarn, "calibrate",
         "could not move calibration file into place at '" << path << "'");
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void CostCalibrator::set_persist_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  persist_path_ = std::move(path);
}

std::string CostCalibrator::persist_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return persist_path_;
}

bool CostCalibrator::save_if_persistent() const {
  const auto path = persist_path();
  if (path.empty()) return false;
  return save_file(path);
}

CostCalibrator& CostCalibrator::global() {
  static CostCalibrator calibrator;
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    if (const char* env = std::getenv("FRIEDA_CALIBRATION_FILE")) {
      if (*env != '\0') {
        calibrator.set_persist_path(env);
        calibrator.load_file(env);
      }
    }
  });
  return calibrator;
}

}  // namespace frieda::exp
