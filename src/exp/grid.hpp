// Job-description layer over the sweep engine for the paper's scenario grids.
//
// A `Grid` accumulates tagged `RunReport` jobs — ad-hoc callables or the
// common paper scenarios (ALS/BLAST × placement strategy ×
// `PaperScenarioOptions`) — and hands the batch to a `SweepRunner`.  Adding a
// job returns its `JobId`; after the sweep, that id indexes the outcome, so a
// bench driver reads results exactly where it used to call `run_als(...)`.
//
// Scenario jobs are annotated for the scheduler on the way in: a config
// fingerprint (memoization key, omitted when the options carry
// arrange/tracer/metrics hooks) and a relative cost estimate (units × scale
// over instance slots) for longest-first dispatch.  Ad-hoc `add()` jobs stay
// unhashable and uncached — the engine cannot see inside the callable — but
// accept an explicit cost override.
//
// `ScenarioSweep` bundles the grid with a runner and keeps the outcomes:
//
//   exp::ScenarioSweep sweep;
//   const auto pre = sweep.grid().add_als(PlacementStrategy::kPrePartitionRemote, opt);
//   const auto rt  = sweep.grid().add_als(PlacementStrategy::kRealTime, opt);
//   sweep.run();
//   use(sweep.report(pre), sweep.report(rt));
//
// Jobs that share a dataset scale can share one immutable workload model
// (the per-job fixed setup cost is paid once): build it with
// `workload::make_als_model` / `make_blast_model` and pass the shared_ptr to
// the `add_*` overloads below.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "workload/scenarios.hpp"

namespace frieda::exp {

/// Index of a job within a Grid; indexes the outcomes after the sweep.
using JobId = std::size_t;

/// Builder for a batch of tagged scenario jobs.
class Grid {
 public:
  /// Jobs keep whatever seed their options carry.
  Grid() = default;

  /// Every scenario job added afterwards has its `opt.seed` overridden with
  /// `derive_seed(seed_base, job_index)` — append-stable per-job seeds for
  /// grids that want independent randomness per cell.
  explicit Grid(std::uint64_t seed_base) : seed_base_(seed_base), derive_seeds_(true) {}

  /// Add an arbitrary job (any callable returning a RunReport).  Never
  /// memoized; `cost` is the relative wall-time estimate used for
  /// longest-first dispatch (default: unit cost, i.e. FIFO among peers).
  JobId add(std::string tag, std::function<core::RunReport()> fn, double cost = 1.0);

  /// Paper scenarios; `tag` defaults to "<app>/<strategy>#<index>".
  JobId add_als(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                std::string tag = {});
  JobId add_blast(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                  std::string tag = {});
  JobId add_als_sequential(workload::PaperScenarioOptions opt, std::string tag = {});
  JobId add_blast_sequential(workload::PaperScenarioOptions opt, std::string tag = {});

  /// Shared-dataset variants: the model is built once by the caller
  /// (workload::make_*_model) and read concurrently by every job that uses it.
  JobId add_als(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                std::shared_ptr<const workload::ImageCompareModel> app, std::string tag = {});
  JobId add_blast(core::PlacementStrategy strategy, workload::PaperScenarioOptions opt,
                  std::shared_ptr<const workload::BlastModel> app, std::string tag = {});
  JobId add_als_sequential(workload::PaperScenarioOptions opt,
                           std::shared_ptr<const workload::ImageCompareModel> app,
                           std::string tag = {});
  JobId add_blast_sequential(workload::PaperScenarioOptions opt,
                             std::shared_ptr<const workload::BlastModel> app,
                             std::string tag = {});

  /// Jobs accumulated so far.
  std::size_t size() const { return jobs_.size(); }

  /// Replace the cost calibrator consulted when annotating scenario jobs
  /// (default: the process-global CostCalibrator, which the runner feeds
  /// with measured wall times).  nullptr pins jobs to the static
  /// `scenario_cost` estimate — use in tests that assert exact schedules.
  void set_calibrator(CostCalibrator* calibrator) { calibrator_ = calibrator; }

  /// Move the batch out (the grid is empty afterwards).
  std::vector<Job<core::RunReport>> take() { return std::move(jobs_); }

 private:
  // Apply the derived-seed policy for the job about to occupy `index`.
  void stamp_seed(workload::PaperScenarioOptions& opt, JobId index) const;
  std::string default_tag(const char* app, const char* mode, JobId index) const;
  // Annotate (fingerprint + cost) and push one paper-scenario job.
  JobId push_scenario(const char* app, const char* mode, bool sequential,
                      const workload::PaperScenarioOptions& opt, std::string tag,
                      std::function<core::RunReport()> fn);

  std::uint64_t seed_base_ = 0;
  bool derive_seeds_ = false;
  CostCalibrator* calibrator_ = &CostCalibrator::global();
  std::vector<Job<core::RunReport>> jobs_;
};

/// A grid plus the runner that executes it and the outcomes it produced.
/// Lifecycle is explicit and checked: add jobs, run() exactly once, then
/// query outcomes — run() on an already-run sweep and outcome() on a
/// never-run sweep both throw FriedaError.
class ScenarioSweep {
 public:
  explicit ScenarioSweep(SweepOptions opt = {}) : runner_(opt) {}

  /// The job builder; add jobs here before calling run().
  Grid& grid() { return grid_; }

  /// Execute every accumulated job; blocks until all finished.  Callable
  /// exactly once per sweep (throws FriedaError on a second call — build a
  /// new ScenarioSweep to re-run).
  void run();

  /// True once run() has executed.
  bool ran() const { return ran_; }

  /// Outcome of job `id`; throws FriedaError before run().
  const JobOutcome<core::RunReport>& outcome(JobId id) const;

  /// Report of job `id`; throws FriedaError naming the job if it failed.
  const core::RunReport& report(JobId id) const { return outcome(id).get(); }

  /// Jobs executed by run().
  std::size_t jobs() const { return outcomes_.size(); }

  /// Pool width of the executed sweep.
  std::size_t threads_used() const { return runner_.threads_used(); }

  /// Wall-clock seconds of the executed sweep.
  double wall_seconds() const { return runner_.wall_seconds(); }

  /// Memoization statistics of the executed sweep (see SweepRunner).
  std::size_t runs_requested() const { return runner_.runs_requested(); }
  std::size_t runs_executed() const { return runner_.runs_executed(); }
  std::size_t cache_hits() const { return runner_.cache_hits(); }

  /// Dispatch order of the executed jobs (longest estimated cost first).
  const std::vector<std::size_t>& schedule() const { return runner_.schedule(); }

  /// The runner's progress metrics (jobs-completed / cache-hit counters,
  /// in-flight gauge, wall-per-job stats).
  obs::MetricsRegistry& metrics() { return runner_.metrics(); }

  /// Replace or disable the consulted result cache (see SweepRunner).
  void set_cache(ResultCache<core::RunReport>* cache) { runner_.set_cache(cache); }

  /// Replace or disable cost calibration for both the grid's job
  /// annotations and the runner's measured-wall-time feedback.
  void set_calibrator(CostCalibrator* calibrator) {
    grid_.set_calibrator(calibrator);
    runner_.set_calibrator(calibrator);
  }

  /// Attach a live progress reporter (opt-in; see obs/report_sink.hpp).
  void set_progress(obs::ProgressReporter* progress) { runner_.set_progress(progress); }

 private:
  Grid grid_;
  SweepRunner<core::RunReport> runner_;
  std::vector<JobOutcome<core::RunReport>> outcomes_;
  bool ran_ = false;
};

}  // namespace frieda::exp
