#include "exp/sweep.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <numeric>
#include <thread>

#include "common/log.hpp"
#include "runtime/mpmc_queue.hpp"

namespace frieda::exp {

namespace {

// Same SplitMix64 step the Rng seeder uses (common/rng.cpp); duplicated here
// because that one is an implementation detail of the generator.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // Whiten the base, fold the index into the whitened stream, mix again.
  // Two full SplitMix64 steps keep nearby (base, index) pairs uncorrelated.
  std::uint64_t s = base_seed;
  const std::uint64_t whitened = splitmix64(s);
  s = whitened ^ job_index;
  return splitmix64(s);
}

namespace detail {

std::size_t parse_threads_env(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return 0;  // no digits, or trailing junk
  if (errno == ERANGE || parsed <= 0 || parsed > kMaxSweepThreads) return 0;
  return static_cast<std::size_t>(parsed);
}

std::size_t resolve_threads(std::size_t requested, std::size_t jobs) {
  if (jobs == 0) return 0;
  std::size_t n = requested;
  if (n == 0) {
    if (const char* env = std::getenv("FRIEDA_SWEEP_THREADS")) {
      n = parse_threads_env(env);
      if (n == 0) {
        FLOG(kWarn, "sweep",
             "ignoring FRIEDA_SWEEP_THREADS='"
                 << env << "' (expected an integer in [1, " << kMaxSweepThreads
                 << "]); falling back to hardware_concurrency");
      }
    }
  }
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  return std::min(n, jobs);
}

std::vector<std::size_t> longest_first(const std::vector<double>& costs) {
  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return costs[a] > costs[b]; });
  return order;
}

std::vector<std::string> run_indexed(const std::vector<std::size_t>& indices,
                                     std::size_t threads,
                                     const std::function<void(std::size_t)>& body) {
  std::vector<std::string> errors(indices.size());
  // Each position is claimed by exactly one thread, which is the only writer
  // of that errors slot; the joins below publish the writes to the caller.
  const auto guarded = [&](std::size_t pos) {
    try {
      body(indices[pos]);
    } catch (const std::exception& e) {
      errors[pos] = e.what();
    } catch (...) {
      errors[pos] = "unknown exception";
    }
  };
  if (indices.empty()) return errors;
  if (threads <= 1) {
    for (std::size_t pos = 0; pos < indices.size(); ++pos) guarded(pos);
    return errors;
  }
  // Positions are queued in schedule order, so the FIFO pool dispatches
  // longest-first when the caller sorted `indices` that way.
  rt::MpmcQueue<std::size_t> queue;
  for (std::size_t pos = 0; pos < indices.size(); ++pos) queue.push(pos);
  queue.close();  // pre-filled: consumers drain the buffer, then stop
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (auto pos = queue.pop()) guarded(*pos);
    });
  }
  for (auto& t : pool) t.join();
  return errors;
}

}  // namespace detail

}  // namespace frieda::exp
