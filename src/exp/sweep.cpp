#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>

#include "common/log.hpp"
#include "runtime/mpmc_queue.hpp"

namespace frieda::exp {

const char* to_string(SweepBackend backend) {
  switch (backend) {
    case SweepBackend::kThread: return "thread";
    case SweepBackend::kProcess: return "process";
  }
  return "?";
}

namespace {

// Same SplitMix64 step the Rng seeder uses (common/rng.cpp); duplicated here
// because that one is an implementation detail of the generator.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // Whiten the base, fold the index into the whitened stream, mix again.
  // Two full SplitMix64 steps keep nearby (base, index) pairs uncorrelated.
  std::uint64_t s = base_seed;
  const std::uint64_t whitened = splitmix64(s);
  s = whitened ^ job_index;
  return splitmix64(s);
}

namespace detail {

std::size_t parse_threads_env(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return 0;  // no digits, or trailing junk
  if (errno == ERANGE || parsed <= 0 || parsed > kMaxSweepThreads) return 0;
  return static_cast<std::size_t>(parsed);
}

std::size_t resolve_threads(std::size_t requested, std::size_t jobs) {
  if (jobs == 0) return 0;
  std::size_t n = requested;
  if (n == 0) {
    if (const char* env = std::getenv("FRIEDA_SWEEP_THREADS")) {
      n = parse_threads_env(env);
      if (n == 0) {
        FLOG(kWarn, "sweep",
             "ignoring FRIEDA_SWEEP_THREADS='"
                 << env << "' (expected an integer in [1, " << kMaxSweepThreads
                 << "]); falling back to hardware_concurrency");
      }
    }
  }
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  return std::min(n, jobs);
}

std::vector<std::size_t> longest_first(const std::vector<double>& costs) {
  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return costs[a] > costs[b]; });
  return order;
}

std::optional<SweepBackend> parse_backend_env(const char* text) {
  if (text == nullptr) return std::nullopt;
  // Exact match only: "Thread", "process " and friends are typos, and a typo
  // must not silently pick a backend the user did not ask for.
  if (std::strcmp(text, "thread") == 0) return SweepBackend::kThread;
  if (std::strcmp(text, "process") == 0) return SweepBackend::kProcess;
  return std::nullopt;
}

SweepBackend resolve_backend(std::optional<SweepBackend> requested, bool codec_available) {
  SweepBackend backend = SweepBackend::kThread;
  if (requested.has_value()) {
    backend = *requested;
  } else if (const char* env = std::getenv("FRIEDA_SWEEP_BACKEND")) {
    const auto parsed = parse_backend_env(env);
    if (parsed.has_value()) {
      backend = *parsed;
    } else {
      FLOG(kWarn, "sweep",
           "ignoring FRIEDA_SWEEP_BACKEND='" << env
                                             << "' (expected exactly 'thread' or "
                                                "'process'); falling back to thread");
    }
  }
  if (backend == SweepBackend::kProcess && !codec_available) {
    FLOG(kWarn, "sweep",
         "process backend requested but this result type has no wire codec "
         "(see exp::ReportCodec); falling back to thread");
    backend = SweepBackend::kThread;
  }
  return backend;
}

std::vector<std::string> run_stealing(const std::vector<std::size_t>& indices,
                                      std::size_t threads,
                                      const std::function<void(std::size_t)>& body,
                                      bool steal, std::uint64_t* steals_out) {
  if (steals_out != nullptr) *steals_out = 0;
  std::vector<std::string> errors(indices.size());
  // Each position is claimed by exactly one thread, which is the only writer
  // of that errors slot; the joins below publish the writes to the caller.
  const auto guarded = [&](std::size_t pos) {
    try {
      body(indices[pos]);
    } catch (const std::exception& e) {
      errors[pos] = e.what();
    } catch (...) {
      errors[pos] = "unknown exception";
    }
  };
  if (indices.empty()) return errors;
  if (threads <= 1) {
    for (std::size_t pos = 0; pos < indices.size(); ++pos) guarded(pos);
    return errors;
  }
  // Positions are dealt round-robin in schedule order, so each worker's
  // deque is cost-descending when the caller sorted `indices` longest-first
  // (worker w owns positions w, w+T, w+2T, ...).  A worker drains its own
  // deque front-first; once empty it steals the front half of the fattest
  // victim's backlog (MpmcQueue::try_pop_half) — the victim's most expensive
  // remaining work — so a skewed grid cannot strand idle workers on a few
  // long deques.  Outcome slots are untouched by any of this: position ->
  // job is fixed before dispatch.
  std::vector<std::unique_ptr<rt::MpmcQueue<std::size_t>>> queues;
  queues.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    queues.push_back(std::make_unique<rt::MpmcQueue<std::size_t>>());
  }
  for (std::size_t pos = 0; pos < indices.size(); ++pos) {
    queues[pos % threads]->push(pos);
  }
  const std::size_t total = indices.size();
  std::atomic<std::size_t> claimed{0};
  std::atomic<std::uint64_t> steal_batches{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::size_t pos = 0;
      std::vector<std::size_t> loot;
      if (!steal) {
        // Static partition (bench/test hook): drain the dealt share, then
        // idle — the stranding the steal loop below exists to prevent.
        while (queues[t]->try_pop(pos) == rt::PopStatus::kItem) {
          claimed.fetch_add(1, std::memory_order_relaxed);
          guarded(pos);
        }
        return;
      }
      for (;;) {
        if (queues[t]->try_pop(pos) == rt::PopStatus::kItem) {
          claimed.fetch_add(1, std::memory_order_relaxed);
          guarded(pos);
          continue;
        }
        // Own deque empty.  Every position is eventually claimed exactly
        // once, so claimed == total means no queue will ever refill.
        if (claimed.load(std::memory_order_relaxed) >= total) break;
        std::size_t victim = threads;
        std::size_t backlog = 0;
        for (std::size_t v = 0; v < threads; ++v) {
          if (v == t) continue;
          const std::size_t s = queues[v]->size();
          if (s > backlog) {
            backlog = s;
            victim = v;
          }
        }
        loot.clear();
        if (victim < threads && queues[victim]->try_pop_half(loot) > 0) {
          steal_batches.fetch_add(1, std::memory_order_relaxed);
          for (std::size_t k = 1; k < loot.size(); ++k) queues[t]->push(loot[k]);
          claimed.fetch_add(1, std::memory_order_relaxed);
          guarded(loot.front());
          continue;
        }
        // Nothing to steal right now but jobs are still in flight; the
        // window closes as soon as the last position is claimed.
        std::this_thread::yield();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (steals_out != nullptr) *steals_out = steal_batches.load();
  return errors;
}

}  // namespace detail

}  // namespace frieda::exp
