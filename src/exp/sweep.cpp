#include "exp/sweep.hpp"

#include <cstdlib>
#include <thread>

#include "runtime/mpmc_queue.hpp"

namespace frieda::exp {

namespace {

// Same SplitMix64 step the Rng seeder uses (common/rng.cpp); duplicated here
// because that one is an implementation detail of the generator.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // Whiten the base, fold the index into the whitened stream, mix again.
  // Two full SplitMix64 steps keep nearby (base, index) pairs uncorrelated.
  std::uint64_t s = base_seed;
  const std::uint64_t whitened = splitmix64(s);
  s = whitened ^ job_index;
  return splitmix64(s);
}

namespace detail {

std::size_t resolve_threads(std::size_t requested, std::size_t jobs) {
  if (jobs == 0) return 0;
  std::size_t n = requested;
  if (n == 0) {
    if (const char* env = std::getenv("FRIEDA_SWEEP_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) n = static_cast<std::size_t>(parsed);
    }
  }
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  return std::min(n, jobs);
}

std::vector<std::string> run_indexed(std::size_t count, std::size_t threads,
                                     const std::function<void(std::size_t)>& body) {
  std::vector<std::string> errors(count);
  // Each index is claimed by exactly one thread, which is the only writer of
  // that errors slot; the joins below publish the writes to the caller.
  const auto guarded = [&](std::size_t i) {
    try {
      body(i);
    } catch (const std::exception& e) {
      errors[i] = e.what();
    } catch (...) {
      errors[i] = "unknown exception";
    }
  };
  if (count == 0) return errors;
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) guarded(i);
    return errors;
  }
  rt::MpmcQueue<std::size_t> queue;
  for (std::size_t i = 0; i < count; ++i) queue.push(i);
  queue.close();  // pre-filled: consumers drain the buffer, then stop
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      while (auto i = queue.pop()) guarded(*i);
    });
  }
  for (auto& t : pool) t.join();
  return errors;
}

}  // namespace detail

}  // namespace frieda::exp
