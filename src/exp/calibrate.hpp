// Measured-cost calibration for the sweep scheduler.
//
// `scenario_cost` is a static estimate (units / slots, arbitrary unit).
// The runner measures actual wall time per job, so we can learn the
// seconds-per-cost-unit *rate* of each (app, strategy) class and scale the
// static estimate by it on subsequent grids — closing the ROADMAP
// "calibrate cost estimates from observed wall time" item.  Rates are
// tracked per class because the unit model is honest *within* a class (2x
// the units of the same app+strategy ≈ 2x the time) but the constant
// differs *across* classes (a real-time BLAST unit costs different wall
// time than a simulated ALS one).
//
// The learned rate is an exponential moving average, so drifting machines
// (thermal throttling, noisy CI neighbors) re-converge instead of being
// anchored to the first observation forever.
//
// Calibration only reorders dispatch — results, tables, and CSVs are
// byte-identical regardless (the runner's outcome slots are order-
// independent by design), so learning across grids is safe by default.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace frieda::exp {

/// Per-class EWMA of measured seconds per raw cost unit.  Thread-safe.
class CostCalibrator {
 public:
  /// EWMA weight of a new observation; the first observation seeds the rate.
  static constexpr double kAlpha = 0.25;

  /// Record that a job of class `key` with static estimate `raw_cost` took
  /// `wall_seconds`.  Non-positive inputs are ignored (a cache hit or a
  /// failed run carries no signal).
  void observe(const std::string& key, double raw_cost, double wall_seconds);

  /// Learned seconds-per-raw-unit rate, or nullopt before any observation.
  std::optional<double> rate(const std::string& key) const;

  /// Scale `raw_cost` by the learned rate: calibrated seconds estimate for
  /// observed classes, the raw estimate unchanged for unseen ones.  (Mixing
  /// the two only matters for cross-class ordering, where the raw unit was
  /// already heuristic.)
  double calibrated(const std::string& key, double raw_cost) const;

  /// Number of classes with a learned rate.
  std::size_t classes() const;

  /// Drop all learned rates (test isolation).  Keeps the persist path.
  void clear();

  // -- On-disk persistence (so repeated CI sweeps start warm) -------------
  //
  // The file is a versioned text format: a "frieda-calibration v1" header
  // line, then one "<class-key>\t<rate>" line per class, sorted by key.
  // Calibration only reorders dispatch, so a stale or corrupt file can
  // never change results — malformed lines are skipped with a kWarn.

  /// Merge rates from `path` into this calibrator.  File rates seed classes
  /// that have no in-process observation yet; classes already observed keep
  /// their measured rate (fresher signal wins).  Returns false — after a
  /// kWarn — when the file cannot be read or carries the wrong header; a
  /// missing file is a silent, normal cold start (returns false quietly).
  bool load_file(const std::string& path);

  /// Atomically write every learned rate to `path` (temp file + rename).
  /// Returns false after a kWarn when the file cannot be written.
  bool save_file(const std::string& path) const;

  /// Attach a persistence path ("" detaches).  `save_if_persistent` then
  /// rewrites the file; SweepRunner calls it after feeding a grid's
  /// measured wall times back.
  void set_persist_path(std::string path);
  std::string persist_path() const;

  /// save_file(persist_path()) when a path is attached; no-op otherwise.
  bool save_if_persistent() const;

  /// The process-wide calibrator: `Grid` consults it when building jobs and
  /// `SweepRunner` feeds it measured wall times, so grid N+1 schedules with
  /// what grid N measured.  First use honors `FRIEDA_CALIBRATION_FILE`:
  /// when set (non-empty), rates are loaded from that file at startup and
  /// saved back on every sweep completion.
  static CostCalibrator& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> rate_;  ///< key -> seconds per raw unit
  std::string persist_path_;            ///< "" = persistence off
};

}  // namespace frieda::exp
