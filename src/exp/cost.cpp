#include "exp/cost.hpp"

#include <algorithm>

namespace frieda::exp {

std::optional<Fingerprint> scenario_fingerprint(const char* app, const char* mode,
                                                const workload::PaperScenarioOptions& opt) {
  if (!workload::fingerprintable(opt)) return std::nullopt;
  StableHasher h;
  // Versioned prefix: bump the salt when the encoding below changes shape so
  // stale keys can never alias new ones.
  h.mix_str("frieda-scenario-v1").mix_str(app).mix_str(mode);
  workload::hash_options(h, opt);
  return h.digest();
}

double scenario_cost(const char* app, bool sequential,
                     const workload::PaperScenarioOptions& opt) {
  const double units = workload::estimate_units(app, opt);
  // Sequential baselines run one program instance on one VM regardless of
  // the VM-shape fields; parallel runs spread units over every slot.
  const double slots =
      sequential ? 1.0
                 : static_cast<double>(std::max<std::size_t>(1, opt.worker_vms)) *
                       (opt.multicore ? std::max(1u, opt.cores_per_vm) : 1u);
  return units / slots;
}

std::optional<Fingerprint> scenario_template_fingerprint(
    const char* app, core::PlacementStrategy strategy,
    const workload::PaperScenarioOptions& opt) {
  if (!workload::templatable(opt)) return std::nullopt;
  return workload::template_fingerprint(app, strategy, opt);
}

}  // namespace frieda::exp
