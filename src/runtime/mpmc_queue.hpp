// Thread-safe multi-producer/multi-consumer queue with close semantics.
//
// The threaded runtime's analogue of sim::Channel: the same protocol structs
// flow through it, but between real std::threads.  close() wakes all blocked
// consumers; buffered items are still drained first, matching the simulated
// channel's semantics so the two backends behave identically at the protocol
// level.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace frieda::rt {

/// Outcome of a non-blocking pop.  kEmpty means "nothing *yet* — retry or
/// steal elsewhere"; kClosed means "closed and drained — no item will ever
/// appear again".  A plain optional cannot express the difference, which is
/// exactly what a polling consumer needs to decide between spinning and
/// terminating.
enum class PopStatus {
  kItem,    ///< an item was popped into the out-parameter
  kEmpty,   ///< no item buffered, but the queue is still open
  kClosed,  ///< closed and fully drained: done forever
};

/// Unbounded MPMC queue; pop() blocks until an item or close().
template <typename T>
class MpmcQueue {
 public:
  MpmcQueue() = default;
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Push one item; returns false when the queue is closed.
  bool push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking pop.  kItem fills `out`; kEmpty and kClosed leave it
  /// untouched and tell the poller whether retrying can ever succeed.
  PopStatus try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return closed_ ? PopStatus::kClosed : PopStatus::kEmpty;
    out = std::move(items_.front());
    items_.pop_front();
    return PopStatus::kItem;
  }

  /// Steal-half: move the front ceil(size/2) buffered items into `out`
  /// (appended, queue order preserved) in one critical section.  Returns the
  /// number taken — 0 when the queue is empty.  A work-stealing consumer
  /// uses this to rebalance a skewed backlog in O(1) lock acquisitions
  /// instead of racing the owner item by item.
  std::size_t try_pop_half(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t take = (items_.size() + 1) / 2;
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return take;
  }

  /// True once the queue is closed *and* the buffer is empty — the moment
  /// try_pop starts returning kClosed.  Pollers use this to distinguish
  /// "done" from "momentarily empty" without attempting a pop.
  bool drained() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && items_.empty();
  }

  /// Close: wakes all blocked consumers after the buffer drains.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// True once close() has been called.
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Buffered item count.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace frieda::rt
