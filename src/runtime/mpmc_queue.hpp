// Thread-safe multi-producer/multi-consumer queue with close semantics.
//
// The threaded runtime's analogue of sim::Channel: the same protocol structs
// flow through it, but between real std::threads.  close() wakes all blocked
// consumers; buffered items are still drained first, matching the simulated
// channel's semantics so the two backends behave identically at the protocol
// level.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace frieda::rt {

/// Unbounded MPMC queue; pop() blocks until an item or close().
template <typename T>
class MpmcQueue {
 public:
  MpmcQueue() = default;
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Push one item; returns false when the queue is closed.
  bool push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Close: wakes all blocked consumers after the buffer drains.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// True once close() has been called.
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Buffered item count.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace frieda::rt
