#include "runtime/rt_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "frieda/assignment.hpp"
#include "frieda/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/token_bucket.hpp"

namespace frieda::rt {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Copy `src` to `dst` in chunks, paying the token bucket per chunk.
/// Returns bytes copied.
std::uint64_t throttled_copy(const fs::path& src, const fs::path& dst, TokenBucket& bucket) {
  std::ifstream in(src, std::ios::binary);
  FRIEDA_CHECK(in.good(), "cannot open source file '" << src.string() << "'");
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  FRIEDA_CHECK(out.good(), "cannot open staging file '" << dst.string() << "'");
  constexpr std::size_t kChunk = 256 * 1024;
  std::vector<char> buffer(kChunk);
  std::uint64_t total = 0;
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    bucket.acquire(static_cast<std::uint64_t>(got));
    out.write(buffer.data(), got);
    FRIEDA_CHECK(out.good(), "write to '" << dst.string() << "' failed");
    total += static_cast<std::uint64_t>(got);
  }
  return total;
}

}  // namespace

storage::FileCatalog make_dataset(const std::string& dir, std::size_t count, Bytes bytes_each,
                                  std::uint64_t seed) {
  fs::create_directories(dir);
  storage::FileCatalog catalog;
  Rng rng(seed);
  std::vector<char> block(64 * 1024);
  for (std::size_t i = 0; i < count; ++i) {
    char name[48];
    std::snprintf(name, sizeof(name), "input_%05zu.dat", i);
    const fs::path path = fs::path(dir) / name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    FRIEDA_CHECK(out.good(), "cannot create dataset file '" << path.string() << "'");
    Bytes remaining = bytes_each;
    while (remaining > 0) {
      const std::size_t n = std::min<Bytes>(remaining, block.size());
      for (std::size_t b = 0; b < n; b += 8) {
        const std::uint64_t word = rng.next_u64();
        std::memcpy(block.data() + b, &word, std::min<std::size_t>(8, n - b));
      }
      out.write(block.data(), static_cast<std::streamsize>(n));
      remaining -= n;
    }
    catalog.add_file(name, bytes_each);
  }
  return catalog;
}

RtEngine::RtEngine(std::string source_dir, RtOptions options)
    : source_dir_(std::move(source_dir)), options_(std::move(options)) {
  FRIEDA_CHECK(options_.worker_count > 0, "need at least one worker");
  FRIEDA_CHECK(fs::is_directory(source_dir_),
               "source directory '" << source_dir_ << "' does not exist");
  if (options_.strategy != core::PlacementStrategy::kPrePartitionLocal) {
    FRIEDA_CHECK(!options_.staging_root.empty(),
                 "staging_root is required unless the data is already local");
  }
  FRIEDA_CHECK(options_.strategy == core::PlacementStrategy::kPrePartitionLocal ||
                   options_.strategy == core::PlacementStrategy::kPrePartitionRemote ||
                   options_.strategy == core::PlacementStrategy::kRealTime,
               "threaded runtime supports pre-partition-local/remote and real-time");

  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(source_dir_)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  FRIEDA_CHECK(!paths.empty(), "source directory '" << source_dir_ << "' is empty");
  for (const auto& p : paths) {
    catalog_.add_file(p.filename().string(), static_cast<Bytes>(fs::file_size(p)));
  }
}

RtReport RtEngine::run(std::vector<core::WorkUnit> units, const core::CommandTemplate& command,
                       TaskExecutor executor) {
  // A zero-unit run is legal: the farm spins up, finds nothing to do, and
  // reports vacuous success (all_completed() == true).
  FRIEDA_CHECK(static_cast<bool>(executor), "executor must be callable");
  for (const auto& u : units) {
    FRIEDA_CHECK(command.accepts(u), "command arity does not match unit " << u.id);
  }

  const auto t0 = Clock::now();
  obs::Tracer* const tracer = options_.tracer;
  const std::size_t n_workers = options_.worker_count;
  const bool local = options_.strategy == core::PlacementStrategy::kPrePartitionLocal;
  const bool realtime = options_.strategy == core::PlacementStrategy::kRealTime;

  // Burst of 100 ms of rate: enough to amortize chunking, small enough that
  // the configured bandwidth is actually visible on short runs.
  TokenBucket bucket(options_.bandwidth, options_.bandwidth / 10.0);
  MpmcQueue<core::WorkerMessage> master_inbox;
  std::vector<std::unique_ptr<MpmcQueue<core::MasterMessage>>> worker_inboxes;
  for (std::size_t w = 0; w < n_workers; ++w) {
    worker_inboxes.push_back(std::make_unique<MpmcQueue<core::MasterMessage>>());
  }

  RtReport report;
  report.units.resize(units.size());
  report.per_worker_completed.assign(n_workers, 0);
  std::atomic<std::uint64_t> bytes_staged{0};

  // ---- live telemetry (wall clock) ----
  // The probe runs on a dedicated sampling thread; the master loop feeds the
  // shared gauges through atomics (all updates guarded by `probe` so a
  // detached run pays nothing).  "Latency" here is a unit's dispatch ->
  // terminal wall time — the threaded runtime has no arrival process yet.
  obs::TelemetryProbe* const probe = options_.telemetry;
  std::atomic<std::size_t> tl_undispatched{units.size()};
  std::atomic<std::size_t> tl_dispatched{0};
  std::atomic<std::size_t> tl_done{0};
  std::atomic<std::size_t> tl_completed{0};
  std::atomic<std::size_t> tl_released{0};
  const auto telemetry_snapshot = [&] {
    obs::TelemetryTick t;
    t.queue_depth = static_cast<double>(tl_undispatched.load(std::memory_order_relaxed));
    const auto disp = tl_dispatched.load(std::memory_order_relaxed);
    const auto done = tl_done.load(std::memory_order_relaxed);
    t.in_flight = disp > done ? static_cast<double>(disp - done) : 0.0;
    const auto rel = std::min(n_workers, tl_released.load(std::memory_order_relaxed));
    t.active_workers = static_cast<double>(n_workers - rel);
    t.active_vms = 1.0;  // one host machine
    t.completed = static_cast<double>(tl_completed.load(std::memory_order_relaxed));
    return t;
  };
  std::mutex sampler_mutex;
  std::condition_variable sampler_cv;
  bool sampler_stop = false;
  std::thread sampler;
  if (probe != nullptr) {
    probe->begin(0.0, tracer);
    sampler = std::thread([&] {
      const std::chrono::duration<double> period(probe->interval());
      std::unique_lock<std::mutex> lock(sampler_mutex);
      while (!sampler_cv.wait_for(lock, period, [&] { return sampler_stop; })) {
        probe->tick(seconds_since(t0), telemetry_snapshot());
      }
    });
  }

  // Worker staging directories.
  std::vector<fs::path> worker_dirs(n_workers);
  if (!local) {
    for (std::size_t w = 0; w < n_workers; ++w) {
      worker_dirs[w] = fs::path(options_.staging_root) / ("worker" + std::to_string(w));
      fs::create_directories(worker_dirs[w]);
    }
  }

  const auto source_path = [&](storage::FileId f) {
    return fs::path(source_dir_) / catalog_.info(f).name;
  };

  // Stage one unit's inputs into a worker's directory; returns local paths.
  const auto stage_unit = [&](const core::WorkUnit& unit, std::size_t w,
                              double& transfer_seconds) {
    std::vector<std::string> paths;
    const auto start = Clock::now();
    for (const auto f : unit.inputs) {
      const fs::path dst = worker_dirs[w] / catalog_.info(f).name;
      if (!fs::exists(dst) || fs::file_size(dst) != catalog_.info(f).size) {
        bytes_staged += throttled_copy(source_path(f), dst, bucket);
      }
      paths.push_back(dst.string());
    }
    transfer_seconds = seconds_since(start);
    return paths;
  };

  // ---- workers (execution plane) ----
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([&, w] {
      auto& inbox = *worker_inboxes[w];
      master_inbox.push(core::RegisterWorker{static_cast<core::WorkerId>(w)});
      master_inbox.push(core::RequestWork{static_cast<core::WorkerId>(w)});
      while (auto msg = inbox.pop()) {
        if (std::holds_alternative<core::NoMoreWork>(*msg)) break;
        const auto& work = std::get<core::AssignWork>(*msg);

        const double unit_start = seconds_since(t0);
        double transfer_seconds = 0.0;
        double exec_seconds = 0.0;
        bool ok = false;
        try {
          std::vector<std::string> paths;
          if (work.inputs_staged) {
            // Pre modes: data already where the worker expects it.
            for (const auto f : work.unit.inputs) {
              paths.push_back(local ? source_path(f).string()
                                    : (worker_dirs[w] / catalog_.info(f).name).string());
            }
          } else {
            // Real-time: the lazy transfer happens now, against the shared
            // bandwidth budget, overlapping other workers' execution.
            paths = stage_unit(work.unit, w, transfer_seconds);
          }
          const auto exec_start = Clock::now();
          ok = executor(work.unit, paths, work.command);
          exec_seconds = seconds_since(exec_start);
        } catch (const std::exception& e) {
          FLOG(kWarn, "rt-worker", "unit " << work.unit.id << " failed: " << e.what());
          ok = false;
        }
        if (tracer) {
          const double end_s = seconds_since(t0);
          if (transfer_seconds > 0.0) {
            obs::TraceEvent stage;
            stage.name = "stage unit " + std::to_string(work.unit.id);
            stage.cat = "staging";
            stage.process = obs::kWorkerTrack;
            stage.track = static_cast<std::uint32_t>(w);
            stage.start = unit_start;
            stage.end = unit_start + transfer_seconds;
            stage.args = {{"unit", std::to_string(work.unit.id)}};
            tracer->span(std::move(stage));
          }
          obs::TraceEvent exec;
          exec.name = "exec unit " + std::to_string(work.unit.id);
          exec.cat = "exec";
          exec.process = obs::kWorkerTrack;
          exec.track = static_cast<std::uint32_t>(w);
          exec.start = end_s - exec_seconds;
          exec.end = end_s;
          exec.args = {{"unit", std::to_string(work.unit.id)}, {"ok", ok ? "1" : "0"}};
          tracer->span(std::move(exec));
        }
        master_inbox.push(core::ExecStatus{static_cast<core::WorkerId>(w), work.unit.id, ok,
                                           transfer_seconds, exec_seconds});
      }
    });
  }

  // ---- controller + master (control and data management) ----
  std::vector<std::deque<core::WorkUnitId>> preassigned(n_workers);
  std::deque<core::WorkUnitId> queue;
  if (realtime) {
    for (const auto& u : units) queue.push_back(u.id);
  } else {
    const auto assignment =
        core::assign_units(options_.assignment, units, catalog_, n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      preassigned[w].assign(assignment[w].begin(), assignment[w].end());
    }
    if (!local) {
      // Sequential phases: stage every worker's share before execution.
      for (std::size_t w = 0; w < n_workers; ++w) {
        for (const auto u : preassigned[w]) {
          double ignored = 0.0;
          stage_unit(units[u], w, ignored);
        }
      }
      report.staging_seconds = seconds_since(t0);
    }
  }

  std::vector<double> dispatched_at(tracer || probe ? units.size() : 0, 0.0);

  const auto dispatch = [&](std::size_t w) {
    core::WorkUnitId unit;
    if (realtime) {
      if (queue.empty()) return false;
      unit = queue.front();
      queue.pop_front();
    } else {
      if (preassigned[w].empty()) return false;
      unit = preassigned[w].front();
      preassigned[w].pop_front();
    }
    if (tracer || probe) dispatched_at[unit] = seconds_since(t0);
    if (probe) {
      tl_undispatched.fetch_sub(1, std::memory_order_relaxed);
      tl_dispatched.fetch_add(1, std::memory_order_relaxed);
    }
    core::AssignWork work;
    work.unit = units[unit];
    work.command = command.bind_unit(units[unit], catalog_,
                                     local ? source_dir_ : worker_dirs[w].string());
    work.inputs_staged = !realtime;
    worker_inboxes[w]->push(std::move(work));
    return true;
  };

  std::size_t terminal = 0;
  std::vector<bool> released(n_workers, false);
  const auto release = [&](std::size_t w) {
    if (!released[w]) {
      worker_inboxes[w]->push(core::NoMoreWork{});
      released[w] = true;
      if (probe) tl_released.fetch_add(1, std::memory_order_relaxed);
      if (tracer) {
        obs::TraceEvent ev;
        ev.kind = obs::TraceEvent::Kind::kInstant;
        ev.name = "release-worker";
        ev.cat = "protocol";
        ev.process = obs::kRunTrack;
        ev.start = ev.end = seconds_since(t0);
        ev.args = {{"worker", std::to_string(w)}};
        tracer->instant(std::move(ev));
      }
    }
  };

  while (terminal < units.size()) {
    const auto msg = master_inbox.pop();
    FRIEDA_CHECK(msg.has_value(), "master inbox closed unexpectedly");
    if (const auto* reg = std::get_if<core::RegisterWorker>(&*msg)) {
      if (tracer) {
        obs::TraceEvent ev;
        ev.kind = obs::TraceEvent::Kind::kInstant;
        ev.name = "register-worker";
        ev.cat = "protocol";
        ev.process = obs::kRunTrack;
        ev.start = ev.end = seconds_since(t0);
        ev.args = {{"worker", std::to_string(reg->worker)}};
        tracer->instant(std::move(ev));
      }
      continue;
    }
    if (const auto* req = std::get_if<core::RequestWork>(&*msg)) {
      if (!dispatch(req->worker)) release(req->worker);
      continue;
    }
    const auto& status = std::get<core::ExecStatus>(*msg);
    auto& rec = report.units[status.unit];
    rec.unit = status.unit;
    rec.worker = status.worker;
    rec.ok = status.ok;
    rec.transfer_seconds = status.transfer_seconds;
    rec.exec_seconds = status.exec_seconds;
    ++terminal;
    if (status.ok) {
      ++report.units_completed;
      ++report.per_worker_completed[status.worker];
    } else {
      ++report.units_failed;
    }
    if (probe) {
      tl_done.fetch_add(1, std::memory_order_relaxed);
      if (status.ok) tl_completed.fetch_add(1, std::memory_order_relaxed);
      const double now = seconds_since(t0);
      probe->observe_latency(now, now - dispatched_at[status.unit]);
    }
    if (tracer) {
      obs::TraceEvent ev;
      ev.name = "unit " + std::to_string(status.unit);
      ev.cat = "unit";
      ev.process = obs::kUnitTrack;
      ev.track = static_cast<std::uint32_t>(status.unit);
      ev.start = dispatched_at[status.unit];
      ev.end = seconds_since(t0);
      ev.args = {{"worker", std::to_string(status.worker)},
                 {"ok", status.ok ? "1" : "0"}};
      tracer->span(std::move(ev));
    }
    if (!dispatch(status.worker)) release(status.worker);
  }
  for (std::size_t w = 0; w < n_workers; ++w) release(w);
  for (auto& t : workers) t.join();

  report.makespan = seconds_since(t0);
  report.bytes_staged = bytes_staged.load();

  if (probe != nullptr) {
    {
      std::lock_guard<std::mutex> lock(sampler_mutex);
      sampler_stop = true;
    }
    sampler_cv.notify_all();
    sampler.join();
    // Final sample at the makespan, then evaluate SLO targets.
    probe->tick(report.makespan, telemetry_snapshot());
    probe->finish(report.makespan);
  }

  if (tracer) {
    // Run-window anchor for trace analytics (obs::TraceAnalyzer): one span
    // covering the reported makespan, on the same wall clock as every other
    // span of this engine.
    obs::TraceEvent ev;
    ev.name = "run";
    ev.cat = "run";
    ev.process = obs::kRunTrack;
    ev.track = 0;
    ev.start = 0.0;
    ev.end = report.makespan;
    ev.args = {{"workers", std::to_string(n_workers)}};
    if (probe != nullptr && !probe->options().slo.empty()) {
      const auto& slo = probe->slo();
      ev.args.push_back({"slo_breaches", std::to_string(slo.total_breaches())});
      ev.args.push_back({"slo_violation_s", obs::format_sample(slo.total_violation_s())});
    }
    tracer->span(std::move(ev));
  }

  if (!local && !options_.keep_staged_files) {
    std::error_code ec;
    for (const auto& dir : worker_dirs) fs::remove_all(dir, ec);
  }
  return report;
}

void RtReport::fill_metrics(obs::MetricsRegistry& registry) const {
  registry.gauge("rt.makespan_s").set(makespan);
  registry.gauge("rt.staging_s").set(staging_seconds);
  registry.gauge("rt.units_total").set(static_cast<double>(units.size()));
  registry.gauge("rt.units_completed").set(static_cast<double>(units_completed));
  registry.gauge("rt.units_failed").set(static_cast<double>(units_failed));
  registry.gauge("rt.bytes_staged").set(static_cast<double>(bytes_staged));
  auto& transfer = registry.stats("rt.unit_transfer_s");
  auto& exec = registry.stats("rt.unit_exec_s");
  for (const auto& rec : units) {
    transfer.add(rec.transfer_seconds);
    exec.add(rec.exec_seconds);
  }
}

}  // namespace frieda::rt
