// Token-bucket rate limiter for real byte movement.
//
// The threaded runtime throttles file staging to a configured bandwidth so a
// laptop run exhibits the same transfer/compute trade-offs as the paper's
// 100 Mbps testbed.  acquire() blocks the calling thread until the requested
// bytes are admitted.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace frieda::rt {

/// Classic token bucket; thread-safe.
class TokenBucket {
 public:
  /// `rate` in bytes/second; `burst` is the bucket depth (defaults to one
  /// second of rate).  rate == 0 disables throttling entirely.
  explicit TokenBucket(double rate, double burst = 0.0);

  /// Admit `bytes` at the configured rate: the request is debited
  /// immediately and the call sleeps exactly long enough for the bucket to
  /// recover the deficit (not at all while the bucket holds credit).
  void acquire(std::uint64_t bytes);

  /// Configured rate (bytes/second; 0 = unlimited).
  double rate() const { return rate_; }

 private:
  void refill_locked();

  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_refill_;
  std::mutex mutex_;
};

}  // namespace frieda::rt
