// The threaded FRIEDA runtime: the same two-plane protocol as the simulated
// deployment, executed by real std::threads over real files.
//
// Roles map 1:1 onto the paper's actors:
//   * the engine's orchestration thread is the controller+master — it
//     initializes the run, computes partitions, and farms work units;
//   * each worker is a thread with its own inbox of MasterMessages, sending
//     WorkerMessages (register / request / status) back;
//   * data transfer is a throttled file copy from the source directory into
//     the worker's staging directory (a TokenBucket plays the 100 Mbps NIC).
//
// Strategies supported: pre-partition-local (execute against the source in
// place), pre-partition-remote (stage every worker's share up front, then
// execute), real-time (lazy: each assignment is staged when dispatched,
// overlapping transfers with execution across workers).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "frieda/command.hpp"
#include "frieda/types.hpp"
#include "storage/file.hpp"

namespace frieda::obs {
class MetricsRegistry;
class TelemetryProbe;
class Tracer;
}  // namespace frieda::obs

namespace frieda::rt {

/// Runtime configuration (the controller's directives).
struct RtOptions {
  core::PlacementStrategy strategy = core::PlacementStrategy::kRealTime;
  core::AssignmentPolicy assignment = core::AssignmentPolicy::kRoundRobin;
  std::size_t worker_count = 4;   ///< program instances ("multicore" clones)
  double bandwidth = 0.0;         ///< staging throttle, bytes/s (0 = unlimited)
  std::string staging_root;       ///< where worker copies land (required
                                  ///< unless strategy is pre-partition-local)
  bool keep_staged_files = false; ///< leave copies behind for inspection
  obs::Tracer* tracer = nullptr;  ///< opt-in wall-clock tracing (timestamps
                                  ///< are seconds since run start); nullptr
                                  ///< disables every tap
  obs::TelemetryProbe* telemetry = nullptr;  ///< opt-in live telemetry: a
                                  ///< sampling thread ticks the probe on its
                                  ///< interval in wall time (queue depth,
                                  ///< in-flight, windowed unit-latency
                                  ///< percentiles); nullptr = off, zero cost
};

/// Executes one program instance.  `input_paths` are the staged (or source)
/// file locations, already substituted into `command` for display; returns
/// success.  FRIEDA never interprets the program — this is the unmodified
/// application boundary of Section II.C.
using TaskExecutor = std::function<bool(const core::WorkUnit& unit,
                                        const std::vector<std::string>& input_paths,
                                        const std::string& command)>;

/// Per-unit outcome in a threaded run (wall-clock seconds).
struct RtUnitRecord {
  core::WorkUnitId unit = 0;
  core::WorkerId worker = 0;
  bool ok = false;
  double transfer_seconds = 0.0;
  double exec_seconds = 0.0;
};

/// Result of one threaded run.
struct RtReport {
  double makespan = 0.0;           ///< wall time of the whole run
  double staging_seconds = 0.0;    ///< upfront staging phase (pre modes)
  std::size_t units_completed = 0;
  std::size_t units_failed = 0;
  std::uint64_t bytes_staged = 0;
  std::vector<RtUnitRecord> units;
  std::vector<std::size_t> per_worker_completed;

  /// True when every unit completed.  A zero-unit run is vacuously complete:
  /// nothing was asked for and nothing failed.
  bool all_completed() const { return units_failed == 0 && units_completed == units.size(); }

  /// Export the report's aggregates into `registry` as rt.* gauges plus
  /// per-unit transfer/exec distributions as rt.unit_* stats instruments.
  void fill_metrics(obs::MetricsRegistry& registry) const;
};

/// One configured threaded deployment over a source directory.
class RtEngine {
 public:
  /// Scan `source_dir` for regular files (sorted by name) as the catalog.
  /// Throws FriedaError when the directory is missing or empty, or when the
  /// options are inconsistent.
  RtEngine(std::string source_dir, RtOptions options);

  /// The scanned input directory.
  const storage::FileCatalog& catalog() const { return catalog_; }

  /// Farm the units across the worker threads; blocks until done.
  RtReport run(std::vector<core::WorkUnit> units, const core::CommandTemplate& command,
               TaskExecutor executor);

 private:
  std::string source_dir_;
  RtOptions options_;
  storage::FileCatalog catalog_;
};

/// Create `count` real files of `bytes_each` pseudo-random bytes under `dir`
/// (created if needed); returns the matching catalog.  For tests/examples.
storage::FileCatalog make_dataset(const std::string& dir, std::size_t count,
                                  Bytes bytes_each, std::uint64_t seed = 1);

}  // namespace frieda::rt
