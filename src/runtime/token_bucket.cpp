#include "runtime/token_bucket.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"

namespace frieda::rt {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate),
      burst_(burst > 0.0 ? burst : rate),
      tokens_(burst_),
      last_refill_(std::chrono::steady_clock::now()) {
  FRIEDA_CHECK(rate >= 0.0, "token bucket rate must be >= 0");
}

void TokenBucket::refill_locked() {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
}

void TokenBucket::acquire(std::uint64_t bytes) {
  if (rate_ <= 0.0) return;  // unlimited
  // Debt model: debit the whole request immediately and sleep exactly the
  // time the bucket needs to climb back to zero.  Tokens that were already
  // in the bucket shorten (or eliminate) the wait, and a single sleep per
  // acquire replaces the periodic re-check loop.  Debiting under the lock
  // keeps concurrent acquirers fair: each one's deficit includes the debt
  // of everyone that arrived before it.
  double wait_seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    refill_locked();
    tokens_ -= static_cast<double>(bytes);
    if (tokens_ < 0.0) wait_seconds = -tokens_ / rate_;
  }
  if (wait_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_seconds));
  }
}

}  // namespace frieda::rt
