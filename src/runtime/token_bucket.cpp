#include "runtime/token_bucket.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"

namespace frieda::rt {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate),
      burst_(burst > 0.0 ? burst : rate),
      tokens_(burst_),
      last_refill_(std::chrono::steady_clock::now()) {
  FRIEDA_CHECK(rate >= 0.0, "token bucket rate must be >= 0");
}

void TokenBucket::refill_locked() {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
}

void TokenBucket::acquire(std::uint64_t bytes) {
  if (rate_ <= 0.0) return;  // unlimited
  double need = static_cast<double>(bytes);
  while (need > 0.0) {
    double wait_seconds = 0.0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      refill_locked();
      const double take = std::min(need, std::max(tokens_, 0.0));
      tokens_ -= take;
      need -= take;
      if (need > 0.0) {
        // Time until the bucket holds min(need, burst) more tokens.
        wait_seconds = std::min(need, burst_) / rate_;
      }
    }
    if (wait_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(wait_seconds, 0.05)));  // re-check periodically
    }
  }
}

}  // namespace frieda::rt
