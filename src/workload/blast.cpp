#include "workload/blast.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "workload/calibration.hpp"

namespace frieda::workload {

BlastParams BlastParams::paper() {
  BlastParams p;
  p.sequence_count = calib::kBlastSequenceCount;
  p.sequence_bytes = calib::kBlastSequenceBytes;
  p.database_bytes = calib::kBlastDatabaseBytes;
  p.mean_task_seconds = calib::kBlastMeanTaskSeconds;
  p.task_cv = calib::kBlastTaskCv;
  p.output_bytes = calib::kBlastOutputBytes;
  return p;
}

BlastModel::BlastModel(BlastParams params) : params_(params) {
  FRIEDA_CHECK(params_.sequence_count > 0, "sequence count must be > 0");
  FRIEDA_CHECK(params_.mean_task_seconds > 0.0, "mean task seconds must be > 0");
  Rng rng(params_.seed);
  costs_.reserve(params_.sequence_count);
  for (std::size_t i = 0; i < params_.sequence_count; ++i) {
    char name[48];
    std::snprintf(name, sizeof(name), "query_%06zu.fasta", i);
    catalog_.add_file(name, params_.sequence_bytes);
    costs_.push_back(params_.task_cv > 0.0
                         ? rng.lognormal_mean_cv(params_.mean_task_seconds, params_.task_cv)
                         : params_.mean_task_seconds);
  }
}

SimTime BlastModel::file_cost(storage::FileId f) const {
  FRIEDA_CHECK(f < costs_.size(), "file id out of range");
  return costs_[f];
}

SimTime BlastModel::task_seconds(const core::WorkUnit& unit) const {
  SimTime total = 0.0;
  for (const auto f : unit.inputs) total += file_cost(f);
  return total;
}

Bytes BlastModel::output_bytes(const core::WorkUnit&) const { return params_.output_bytes; }

}  // namespace frieda::workload
