// BLAST workload model (paper Section IV.A).
//
// "BLAST is used to compare primary biological sequences of different
//  proteins against a sequence database. ... BLAST compares small protein
//  sequences against a large database."
//
// Tiny per-task inputs, a large common database that must be resident on
// every node, and long, match-dependent (skewed) compute — the compute-bound
// end of the paper's spectrum, where real-time partitioning wins through
// load balancing rather than transfer overlap.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "frieda/app_model.hpp"
#include "storage/file.hpp"

namespace frieda::workload {

/// Tunable parameters of the BLAST model.
struct BlastParams {
  std::size_t sequence_count;  ///< number of query sequence files
  Bytes sequence_bytes;        ///< size of each query file
  Bytes database_bytes;        ///< shared database size (common data)
  double mean_task_seconds;    ///< mean per-sequence search cost
  double task_cv;              ///< skew of the cost distribution (lognormal)
  Bytes output_bytes;          ///< alignment report size
  std::uint64_t seed = 2;      ///< dataset + cost generation seed

  /// Defaults calibrated to the paper's BLAST run (calibration.hpp).
  static BlastParams paper();
};

/// The BLAST application model; builds its own query-file catalog and draws
/// each sequence's search cost once (deterministic per unit).
class BlastModel final : public core::AppModel {
 public:
  /// Build the query catalog and per-file costs deterministically.
  explicit BlastModel(BlastParams params);

  /// The generated query-file directory.
  const storage::FileCatalog& catalog() const { return catalog_; }

  /// The pre-drawn cost of query file `f` (exposed for tests).
  SimTime file_cost(storage::FileId f) const;

  // AppModel interface -------------------------------------------------
  const std::string& name() const override { return name_; }
  SimTime task_seconds(const core::WorkUnit& unit) const override;
  Bytes common_data_bytes() const override { return params_.database_bytes; }
  Bytes output_bytes(const core::WorkUnit& unit) const override;

 private:
  std::string name_ = "blast";
  BlastParams params_;
  storage::FileCatalog catalog_;
  std::vector<SimTime> costs_;  // indexed by file id
};

}  // namespace frieda::workload
