// Synthetic data-parallel workload for ablation studies.
//
// Generates a catalog of files with configurable size distribution and a
// per-unit cost distribution with configurable skew, letting the benches
// sweep the two axes the paper identifies as decisive: data volume per task
// (transfer-bound vs. compute-bound) and task-cost variance (where real-time
// partitioning's inherent load balancing pays off).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "frieda/app_model.hpp"
#include "storage/file.hpp"

namespace frieda::workload {

/// Parameters of the synthetic workload.
struct SyntheticParams {
  std::size_t file_count = 200;
  Bytes mean_file_bytes = 1 * MB;
  double file_size_cv = 0.0;
  double mean_task_seconds = 1.0;  ///< per single-file unit
  double task_cv = 0.0;            ///< lognormal skew (0 = homogeneous)
  Bytes common_data_bytes = 0;
  Bytes output_bytes = 0;
  std::uint64_t seed = 3;
};

/// Generic synthetic application over its generated catalog.
class SyntheticModel final : public core::AppModel {
 public:
  /// Build catalog and per-file costs deterministically from the seed.
  explicit SyntheticModel(SyntheticParams params);

  /// The generated input directory.
  const storage::FileCatalog& catalog() const { return catalog_; }

  /// The pre-drawn cost of file `f`.
  SimTime file_cost(storage::FileId f) const;

  // AppModel interface -------------------------------------------------
  const std::string& name() const override { return name_; }
  SimTime task_seconds(const core::WorkUnit& unit) const override;
  Bytes common_data_bytes() const override { return params_.common_data_bytes; }
  Bytes output_bytes(const core::WorkUnit&) const override { return params_.output_bytes; }

 private:
  std::string name_ = "synthetic";
  SyntheticParams params_;
  storage::FileCatalog catalog_;
  std::vector<SimTime> costs_;
};

}  // namespace frieda::workload
