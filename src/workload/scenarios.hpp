// Paper evaluation scenarios (Section IV.A), shared by tests and benches.
//
// Cluster: 4 x c1.xlarge worker VMs (4 virtual cores, 4 GB) plus the data
// source node, with 100 Mbps provisioned NICs.  Workloads: the ALS image
// comparison (1250 images, pairwise-adjacent) and BLAST (7500 sequences +
// common database, single-file grouping).  `scale` shrinks the datasets
// proportionally so unit tests run the same code paths quickly.
#pragma once

#include <functional>

#include "cluster/cluster.hpp"
#include "common/hash.hpp"
#include "frieda/report.hpp"
#include "frieda/run.hpp"
#include "workload/arrivals.hpp"
#include "workload/blast.hpp"
#include "workload/image_compare.hpp"

namespace frieda::workload {

/// Open-loop service-mode knobs for a paper scenario: when enabled, units
/// are injected by the configured arrival process instead of being queued
/// up front, and the run reports latency percentiles + sustained throughput.
struct ServiceOptions {
  bool open_loop = false;                  ///< off = classic closed batch
  ArrivalConfig arrivals;                  ///< arrival process (open-loop only)
  core::ElasticPolicy elastic;             ///< reactive scale-out/in policy
};

/// Knobs shared by every paper scenario.
struct PaperScenarioOptions {
  std::size_t worker_vms = 4;      ///< paper: 4 instances
  unsigned cores_per_vm = 4;       ///< paper: c1.xlarge, 4 virtual cores
  Bandwidth nic = mbps(100);       ///< paper: provisioned 100 Mbps
  bool multicore = true;           ///< one program instance per core
  double scale = 1.0;              ///< dataset scale factor (1.0 = paper size)
  std::uint64_t seed = 2012;       ///< simulation seed
  int prefetch = 1;                ///< real-time pipelining depth
  bool requeue_on_failure = false;
  obs::Tracer* tracer = nullptr;   ///< opt-in run tracing (forwarded to
                                   ///< RunOptions::tracer)
  obs::MetricsRegistry* metrics = nullptr;  ///< opt-in metrics registry
  obs::TelemetryProbe* telemetry = nullptr;  ///< opt-in live telemetry probe
                                   ///< (forwarded to RunOptions::telemetry)
  ServiceOptions service;          ///< open-loop arrivals + elasticity policy
  bool use_execution_templates = true;  ///< consult the process-global
                                   ///< core::TemplateStore for cached
                                   ///< control-plane decisions (see
                                   ///< frieda/template.hpp).  Instantiating
                                   ///< from a template is value-identical to
                                   ///< a from-scratch build (audited under
                                   ///< FRIEDA_TEMPLATE_AUDIT), so this knob
                                   ///< is not part of the fingerprint.

  /// Hook called after the run is constructed and before it executes —
  /// benches use it to schedule failures or elasticity.
  std::function<void(sim::Simulation&, cluster::VirtualCluster&, core::FriedaRun&)> arrange;
};

/// True when a run of these options is a pure function of the fields below —
/// i.e. it can be memoized by fingerprint.  An `arrange` hook changes the run
/// in ways the fields don't capture, and tracer/metrics attachments are side
/// effects a cached result would silently skip, so any of them disqualifies
/// the options.
bool fingerprintable(const PaperScenarioOptions& opt);

/// Mix every behavior-affecting field of `opt` into `h`, in a fixed order
/// (part of the cache-key encoding: extend only by appending new fields).
/// Precondition: fingerprintable(opt).
void hash_options(StableHasher& h, const PaperScenarioOptions& opt);

/// True when a run of these options may use execution templates: only an
/// `arrange` hook disqualifies (it can mutate the cluster/run in ways the
/// captured decisions don't cover).  Weaker than fingerprintable():
/// tracer/metrics attachments are fine here because a templated run still
/// executes (and traces) everything — only the control-plane *setup* is
/// served from the cache, value-identically.
bool templatable(const PaperScenarioOptions& opt);

/// Execution-template key for a paper scenario (see frieda/template.hpp):
/// a stable hash of the *structural* fields only — app kind, placement
/// strategy, dataset scale, NIC class.  The patchable fields
/// (seed, VM count/cores, prefetch, requeue, arrival config) are
/// deliberately excluded, so reruns that differ only in them share one
/// template; a strategy or topology change yields a new key (full rebuild).
/// Contrast exp::scenario_fingerprint, which hashes *every* field and keys
/// whole-run result memoization.
Fingerprint template_fingerprint(const char* app, core::PlacementStrategy strategy,
                                 const PaperScenarioOptions& opt);

/// Identity of one generated arrival schedule: (config, count), nonzero.
/// Templates store this alongside the captured offsets; an instantiation
/// whose key matches reuses the schedule, anything else regenerates (a
/// patch).  0 is reserved for "closed batch, no schedule".
std::uint64_t arrival_schedule_key(const ArrivalConfig& config, std::size_t count);

/// Estimated work-unit count of the scenario these options describe for
/// `app` ("als" or "blast") — the base dataset size scaled by `opt.scale`,
/// mapped through the app's partition scheme.  This is the numerator of the
/// sweep engine's relative cost estimate (see exp::scenario_cost).
double estimate_units(const char* app, const PaperScenarioOptions& opt);

/// Build the ALS dataset/model these options describe.  Constructing the
/// model (catalog generation, per-file size draws) is the fixed per-run setup
/// cost; it depends only on `opt.scale`, so runs that share a scale can share
/// one instance.  Models are immutable after construction and safe to share
/// by const reference across concurrently executing runs (exp::SweepRunner
/// jobs).
ImageCompareModel make_als_model(const PaperScenarioOptions& opt);

/// Build the BLAST dataset/model (see make_als_model for sharing rules;
/// BLAST additionally pre-draws the per-sequence search costs).
BlastModel make_blast_model(const PaperScenarioOptions& opt);

/// Run the ALS image-comparison workload with the given strategy.
core::RunReport run_als(core::PlacementStrategy strategy, const PaperScenarioOptions& opt = {});

/// Same, over a shared prebuilt model (must match `opt.scale`).
core::RunReport run_als(core::PlacementStrategy strategy, const ImageCompareModel& app,
                        const PaperScenarioOptions& opt);

/// Run the BLAST workload with the given strategy.
core::RunReport run_blast(core::PlacementStrategy strategy,
                          const PaperScenarioOptions& opt = {});

/// Same, over a shared prebuilt model (must match `opt.scale`).
core::RunReport run_blast(core::PlacementStrategy strategy, const BlastModel& app,
                          const PaperScenarioOptions& opt);

/// Sequential baselines of Table I: one VM, one program instance, local data.
core::RunReport run_als_sequential(const PaperScenarioOptions& opt = {});
core::RunReport run_als_sequential(const ImageCompareModel& app,
                                   const PaperScenarioOptions& opt);
core::RunReport run_blast_sequential(const PaperScenarioOptions& opt = {});
core::RunReport run_blast_sequential(const BlastModel& app, const PaperScenarioOptions& opt);

}  // namespace frieda::workload
