// Declarative scenario runner: a whole FRIEDA experiment from a Config.
//
// The control plane of the original system was configuration-driven; this
// module gives the reproduction the same property.  An INI-style config
// describes the cluster, the workload, the data-management strategy, and
// optional failure/elasticity events; run_scenario() builds and executes it.
//
//   [cluster]                 [workload]                [run]
//   vms = 4                   kind = synthetic          strategy = real-time
//   cores = 4                 files = 200               scheme = single-file
//   nic_mbps = 100            file_mb = 4               multicore = true
//   disk_gib = 20             task_s = 2.0              requeue = false
//   boot_s = 0                task_cv = 0.5             prefetch = 1
//   seed = 2012               common_mb = 0             streams = 1
//                             output_kb = 0             locality_aware = false
//   [events]
//   fail = 1@100, 2@250        # crash vm 1 at t=100 s, vm 2 at t=250 s
//   add_vms_at = 60            # elastic scale-out time (0 = never)
//   add_vms = 2                # how many VMs join
//   master_crash_at = 0        # crash the master (0 = never)
//   master_recovery_s = 10
//
// `kind` may also be "als" or "blast" (the paper workloads), with an
// optional `scale` key.
#pragma once

#include <string>

#include "common/config.hpp"
#include "frieda/report.hpp"

namespace frieda::workload {

/// Execute the configured scenario to completion.
/// Throws FriedaError on unknown kinds/strategies/schemes or bad values.
core::RunReport run_scenario(const Config& config);

/// Convenience: parse `text` as INI and run it.
core::RunReport run_scenario_text(const std::string& text);

}  // namespace frieda::workload
