#include "workload/scenario_config.hpp"

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/arrivals.hpp"
#include "workload/blast.hpp"
#include "workload/image_compare.hpp"
#include "workload/synthetic.hpp"

namespace frieda::workload {

namespace {

/// Parse "1@100, 2@250" into (vm, time) pairs.
std::vector<std::pair<cluster::VmId, SimTime>> parse_failures(const std::string& spec) {
  std::vector<std::pair<cluster::VmId, SimTime>> out;
  for (const auto& item : strutil::split(spec, ',')) {
    const auto trimmed = strutil::trim(item);
    if (trimmed.empty()) continue;
    const auto parts = strutil::split(trimmed, '@');
    FRIEDA_CHECK(parts.size() == 2, "events.fail item must be vm@time: '" << trimmed << "'");
    const auto vm = strutil::to_int(parts[0]);
    const auto when = strutil::to_double(parts[1]);
    FRIEDA_CHECK(vm && when && *vm >= 0 && *when >= 0,
                 "malformed events.fail item '" << trimmed << "'");
    out.emplace_back(static_cast<cluster::VmId>(*vm), *when);
  }
  return out;
}

}  // namespace

core::RunReport run_scenario(const Config& config) {
  // ---- cluster ----
  sim::Simulation sim(static_cast<std::uint64_t>(config.get_int("cluster.seed", 2012)));
  cluster::ClusterOptions copts;
  const double nic = config.get_double("cluster.nic_mbps", 100.0);
  copts.source_nic_up = mbps(nic);
  copts.source_nic_down = mbps(nic);
  copts.with_storage_server =
      config.get_bool("cluster.storage", false) ||
      config.get_string("run.strategy", "") == "shared-volume";
  copts.storage_nic = mbps(config.get_double("cluster.storage_nic_mbps", 1000.0));
  cluster::VirtualCluster cluster(sim, copts);

  auto type = cluster::c1_xlarge();
  type.cores = static_cast<unsigned>(config.get_int("cluster.cores", 4));
  type.nic_up = mbps(nic);
  type.nic_down = mbps(nic);
  type.disk_capacity =
      static_cast<Bytes>(config.get_double("cluster.disk_gib", 20.0) * static_cast<double>(GiB));
  type.boot_time = config.get_double("cluster.boot_s", 0.0);
  const auto vms =
      cluster.provision(type, static_cast<std::size_t>(config.get_int("cluster.vms", 4)));

  // ---- workload ----
  const auto kind = strutil::lower(config.get_string("workload.kind", "synthetic"));
  std::unique_ptr<core::AppModel> app;
  const storage::FileCatalog* catalog = nullptr;
  if (kind == "synthetic") {
    SyntheticParams params;
    params.file_count = static_cast<std::size_t>(config.get_int("workload.files", 200));
    params.mean_file_bytes =
        static_cast<Bytes>(config.get_double("workload.file_mb", 4.0) * 1e6);
    params.file_size_cv = config.get_double("workload.file_cv", 0.0);
    params.mean_task_seconds = config.get_double("workload.task_s", 2.0);
    params.task_cv = config.get_double("workload.task_cv", 0.0);
    params.common_data_bytes =
        static_cast<Bytes>(config.get_double("workload.common_mb", 0.0) * 1e6);
    params.output_bytes =
        static_cast<Bytes>(config.get_double("workload.output_kb", 0.0) * 1e3);
    params.seed = static_cast<std::uint64_t>(config.get_int("workload.seed", 3));
    auto model = std::make_unique<SyntheticModel>(params);
    catalog = &model->catalog();
    app = std::move(model);
  } else if (kind == "als") {
    auto params = ImageCompareParams::paper();
    const double scale = config.get_double("workload.scale", 1.0);
    params.image_count = std::max<std::size_t>(
        2, static_cast<std::size_t>(static_cast<double>(params.image_count) * scale));
    if (params.image_count % 2) --params.image_count;
    auto model = std::make_unique<ImageCompareModel>(params);
    catalog = &model->catalog();
    app = std::move(model);
  } else if (kind == "blast") {
    auto params = BlastParams::paper();
    const double scale = config.get_double("workload.scale", 1.0);
    params.sequence_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(params.sequence_count) * scale));
    params.database_bytes =
        static_cast<Bytes>(static_cast<double>(params.database_bytes) * scale);
    auto model = std::make_unique<BlastModel>(params);
    catalog = &model->catalog();
    app = std::move(model);
  } else {
    FRIEDA_CHECK(false, "unknown workload.kind '" << kind
                                                  << "' (synthetic | als | blast)");
  }

  // ---- run options ----
  core::RunOptions options;
  const auto strategy_name = config.get_string("run.strategy", "real-time");
  const auto strategy = core::parse_placement_strategy(strategy_name);
  FRIEDA_CHECK(strategy.has_value(), "unknown run.strategy '" << strategy_name << "'");
  options.strategy = *strategy;
  const auto scheme_name =
      config.get_string("run.scheme", kind == "als" ? "pairwise-adjacent" : "single-file");
  const auto scheme = core::parse_partition_scheme(scheme_name);
  FRIEDA_CHECK(scheme.has_value(), "unknown run.scheme '" << scheme_name << "'");
  options.scheme = *scheme;
  options.multicore = config.get_bool("run.multicore", true);
  options.requeue_on_failure = config.get_bool("run.requeue", false);
  options.prefetch = static_cast<int>(config.get_int("run.prefetch", 1));
  options.transfer_streams = static_cast<unsigned>(config.get_int("run.streams", 1));
  options.locality_aware = config.get_bool("run.locality_aware", false);

  auto units = core::PartitionGenerator::generate(options.scheme, *catalog);

  // ---- service mode (open-loop arrivals + reactive elasticity) ----
  const auto arrival_name = strutil::lower(config.get_string("service.arrivals", ""));
  const auto policy = strutil::lower(config.get_string("service.elastic_policy", "fixed"));
  FRIEDA_CHECK(policy == "fixed" || policy == "reactive",
               "unknown service.elastic_policy '" << policy << "' (fixed | reactive)");
  FRIEDA_CHECK(arrival_name.empty() ? policy == "fixed" : true,
               "service.elastic_policy = reactive requires service.arrivals");
  if (!arrival_name.empty()) {
    ArrivalConfig ac;
    const auto arrival_kind = parse_arrival_kind(arrival_name);
    FRIEDA_CHECK(arrival_kind.has_value(), "unknown service.arrivals '"
                                               << arrival_name
                                               << "' (poisson | bursty | diurnal)");
    ac.kind = *arrival_kind;
    ac.rate = config.get_double("service.arrival_rate", 1.0);
    ac.burst_factor = config.get_double("service.burst_factor", 4.0);
    ac.burst_fraction = config.get_double("service.burst_fraction", 0.2);
    ac.period_s = config.get_double("service.period_s", 3600.0);
    ac.seed = static_cast<std::uint64_t>(config.get_int("service.arrival_seed", 42));
    options.arrivals = generate_arrivals(ac, units.size());

    if (policy == "reactive") {
      auto& ep = options.elastic_policy;
      ep.enabled = true;
      ep.scale_out_depth =
          static_cast<std::size_t>(config.get_int("service.scale_out_depth", 16));
      ep.scale_in_depth =
          static_cast<std::size_t>(config.get_int("service.scale_in_depth", 2));
      ep.check_interval = config.get_double("service.check_interval_s", 5.0);
      ep.hysteresis = static_cast<int>(config.get_int("service.hysteresis", 3));
      ep.max_extra_vms =
          static_cast<std::size_t>(config.get_int("service.max_extra_vms", 4));
    }
  }

  const auto arity = units.front().inputs.size();
  const core::CommandTemplate command(
      config.get_string("run.command", arity == 1 ? "app $inp1" : "app $inp1 $inp2"));

  core::FriedaRun run(cluster, *catalog, std::move(units), *app, command, options);
  if (options.strategy == core::PlacementStrategy::kPrePartitionLocal) {
    run.pre_place_partitions(vms);
  }

  // ---- events ----
  cluster::FailureInjector injector(cluster);
  for (const auto& [vm, when] : parse_failures(config.get_string("events.fail", ""))) {
    FRIEDA_CHECK(vm < vms.size(), "events.fail references unknown vm " << vm);
    injector.schedule(vm, when);
  }
  const double add_at = config.get_double("events.add_vms_at", 0.0);
  const auto add_count = static_cast<std::size_t>(config.get_int("events.add_vms", 0));
  if (add_at > 0.0 && add_count > 0) {
    sim.schedule_at(add_at, [&run, type, add_count] {
      for (std::size_t i = 0; i < add_count; ++i) run.add_vm(type);
    });
  }
  const double crash_at = config.get_double("events.master_crash_at", 0.0);
  if (crash_at > 0.0) {
    const double recovery = config.get_double("events.master_recovery_s", 10.0);
    sim.schedule_at(crash_at, [&run, recovery] { run.crash_master(recovery); });
  }

  return run.run();
}

core::RunReport run_scenario_text(const std::string& text) {
  return run_scenario(Config::parse(text));
}

}  // namespace frieda::workload
