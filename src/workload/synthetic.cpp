#include "workload/synthetic.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace frieda::workload {

SyntheticModel::SyntheticModel(SyntheticParams params) : params_(params) {
  FRIEDA_CHECK(params_.file_count > 0, "file count must be > 0");
  FRIEDA_CHECK(params_.mean_task_seconds >= 0.0, "task seconds must be >= 0");
  Rng rng(params_.seed);
  costs_.reserve(params_.file_count);
  for (std::size_t i = 0; i < params_.file_count; ++i) {
    char name[48];
    std::snprintf(name, sizeof(name), "input_%06zu.dat", i);
    const double size =
        params_.file_size_cv > 0.0
            ? rng.lognormal_mean_cv(static_cast<double>(params_.mean_file_bytes),
                                    params_.file_size_cv)
            : static_cast<double>(params_.mean_file_bytes);
    catalog_.add_file(name, static_cast<Bytes>(std::max(size, 1.0)));
    costs_.push_back(params_.task_cv > 0.0 && params_.mean_task_seconds > 0.0
                         ? rng.lognormal_mean_cv(params_.mean_task_seconds, params_.task_cv)
                         : params_.mean_task_seconds);
  }
}

SimTime SyntheticModel::file_cost(storage::FileId f) const {
  FRIEDA_CHECK(f < costs_.size(), "file id out of range");
  return costs_[f];
}

SimTime SyntheticModel::task_seconds(const core::WorkUnit& unit) const {
  SimTime total = 0.0;
  for (const auto f : unit.inputs) total += file_cost(f);
  return total;
}

}  // namespace frieda::workload
