#include "workload/image_compare.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "workload/calibration.hpp"

namespace frieda::workload {

ImageCompareParams ImageCompareParams::paper() {
  ImageCompareParams p;
  p.image_count = calib::kAlsImageCount;
  p.mean_image_bytes = calib::kAlsMeanImageBytes;
  p.size_cv = calib::kAlsImageSizeCv;
  p.seconds_per_mb = calib::kAlsSecondsPerMB;
  p.output_bytes = calib::kAlsOutputBytes;
  return p;
}

ImageCompareModel::ImageCompareModel(ImageCompareParams params) : params_(params) {
  FRIEDA_CHECK(params_.image_count > 0, "image count must be > 0");
  FRIEDA_CHECK(params_.mean_image_bytes > 0, "image size must be > 0");
  Rng rng(params_.seed);
  for (std::size_t i = 0; i < params_.image_count; ++i) {
    char name[48];
    std::snprintf(name, sizeof(name), "beamline_%05zu.tif", i);
    const double size = params_.size_cv > 0.0
                            ? rng.lognormal_mean_cv(
                                  static_cast<double>(params_.mean_image_bytes), params_.size_cv)
                            : static_cast<double>(params_.mean_image_bytes);
    catalog_.add_file(name, static_cast<Bytes>(std::max(size, 1.0)));
  }
}

SimTime ImageCompareModel::task_seconds(const core::WorkUnit& unit) const {
  const double mb = static_cast<double>(unit.input_bytes(catalog_)) / 1e6;
  return params_.seconds_per_mb * mb;
}

Bytes ImageCompareModel::output_bytes(const core::WorkUnit&) const {
  return params_.output_bytes;
}

}  // namespace frieda::workload
