#include "workload/scenarios.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "frieda/partition.hpp"
#include "frieda/template.hpp"
#include "obs/metrics.hpp"
#include "workload/calibration.hpp"

namespace frieda::workload {

namespace {

ImageCompareParams als_params(const PaperScenarioOptions& opt) {
  auto p = ImageCompareParams::paper();
  p.image_count =
      std::max<std::size_t>(2, static_cast<std::size_t>(p.image_count * opt.scale));
  if (p.image_count % 2) --p.image_count;  // pairwise-adjacent wants an even count
  return p;
}

BlastParams blast_params(const PaperScenarioOptions& opt) {
  auto p = BlastParams::paper();
  p.sequence_count =
      std::max<std::size_t>(1, static_cast<std::size_t>(p.sequence_count * opt.scale));
  // Scale the shared database too, so small test runs stay balanced the same
  // way the full run is.
  p.database_bytes = static_cast<Bytes>(static_cast<double>(p.database_bytes) * opt.scale);
  return p;
}

struct Built {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<cluster::VirtualCluster> cluster;
  std::vector<cluster::VmId> vms;
};

Built build_cluster(const PaperScenarioOptions& opt, std::size_t vm_count, unsigned cores,
                    bool with_storage = false) {
  Built b;
  b.sim = std::make_unique<sim::Simulation>(opt.seed);
  cluster::ClusterOptions copts;
  copts.source_nic_up = opt.nic;
  copts.source_nic_down = opt.nic;
  copts.with_storage_server = with_storage;
  copts.storage_nic = opt.nic;  // the networked disk shares the same fabric
  b.cluster = std::make_unique<cluster::VirtualCluster>(*b.sim, copts);
  auto type = cluster::c1_xlarge();
  type.cores = cores;
  type.nic_up = opt.nic;
  type.nic_down = opt.nic;
  type.boot_time = 0.0;  // the paper measures application time, not boot
  b.vms = b.cluster->provision(type, vm_count);
  return b;
}

core::RunReport execute(Built& b, const core::AppModel& app,
                        const storage::FileCatalog& catalog, core::PartitionScheme scheme,
                        const core::CommandTemplate& command,
                        core::PlacementStrategy strategy, const PaperScenarioOptions& opt,
                        bool multicore, const char* app_kind) {
  auto& store = core::TemplateStore::global();
  const bool use_templates =
      store.enabled() && opt.use_execution_templates && templatable(opt);
  const bool audit = use_templates && store.differential_check();

  std::shared_ptr<const core::ExecutionTemplate> tmpl;
  std::optional<Fingerprint> key;
  if (use_templates) {
    key = template_fingerprint(app_kind, strategy, opt);
    tmpl = store.lookup(*key);
  }

  // Program-instance slots this run will fork — the assignment table shape.
  std::size_t slots = 0;
  for (const auto vm : b.vms) slots += multicore ? b.cluster->vm(vm).type().cores : 1u;

  std::vector<core::WorkUnit> units;
  if (tmpl != nullptr) {
    units = tmpl->units();  // instantiate: partition list is structural
    if (audit) {
      FRIEDA_CHECK(core::PartitionGenerator::generate(scheme, catalog) == units,
                   "template audit: cached partition list diverged from a fresh "
                   "generation");
    }
    if (opt.metrics) opt.metrics->counter("frieda.template_hits").inc();
  } else {
    units = core::PartitionGenerator::generate(scheme, catalog);
  }

  core::RunOptions ropt;
  ropt.strategy = strategy;
  ropt.scheme = scheme;
  ropt.multicore = multicore;
  ropt.prefetch = opt.prefetch;
  ropt.requeue_on_failure = opt.requeue_on_failure;
  ropt.tracer = opt.tracer;
  ropt.metrics = opt.metrics;
  ropt.telemetry = opt.telemetry;
  if (opt.service.open_loop) {
    const auto akey = arrival_schedule_key(opt.service.arrivals, units.size());
    if (tmpl != nullptr && tmpl->arrival_key() == akey) {
      ropt.arrivals = tmpl->arrivals();  // same process, same schedule
      if (audit) {
        FRIEDA_CHECK(generate_arrivals(opt.service.arrivals, units.size()) == ropt.arrivals,
                     "template audit: cached arrival schedule diverged from a "
                     "fresh generation");
      }
    } else {
      ropt.arrivals = generate_arrivals(opt.service.arrivals, units.size());
      if (tmpl != nullptr) store.note_patch();  // arrival-config delta
    }
    ropt.elastic_policy = opt.service.elastic;
  }

  if (tmpl == nullptr && key.has_value()) {
    // First run of this scenario shape: capture + publish the template.
    const bool inputs_staged = strategy != core::PlacementStrategy::kRemoteRead &&
                               strategy != core::PlacementStrategy::kSharedVolume;
    const std::uint64_t akey =
        opt.service.open_loop ? arrival_schedule_key(opt.service.arrivals, units.size())
                              : 0;
    tmpl = core::ExecutionTemplate::capture(units, command, catalog, ropt.staging_dir,
                                            inputs_staged, ropt.assignment, slots, akey,
                                            ropt.arrivals);
    store.note_build();
    store.insert(*key, tmpl);
    if (opt.metrics) opt.metrics->counter("frieda.template_builds").inc();
  } else if (tmpl != nullptr && (tmpl->assignment_workers() != slots ||
                                 tmpl->assignment_policy() != ropt.assignment)) {
    store.note_patch();  // worker-shape delta: the run recomputes the table
  }
  ropt.exec_template = tmpl;

  core::FriedaRun run(*b.cluster, catalog, std::move(units), app, command, ropt);
  if (strategy == core::PlacementStrategy::kPrePartitionLocal) {
    run.pre_place_partitions(b.vms);
  }
  if (opt.arrange) opt.arrange(*b.sim, *b.cluster, run);
  return run.run();
}

}  // namespace

bool fingerprintable(const PaperScenarioOptions& opt) {
  return !opt.arrange && opt.tracer == nullptr && opt.metrics == nullptr &&
         opt.telemetry == nullptr;
}

bool templatable(const PaperScenarioOptions& opt) { return !opt.arrange; }

Fingerprint template_fingerprint(const char* app, core::PlacementStrategy strategy,
                                 const PaperScenarioOptions& opt) {
  StableHasher h;
  // Versioned salt + structural fields only.  The catalog (and therefore the
  // partition list, command bindings, and size-balanced assignments) is a
  // pure function of (app, scale); the strategy picks the staging decision
  // baked into the prototypes; the NIC stands in for the topology class.
  // Everything else is patchable at instantiation time — see the table in
  // frieda/template.hpp.
  h.mix_str("frieda-template-v1")
      .mix_str(app)
      .mix_str(core::to_string(strategy))
      .mix_f64(opt.scale)
      .mix_f64(opt.nic);
  return h.digest();
}

std::uint64_t arrival_schedule_key(const ArrivalConfig& config, std::size_t count) {
  StableHasher h;
  h.mix_str("frieda-arrivals-v1")
      .mix_u64(static_cast<std::uint64_t>(config.kind))
      .mix_f64(config.rate)
      .mix_f64(config.burst_factor)
      .mix_f64(config.burst_fraction)
      .mix_f64(config.period_s)
      .mix_u64(config.seed)
      .mix_u64(count);
  const auto d = h.digest();
  return (d.hi ^ d.lo) | 1;  // nonzero: 0 is reserved for "closed batch"
}

void hash_options(StableHasher& h, const PaperScenarioOptions& opt) {
  FRIEDA_CHECK(fingerprintable(opt),
               "options with arrange/tracer/metrics/telemetry hooks cannot be fingerprinted");
  // Fixed field order — this is the persistent cache-key encoding.  When a
  // field is added to PaperScenarioOptions, append its mix here (changing
  // every fingerprint is fine; *omitting* a behavior-affecting field is not).
  h.mix_u64(opt.worker_vms)
      .mix_u64(opt.cores_per_vm)
      .mix_f64(opt.nic)
      .mix_bool(opt.multicore)
      .mix_f64(opt.scale)
      .mix_u64(opt.seed)
      .mix_i64(opt.prefetch)
      .mix_bool(opt.requeue_on_failure);
  // use_execution_templates is intentionally absent: a templated run is
  // value-identical to a from-scratch run (audited under
  // FRIEDA_TEMPLATE_AUDIT), so the knob cannot affect any result.
  if (opt.service.open_loop) {
    // Appended for the service mode; closed-batch fingerprints are unchanged.
    const auto& ac = opt.service.arrivals;
    const auto& ep = opt.service.elastic;
    h.mix_bool(true)
        .mix_u64(static_cast<std::uint64_t>(ac.kind))
        .mix_f64(ac.rate)
        .mix_f64(ac.burst_factor)
        .mix_f64(ac.burst_fraction)
        .mix_f64(ac.period_s)
        .mix_u64(ac.seed)
        .mix_bool(ep.enabled)
        .mix_u64(ep.scale_out_depth)
        .mix_u64(ep.scale_in_depth)
        .mix_f64(ep.check_interval)
        .mix_i64(ep.hysteresis)
        .mix_u64(ep.max_extra_vms);
  }
}

double estimate_units(const char* app, const PaperScenarioOptions& opt) {
  const std::string kind(app);
  if (kind == "als") {
    // Pairwise-adjacent grouping: two images per unit.
    return static_cast<double>(als_params(opt).image_count) / 2.0;
  }
  if (kind == "blast") {
    // Single-file grouping: one sequence per unit.
    return static_cast<double>(blast_params(opt).sequence_count);
  }
  FRIEDA_CHECK(false, "estimate_units: unknown app kind '" << kind << "'");
  return 0.0;
}

ImageCompareModel make_als_model(const PaperScenarioOptions& opt) {
  return ImageCompareModel(als_params(opt));
}

BlastModel make_blast_model(const PaperScenarioOptions& opt) {
  return BlastModel(blast_params(opt));
}

core::RunReport run_als(core::PlacementStrategy strategy, const ImageCompareModel& app,
                        const PaperScenarioOptions& opt) {
  auto b = build_cluster(opt, opt.worker_vms, opt.cores_per_vm,
                         strategy == core::PlacementStrategy::kSharedVolume);
  return execute(b, app, app.catalog(), core::PartitionScheme::kPairwiseAdjacent,
                 core::CommandTemplate("compare_images $inp1 $inp2"), strategy, opt,
                 opt.multicore, "als");
}

core::RunReport run_als(core::PlacementStrategy strategy, const PaperScenarioOptions& opt) {
  return run_als(strategy, make_als_model(opt), opt);
}

core::RunReport run_blast(core::PlacementStrategy strategy, const BlastModel& app,
                          const PaperScenarioOptions& opt) {
  auto b = build_cluster(opt, opt.worker_vms, opt.cores_per_vm,
                         strategy == core::PlacementStrategy::kSharedVolume);
  return execute(b, app, app.catalog(), core::PartitionScheme::kSingleFile,
                 core::CommandTemplate("blastall -p blastp -d /data/db $inp1"), strategy, opt,
                 opt.multicore, "blast");
}

core::RunReport run_blast(core::PlacementStrategy strategy, const PaperScenarioOptions& opt) {
  return run_blast(strategy, make_blast_model(opt), opt);
}

core::RunReport run_als_sequential(const ImageCompareModel& app,
                                   const PaperScenarioOptions& opt) {
  auto b = build_cluster(opt, 1, 1);
  // Sequential baseline: one VM, one program instance, data already local.
  return execute(b, app, app.catalog(), core::PartitionScheme::kPairwiseAdjacent,
                 core::CommandTemplate("compare_images $inp1 $inp2"),
                 core::PlacementStrategy::kPrePartitionLocal, opt, /*multicore=*/false,
                 "als");
}

core::RunReport run_als_sequential(const PaperScenarioOptions& opt) {
  return run_als_sequential(make_als_model(opt), opt);
}

core::RunReport run_blast_sequential(const BlastModel& app, const PaperScenarioOptions& opt) {
  auto b = build_cluster(opt, 1, 1);
  return execute(b, app, app.catalog(), core::PartitionScheme::kSingleFile,
                 core::CommandTemplate("blastall -p blastp -d /data/db $inp1"),
                 core::PlacementStrategy::kPrePartitionLocal, opt, /*multicore=*/false,
                 "blast");
}

core::RunReport run_blast_sequential(const PaperScenarioOptions& opt) {
  return run_blast_sequential(make_blast_model(opt), opt);
}

}  // namespace frieda::workload
