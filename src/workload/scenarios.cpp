#include "workload/scenarios.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "frieda/partition.hpp"
#include "workload/calibration.hpp"

namespace frieda::workload {

namespace {

ImageCompareParams als_params(const PaperScenarioOptions& opt) {
  auto p = ImageCompareParams::paper();
  p.image_count =
      std::max<std::size_t>(2, static_cast<std::size_t>(p.image_count * opt.scale));
  if (p.image_count % 2) --p.image_count;  // pairwise-adjacent wants an even count
  return p;
}

BlastParams blast_params(const PaperScenarioOptions& opt) {
  auto p = BlastParams::paper();
  p.sequence_count =
      std::max<std::size_t>(1, static_cast<std::size_t>(p.sequence_count * opt.scale));
  // Scale the shared database too, so small test runs stay balanced the same
  // way the full run is.
  p.database_bytes = static_cast<Bytes>(static_cast<double>(p.database_bytes) * opt.scale);
  return p;
}

struct Built {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<cluster::VirtualCluster> cluster;
  std::vector<cluster::VmId> vms;
};

Built build_cluster(const PaperScenarioOptions& opt, std::size_t vm_count, unsigned cores,
                    bool with_storage = false) {
  Built b;
  b.sim = std::make_unique<sim::Simulation>(opt.seed);
  cluster::ClusterOptions copts;
  copts.source_nic_up = opt.nic;
  copts.source_nic_down = opt.nic;
  copts.with_storage_server = with_storage;
  copts.storage_nic = opt.nic;  // the networked disk shares the same fabric
  b.cluster = std::make_unique<cluster::VirtualCluster>(*b.sim, copts);
  auto type = cluster::c1_xlarge();
  type.cores = cores;
  type.nic_up = opt.nic;
  type.nic_down = opt.nic;
  type.boot_time = 0.0;  // the paper measures application time, not boot
  b.vms = b.cluster->provision(type, vm_count);
  return b;
}

core::RunReport execute(Built& b, const core::AppModel& app,
                        const storage::FileCatalog& catalog, core::PartitionScheme scheme,
                        const core::CommandTemplate& command,
                        core::PlacementStrategy strategy, const PaperScenarioOptions& opt,
                        bool multicore) {
  auto units = core::PartitionGenerator::generate(scheme, catalog);
  core::RunOptions ropt;
  ropt.strategy = strategy;
  ropt.scheme = scheme;
  ropt.multicore = multicore;
  ropt.prefetch = opt.prefetch;
  ropt.requeue_on_failure = opt.requeue_on_failure;
  ropt.tracer = opt.tracer;
  ropt.metrics = opt.metrics;
  if (opt.service.open_loop) {
    ropt.arrivals = generate_arrivals(opt.service.arrivals, units.size());
    ropt.elastic_policy = opt.service.elastic;
  }
  core::FriedaRun run(*b.cluster, catalog, std::move(units), app, command, ropt);
  if (strategy == core::PlacementStrategy::kPrePartitionLocal) {
    run.pre_place_partitions(b.vms);
  }
  if (opt.arrange) opt.arrange(*b.sim, *b.cluster, run);
  return run.run();
}

}  // namespace

bool fingerprintable(const PaperScenarioOptions& opt) {
  return !opt.arrange && opt.tracer == nullptr && opt.metrics == nullptr;
}

void hash_options(StableHasher& h, const PaperScenarioOptions& opt) {
  FRIEDA_CHECK(fingerprintable(opt),
               "options with arrange/tracer/metrics hooks cannot be fingerprinted");
  // Fixed field order — this is the persistent cache-key encoding.  When a
  // field is added to PaperScenarioOptions, append its mix here (changing
  // every fingerprint is fine; *omitting* a behavior-affecting field is not).
  h.mix_u64(opt.worker_vms)
      .mix_u64(opt.cores_per_vm)
      .mix_f64(opt.nic)
      .mix_bool(opt.multicore)
      .mix_f64(opt.scale)
      .mix_u64(opt.seed)
      .mix_i64(opt.prefetch)
      .mix_bool(opt.requeue_on_failure);
  if (opt.service.open_loop) {
    // Appended for the service mode; closed-batch fingerprints are unchanged.
    const auto& ac = opt.service.arrivals;
    const auto& ep = opt.service.elastic;
    h.mix_bool(true)
        .mix_u64(static_cast<std::uint64_t>(ac.kind))
        .mix_f64(ac.rate)
        .mix_f64(ac.burst_factor)
        .mix_f64(ac.burst_fraction)
        .mix_f64(ac.period_s)
        .mix_u64(ac.seed)
        .mix_bool(ep.enabled)
        .mix_u64(ep.scale_out_depth)
        .mix_u64(ep.scale_in_depth)
        .mix_f64(ep.check_interval)
        .mix_i64(ep.hysteresis)
        .mix_u64(ep.max_extra_vms);
  }
}

double estimate_units(const char* app, const PaperScenarioOptions& opt) {
  const std::string kind(app);
  if (kind == "als") {
    // Pairwise-adjacent grouping: two images per unit.
    return static_cast<double>(als_params(opt).image_count) / 2.0;
  }
  if (kind == "blast") {
    // Single-file grouping: one sequence per unit.
    return static_cast<double>(blast_params(opt).sequence_count);
  }
  FRIEDA_CHECK(false, "estimate_units: unknown app kind '" << kind << "'");
  return 0.0;
}

ImageCompareModel make_als_model(const PaperScenarioOptions& opt) {
  return ImageCompareModel(als_params(opt));
}

BlastModel make_blast_model(const PaperScenarioOptions& opt) {
  return BlastModel(blast_params(opt));
}

core::RunReport run_als(core::PlacementStrategy strategy, const ImageCompareModel& app,
                        const PaperScenarioOptions& opt) {
  auto b = build_cluster(opt, opt.worker_vms, opt.cores_per_vm,
                         strategy == core::PlacementStrategy::kSharedVolume);
  return execute(b, app, app.catalog(), core::PartitionScheme::kPairwiseAdjacent,
                 core::CommandTemplate("compare_images $inp1 $inp2"), strategy, opt,
                 opt.multicore);
}

core::RunReport run_als(core::PlacementStrategy strategy, const PaperScenarioOptions& opt) {
  return run_als(strategy, make_als_model(opt), opt);
}

core::RunReport run_blast(core::PlacementStrategy strategy, const BlastModel& app,
                          const PaperScenarioOptions& opt) {
  auto b = build_cluster(opt, opt.worker_vms, opt.cores_per_vm,
                         strategy == core::PlacementStrategy::kSharedVolume);
  return execute(b, app, app.catalog(), core::PartitionScheme::kSingleFile,
                 core::CommandTemplate("blastall -p blastp -d /data/db $inp1"), strategy, opt,
                 opt.multicore);
}

core::RunReport run_blast(core::PlacementStrategy strategy, const PaperScenarioOptions& opt) {
  return run_blast(strategy, make_blast_model(opt), opt);
}

core::RunReport run_als_sequential(const ImageCompareModel& app,
                                   const PaperScenarioOptions& opt) {
  auto b = build_cluster(opt, 1, 1);
  // Sequential baseline: one VM, one program instance, data already local.
  return execute(b, app, app.catalog(), core::PartitionScheme::kPairwiseAdjacent,
                 core::CommandTemplate("compare_images $inp1 $inp2"),
                 core::PlacementStrategy::kPrePartitionLocal, opt, /*multicore=*/false);
}

core::RunReport run_als_sequential(const PaperScenarioOptions& opt) {
  return run_als_sequential(make_als_model(opt), opt);
}

core::RunReport run_blast_sequential(const BlastModel& app, const PaperScenarioOptions& opt) {
  auto b = build_cluster(opt, 1, 1);
  return execute(b, app, app.catalog(), core::PartitionScheme::kSingleFile,
                 core::CommandTemplate("blastall -p blastp -d /data/db $inp1"),
                 core::PlacementStrategy::kPrePartitionLocal, opt, /*multicore=*/false);
}

core::RunReport run_blast_sequential(const PaperScenarioOptions& opt) {
  return run_blast_sequential(make_blast_model(opt), opt);
}

}  // namespace frieda::workload
