#include "workload/arrivals.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace frieda::workload {

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

std::optional<ArrivalKind> parse_arrival_kind(const std::string& text) {
  if (text == "poisson") return ArrivalKind::kPoisson;
  if (text == "bursty") return ArrivalKind::kBursty;
  if (text == "diurnal") return ArrivalKind::kDiurnal;
  return std::nullopt;
}

namespace {

void validate(const ArrivalConfig& c) {
  FRIEDA_CHECK(c.rate > 0.0 && std::isfinite(c.rate), "arrival rate must be > 0");
  FRIEDA_CHECK(c.burst_factor >= 1.0 && std::isfinite(c.burst_factor),
               "burst_factor must be >= 1");
  if (c.kind == ArrivalKind::kBursty) {
    FRIEDA_CHECK(c.burst_fraction > 0.0 && c.burst_fraction < 1.0,
                 "burst_fraction must be in (0, 1)");
  }
  if (c.kind == ArrivalKind::kDiurnal) {
    FRIEDA_CHECK(c.period_s > 0.0 && std::isfinite(c.period_s), "period_s must be > 0");
  }
}

std::vector<SimTime> poisson(const ArrivalConfig& c, std::size_t count, Rng& rng) {
  std::vector<SimTime> out;
  out.reserve(count);
  SimTime t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(c.rate);
    out.push_back(t);
  }
  return out;
}

// MMPP-2: exponential dwell times in an ON state at rate_on and an OFF state
// at rate_off, with the state split and rates chosen so the long-run mean is
// exactly c.rate.  Within a state arrivals are Poisson; by memorylessness a
// gap that crosses a state boundary is resampled from the boundary onward.
std::vector<SimTime> bursty(const ArrivalConfig& c, std::size_t count, Rng& rng) {
  const double f = c.burst_fraction;
  const double rate_on = c.rate * c.burst_factor;
  // mean = f*rate_on + (1-f)*rate_off  =>  solve for rate_off.
  double rate_off = (c.rate - f * rate_on) / (1.0 - f);
  FRIEDA_CHECK(rate_off >= 0.0,
               "bursty arrivals: burst_factor " << c.burst_factor << " with burst_fraction "
                                                << f << " would need a negative OFF rate");
  // Dwell times: pick a mean cycle of 32 expected arrivals so several
  // ON/OFF alternations happen within a typical run at any rate.
  const double cycle_s = 32.0 / c.rate;
  const double dwell_on = cycle_s * f;
  const double dwell_off = cycle_s * (1.0 - f);

  std::vector<SimTime> out;
  out.reserve(count);
  SimTime t = 0.0;
  bool on = false;  // start in the quiet state: the ramp-up is the test
  SimTime state_end = rng.exponential(1.0 / dwell_off);
  while (out.size() < count) {
    const double rate = on ? rate_on : rate_off;
    const SimTime gap = rate > 0.0 ? rng.exponential(rate)
                                   : std::numeric_limits<double>::infinity();
    if (t + gap < state_end) {
      t += gap;
      out.push_back(t);
    } else {
      // Memoryless: discard the partial gap, flip state, redraw from there.
      t = state_end;
      on = !on;
      state_end = t + rng.exponential(1.0 / (on ? dwell_on : dwell_off));
    }
  }
  return out;
}

// Non-homogeneous Poisson by Lewis-Shedler thinning: candidate arrivals at
// the peak rate, accepted with probability rate(t)/peak.  The modulation
// starts at the trough (sin phase -pi/2), so a run begins quiet and ramps.
std::vector<SimTime> diurnal(const ArrivalConfig& c, std::size_t count, Rng& rng) {
  const double a = (c.burst_factor - 1.0) / (c.burst_factor + 1.0);
  const double peak = c.rate * (1.0 + a);
  const double two_pi = 2.0 * std::acos(-1.0);
  std::vector<SimTime> out;
  out.reserve(count);
  SimTime t = 0.0;
  while (out.size() < count) {
    t += rng.exponential(peak);
    const double rate_t = c.rate * (1.0 + a * std::sin(two_pi * t / c.period_s - two_pi / 4.0));
    if (rng.uniform() < rate_t / peak) out.push_back(t);
  }
  return out;
}

}  // namespace

std::vector<SimTime> generate_arrivals(const ArrivalConfig& config, std::size_t count) {
  validate(config);
  Rng rng(config.seed);
  switch (config.kind) {
    case ArrivalKind::kPoisson: return poisson(config, count, rng);
    case ArrivalKind::kBursty: return bursty(config, count, rng);
    case ArrivalKind::kDiurnal: return diurnal(config, count, rng);
  }
  FRIEDA_CHECK(false, "unknown arrival kind");
  return {};
}

}  // namespace frieda::workload
