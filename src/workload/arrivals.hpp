// Arrival processes for the open-loop service mode.
//
// A closed batch answers "how long does this dataset take?"; a service
// answers "what latency do users see at this request rate?".  The arrival
// models here generate the per-unit offsets (seconds after serving starts)
// that FriedaRun's open-loop mode injects into the dispatch queue:
//
//   poisson  — memoryless arrivals at a constant mean rate; the M/G/k
//              baseline every queueing result is stated against.
//   bursty   — a two-state Markov-modulated Poisson process (MMPP-2):
//              an ON state at `burst_factor` times the base rate and an
//              OFF state chosen so the long-run mean rate stays `rate`.
//              Models flash crowds and batch submission fronts.
//   diurnal  — a non-homogeneous Poisson process whose rate follows one
//              sinusoidal day starting at the trough:
//              rate(t) = rate * (1 + a * sin(2*pi*t/period - pi/2)),
//              a = (burst_factor-1)/(burst_factor+1), sampled by
//              Lewis-Shedler thinning.  Models the morning ramp a
//              reactive elasticity policy has to chase.
//
// All three are seeded through common/rng, so a (seed, config) pair yields
// a bit-identical arrival sequence on every run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace frieda::workload {

/// Which arrival model generates the offsets.
enum class ArrivalKind {
  kPoisson,
  kBursty,
  kDiurnal,
};

/// Render an arrival kind name ("poisson", "bursty", "diurnal").
const char* to_string(ArrivalKind kind);

/// Parse an arrival kind name; nullopt when unknown.
std::optional<ArrivalKind> parse_arrival_kind(const std::string& text);

/// Configuration of one arrival process.
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 1.0;           ///< long-run mean arrivals per second (> 0)
  double burst_factor = 4.0;   ///< ON-state / peak rate multiplier (>= 1);
                               ///< ignored by the Poisson model
  double burst_fraction = 0.2; ///< long-run fraction of time in the ON state
                               ///< (bursty only; in (0, 1))
  double period_s = 3600.0;    ///< diurnal cycle length in seconds (> 0)
  std::uint64_t seed = 42;     ///< arrival stream seed (independent of the
                               ///< cluster/workload seeds)
};

/// Generate `count` arrival offsets (seconds, ascending, starting at the
/// first inter-arrival gap) for the configured process.  Deterministic in
/// (config, count).  Throws on invalid configuration.
std::vector<SimTime> generate_arrivals(const ArrivalConfig& config, std::size_t count);

}  // namespace frieda::workload
