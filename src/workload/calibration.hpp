// Calibration constants for the paper's two evaluation workloads.
//
// The absolute seconds in Table I / Figures 6–7 came from the authors' ExoGENI
// slice; we reproduce the *shapes* by matching the published aggregate
// quantities analytically:
//
// ALS (light-source image comparison; Section IV.A):
//   * 1250 images, pairwise-adjacent grouping => 625 comparisons.
//   * Sequential run: 1258.80 s => ~2.014 s per comparison.
//   * Compute cost is proportional to bytes compared; with ~7 MB images a
//     pair is ~14 MB => 0.1438 s/MB.
//   * Staging all images (1250 x 7 MB = 8.75 GB) through the master's
//     100 Mbps NIC takes ~700 s, which is what makes pre-partition-remote
//     (789.39 s = transfer + execute) and real-time (696.70 s = overlap)
//     land where Table I puts them.
//
// BLAST (Section IV.A):
//   * 7500 query sequences (tiny files) against a shared database.
//   * Sequential run: 61200 s => mean 8.16 s per sequence; the paper notes
//     per-task cost varies with the match, so we draw lognormal costs with
//     CV 0.5 (deterministic per unit for fair strategy comparison).
//   * Database ~750 MB staged to every node; query files ~2 KB each.
#pragma once

#include "common/units.hpp"

namespace frieda::workload::calib {

// ---- ALS image comparison ----
inline constexpr std::size_t kAlsImageCount = 1250;
inline constexpr Bytes kAlsMeanImageBytes = 7 * MB;
inline constexpr double kAlsImageSizeCv = 0.05;          ///< mild size jitter
inline constexpr double kAlsSecondsPerMB = 2.014 / 14.0; ///< compare cost
inline constexpr Bytes kAlsOutputBytes = 50 * KB;        ///< similarity report

// ---- BLAST ----
inline constexpr std::size_t kBlastSequenceCount = 7500;
inline constexpr Bytes kBlastSequenceBytes = 2 * KB;
inline constexpr Bytes kBlastDatabaseBytes = 750 * MB;
inline constexpr double kBlastMeanTaskSeconds = 61200.0 / 7500.0;  ///< 8.16 s
inline constexpr double kBlastTaskCv = 0.5;  ///< match-dependent skew
inline constexpr Bytes kBlastOutputBytes = 20 * KB;

// ---- paper-reported values (for EXPERIMENTS.md comparisons) ----
namespace paper {
inline constexpr double kAlsSequential = 1258.80;
inline constexpr double kAlsPrePartitioned = 789.39;
inline constexpr double kAlsRealTime = 696.70;
inline constexpr double kBlastSequential = 61200.0;
inline constexpr double kBlastPrePartitioned = 4131.07;
inline constexpr double kBlastRealTime = 3794.90;
}  // namespace paper

}  // namespace frieda::workload::calib
