// ALS light-source image-comparison workload (paper Section IV.A).
//
// "The data consists of a set of images.  The simple program we use here
//  basically compares images to see similarity between the images.  The
//  image analysis requires two files for every execution."
//
// Large per-task inputs, short compute: the transfer-bound end of the
// paper's spectrum.  Cost is proportional to the bytes of the image pair.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "frieda/app_model.hpp"
#include "storage/file.hpp"

namespace frieda::workload {

/// Tunable parameters of the image-comparison model.
struct ImageCompareParams {
  std::size_t image_count;       ///< number of images in the input directory
  Bytes mean_image_bytes;        ///< average image size
  double size_cv;                ///< coefficient of variation of image sizes
  double seconds_per_mb;         ///< compare cost per MB of input pair
  Bytes output_bytes;            ///< similarity report size
  std::uint64_t seed = 1;        ///< dataset generation seed

  /// Defaults calibrated to the paper's ALS run (calibration.hpp).
  static ImageCompareParams paper();
};

/// The ALS application model; also builds its own file catalog.
class ImageCompareModel final : public core::AppModel {
 public:
  /// Build the image catalog deterministically from the parameters.
  explicit ImageCompareModel(ImageCompareParams params);

  /// The generated input directory.
  const storage::FileCatalog& catalog() const { return catalog_; }

  // AppModel interface -------------------------------------------------
  const std::string& name() const override { return name_; }
  SimTime task_seconds(const core::WorkUnit& unit) const override;
  Bytes common_data_bytes() const override { return 0; }
  Bytes output_bytes(const core::WorkUnit& unit) const override;

 private:
  std::string name_ = "als-image-compare";
  ImageCompareParams params_;
  storage::FileCatalog catalog_;
};

}  // namespace frieda::workload
