#include "storage/file.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace frieda::storage {

FileId FileCatalog::add_file(std::string name, Bytes size) {
  const FileId id = static_cast<FileId>(files_.size());
  files_.push_back(FileInfo{id, std::move(name), size});
  total_bytes_ += size;
  return id;
}

const FileInfo& FileCatalog::info(FileId id) const {
  FRIEDA_CHECK(id < files_.size(), "file id " << id << " out of range");
  return files_[id];
}

std::vector<FileId> FileCatalog::all_ids() const {
  std::vector<FileId> ids(files_.size());
  for (std::size_t i = 0; i < files_.size(); ++i) ids[i] = static_cast<FileId>(i);
  return ids;
}

void ReplicaMap::add(FileId file, net::NodeId node) {
  by_file_[file].insert(node);
  by_node_[node].insert(file);
}

void ReplicaMap::remove(FileId file, net::NodeId node) {
  if (auto it = by_file_.find(file); it != by_file_.end()) it->second.erase(node);
  if (auto it = by_node_.find(node); it != by_node_.end()) it->second.erase(file);
}

bool ReplicaMap::has(FileId file, net::NodeId node) const {
  const auto it = by_file_.find(file);
  return it != by_file_.end() && it->second.count(node) > 0;
}

std::vector<net::NodeId> ReplicaMap::nodes_with(FileId file) const {
  std::vector<net::NodeId> out;
  if (const auto it = by_file_.find(file); it != by_file_.end()) {
    out.assign(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
  }
  return out;
}

std::size_t ReplicaMap::replica_count(FileId file) const {
  const auto it = by_file_.find(file);
  return it == by_file_.end() ? 0 : it->second.size();
}

std::vector<FileId> ReplicaMap::files_on(net::NodeId node) const {
  std::vector<FileId> out;
  if (const auto it = by_node_.find(node); it != by_node_.end()) {
    out.assign(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
  }
  return out;
}

Bytes ReplicaMap::bytes_on(net::NodeId node, const FileCatalog& catalog) const {
  Bytes total = 0;
  if (const auto it = by_node_.find(node); it != by_node_.end()) {
    for (FileId f : it->second) total += catalog.info(f).size;
  }
  return total;
}

void ReplicaMap::drop_node(net::NodeId node) {
  const auto it = by_node_.find(node);
  if (it == by_node_.end()) return;
  for (FileId f : it->second) {
    if (auto fit = by_file_.find(f); fit != by_file_.end()) fit->second.erase(node);
  }
  by_node_.erase(it);
}

}  // namespace frieda::storage
