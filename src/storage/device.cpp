#include "storage/device.hpp"

#include <limits>

#include "common/error.hpp"

namespace frieda::storage {

namespace {
constexpr double kEpsilonBytes = 1e-6;
// Minimum scheduling step; see net/network.cpp for the rationale.
constexpr double kMinTimeStep = 1e-9;
}  // namespace

bool StorageDevice::allocate(Bytes bytes) {
  if (bytes > available()) return false;
  used_ += bytes;
  return true;
}

void StorageDevice::release(Bytes bytes) {
  FRIEDA_CHECK(bytes <= used_, "releasing more than reserved");
  used_ -= bytes;
}

SharedService::SharedService(sim::Simulation& sim, Bandwidth rate) : sim_(sim), rate_(rate) {
  FRIEDA_CHECK(rate_ > 0.0, "service rate must be > 0");
}

sim::Task<IoResult> SharedService::submit(Bytes bytes) {
  IoResult result;
  const SimTime start = sim_.now();
  if (failed_) {
    result.ok = false;
    co_return result;
  }
  if (bytes == 0) co_return result;

  auto op = std::make_shared<Op>();
  op->remaining = static_cast<double>(bytes);
  op->signal = std::make_unique<sim::Signal>(sim_);

  advance();
  ops_.push_back(op);
  reschedule();

  co_await op->signal->wait();
  result.ok = op->ok;
  result.duration = sim_.now() - start;
  co_return result;
}

void SharedService::advance() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_advance_;
  if (dt > 0.0 && !ops_.empty()) {
    const double share = rate_ / static_cast<double>(ops_.size());
    for (auto& op : ops_) op->remaining -= share * dt;
  }
  last_advance_ = now;
}

void SharedService::reschedule() {
  std::vector<OpPtr> live;
  live.reserve(ops_.size());
  const double prev_share =
      ops_.empty() ? rate_ : rate_ / static_cast<double>(ops_.size());
  for (auto& op : ops_) {
    if (op->done) continue;
    if (op->remaining <= kEpsilonBytes || op->remaining <= prev_share * kMinTimeStep) {
      op->done = true;
      op->signal->trigger();
      continue;
    }
    live.push_back(op);
  }
  ops_ = std::move(live);

  if (completion_event_.pending()) sim_.cancel(completion_event_);
  if (ops_.empty()) return;

  const double share = rate_ / static_cast<double>(ops_.size());
  double soonest = std::numeric_limits<double>::infinity();
  for (auto& op : ops_) soonest = std::min(soonest, op->remaining / share);
  completion_event_ = sim_.schedule_in(std::max(soonest, kMinTimeStep), [this] {
    advance();
    reschedule();
  });
}

void SharedService::fail() {
  if (failed_) return;
  failed_ = true;
  advance();
  for (auto& op : ops_) {
    if (op->done) continue;
    op->done = true;
    op->ok = false;
    op->signal->trigger();
  }
  ops_.clear();
  if (completion_event_.pending()) sim_.cancel(completion_event_);
}

void SharedService::restore() { failed_ = false; }

LocalDisk::LocalDisk(sim::Simulation& sim, Bandwidth read_bw, Bandwidth write_bw, Bytes capacity)
    : StorageDevice(capacity), read_path_(sim, read_bw), write_path_(sim, write_bw) {}

sim::Task<IoResult> LocalDisk::read(Bytes bytes) { return read_path_.submit(bytes); }

sim::Task<IoResult> LocalDisk::write(Bytes bytes) { return write_path_.submit(bytes); }

void LocalDisk::fail() {
  read_path_.fail();
  write_path_.fail();
}

void LocalDisk::restore() {
  read_path_.restore();
  write_path_.restore();
}

NetworkVolume::NetworkVolume(net::Network& network, net::NodeId server_node,
                             net::NodeId host_node, Bytes capacity)
    : StorageDevice(capacity), network_(network), server_(server_node), host_(host_node) {}

sim::Task<IoResult> NetworkVolume::read(Bytes bytes) {
  const auto xfer = co_await network_.transfer(server_, host_, bytes);
  co_return IoResult{xfer.ok(), xfer.duration()};
}

sim::Task<IoResult> NetworkVolume::write(Bytes bytes) {
  const auto xfer = co_await network_.transfer(host_, server_, bytes);
  co_return IoResult{xfer.ok(), xfer.duration()};
}

ObjectStore::ObjectStore(sim::Simulation& sim, net::Network& network, net::NodeId server_node,
                         net::NodeId host_node, SimTime request_latency, Bytes capacity)
    : StorageDevice(capacity),
      sim_(sim),
      network_(network),
      server_(server_node),
      host_(host_node),
      request_latency_(request_latency) {
  FRIEDA_CHECK(request_latency_ >= 0.0, "request latency must be >= 0");
}

sim::Task<IoResult> ObjectStore::read(Bytes bytes) {
  const SimTime start = sim_.now();
  co_await sim_.delay(request_latency_);
  const auto xfer = co_await network_.transfer(server_, host_, bytes);
  co_return IoResult{xfer.ok(), sim_.now() - start};
}

sim::Task<IoResult> ObjectStore::write(Bytes bytes) {
  const SimTime start = sim_.now();
  co_await sim_.delay(request_latency_);
  const auto xfer = co_await network_.transfer(host_, server_, bytes);
  co_return IoResult{xfer.ok(), sim_.now() - start};
}

}  // namespace frieda::storage
