// Storage device models.
//
// The paper's Section III.A surveys the cloud storage menu: fast-but-small
// VM-local disks, networked block volumes (iSCSI/EBS), and shared external
// stores.  We model:
//
//   * LocalDisk — processor-sharing service with separate read/write
//     bandwidth and a capacity budget; the fastest option but transient and
//     small (paper: "local disk space is very limited").
//   * NetworkVolume — block volume served by a storage node; every I/O is a
//     network flow between the host VM and the volume server, so concurrent
//     clients contend on the server NIC exactly as iSCSI clients do.
//   * ObjectStore — request/response store with per-request latency plus a
//     shared-bandwidth data path (S3-like), layered on a NetworkVolume path.
//
// All devices support fail()/restore() so a VM crash aborts in-flight I/O.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace frieda::storage {

/// Outcome of a device I/O operation.
struct IoResult {
  bool ok = true;          ///< false when the device failed mid-operation
  SimTime duration = 0.0;  ///< wall-clock time the operation took
};

/// Abstract storage device with capacity accounting.
class StorageDevice {
 public:
  /// Construct with a capacity budget in bytes.
  explicit StorageDevice(Bytes capacity) : capacity_(capacity) {}
  virtual ~StorageDevice() = default;

  StorageDevice(const StorageDevice&) = delete;
  StorageDevice& operator=(const StorageDevice&) = delete;

  /// Read `bytes`; resumes when serviced (or failed).
  virtual sim::Task<IoResult> read(Bytes bytes) = 0;

  /// Write `bytes`; resumes when serviced (or failed).
  virtual sim::Task<IoResult> write(Bytes bytes) = 0;

  /// Reserve space; returns false when the budget would be exceeded.
  bool allocate(Bytes bytes);

  /// Release previously reserved space.
  void release(Bytes bytes);

  /// Capacity budget.
  Bytes capacity() const { return capacity_; }

  /// Bytes currently reserved.
  Bytes used() const { return used_; }

  /// Remaining budget.
  Bytes available() const { return capacity_ - used_; }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
};

/// Processor-sharing service: concurrent operations share `rate` equally.
/// Used for local-disk read/write channels.
class SharedService {
 public:
  /// Construct with the aggregate service rate in bytes/second.
  SharedService(sim::Simulation& sim, Bandwidth rate);

  /// Service `bytes`; resumes with ok=false if fail() hit the op mid-flight.
  sim::Task<IoResult> submit(Bytes bytes);

  /// Abort all in-flight operations; subsequent submissions fail instantly.
  void fail();

  /// Accept operations again.
  void restore();

  /// Number of in-flight operations.
  std::size_t active() const { return ops_.size(); }

 private:
  struct Op {
    double remaining = 0.0;
    bool done = false;
    bool ok = true;
    std::unique_ptr<sim::Signal> signal;
  };
  using OpPtr = std::shared_ptr<Op>;

  void advance();
  void reschedule();

  sim::Simulation& sim_;
  Bandwidth rate_;
  bool failed_ = false;
  std::vector<OpPtr> ops_;
  SimTime last_advance_ = 0.0;
  sim::EventQueue::Handle completion_event_;
};

/// VM-local disk: fast, small, dies with the VM.
class LocalDisk : public StorageDevice {
 public:
  /// Construct with distinct read/write bandwidths and a capacity budget.
  LocalDisk(sim::Simulation& sim, Bandwidth read_bw, Bandwidth write_bw, Bytes capacity);

  sim::Task<IoResult> read(Bytes bytes) override;
  sim::Task<IoResult> write(Bytes bytes) override;

  /// Abort in-flight I/O and reject new I/O (VM crash).
  void fail();

  /// Bring the disk back (fresh VM on the same slot).
  void restore();

 private:
  SharedService read_path_;
  SharedService write_path_;
};

/// Network block volume served from `server_node`; I/O rides the network.
class NetworkVolume : public StorageDevice {
 public:
  /// `host_node` is the VM mounting the volume.
  NetworkVolume(net::Network& network, net::NodeId server_node, net::NodeId host_node,
                Bytes capacity);

  sim::Task<IoResult> read(Bytes bytes) override;
  sim::Task<IoResult> write(Bytes bytes) override;

  /// The serving node (its NIC is the shared constraint among clients).
  net::NodeId server_node() const { return server_; }

 private:
  net::Network& network_;
  net::NodeId server_;
  net::NodeId host_;
};

/// Object store: per-request latency plus a networked data path.
class ObjectStore : public StorageDevice {
 public:
  /// `request_latency` models the HTTP round trip before bytes flow.
  ObjectStore(sim::Simulation& sim, net::Network& network, net::NodeId server_node,
              net::NodeId host_node, SimTime request_latency, Bytes capacity);

  sim::Task<IoResult> read(Bytes bytes) override;   ///< GET
  sim::Task<IoResult> write(Bytes bytes) override;  ///< PUT

 private:
  sim::Simulation& sim_;
  net::Network& network_;
  net::NodeId server_;
  net::NodeId host_;
  SimTime request_latency_;
};

}  // namespace frieda::storage
