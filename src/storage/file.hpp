// Logical file catalog and replica placement map.
//
// FRIEDA's partition generator (paper Section II.E) operates on the *list of
// input files* in a directory; the master then moves the bytes.  The catalog
// is that list: logical files with sizes.  The ReplicaMap records which
// topology node currently holds a copy of which file — the ground truth the
// placement strategies consult ("is the data already local?") and update as
// staging transfers complete.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace frieda::storage {

/// Identifier of a logical file within a catalog.
using FileId = std::uint32_t;

/// One logical input/output file.
struct FileInfo {
  FileId id = 0;
  std::string name;
  Bytes size = 0;
};

/// Immutable-after-build list of logical files (an input directory).
class FileCatalog {
 public:
  /// Register a file; returns its id (dense, insertion-ordered).
  FileId add_file(std::string name, Bytes size);

  /// Number of files.
  std::size_t count() const { return files_.size(); }

  /// Lookup by id; throws on out-of-range.
  const FileInfo& info(FileId id) const;

  /// Sum of all file sizes.
  Bytes total_bytes() const { return total_bytes_; }

  /// All files in id order.
  const std::vector<FileInfo>& files() const { return files_; }

  /// Ids of all files, in order (convenience for the partition generator).
  std::vector<FileId> all_ids() const;

 private:
  std::vector<FileInfo> files_;
  Bytes total_bytes_ = 0;
};

/// Which node holds a replica of which file.
class ReplicaMap {
 public:
  /// Record that `node` holds `file`.  Idempotent.
  void add(FileId file, net::NodeId node);

  /// Remove one replica record; no-op if absent.
  void remove(FileId file, net::NodeId node);

  /// True when `node` holds `file`.
  bool has(FileId file, net::NodeId node) const;

  /// All nodes holding `file` (unordered).
  std::vector<net::NodeId> nodes_with(FileId file) const;

  /// Number of replicas of `file`.
  std::size_t replica_count(FileId file) const;

  /// All files present on `node`.
  std::vector<FileId> files_on(net::NodeId node) const;

  /// Bytes of catalog data resident on `node`.
  Bytes bytes_on(net::NodeId node, const FileCatalog& catalog) const;

  /// Forget everything on a node (VM terminated or failed: transient local
  /// storage is gone — the paper's motivating hazard).
  void drop_node(net::NodeId node);

 private:
  std::unordered_map<FileId, std::unordered_set<net::NodeId>> by_file_;
  std::unordered_map<net::NodeId, std::unordered_set<FileId>> by_node_;
};

}  // namespace frieda::storage
