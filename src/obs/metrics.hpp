// Named metrics registry: counters, gauges, and the existing RunningStats /
// Histogram accumulators as registered instruments.
//
// Usage pattern (see docs/observability.md): a component is handed a
// `MetricsRegistry*` (nullptr = disabled) and resolves the instruments it
// needs ONCE at attach time, caching the returned pointers/references.  The
// hot path then performs a plain pointer-guarded increment — no name lookup,
// no hashing, no allocation.
//
// Threading model (see docs/observability.md): the registry *map* is
// synchronized — create-or-get, find_* and the exports may be called from
// concurrent sweep jobs (exp::SweepRunner) sharing one registry.  The
// *instruments* are not: each returned Counter/Gauge/RunningStats/Histogram
// must be updated by a single run (thread) at a time, which holds by
// construction when jobs resolve distinct per-job instrument names.  A
// `Tracer` is internally synchronized but is a per-run object: attach one
// tracer to one run; merge exports after the runs, don't share one tracer
// across simulations whose clocks are unrelated.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/stats.hpp"

namespace frieda::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Create-or-get instrument registry keyed by name.  Returned references are
/// stable for the registry's lifetime (instruments are heap-allocated).
class MetricsRegistry {
 public:
  /// Create-or-get; a name maps to exactly one instrument kind (creating the
  /// same name as a different kind throws FriedaError).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  RunningStats& stats(const std::string& name);
  /// Histogram parameters are fixed at first creation; later calls with the
  /// same name return the existing instrument and ignore the parameters.
  Histogram& histogram(const std::string& name, double lo, double hi, std::size_t bins);

  /// Lookup without creating (nullptr when absent or of another kind).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const RunningStats* find_stats(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Number of registered instruments.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return instruments_.size();
  }

  /// Flat CSV export, one row per scalar:
  /// name,kind,value — stats expand to name.count/.mean/.min/.max/.sum rows,
  /// histograms to one name.bucket_<i> row per bucket plus name.total.
  std::string csv() const;

  /// Human-readable "name = value" listing (sorted by name).
  std::string summary() const;

  /// Write csv() to a file (throws FriedaError on failure).
  void write_csv(const std::string& path) const;

 private:
  struct Instrument {
    // Exactly one of these is set; a tagged union kept simple with uniques.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<RunningStats> stats;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mutex_;                       // guards the map, not the instruments
  std::map<std::string, Instrument> instruments_;  // ordered for stable export
};

}  // namespace frieda::obs
