// Live sweep progress reporting.
//
// `ProgressReporter` is the sink `exp::SweepRunner` feeds while a grid is
// in flight: throttled one-line updates with a cost-weighted ETA, e.g.
//
//   sweep: [12/32] 6 in flight, eta ~41s
//
// Opt-in and off by default — a runner with no reporter attached prints
// nothing, so committed scenario CSVs and tables stay byte-identical.
// Enable per-runner via `SweepRunner::set_progress`, or globally via the
// `FRIEDA_SWEEP_PROGRESS` environment variable (see `from_env`).
//
// Lives in frieda_obs (not frieda_exp) because it is an observability
// sink, same layer as Tracer/MetricsRegistry; the runner only holds an
// opaque pointer to it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

namespace frieda::obs {

struct ProgressOptions {
  /// Minimum seconds between printed update lines (the finish line always
  /// prints).  0 prints every update — useful in tests.
  double min_interval_s = 0.5;

  /// Output stream; nullptr means stderr (so driver stdout/CSV piping is
  /// never polluted).
  std::FILE* out = nullptr;

  /// Line prefix, e.g. the driver name.
  std::string label = "sweep";
};

/// Throttled textual progress for a batch of jobs.  Thread-safe: the
/// runner's worker threads call `update` concurrently.
///
/// ETA is cost-weighted when per-job cost estimates are available
/// (remaining-cost / observed cost-rate), falling back to job counts —
/// so a grid whose longest jobs were dispatched first (the runner's
/// longest-first order) does not wildly overestimate near the end.
/// Memoized jobs carry no weight on either path: the runner subtracts
/// cache hits' cost from `total_cost` before `begin`, and `served_jobs`
/// removes them from the count fallback — a duplicate-heavy grid's ETA
/// reflects only the jobs that actually execute.
class ProgressReporter {
 public:
  explicit ProgressReporter(ProgressOptions options = {});

  /// Announce a starting batch.  Resets per-batch state; prints nothing.
  /// `served_jobs` counts jobs already complete at batch start (result-cache
  /// hits and in-batch twins): they are included in `total_jobs` for the
  /// `[done/total]` display but excluded from the ETA rate, since finishing
  /// instantly says nothing about how fast the real jobs run.
  void begin(std::size_t total_jobs, double total_cost, std::size_t served_jobs = 0);

  /// Report progress; prints at most once per `min_interval_s`.
  /// `completed_cost` is the summed cost estimate of finished jobs (0 when
  /// costs are unknown); `elapsed_s` is wall seconds since `begin`.
  void update(std::size_t completed, std::size_t in_flight, double completed_cost,
              double elapsed_s);

  /// Report batch completion; always prints (unless nothing ever ran).
  void finish(std::size_t completed, std::size_t total, double elapsed_s);

  /// Lines actually printed so far (for tests).
  std::size_t lines_printed() const;

  /// Build a reporter from the `FRIEDA_SWEEP_PROGRESS` environment
  /// variable: unset/empty/"0" -> nullptr (disabled); a positive number of
  /// seconds in (0, kMaxIntervalSeconds] is the update interval.  Any other
  /// value (trailing junk, negative, NaN/inf, out of range) logs a kWarn
  /// and enables the default interval — setting the variable expressed the
  /// intent to see progress, so a typo degrades loudly, not silently.
  /// Output goes to stderr.
  static std::unique_ptr<ProgressReporter> from_env();

  /// Widest accepted update interval: one day between lines is already
  /// indistinguishable from "disabled", anything beyond it is a typo.
  static constexpr double kMaxIntervalSeconds = 86400.0;

  /// Parse a FRIEDA_SWEEP_PROGRESS value: 0 for an explicit "0" (disable),
  /// the interval for a full numeric parse in (0, kMaxIntervalSeconds],
  /// and a negative value for anything invalid (the from_env caller warns
  /// and falls back to the default interval).  Exposed for tests.
  static double parse_interval_env(const char* text);

 private:
  void print_line(const std::string& line);

  ProgressOptions options_;
  mutable std::mutex mutex_;
  std::size_t total_jobs_ = 0;
  double total_cost_ = 0.0;
  std::size_t served_jobs_ = 0;  ///< memoized jobs: zero weight in the ETA
  double last_print_elapsed_ = -1.0;  ///< elapsed_s of the last printed update
  std::size_t lines_ = 0;
};

}  // namespace frieda::obs
