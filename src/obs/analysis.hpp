// Trace analytics: turn a finished `Tracer` event stream into answers.
//
// PR 2's tracer records *what happened when* (unit lifecycle, staging, exec,
// network flows); this layer computes *where the time went*:
//
//   * Critical path — the dependency chain of staging/exec spans that bounds
//     the run's makespan, found by a deterministic last-finisher backward
//     walk from the end of the run.  Gaps where nothing relevant was
//     finishing become explicit synthetic "wait" segments, so the segment
//     durations tile the run window exactly and always sum to the makespan.
//   * Time attribution — every worker-second of the run is assigned to
//     exactly one of four categories (compute, network transfer, storage
//     staging, idle/wait), per worker and in aggregate.  The categories
//     partition each worker's copy of the run window, so the totals sum to
//     worker-count x makespan by construction — the compute/data-movement
//     decomposition the paper uses to compare placement strategies
//     (Fig. 6-7, Table 1).
//   * Utilization timelines — merged per-worker category intervals,
//     exportable as a Gantt-style CSV.
//
// Works on live `Tracer` objects and on exported Chrome trace-event JSON
// (see `load_chrome_trace` and the `frieda-trace` CLI in tools/).  Both
// clock domains are fine: simulation seconds (core::FriedaRun) and wall
// seconds (rt::RtEngine) — the analyzer only needs a consistent timeline.
//
// Category mapping (see docs/observability.md, "Trace analysis"):
//   compute   — `exec` spans (a program instance occupies the worker);
//   transfer  — `staging` spans named "remote-read ..." (execution-time
//               streaming over the network: remote-read / shared-volume);
//   staging   — every other `staging` span (moving inputs to worker-local
//               storage ahead of execution), including node-level
//               stage-common / stage-node spans attributed to the workers of
//               that VM;
//   idle      — the rest of the window (scheduler wait, pipeline bubbles,
//               post-completion drain).
// Where categories overlap on one worker lane (real-time prefetch pipelines
// staging under execution), the higher-occupancy category wins:
// compute > transfer > staging.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace frieda::obs {

/// Sampled telemetry recovered from a trace: the counter events (cat
/// "telemetry", one channel per event) regrouped into a Timeseries, plus
/// any SLO breach spans (cat "slo") the probe emitted at finish().
struct TelemetryView {
  Timeseries series;
  std::vector<SloBreach> breaches;

  bool empty() const { return series.empty() && breaches.empty(); }
};

/// The four attribution buckets; every worker-second lands in exactly one.
enum class TimeCategory { kCompute, kTransfer, kStaging, kIdle };

/// Stable lower-case label ("compute", "transfer", "staging", "idle").
const char* to_string(TimeCategory c);

/// Seconds per category; one per worker plus the aggregate.
struct Attribution {
  double compute = 0.0;   ///< exec spans
  double transfer = 0.0;  ///< execution-time network reads
  double staging = 0.0;   ///< ahead-of-execution input staging
  double idle = 0.0;      ///< everything else in the window

  double busy() const { return compute + transfer + staging; }
  double total() const { return busy() + idle; }
  double of(TimeCategory c) const;
};

/// One link of the critical path: a traced span (clipped to the chain) or a
/// synthetic wait segment covering a gap where nothing on the path ran.
struct PathSegment {
  bool wait = false;         ///< synthetic gap segment (name "wait")
  std::string name;
  std::string cat;           ///< source span category; "wait" for gaps
  std::uint32_t process = 0; ///< track group of the source span
  std::uint32_t track = 0;   ///< lane of the source span
  int unit = -1;             ///< unit arg of the source span, -1 when absent
  double start = 0.0;
  double end = 0.0;

  double duration() const { return end - start; }
};

/// One maximal same-category stretch of a worker's timeline.
struct GanttInterval {
  std::uint32_t worker = 0;
  TimeCategory category = TimeCategory::kIdle;
  double start = 0.0;
  double end = 0.0;
};

/// Attribution of one worker lane over the run window.
struct WorkerUsage {
  std::uint32_t worker = 0;
  Attribution attribution;
};

/// Everything the analyzer computed from one trace.
struct TraceAnalysis {
  // Run window.  `anchored` is true when a run-level span (cat "run",
  // emitted by FriedaRun / RtEngine since this layer exists) pinned the
  // window to the run's own [start, end]; otherwise the window is the
  // min/max over all recorded events.
  double run_start = 0.0;
  double run_end = 0.0;
  bool anchored = false;
  double makespan() const { return run_end - run_start; }

  // Inventory.
  std::size_t events = 0;  ///< all events analyzed
  std::size_t spans = 0;   ///< span events among them
  std::size_t units = 0;   ///< unit lifecycle spans
  std::uint64_t dropped_events = 0;  ///< from a trace-truncated marker, if any
  bool truncated() const { return dropped_events > 0; }

  // Network solver activity over the run window, from the anchor span's
  // net_solves / net_full_solves / net_dirty_classes args (emitted by
  // FriedaRun since the incremental max-min solver landed).  `solver_stats`
  // is false for traces recorded before those args existed.
  bool solver_stats = false;
  std::uint64_t net_solves = 0;         ///< solver invocations (any kind)
  std::uint64_t net_full_solves = 0;    ///< from-scratch rebuild solves
  std::uint64_t net_dirty_classes = 0;  ///< sum of dirty component sizes
  double incremental_share() const {
    return net_solves > 0
               ? static_cast<double>(net_solves - net_full_solves) / net_solves
               : 0.0;
  }
  double avg_dirty_classes() const {
    return net_solves > 0 ? static_cast<double>(net_dirty_classes) / net_solves : 0.0;
  }

  // Control-plane instantiation activity, from the anchor span's
  // cp_instantiations / cp_templated / cp_patches args (emitted by
  // FriedaRun since execution templates landed).  `control_plane_stats` is
  // false for traces recorded before those args existed.
  bool control_plane_stats = false;
  std::uint64_t cp_instantiations = 0;  ///< control-plane decisions made
  std::uint64_t cp_templated = 0;       ///< served from an execution template
  std::uint64_t cp_patches = 0;         ///< recomputed (captured input diverged)
  double templated_share() const {
    return cp_instantiations > 0
               ? static_cast<double>(cp_templated) / cp_instantiations
               : 0.0;
  }

  // Open-loop service latency over the run window, from the anchor span's
  // latency_p50/p95/p99 + sustained_tput args (emitted by FriedaRun's
  // service mode).  `latency_stats` is false for closed-batch traces.
  bool latency_stats = false;
  double latency_p50 = 0.0;       ///< median sojourn (arrival -> completion), s
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double sustained_tput = 0.0;    ///< completions per second while serving

  // Live telemetry sampled while the run was in flight (a TelemetryProbe
  // was attached).  Empty for untelemetered traces.
  TelemetryView telemetry;

  // SLO totals from the anchor span's slo_breaches / slo_violation_s args
  // (present when the probe had declared targets).
  bool slo_stats = false;
  std::uint64_t slo_breach_count = 0;
  double slo_violation_s = 0.0;

  // Critical path, chronological.  The segments tile [run_start, run_end]:
  // their durations sum to makespan() up to float tolerance.
  std::vector<PathSegment> critical_path;
  double critical_path_seconds() const;
  /// Seconds of the path spent in spans of `cat` ("wait" for gap segments).
  double path_seconds(const std::string& cat) const;

  // Attribution, per worker (ascending id) and in aggregate.  `totals`
  // sums to worker_seconds() by construction.
  std::vector<WorkerUsage> workers;
  Attribution totals;
  double worker_seconds() const {
    return static_cast<double>(workers.size()) * makespan();
  }

  // Per-worker utilization timeline: merged category intervals (idle
  // included), ordered by (worker, start).
  std::vector<GanttInterval> gantt;
};

/// The analysis entry points.  Pure functions of the event stream — the
/// tracer overload snapshots `tracer.events()` and carries over its
/// dropped-events counter.
class TraceAnalyzer {
 public:
  static TraceAnalysis analyze(const std::vector<TraceEvent>& events);
  static TraceAnalysis analyze(const Tracer& tracer);
};

/// Human-readable report: attribution tables (aggregate + per-worker) and
/// the critical path.  `max_path_rows` caps the printed segment list (the
/// middle is elided); the per-category path summary always covers the full
/// chain.
std::string render_report(const TraceAnalysis& analysis, std::size_t max_path_rows = 40);

/// Gantt-style CSV of the utilization timelines:
/// worker,category,start_s,end_s,dur_s — one row per GanttInterval.
std::string gantt_csv(const TraceAnalysis& analysis);

/// Critical-path CSV: segment,kind,cat,name,process,track,start_s,end_s,dur_s.
std::string critical_path_csv(const TraceAnalysis& analysis);

/// Timeline report from the recovered TelemetryView: per-channel stats with
/// ascii sparklines, followed by SLO breach intervals.  `width` is the
/// sparkline column budget.
std::string render_timeline(const TraceAnalysis& analysis, std::size_t width = 60);

/// Parse an exported Chrome trace-event JSON document (the format
/// Tracer::chrome_json writes: complete "X" spans, "i" instants, "C"
/// counters, "M" metadata records, microsecond timestamps) back into events with
/// timestamps in seconds.  Metadata records are skipped.  Throws FriedaError
/// on malformed input.
std::vector<TraceEvent> load_chrome_trace(const std::string& json_text);

/// Read + parse a Chrome trace JSON file (throws FriedaError on I/O errors).
std::vector<TraceEvent> read_chrome_trace(const std::string& path);

}  // namespace frieda::obs
