#include "obs/metrics.hpp"

#include <fstream>
#include <mutex>
#include <sstream>

#include "common/error.hpp"

namespace frieda::obs {

namespace {

/// Format a double without trailing-zero noise (counters stay integral).
std::string num(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = instruments_[name];
  if (!slot.counter) {
    FRIEDA_CHECK(!slot.gauge && !slot.stats && !slot.histogram,
                 "metric '" << name << "' already registered with another kind");
    slot.counter = std::make_unique<Counter>();
  }
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = instruments_[name];
  if (!slot.gauge) {
    FRIEDA_CHECK(!slot.counter && !slot.stats && !slot.histogram,
                 "metric '" << name << "' already registered with another kind");
    slot.gauge = std::make_unique<Gauge>();
  }
  return *slot.gauge;
}

RunningStats& MetricsRegistry::stats(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = instruments_[name];
  if (!slot.stats) {
    FRIEDA_CHECK(!slot.counter && !slot.gauge && !slot.histogram,
                 "metric '" << name << "' already registered with another kind");
    slot.stats = std::make_unique<RunningStats>();
  }
  return *slot.stats;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                      std::size_t bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = instruments_[name];
  if (!slot.histogram) {
    FRIEDA_CHECK(!slot.counter && !slot.gauge && !slot.stats,
                 "metric '" << name << "' already registered with another kind");
    slot.histogram = std::make_unique<Histogram>(lo, hi, bins);
  }
  return *slot.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.gauge.get();
}

const RunningStats* MetricsRegistry::find_stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.stats.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.histogram.get();
}

std::string MetricsRegistry::csv() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "name,kind,value\n";
  for (const auto& [name, inst] : instruments_) {
    if (inst.counter) {
      os << name << ",counter," << inst.counter->value() << "\n";
    } else if (inst.gauge) {
      os << name << ",gauge," << num(inst.gauge->value()) << "\n";
    } else if (inst.stats) {
      const auto& s = *inst.stats;
      os << name << ".count,stats," << s.count() << "\n";
      os << name << ".mean,stats," << num(s.mean()) << "\n";
      os << name << ".min,stats," << num(s.count() ? s.min() : 0.0) << "\n";
      os << name << ".max,stats," << num(s.count() ? s.max() : 0.0) << "\n";
      os << name << ".sum,stats," << num(s.sum()) << "\n";
    } else if (inst.histogram) {
      const auto& h = *inst.histogram;
      for (std::size_t i = 0; i < h.buckets(); ++i) {
        os << name << ".bucket_" << i << ",histogram," << h.bucket(i) << "\n";
      }
      os << name << ".total,histogram," << h.total() << "\n";
    }
  }
  return os.str();
}

std::string MetricsRegistry::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, inst] : instruments_) {
    if (inst.counter) {
      os << name << " = " << inst.counter->value() << "\n";
    } else if (inst.gauge) {
      os << name << " = " << num(inst.gauge->value()) << "\n";
    } else if (inst.stats) {
      const auto& s = *inst.stats;
      os << name << " = n=" << s.count() << " mean=" << num(s.mean())
         << " min=" << num(s.count() ? s.min() : 0.0)
         << " max=" << num(s.count() ? s.max() : 0.0) << "\n";
    } else if (inst.histogram) {
      os << name << " = histogram(" << inst.histogram->total() << " samples)\n";
    }
  }
  return os.str();
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  FRIEDA_CHECK(out.good(), "cannot open metrics file '" << path << "'");
  out << csv();
  FRIEDA_CHECK(out.good(), "write to metrics file '" << path << "' failed");
}

}  // namespace frieda::obs
